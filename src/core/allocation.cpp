#include "core/allocation.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace wats::core {

ContiguousPartition allocate_sorted(std::span<const double> sorted_workloads,
                                    const AmcTopology& topo) {
  // Precondition, debug builds only: the O(m log m) sortedness scan is
  // pure paranoia on a path re-run every helper tick, so release builds
  // skip it (callers that cannot guarantee order use allocate()).
  WATS_DCHECK_MSG(
      std::is_sorted(sorted_workloads.begin(), sorted_workloads.end(),
                     std::greater<>()),
      "Algorithm 1 requires workloads sorted in descending order");

  const std::size_t m = sorted_workloads.size();
  const std::size_t k = topo.group_count();
  // AmcTopology drops empty c-groups at construction and rejects
  // non-positive frequencies, so every capacity below is > 0 and TL is
  // well-defined; all-zero workloads give TL = 0 and every item lands in
  // group 0 (no budget is ever exceeded).
  const double tl = makespan_lower_bound(sorted_workloads, topo);

  ContiguousPartition p;
  p.boundaries.assign(k, m);

  // Paper's Algorithm 1 (indices translated to 0-based): accumulate weight
  // into group j; an item that pushes the group's finish time past TL ends
  // the group. Algorithm 1's stated objective is to keep
  // max_g |finish_g - TL| as small as possible, so at each boundary the
  // overflowing item is placed on whichever side leaves group j's finish
  // time closer to TL (the bare pseudo-code always pushes it to j+1, which
  // strands the rounding error on the slowest group; see DESIGN.md).
  double w = 0.0;
  GroupIndex j = 0;
  for (std::size_t i = 0; i < m && j + 1 < k; ++i) {
    w += sorted_workloads[i];
    const double budget = tl * topo.group_capacity(j);
    if (w > budget) {
      const double overshoot = w - budget;
      const double undershoot = budget - (w - sorted_workloads[i]);
      // Pushing the item down starts group j+1 at a finish time of at
      // least w_i / cap_{j+1}; keeping it overshoots this group to
      // w / cap_j. Keep whenever keeping is the smaller deviation or the
      // push floor is already worse than the overshoot.
      const double keep_finish = w / topo.group_capacity(j);
      const double push_floor =
          sorted_workloads[i] / topo.group_capacity(j + 1);
      if (overshoot <= undershoot || push_floor > keep_finish) {
        // Keep item i in group j; group j ends after it.
        p.boundaries[j] = i + 1;
        ++j;
        w = 0.0;
      } else {
        p.boundaries[j] = i;  // group j ends before item i
        ++j;
        w = sorted_workloads[i];
      }
    }
  }
  // Groups j..k-1 all end at m (the last group absorbs the tail; if we ran
  // out of items early the remaining boundaries stay at m => empty groups).
  return p;
}

std::vector<GroupIndex> allocate(std::span<const double> workloads,
                                 const AmcTopology& topo) {
  const std::size_t m = workloads.size();
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return workloads[a] > workloads[b];
  });
  std::vector<double> sorted(m);
  for (std::size_t i = 0; i < m; ++i) sorted[i] = workloads[order[i]];

  const ContiguousPartition p = allocate_sorted(sorted, topo);

  std::vector<GroupIndex> assignment(m, 0);
  for (GroupIndex g = 0; g < topo.group_count(); ++g) {
    for (std::size_t i = p.group_begin(g); i < p.group_end(g); ++i) {
      assignment[order[i]] = g;
    }
  }
  return assignment;
}

AllocationQuality evaluate_allocation(std::span<const double> sorted_workloads,
                                      const AmcTopology& topo) {
  AllocationQuality q;
  const ContiguousPartition p = allocate_sorted(sorted_workloads, topo);
  q.lower_bound = makespan_lower_bound(sorted_workloads, topo);
  q.group_finish = group_finish_times(sorted_workloads, p, topo);
  q.makespan = *std::max_element(q.group_finish.begin(), q.group_finish.end());
  q.ratio = q.lower_bound == 0.0 ? 1.0 : q.makespan / q.lower_bound;
  return q;
}

}  // namespace wats::core
