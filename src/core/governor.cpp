#include "core/governor.hpp"

#include <algorithm>

#include "core/partition_plan.hpp"
#include "util/check.hpp"

namespace wats::core {

std::string to_string(GovernorPolicy policy) {
  switch (policy) {
    case GovernorPolicy::kStatic:
      return "static";
    case GovernorPolicy::kRaceToIdle:
      return "race-to-idle";
    case GovernorPolicy::kPaceToDeadline:
      return "pace-to-deadline";
    case GovernorPolicy::kCmpiAware:
      return "cmpi-aware";
  }
  return "?";
}

bool governor_policy_from_string(const std::string& name,
                                 GovernorPolicy* out) {
  WATS_CHECK(out != nullptr);
  if (name == "static") {
    *out = GovernorPolicy::kStatic;
  } else if (name == "race-to-idle") {
    *out = GovernorPolicy::kRaceToIdle;
  } else if (name == "pace-to-deadline") {
    *out = GovernorPolicy::kPaceToDeadline;
  } else if (name == "cmpi-aware") {
    *out = GovernorPolicy::kCmpiAware;
  } else {
    return false;
  }
  return true;
}

SpeedLevels SpeedLevels::from_topology(const AmcTopology& topo,
                                       std::size_t dvfs_levels) {
  SpeedLevels levels;
  levels.per_group.resize(topo.group_count());
  const double machine_min =
      topo.group(topo.group_count() - 1).frequency_ghz;
  for (GroupIndex g = 0; g < topo.group_count(); ++g) {
    const double base = topo.group(g).frequency_ghz;
    std::vector<double>& ladder = levels.per_group[g];
    if (dvfs_levels == 0) {
      // Native set: every slower group's base frequency, ascending, then
      // this group's own base (the identical topology double on top).
      for (GroupIndex h = topo.group_count(); h-- > g + 1;) {
        const double f = topo.group(h).frequency_ghz;
        if (ladder.empty() || ladder.back() != f) ladder.push_back(f);
      }
      ladder.push_back(base);
    } else if (dvfs_levels == 1) {
      ladder.push_back(base);
    } else {
      // Evenly spaced from the machine's slowest base up to this group's
      // base; the slowest group has no slower base, so span [base/2, base].
      const double lo = machine_min < base ? machine_min : base / 2.0;
      for (std::size_t i = 0; i + 1 < dvfs_levels; ++i) {
        ladder.push_back(lo + (base - lo) * static_cast<double>(i) /
                                  static_cast<double>(dvfs_levels - 1));
      }
      ladder.push_back(base);  // exact, not lo + (n-1)/(n-1) * span
    }
  }
  return levels;
}

std::vector<double> governor_frequencies(const GovernorConfig& config,
                                         const AmcTopology& topo,
                                         const SpeedLevels& levels,
                                         const GovernorInputs& inputs) {
  const std::size_t k = topo.group_count();
  std::vector<double> freqs(k);
  for (GroupIndex g = 0; g < k; ++g) {
    freqs[g] = topo.group(g).frequency_ghz;
  }
  switch (config.policy) {
    case GovernorPolicy::kStatic:
      break;
    case GovernorPolicy::kRaceToIdle:
      for (GroupIndex g = 0; g < k; ++g) {
        const bool busy =
            g < inputs.group_busy.size() && inputs.group_busy[g] != 0;
        if (!busy) freqs[g] = levels.per_group[g].front();
      }
      break;
    case GovernorPolicy::kPaceToDeadline: {
      // Prefer the caller's live backlog drain times (self-consistent:
      // independent of how fast history happened to accrue) over the
      // published plan's cumulative-history predictions, which go stale
      // behind the publication gate and are self-referential under
      // pacing — a slowed group accrues history slower and would look
      // ever lighter, chasing itself down the ladder.
      const std::vector<double>* finish_times = nullptr;
      if (inputs.group_finish.size() >= k) {
        finish_times = &inputs.group_finish;
      } else if (inputs.plan != nullptr &&
                 inputs.plan->group_finish.size() >= k) {
        finish_times = &inputs.plan->group_finish;
      }
      if (finish_times == nullptr) break;  // no signal: stay at base
      double makespan = 0.0;
      for (GroupIndex g = 0; g < k; ++g) {
        makespan = std::max(makespan, (*finish_times)[g]);
      }
      if (makespan <= 0.0) break;
      const double target = makespan * (1.0 + config.pace_epsilon);
      for (GroupIndex g = 0; g < k; ++g) {
        const double finish = (*finish_times)[g];
        if (finish <= 0.0) {
          // No pending work: there is no deadline to pace. If nothing is
          // running either, drop to the floor — race-to-idle composes
          // with pacing for empty groups (the next tick re-raises).
          const bool busy =
              g < inputs.group_busy.size() && inputs.group_busy[g] != 0;
          if (!busy) freqs[g] = levels.per_group[g].front();
          continue;
        }
        const double base = topo.group(g).frequency_ghz;
        // Lowest level that still makes the deadline, assuming the
        // pessimistic fully-scalable slowdown base/f (memory-stall time
        // does not stretch, so the real finish is never later).
        for (double f : levels.per_group[g]) {
          if (finish * (base / f) <= target) {
            freqs[g] = f;
            break;
          }
        }
      }
      break;
    }
    case GovernorPolicy::kCmpiAware:
      for (GroupIndex g = 0; g < k; ++g) {
        const double scalable =
            g < inputs.group_scalable.size() ? inputs.group_scalable[g] : -1.0;
        if (scalable < 0.0) continue;  // no CMPI signal yet
        freqs[g] = config.energy.best_frequency(
            1.0, topo.group(g).frequency_ghz, levels.per_group[g], scalable,
            config.cmpi_slowdown_cap);
      }
      break;
  }
  return freqs;
}

Governor::Governor(const GovernorConfig& config, const AmcTopology& topo)
    : config_(config),
      topo_(topo),
      levels_(SpeedLevels::from_topology(topo, config.dvfs_levels)) {
  auto initial = std::make_unique<SpeedPlan>();
  initial->epoch = 0;
  initial->group_frequency_ghz.reserve(topo.group_count());
  for (GroupIndex g = 0; g < topo.group_count(); ++g) {
    initial->group_frequency_ghz.push_back(topo.group(g).frequency_ghz);
  }
  current_.store(initial.get(), std::memory_order_release);
  retired_.push_back(std::move(initial));
}

Governor::~Governor() = default;

bool Governor::tick(const GovernorInputs& inputs) {
  ++ticks_;
  if (config_.policy == GovernorPolicy::kStatic) return false;
  const std::vector<double> freqs =
      governor_frequencies(config_, topo_, levels_, inputs);
  const SpeedPlan* cur = current();
  // Publication gate: an identical speed map is unobservable to readers,
  // so skip it without burning an epoch.
  if (freqs == cur->group_frequency_ghz) return false;
  auto fresh = std::make_unique<SpeedPlan>();
  fresh->epoch = cur->epoch + 1;
  fresh->group_frequency_ghz = freqs;
  const SpeedPlan* raw = fresh.get();
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.push_back(std::move(fresh));
  }
  current_.store(raw, std::memory_order_release);
  ++swaps_;
  return true;
}

}  // namespace wats::core
