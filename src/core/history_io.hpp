// Persistence for the task-class history (Algorithm 2 state).
//
// The paper's history lives and dies with one program execution; for
// programs that run repeatedly on the same inputs, persisting the
// per-class workload statistics lets the NEXT run start with a warm
// allocation instead of routing every unknown class to the fastest
// c-group. Text format, one class per line:
//
//   <name>\t<completed>\t<mean_workload>\n
#pragma once

#include <string>
#include <string_view>

#include "core/task_class.hpp"

namespace wats::core {

/// Serialize the registry's statistics (classes with history only).
std::string serialize_history(const TaskClassRegistry& registry);

/// Merge serialized history into a registry: classes are interned and
/// their statistics restored (existing statistics for the same class are
/// replaced). Returns the number of classes loaded. Aborts on malformed
/// input (persistence files are trusted local state).
std::size_t load_history(TaskClassRegistry& registry, std::string_view text);

/// File convenience wrappers.
void save_history_file(const TaskClassRegistry& registry,
                       const std::string& path);
std::size_t load_history_file(TaskClassRegistry& registry,
                              const std::string& path);

}  // namespace wats::core
