// Task clusters: the mapping from task classes to c-groups (§III-A).
//
// The history-based allocation sorts task classes by descending mean
// workload w, weights each class by its total workload n*w, and runs
// Algorithm 1 to split the class list across the k c-groups. The resulting
// class -> cluster map decides where every newly spawned task is enqueued.
#pragma once

#include <vector>

#include "core/task_class.hpp"
#include "core/topology.hpp"

namespace wats::core {

/// Which static allocator partitions the classes across c-groups.
enum class ClusterAlgorithm {
  /// The paper's Algorithm 1 (greedy contiguous split of the w-sorted
  /// class list). Cheap enough to re-run on every completion.
  kAlgorithm1,
  /// Hochbaum–Shmoys-style dual approximation over the class weights
  /// (non-contiguous; §II-C's cited alternative [14]). More precise on
  /// coarse class sets, costlier to rebuild.
  kDualApprox,
  /// Exact branch-and-bound optimum (core/partitioner.hpp's
  /// ExactPartitioner). Primarily the quality oracle for tests and
  /// bench_allocation_quality; safe online for small class counts (above
  /// its item cap it degrades to the best seeding heuristic).
  kExactDp,
};

const char* to_string(ClusterAlgorithm algorithm);

/// Immutable class->cluster mapping produced by one run of the clustering
/// step. Cluster indices coincide with c-group indices (the paper's
/// one-to-one mapping between task clusters and c-groups).
class ClusterMap {
 public:
  /// A map for `class_count` classes over `group_count` clusters; every
  /// class starts in cluster 0 (the fastest) which is also the paper's
  /// rule for classes with no history.
  ClusterMap(std::size_t class_count, std::size_t group_count);

  /// Adopt a fully materialized class->cluster assignment (indexed by
  /// class id). The incremental plan repairer builds its assignment
  /// without going through a registry snapshot and wraps it here.
  ClusterMap(std::vector<GroupIndex> assignment, std::size_t group_count);

  /// Cluster of a class; classes interned after this map was built (id out
  /// of range) and kNoTaskClass go to cluster 0, per §III-A ("if there is
  /// no task class for f, gamma is allocated to the fastest c-group C1").
  GroupIndex cluster_of(TaskClassId id) const;

  std::size_t cluster_count() const { return group_count_; }
  std::size_t class_count() const { return assignment_.size(); }

  /// Raw assignment vector (testing / introspection).
  const std::vector<GroupIndex>& assignment() const { return assignment_; }

  /// Build the map from a registry snapshot, faithfully following §III-A:
  /// sort classes by descending mean workload, weight by n*w, then split
  /// with the chosen allocator. Classes with no completions yet are
  /// pinned to cluster 0.
  static ClusterMap build(
      const std::vector<TaskClassInfo>& classes, const AmcTopology& topo,
      ClusterAlgorithm algorithm = ClusterAlgorithm::kAlgorithm1);

 private:
  std::vector<GroupIndex> assignment_;
  std::size_t group_count_;
};

}  // namespace wats::core
