#include "core/dnc_detect.hpp"

namespace wats::core {

void DncDetector::record_spawn(TaskClassId parent, TaskClassId child) {
  if (parent == kNoTaskClass) return;
  std::lock_guard lock(mu_);
  ++spawns_;
  if (parent == child) {
    ++self_spawns_;
    self_recursive_.insert(parent);
  }
}

bool DncDetector::is_self_recursive(TaskClassId cls) const {
  std::lock_guard lock(mu_);
  return self_recursive_.contains(cls);
}

double DncDetector::self_recursive_fraction() const {
  std::lock_guard lock(mu_);
  if (spawns_ == 0) return 0.0;
  return static_cast<double>(self_spawns_) / static_cast<double>(spawns_);
}

std::uint64_t DncDetector::observed_spawns() const {
  std::lock_guard lock(mu_);
  return spawns_;
}

}  // namespace wats::core
