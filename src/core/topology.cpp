#include "core/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace wats::core {

AmcTopology::AmcTopology(std::string name, std::vector<CGroupSpec> groups)
    : name_(std::move(name)), groups_(std::move(groups)) {
  // Drop empty groups (Table II rows use 0 to mean "no cores at this
  // frequency") and merge duplicates at the same frequency.
  std::erase_if(groups_, [](const CGroupSpec& g) { return g.core_count == 0; });
  WATS_CHECK_MSG(!groups_.empty(), "topology must have at least one core");
  std::sort(groups_.begin(), groups_.end(),
            [](const CGroupSpec& a, const CGroupSpec& b) {
              return a.frequency_ghz > b.frequency_ghz;
            });
  std::vector<CGroupSpec> merged;
  for (const auto& g : groups_) {
    WATS_CHECK_MSG(g.frequency_ghz > 0.0, "frequencies must be positive");
    if (!merged.empty() &&
        merged.back().frequency_ghz == g.frequency_ghz) {
      merged.back().core_count += g.core_count;
    } else {
      merged.push_back(g);
    }
  }
  groups_ = std::move(merged);

  group_start_.resize(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    group_start_[g] = total_cores_;
    total_cores_ += groups_[g].core_count;
    total_capacity_ +=
        groups_[g].frequency_ghz * static_cast<double>(groups_[g].core_count);
  }
}

double AmcTopology::relative_speed(GroupIndex g) const {
  return group(g).frequency_ghz / fastest_frequency();
}

GroupIndex AmcTopology::group_of_core(CoreIndex core) const {
  WATS_CHECK(core < total_cores_);
  // group_start_ is sorted ascending; find the last start <= core.
  auto it = std::upper_bound(group_start_.begin(), group_start_.end(), core);
  return static_cast<GroupIndex>(std::distance(group_start_.begin(), it)) - 1;
}

CoreIndex AmcTopology::first_core_of_group(GroupIndex g) const {
  return group_start_.at(g);
}

double AmcTopology::group_capacity(GroupIndex g) const {
  const auto& grp = group(g);
  return grp.frequency_ghz * static_cast<double>(grp.core_count);
}

std::string AmcTopology::describe() const {
  std::ostringstream out;
  out << name_ << ": ";
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (g != 0) out << ", ";
    out << groups_[g].core_count << "x" << groups_[g].frequency_ghz << "GHz";
  }
  return out.str();
}

std::vector<AmcTopology> amc_table2() {
  // Rows of Table II: core counts at {2.5, 1.8, 1.3, 0.8} GHz.
  struct Row {
    const char* name;
    std::size_t n25, n18, n13, n08;
  };
  static constexpr Row kRows[] = {
      {"AMC1", 2, 2, 2, 10}, {"AMC2", 4, 4, 4, 4}, {"AMC3", 2, 0, 0, 14},
      {"AMC4", 4, 0, 0, 12}, {"AMC5", 8, 0, 0, 8}, {"AMC6", 12, 0, 0, 4},
      {"AMC7", 16, 0, 0, 0},
  };
  std::vector<AmcTopology> out;
  out.reserve(std::size(kRows));
  for (const auto& r : kRows) {
    out.emplace_back(r.name,
                     std::vector<CGroupSpec>{{2.5, r.n25},
                                             {1.8, r.n18},
                                             {1.3, r.n13},
                                             {0.8, r.n08}});
  }
  return out;
}

AmcTopology amc_by_name(const std::string& name) {
  for (auto& t : amc_table2()) {
    if (t.name() == name) return t;
  }
  WATS_CHECK_MSG(false, "unknown AMC architecture name");
  __builtin_unreachable();
}

AmcTopology amc_fig5_example() {
  return AmcTopology("Fig5", {{2.5, 1}, {1.8, 2}, {1.3, 1}});
}

AmcTopology amc_from_string(const std::string& spec) {
  std::vector<CGroupSpec> groups;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t plus = spec.find('+', pos);
    if (plus == std::string::npos) plus = spec.size();
    const std::string group = spec.substr(pos, plus - pos);
    pos = plus + 1;
    const std::size_t x = group.find('x');
    WATS_CHECK_MSG(x != std::string::npos && x > 0 && x + 1 < group.size(),
                   "malformed topology group (want NxF, e.g. 8x2.5)");
    char* end = nullptr;
    const unsigned long count = std::strtoul(group.c_str(), &end, 10);
    WATS_CHECK_MSG(end == group.c_str() + x, "malformed core count");
    const double freq = std::strtod(group.c_str() + x + 1, &end);
    WATS_CHECK_MSG(end == group.c_str() + group.size(),
                   "malformed frequency");
    groups.push_back({freq, static_cast<std::size_t>(count)});
  }
  WATS_CHECK_MSG(!groups.empty(), "empty topology spec");
  return AmcTopology(spec, groups);
}

AmcTopology amc_by_name_or_spec(const std::string& name_or_spec) {
  if (name_or_spec.find('x') != std::string::npos) {
    return amc_from_string(name_or_spec);
  }
  return amc_by_name(name_or_spec);
}

}  // namespace wats::core
