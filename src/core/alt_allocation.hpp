// Alternative static allocators, for comparison with Algorithm 1.
//
// §II-C of the paper notes that when workloads are fully repeatable,
// "some other task allocating algorithms [13], [14] can provide a near
// optimal scheduling" — [14] being Hochbaum & Shmoys' dual approximation
// for uniform machines. This module implements two such baselines at the
// same granularity Algorithm 1 works at (items assigned to c-groups,
// each group modeled as one machine of rate Fi*Ni):
//
//  * LPT list scheduling: longest item to the group with the earliest
//    projected finish (classic 2 - 1/m style guarantee on uniform
//    machines at this abstraction).
//  * Dual approximation: binary search on the target makespan T, with a
//    first-fit-decreasing feasibility check packing items into per-group
//    budgets T * cap_g.
//
// Unlike Algorithm 1, neither is constrained to CONTIGUOUS prefixes of
// the sorted item list, so both can beat it on adversarial inputs;
// bench_allocation_quality quantifies by how much. WATS still uses
// Algorithm 1 (the paper's choice, and the only one cheap enough to
// re-run on every completion), with preference stealing absorbing the
// difference at runtime.
#pragma once

#include <span>
#include <vector>

#include "core/topology.hpp"

namespace wats::core {

/// Per-item group assignment (parallel to the input span).
struct AltAllocation {
  std::vector<GroupIndex> group_of_item;
  std::vector<double> group_finish;  ///< projected finish time per group
  double makespan = 0.0;
};

/// LPT list scheduling over groups-as-machines. Input need not be sorted.
AltAllocation allocate_lpt(std::span<const double> workloads,
                           const AmcTopology& topo);

/// Hochbaum–Shmoys style dual approximation: binary search on T with an
/// FFD packing oracle; `iterations` halvings of the search interval.
AltAllocation allocate_dual_approx(std::span<const double> workloads,
                                   const AmcTopology& topo,
                                   int iterations = 40);

}  // namespace wats::core
