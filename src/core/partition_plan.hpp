// The versioned output of one recluster pass.
//
// A PartitionPlan is an immutable snapshot of everything one run of a
// partitioner decided: the class->c-group assignment (as a ClusterMap),
// the predicted per-group finish times for the weights it was built from,
// how the predicted makespan compares to Lemma 1's TL, and a diff against
// the previously published plan (classes moved, weight moved). Plans are
// epoch-versioned — the epoch increments once per PUBLISHED plan — so the
// runtime helper loop, the simulator, and the obs layer can all talk
// about the same plan identity instead of "the map was rebuilt".
//
// The PlanGate decides whether a freshly built candidate is worth
// publishing at all (see DESIGN.md "PartitionPlan pipeline"): republishing
// an assignment-identical plan buys nothing, and under live history drift
// a plan that moves many classes for a marginal predicted gain thrashes
// task placement. The old always-republish behavior stays available
// behind `always_republish` for honest A/B numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cluster.hpp"
#include "core/task_class.hpp"
#include "core/topology.hpp"

namespace wats::core {

/// How a candidate plan differs from the previously published one.
struct PlanDiff {
  /// Classes whose assigned c-group changed (classes interned since the
  /// previous plan count as moved when they land outside group 0 — a
  /// reader of the OLD map resolves their out-of-range id to group 0).
  std::size_t classes_moved = 0;
  /// Total weight (n*w, F1-normalized) of the moved classes.
  double weight_moved = 0.0;
  /// True iff classes_moved == 0: every class resolves to the same
  /// c-group under both plans, so publishing would change nothing.
  bool assignment_identical = true;
  /// Predicted makespan of KEEPING the previous assignment under the
  /// candidate's (fresh) weights — what the churn gate compares the
  /// candidate's makespan against to price an actual improvement.
  double stale_makespan = 0.0;
};

/// Immutable, epoch-versioned result of one partitioner run.
struct PartitionPlan {
  /// Publication epoch: 0 for the pre-history empty plan a policy binds
  /// with, then +1 per published plan. Skipped candidates burn no epoch.
  std::uint64_t epoch = 0;
  ClusterAlgorithm algorithm = ClusterAlgorithm::kAlgorithm1;
  ClusterMap map = ClusterMap(0, 1);
  /// Predicted finish time per c-group for the planned weights.
  std::vector<double> group_finish;
  double lower_bound = 0.0;  ///< Lemma 1 TL over the planned weights.
  double makespan = 0.0;     ///< predicted max group finish.
  double ratio_to_tl = 1.0;  ///< makespan / TL (1.0 when TL == 0).
  PlanDiff diff;             ///< vs the previously published plan.
};

/// The publication gate: when is a fresh candidate worth swinging readers
/// to? Defaults are behavior-neutral: identical candidates are skipped
/// (readers could not observe the republish anyway) and the churn rule is
/// disabled (max_classes_moved unbounded).
struct PlanGate {
  /// Escape hatch: pre-refactor behavior — publish every candidate, even
  /// assignment-identical ones.
  bool always_republish = false;
  /// Churn hysteresis: a candidate moving MORE than max_classes_moved
  /// classes is only published when its predicted relative makespan
  /// improvement over keeping the current assignment (at the fresh
  /// weights) reaches min_rel_improvement. The default never triggers.
  std::size_t max_classes_moved = static_cast<std::size_t>(-1);
  double min_rel_improvement = 0.0;
};

/// One recluster pass: filter classes with history, sort by descending
/// mean workload, weight by n*w (§III-A), run `algorithm`'s partitioner,
/// and evaluate the result (finish times, TL, ratio, diff vs `previous`).
/// `previous` may be null (first plan; diff is taken against the all-
/// zeros assignment every reader falls back to). The candidate's epoch is
/// previous->epoch + 1 — the caller only keeps it on publish.
PartitionPlan build_partition_plan(const std::vector<TaskClassInfo>& classes,
                                   const AmcTopology& topo,
                                   ClusterAlgorithm algorithm,
                                   const PartitionPlan* previous);

/// Evaluate a finished assignment into a full PartitionPlan: finish
/// times, TL, makespan/ratio, and the diff vs `previous`. `weights` is
/// the per-class n*w vector indexed by class id (zero for classes with
/// no history). Shared by build_partition_plan and the incremental
/// repairer (core/repair.hpp) so both paths run the IDENTICAL
/// floating-point loops — the bit-exactness guarantee of the repair path
/// rests on this function being the single evaluator.
PartitionPlan evaluate_partition_plan(ClusterMap map,
                                      const std::vector<double>& weights,
                                      const AmcTopology& topo,
                                      ClusterAlgorithm algorithm,
                                      const PartitionPlan* previous);

/// Does `gate` allow publishing `candidate`? (Pure; the policy kernel
/// calls this under its rebuild lock.)
bool plan_gate_allows(const PlanGate& gate, const PartitionPlan& candidate);

}  // namespace wats::core
