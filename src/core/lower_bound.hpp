// Lemma 1 / Theorem 1 of the paper: the makespan lower bound for m
// independent tasks on k c-groups, and the exact-balance optimality check.
#pragma once

#include <span>
#include <vector>

#include "core/topology.hpp"

namespace wats::core {

/// Lemma 1: TL = (sum of workloads) / (sum of Fi * Ni).
///
/// Workloads are in F1-normalized units (Eq. 2), i.e. the time the task
/// would take on a core of speed 1.0 * F1; frequencies in GHz. The returned
/// bound carries the same time unit as workload / frequency.
double makespan_lower_bound(std::span<const double> workloads,
                            const AmcTopology& topo);

/// Overload for pre-summed total workload.
double makespan_lower_bound(double total_workload, const AmcTopology& topo);

/// A contiguous partition of m (sorted) tasks into k groups, expressed as
/// the paper's boundary indices: group i (0-based) receives tasks
/// [boundary[i-1], boundary[i]) with boundary[-1] defined as 0 and
/// boundary[k-1] == m.
struct ContiguousPartition {
  std::vector<std::size_t> boundaries;  // size k, last element == m

  std::size_t group_begin(GroupIndex g) const {
    return g == 0 ? 0 : boundaries[g - 1];
  }
  std::size_t group_end(GroupIndex g) const { return boundaries[g]; }
};

/// Per-group completion time of a contiguous partition: sum of group
/// workloads divided by group capacity Fi*Ni. (Theorem 1 phrases optimality
/// as all of these being equal to TL.)
std::vector<double> group_finish_times(std::span<const double> workloads,
                                       const ContiguousPartition& p,
                                       const AmcTopology& topo);

/// Makespan of a contiguous partition = max over groups of finish time.
/// This models the paper's assumption that random stealing schedules
/// near-optimally *within* a symmetric c-group.
double partition_makespan(std::span<const double> workloads,
                          const ContiguousPartition& p,
                          const AmcTopology& topo);

/// Theorem 1 check: does the partition achieve the lower bound exactly
/// (within a relative tolerance)? Returns true iff every group finish time
/// equals TL.
bool achieves_lower_bound(std::span<const double> workloads,
                          const ContiguousPartition& p,
                          const AmcTopology& topo, double rel_tol = 1e-9);

}  // namespace wats::core
