// Asymmetric multi-core (AMC) topology description.
//
// The paper models an AMC machine as k "c-groups" C1..Ck: Ni cores running
// at frequency Fi, sorted so that F1 > F2 > ... > Fk. Everything in WATS
// (the lower bound, Algorithm 1, preference lists) is phrased in terms of
// this grouping, so the topology type is the root of the core library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wats::core {

/// Index of a c-group (0-based; group 0 is the fastest).
using GroupIndex = std::size_t;

/// Index of a core within the whole machine (0-based; cores are numbered
/// group by group, fastest group first).
using CoreIndex = std::size_t;

struct CGroupSpec {
  double frequency_ghz = 0.0;  ///< Fi — the operating frequency.
  std::size_t core_count = 0;  ///< Ni — number of cores at Fi.
};

/// Immutable machine description. Construction validates and normalizes:
/// groups are sorted by descending frequency and zero-core groups dropped,
/// matching the paper's convention Fi > Fj for i < j.
class AmcTopology {
 public:
  AmcTopology(std::string name, std::vector<CGroupSpec> groups);

  const std::string& name() const { return name_; }
  std::size_t group_count() const { return groups_.size(); }
  const CGroupSpec& group(GroupIndex g) const { return groups_.at(g); }
  const std::vector<CGroupSpec>& groups() const { return groups_; }

  std::size_t total_cores() const { return total_cores_; }

  /// Sum of Fi * Ni over all groups — the machine's aggregate capacity in
  /// (normalized) work units per unit time. Denominator of Lemma 1.
  double total_capacity() const { return total_capacity_; }

  /// The fastest frequency F1, used to normalize workloads (Eq. 2).
  double fastest_frequency() const { return groups_.front().frequency_ghz; }

  /// Relative speed of group g: Fg / F1 (1.0 for the fastest group).
  double relative_speed(GroupIndex g) const;

  /// Group that owns a machine-wide core index.
  GroupIndex group_of_core(CoreIndex core) const;

  /// First machine-wide core index of a group.
  CoreIndex first_core_of_group(GroupIndex g) const;

  /// True when all cores run at one frequency (the AMC 7 case): WATS is
  /// specified to degenerate to plain parent-first stealing here.
  bool symmetric() const { return groups_.size() == 1; }

  /// Capacity Fg * Ng of a single group.
  double group_capacity(GroupIndex g) const;

  std::string describe() const;

 private:
  std::string name_;
  std::vector<CGroupSpec> groups_;
  std::vector<CoreIndex> group_start_;  // prefix sums of core counts
  std::size_t total_cores_ = 0;
  double total_capacity_ = 0.0;
};

/// The seven emulated AMC architectures of Table II (16 cores, frequencies
/// drawn from {2.5, 1.8, 1.3, 0.8} GHz).
std::vector<AmcTopology> amc_table2();

/// Look up a Table II machine by name ("AMC1".."AMC7"); aborts on unknown
/// names (harness configuration error).
AmcTopology amc_by_name(const std::string& name);

/// The quad-core example of Fig. 5 / Table I: one core at F1, two at F2,
/// one at F3.
AmcTopology amc_fig5_example();

/// Parse a custom machine from "NxF+NxF+..." (e.g. "8x2.5+8x0.8"): N
/// cores at F GHz per group. Aborts on malformed input (CLI use).
AmcTopology amc_from_string(const std::string& spec);

/// amc_by_name extended with custom specs: Table II names resolve as
/// before; anything containing 'x' parses via amc_from_string.
AmcTopology amc_by_name_or_spec(const std::string& name_or_spec);

}  // namespace wats::core
