// Process-level scheduling on AMC (§IV-E): "WATS can be easily adapted to
// process-level scheduling in AMC if the processes are independent and
// their workloads can be estimated."
//
// This module is that adaptation: independent processes with estimated
// remaining work are partitioned across the c-groups with the same
// Algorithm 1 used for task classes, and re-balanced as processes arrive,
// finish, or revise their estimates. A process here is one schedulable
// entity (the OS would pin its threads to the assigned c-group's cores).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/topology.hpp"

namespace wats::core {

using ProcessId = std::uint64_t;

struct ProcessInfo {
  ProcessId id = 0;
  double remaining_work = 0.0;  ///< F1-normalized estimate
  GroupIndex group = 0;
};

class ProcessScheduler {
 public:
  explicit ProcessScheduler(AmcTopology topo);

  /// Admit a process with an estimated workload; assigns a c-group
  /// immediately (and rebalances).
  ProcessId submit(double estimated_work);

  /// The c-group a live process is currently assigned to.
  GroupIndex group_of(ProcessId id) const;

  /// Revise a process's remaining-work estimate (rebalances).
  void update_estimate(ProcessId id, double remaining_work);

  /// Process finished; frees its share (rebalances).
  void complete(ProcessId id);

  /// Re-run Algorithm 1 over the live set. Called internally on every
  /// mutation; public for tests.
  void rebalance();

  std::size_t live_processes() const { return processes_.size(); }
  std::vector<ProcessInfo> snapshot() const;

  /// Estimated load (work / capacity) of a c-group under the current
  /// assignment — the makespan estimate if nothing else changes.
  double group_finish_estimate(GroupIndex g) const;

  /// Max over groups of group_finish_estimate.
  double makespan_estimate() const;

  const AmcTopology& topology() const { return topo_; }

 private:
  AmcTopology topo_;
  std::unordered_map<ProcessId, ProcessInfo> processes_;
  ProcessId next_id_ = 1;
};

}  // namespace wats::core
