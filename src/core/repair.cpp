#include "core/repair.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace wats::core {

namespace {

/// The maintained total order: mean descending, id ascending on ties —
/// exactly what ClusterMap::build's stable_sort over the ascending-id
/// class list yields.
struct OrderCmp {
  const std::vector<double>& means;
  bool operator()(TaskClassId a, TaskClassId b) const {
    if (means[a] != means[b]) return means[a] > means[b];
    return a < b;
  }
};

}  // namespace

IncrementalRepairPartitioner::Outcome
IncrementalRepairPartitioner::full_rebuild(const TaskClassRegistry& registry,
                                           const AmcTopology& topo,
                                           ClusterAlgorithm algorithm,
                                           const PartitionPlan* previous,
                                           bool drift_fallback) {
  const auto snap = registry.snapshot();
  Outcome out;
  out.plan = build_partition_plan(snap, topo, algorithm, previous);
  out.drift_fallback = drift_fallback;

  // Re-anchor the mirror on the snapshot the rebuild actually consumed.
  const std::size_t n = snap.size();
  completed_.assign(n, 0);
  means_.assign(n, 0.0);
  weights_.assign(n, 0.0);
  order_.clear();
  total_weight_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    completed_[i] = snap[i].completed;
    means_[i] = snap[i].mean_workload;
    if (snap[i].completed > 0) {
      weights_[i] = snap[i].total_workload();
      total_weight_ += weights_[i];
      order_.push_back(static_cast<TaskClassId>(i));
    }
  }
  std::sort(order_.begin(), order_.end(), OrderCmp{means_});
  drift_ = 0.0;
  synced_ = true;
  return out;
}

IncrementalRepairPartitioner::Outcome IncrementalRepairPartitioner::build(
    const TaskClassRegistry& registry, const AmcTopology& topo,
    ClusterAlgorithm algorithm, const PartitionPlan* previous) {
  if (!config_.enabled || algorithm != ClusterAlgorithm::kAlgorithm1) {
    // No incremental walk for this algorithm: plain full rebuild, and the
    // mirror goes stale (it resyncs on the next eligible tick).
    synced_ = false;
    Outcome out;
    out.plan =
        build_partition_plan(registry.snapshot(), topo, algorithm, previous);
    return out;
  }
  if (!synced_) {
    return full_rebuild(registry, topo, algorithm, previous,
                        /*drift_fallback=*/false);
  }

  // Pull the per-class deltas: one lock, no string copies. The visit
  // walks ids in ascending order, so changes_ comes out id-sorted.
  changes_.clear();
  registry.visit_class_stats(
      [this](TaskClassId id, std::uint64_t completed, double mean) {
        if (id >= completed_.size() || completed_[id] != completed ||
            means_[id] != mean) {
          changes_.push_back({id, completed, mean});
        }
      });

  // Apply the deltas to the mirror. Only classes whose sort key (mean) or
  // history membership moved dirty the maintained order; a pure count
  // change reweights in place.
  if (touched_.size() < completed_.size()) touched_.resize(completed_.size());
  bool order_dirty = false;
  for (const auto& ch : changes_) {
    if (ch.id >= completed_.size()) {
      const std::size_t want = static_cast<std::size_t>(ch.id) + 1;
      completed_.resize(want, 0);
      means_.resize(want, 0.0);
      weights_.resize(want, 0.0);
      touched_.resize(want, 0);
    }
    const double old_w = weights_[ch.id];
    const double new_w =
        ch.completed > 0 ? static_cast<double>(ch.completed) * ch.mean : 0.0;
    drift_ += std::abs(new_w - old_w);
    total_weight_ += new_w - old_w;
    const bool had = completed_[ch.id] > 0;
    const bool has = ch.completed > 0;
    if (had != has || (has && means_[ch.id] != ch.mean)) {
      touched_[ch.id] = 1;
      order_dirty = true;
    }
    completed_[ch.id] = ch.completed;
    means_[ch.id] = ch.mean;
    weights_[ch.id] = new_w;
  }

  // Zero total mass (fresh or just-reset history) never forces a
  // re-anchor: the plan is trivial there and the repair walk handles it
  // exactly, so comparing drift against threshold * 0 would only thrash.
  if (total_weight_ > 0.0 &&
      drift_ > config_.drift_threshold * total_weight_) {
    // Accumulated drift crossed the re-anchor bound: take the honest full
    // rebuild (still bit-identical — the threshold bounds mirror age, not
    // correctness).
    for (const auto& ch : changes_) touched_[ch.id] = 0;
    return full_rebuild(registry, topo, algorithm, previous,
                        /*drift_fallback=*/true);
  }

  if (order_dirty) {
    // Relocate only the dirty classes. (mean desc, id asc) is a STRICT
    // total order over distinct ids, so the sorted sequence of any id set
    // is unique — extract-then-reinsert lands on exactly the order a
    // stable merge (or a full stable_sort) would produce.
    moved_.clear();
    for (const auto& ch : changes_) {
      if (touched_[ch.id] && completed_[ch.id] > 0) moved_.push_back(ch.id);
    }
    const OrderCmp cmp{means_};
    std::sort(moved_.begin(), moved_.end(), cmp);
    order_.erase(std::remove_if(order_.begin(), order_.end(),
                                [this](TaskClassId id) {
                                  return touched_[id] != 0;
                                }),
                 order_.end());
    if (moved_.size() <= 16) {
      // Few movers (the common recluster tick): binary-search each one
      // back in — two memmove-speed shifts beat a comparator-driven merge
      // pass over all m classes.
      for (const TaskClassId id : moved_) {
        order_.insert(
            std::lower_bound(order_.begin(), order_.end(), id, cmp), id);
      }
    } else {
      keep_.assign(order_.begin(), order_.end());
      order_.clear();
      std::merge(keep_.begin(), keep_.end(), moved_.begin(), moved_.end(),
                 std::back_inserter(order_), cmp);
    }
  }
  for (const auto& ch : changes_) touched_[ch.id] = 0;

  // The cheap part of Algorithm 1: the O(m) boundary walk over the
  // maintained order, then the shared evaluator. Mirrors
  // ClusterMap::build's early-out (no history / single group: everything
  // stays in group 0).
  std::vector<GroupIndex> assign(completed_.size(), 0);
  if (!order_.empty() && topo.group_count() > 1) {
    sorted_weights_.clear();
    for (const TaskClassId id : order_) {
      sorted_weights_.push_back(weights_[id]);
    }
    const auto grouped = greedy_.partition(sorted_weights_, topo);
    for (std::size_t i = 0; i < order_.size(); ++i) {
      assign[order_[i]] = grouped[i];
    }
  }
  Outcome out;
  out.plan = evaluate_partition_plan(
      ClusterMap(std::move(assign), topo.group_count()), weights_, topo,
      algorithm, previous);
  out.repaired = true;
  return out;
}

}  // namespace wats::core
