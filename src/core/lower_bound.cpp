#include "core/lower_bound.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace wats::core {

double makespan_lower_bound(std::span<const double> workloads,
                            const AmcTopology& topo) {
  const double total = std::accumulate(workloads.begin(), workloads.end(), 0.0);
  return makespan_lower_bound(total, topo);
}

double makespan_lower_bound(double total_workload, const AmcTopology& topo) {
  WATS_CHECK(total_workload >= 0.0);
  // Guards TL = sum_w / sum(Fi*Ni) against a zero denominator: AmcTopology
  // drops empty c-groups at construction and requires positive
  // frequencies, so a validated topology can never reach zero here.
  WATS_CHECK_MSG(topo.total_capacity() > 0.0,
                 "TL needs positive total capacity");
  return total_workload / topo.total_capacity();
}

std::vector<double> group_finish_times(std::span<const double> workloads,
                                       const ContiguousPartition& p,
                                       const AmcTopology& topo) {
  WATS_CHECK(p.boundaries.size() == topo.group_count());
  WATS_CHECK_MSG(p.boundaries.back() == workloads.size(),
                 "partition must cover all tasks");
  std::vector<double> finish(topo.group_count(), 0.0);
  for (GroupIndex g = 0; g < topo.group_count(); ++g) {
    WATS_CHECK(p.group_begin(g) <= p.group_end(g));
    double sum = 0.0;
    for (std::size_t j = p.group_begin(g); j < p.group_end(g); ++j) {
      sum += workloads[j];
    }
    finish[g] = sum / topo.group_capacity(g);
  }
  return finish;
}

double partition_makespan(std::span<const double> workloads,
                          const ContiguousPartition& p,
                          const AmcTopology& topo) {
  const auto finish = group_finish_times(workloads, p, topo);
  return *std::max_element(finish.begin(), finish.end());
}

bool achieves_lower_bound(std::span<const double> workloads,
                          const ContiguousPartition& p,
                          const AmcTopology& topo, double rel_tol) {
  const double tl = makespan_lower_bound(workloads, topo);
  if (tl == 0.0) return true;  // no work: trivially optimal
  for (double f : group_finish_times(workloads, p, topo)) {
    if (std::abs(f - tl) > rel_tol * tl) return false;
  }
  return true;
}

}  // namespace wats::core
