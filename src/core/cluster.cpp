#include "core/cluster.hpp"

#include <algorithm>

#include "core/partitioner.hpp"
#include "util/check.hpp"

namespace wats::core {

const char* to_string(ClusterAlgorithm algorithm) {
  switch (algorithm) {
    case ClusterAlgorithm::kAlgorithm1:
      return "algorithm1";
    case ClusterAlgorithm::kDualApprox:
      return "dual_approx";
    case ClusterAlgorithm::kExactDp:
      return "exact_dp";
  }
  return "?";
}

ClusterMap::ClusterMap(std::size_t class_count, std::size_t group_count)
    : assignment_(class_count, 0), group_count_(group_count) {
  WATS_CHECK(group_count > 0);
}

ClusterMap::ClusterMap(std::vector<GroupIndex> assignment,
                       std::size_t group_count)
    : assignment_(std::move(assignment)), group_count_(group_count) {
  WATS_CHECK(group_count > 0);
}

GroupIndex ClusterMap::cluster_of(TaskClassId id) const {
  if (id == kNoTaskClass || id >= assignment_.size()) return 0;
  return assignment_[id];
}

ClusterMap ClusterMap::build(const std::vector<TaskClassInfo>& classes,
                             const AmcTopology& topo,
                             ClusterAlgorithm algorithm) {
  ClusterMap map(classes.size(), topo.group_count());

  // Only classes with history participate in the partition; the rest stay
  // in cluster 0 (the constructor's default).
  std::vector<std::size_t> with_history;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].completed > 0) with_history.push_back(i);
  }
  if (with_history.empty() || topo.group_count() == 1) return map;

  // §III-A: sort task classes in descending order of mean workload w ...
  std::stable_sort(with_history.begin(), with_history.end(),
                   [&](std::size_t a, std::size_t b) {
                     return classes[a].mean_workload >
                            classes[b].mean_workload;
                   });

  // ... then use the overall workload n*w as the weight for Algorithm 1.
  std::vector<double> weights;
  weights.reserve(with_history.size());
  for (std::size_t idx : with_history) {
    weights.push_back(classes[idx].total_workload());
  }

  // The partitioners all consume the same inputs: the w-sorted weight
  // list plus the topology. kAlgorithm1 runs the boundary walk directly
  // on the w-sorted order (what the paper specifies: split the *w-sorted
  // class list* by accumulated n*w, even though classes sorted by mean
  // workload are not necessarily sorted by total workload).
  const auto assignment =
      make_partitioner(algorithm)->partition(weights, topo);
  for (std::size_t i = 0; i < with_history.size(); ++i) {
    map.assignment_[with_history[i]] = assignment[i];
  }
  return map;
}

}  // namespace wats::core
