#include "core/cluster.hpp"

#include <algorithm>
#include <numeric>

#include "core/allocation.hpp"
#include "core/alt_allocation.hpp"
#include "util/check.hpp"

namespace wats::core {

ClusterMap::ClusterMap(std::size_t class_count, std::size_t group_count)
    : assignment_(class_count, 0), group_count_(group_count) {
  WATS_CHECK(group_count > 0);
}

GroupIndex ClusterMap::cluster_of(TaskClassId id) const {
  if (id == kNoTaskClass || id >= assignment_.size()) return 0;
  return assignment_[id];
}

ClusterMap ClusterMap::build(const std::vector<TaskClassInfo>& classes,
                             const AmcTopology& topo,
                             ClusterAlgorithm algorithm) {
  ClusterMap map(classes.size(), topo.group_count());

  // Only classes with history participate in the partition; the rest stay
  // in cluster 0 (the constructor's default).
  std::vector<std::size_t> with_history;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].completed > 0) with_history.push_back(i);
  }
  if (with_history.empty() || topo.group_count() == 1) return map;

  // §III-A: sort task classes in descending order of mean workload w ...
  std::stable_sort(with_history.begin(), with_history.end(),
                   [&](std::size_t a, std::size_t b) {
                     return classes[a].mean_workload >
                            classes[b].mean_workload;
                   });

  // ... then use the overall workload n*w as the weight for Algorithm 1.
  std::vector<double> weights;
  weights.reserve(with_history.size());
  for (std::size_t idx : with_history) {
    weights.push_back(classes[idx].total_workload());
  }

  if (algorithm == ClusterAlgorithm::kDualApprox) {
    const auto alt = allocate_dual_approx(weights, topo);
    for (std::size_t i = 0; i < with_history.size(); ++i) {
      map.assignment_[with_history[i]] = alt.group_of_item[i];
    }
    return map;
  }

  // Algorithm 1 requires weights sorted descending; classes sorted by mean
  // workload are not necessarily sorted by total workload, so we run the
  // boundary walk directly on the w-sorted order (this is what the paper
  // specifies: split the *w-sorted class list* by accumulated n*w).
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double tl = total / topo.total_capacity();

  // Boundary rounding as in core/allocation.cpp: the class at a group
  // boundary goes to whichever side keeps the group's finish time closer
  // to TL (Algorithm 1's stated objective).
  double acc = 0.0;
  GroupIndex g = 0;
  for (std::size_t i = 0; i < with_history.size(); ++i) {
    acc += weights[i];
    GroupIndex assign_to = g;
    if (g + 1 < topo.group_count()) {
      const double budget = tl * topo.group_capacity(g);
      if (acc > budget) {
        const double overshoot = acc - budget;
        const double undershoot = budget - (acc - weights[i]);
        // Same boundary rule as core/allocation.cpp: keep unless pushing
        // yields a strictly better worst finish time.
        const double keep_finish = acc / topo.group_capacity(g);
        const double push_floor = weights[i] / topo.group_capacity(g + 1);
        if (overshoot <= undershoot || push_floor > keep_finish) {
          assign_to = g;  // keep the boundary class in this group
          ++g;
          acc = 0.0;
        } else {
          ++g;
          assign_to = g;
          acc = weights[i];
        }
      }
    }
    map.assignment_[with_history[i]] = assign_to;
  }
  return map;
}

}  // namespace wats::core
