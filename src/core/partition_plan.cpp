#include "core/partition_plan.hpp"

#include <algorithm>

#include "core/lower_bound.hpp"
#include "core/partitioner.hpp"

namespace wats::core {

PartitionPlan build_partition_plan(const std::vector<TaskClassInfo>& classes,
                                   const AmcTopology& topo,
                                   ClusterAlgorithm algorithm,
                                   const PartitionPlan* previous) {
  // Evaluate the assignment over ALL classes: classes without history
  // carry zero weight (they sit in group 0 under every plan), so they
  // influence neither the finish times nor the diff.
  std::vector<double> weights(classes.size(), 0.0);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].completed > 0) weights[i] = classes[i].total_workload();
  }
  return evaluate_partition_plan(ClusterMap::build(classes, topo, algorithm),
                                 weights, topo, algorithm, previous);
}

PartitionPlan evaluate_partition_plan(ClusterMap map,
                                      const std::vector<double>& weights,
                                      const AmcTopology& topo,
                                      ClusterAlgorithm algorithm,
                                      const PartitionPlan* previous) {
  PartitionPlan plan;
  plan.epoch = previous == nullptr ? 1 : previous->epoch + 1;
  plan.algorithm = algorithm;
  plan.map = std::move(map);

  // Zero weights add exactly (x + 0.0 == x for the non-negative weights
  // here), so summing the full id-indexed vector in ascending order is
  // bit-identical to summing only the classes with history.
  double total = 0.0;
  for (const double w : weights) total += w;
  plan.group_finish =
      assignment_finish_times(weights, plan.map.assignment(), topo);
  plan.lower_bound = makespan_lower_bound(total, topo);
  plan.makespan =
      plan.group_finish.empty()
          ? 0.0
          : *std::max_element(plan.group_finish.begin(),
                              plan.group_finish.end());
  plan.ratio_to_tl =
      plan.lower_bound == 0.0 ? 1.0 : plan.makespan / plan.lower_bound;

  // Diff vs the previous plan, through the same lookup a reader uses:
  // ids beyond the old map resolve to group 0 (§III-A's unknown-class
  // rule), so a new class assigned to group 0 is NOT a move — publishing
  // would not change where its tasks go. The stale loads accumulate in
  // the same ascending-id order assignment_finish_times would use, so
  // stale_makespan stays bit-identical to materializing the stale
  // assignment and re-walking it (while saving that O(m) pass — this
  // runs on the recluster hot path at 10k classes).
  const std::vector<GroupIndex>* prev_assign =
      previous == nullptr ? nullptr : &previous->map.assignment();
  const auto& cur_assign = plan.map.assignment();
  std::vector<double> stale_load(topo.group_count(), 0.0);
  for (std::size_t id = 0; id < weights.size(); ++id) {
    const GroupIndex stale_g =
        prev_assign != nullptr && id < prev_assign->size() ? (*prev_assign)[id]
                                                           : 0;
    stale_load[stale_g] += weights[id];
    if (stale_g != cur_assign[id]) {
      ++plan.diff.classes_moved;
      plan.diff.weight_moved += weights[id];
    }
  }
  plan.diff.assignment_identical = plan.diff.classes_moved == 0;
  double stale_makespan = 0.0;
  for (GroupIndex g = 0; g < topo.group_count(); ++g) {
    stale_makespan =
        std::max(stale_makespan, stale_load[g] / topo.group_capacity(g));
  }
  plan.diff.stale_makespan = weights.empty() ? 0.0 : stale_makespan;
  return plan;
}

bool plan_gate_allows(const PlanGate& gate, const PartitionPlan& candidate) {
  if (gate.always_republish) return true;
  // An assignment-identical candidate is unobservable to readers; its
  // fresh finish-time predictions still reach the caller through the
  // ReclusterOutcome, so nothing is lost by not republishing.
  if (candidate.diff.assignment_identical) return false;
  if (candidate.diff.classes_moved > gate.max_classes_moved) {
    const double stale = candidate.diff.stale_makespan;
    const double improvement =
        stale > 0.0 ? (stale - candidate.makespan) / stale : 0.0;
    if (improvement < gate.min_rel_improvement) return false;
  }
  return true;
}

}  // namespace wats::core
