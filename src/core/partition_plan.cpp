#include "core/partition_plan.hpp"

#include <algorithm>

#include "core/lower_bound.hpp"
#include "core/partitioner.hpp"

namespace wats::core {

PartitionPlan build_partition_plan(const std::vector<TaskClassInfo>& classes,
                                   const AmcTopology& topo,
                                   ClusterAlgorithm algorithm,
                                   const PartitionPlan* previous) {
  PartitionPlan plan;
  plan.epoch = previous == nullptr ? 1 : previous->epoch + 1;
  plan.algorithm = algorithm;
  plan.map = ClusterMap::build(classes, topo, algorithm);

  // Evaluate the assignment over ALL classes: classes without history
  // carry zero weight (they sit in group 0 under every plan), so they
  // influence neither the finish times nor the diff.
  std::vector<double> weights(classes.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].completed > 0) {
      weights[i] = classes[i].total_workload();
      total += weights[i];
    }
  }
  plan.group_finish =
      assignment_finish_times(weights, plan.map.assignment(), topo);
  plan.lower_bound = makespan_lower_bound(total, topo);
  plan.makespan =
      plan.group_finish.empty()
          ? 0.0
          : *std::max_element(plan.group_finish.begin(),
                              plan.group_finish.end());
  plan.ratio_to_tl =
      plan.lower_bound == 0.0 ? 1.0 : plan.makespan / plan.lower_bound;

  // Diff vs the previous plan, through the same lookup a reader uses:
  // ids beyond the old map resolve to group 0 (§III-A's unknown-class
  // rule), so a new class assigned to group 0 is NOT a move — publishing
  // would not change where its tasks go.
  std::vector<GroupIndex> stale(classes.size(), 0);
  for (std::size_t id = 0; id < classes.size(); ++id) {
    stale[id] = previous == nullptr
                    ? 0
                    : previous->map.cluster_of(static_cast<TaskClassId>(id));
    if (stale[id] != plan.map.assignment()[id]) {
      ++plan.diff.classes_moved;
      plan.diff.weight_moved += weights[id];
    }
  }
  plan.diff.assignment_identical = plan.diff.classes_moved == 0;
  plan.diff.stale_makespan = assignment_makespan(weights, stale, topo);
  return plan;
}

bool plan_gate_allows(const PlanGate& gate, const PartitionPlan& candidate) {
  if (gate.always_republish) return true;
  // An assignment-identical candidate is unobservable to readers; its
  // fresh finish-time predictions still reach the caller through the
  // ReclusterOutcome, so nothing is lost by not republishing.
  if (candidate.diff.assignment_identical) return false;
  if (candidate.diff.classes_moved > gate.max_classes_moved) {
    const double stale = candidate.diff.stale_makespan;
    const double improvement =
        stale > 0.0 ? (stale - candidate.makespan) / stale : 0.0;
    if (improvement < gate.min_rel_improvement) return false;
  }
  return true;
}

}  // namespace wats::core
