// §IV-E extensions: CMPI-based CPU/memory-bound classification and the
// DVFS energy/performance model built on it.
//
// The paper sketches: with k cache levels, miss counts n_i and miss
// penalties p_i, the normalized miss count is M = sum(n_i * p_i / p_1) and
// CMPI = M / N for N instructions. Tasks above a CMPI threshold are
// memory-bound: they gain nothing from fast cores, so WATS can pin them to
// slow cores (or scale the core's frequency down via DVFS to save power
// with little slowdown).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wats::core {

/// Per-task cache statistics as collected from (simulated) performance
/// counters.
struct CacheStats {
  std::vector<std::uint64_t> misses;  ///< n_i per cache level, L1 first.
  std::uint64_t instructions = 0;     ///< N.
};

/// Miss penalties p_i per cache level (same length as CacheStats::misses).
struct CachePenalties {
  std::vector<double> penalty_cycles;

  /// Default three-level hierarchy loosely modelled on the paper's Opteron
  /// 8380 testbed (L1/L2/L3 miss penalties in cycles).
  static CachePenalties opteron_like();
};

/// CMPI = M / N with M = sum(n_i * p_i / p_1).
double cmpi(const CacheStats& stats, const CachePenalties& penalties);

enum class Boundedness { kCpuBound, kMemoryBound };

/// Classify a task by CMPI threshold.
Boundedness classify(const CacheStats& stats, const CachePenalties& penalties,
                     double threshold);

/// Fraction of a task's execution time that scales with core frequency.
/// A memory-bound task's stall time is frequency-invariant; this model
/// splits time into compute (scales as 1/f) and stall (constant) parts,
/// with the stall share derived from CMPI.
double frequency_scalable_fraction(double cmpi_value, double cmpi_saturation);

/// Simple DVFS energy model: dynamic power ~ C * f^3 (voltage tracks
/// frequency), static power constant. Times in seconds, frequency in GHz.
struct EnergyModel {
  double capacitance = 1.0;     ///< scales dynamic power.
  double static_power = 0.5;    ///< watts burned regardless of f.
  /// Fraction of dynamic power an IDLE core burns at its current
  /// frequency (clock tree + leakage that tracks voltage). 0 keeps the
  /// historical busy-only accounting; raising it is what makes
  /// race-to-idle governors measurably cheaper.
  double idle_factor = 0.0;

  /// Execution time of a task with base time `t_f1` (measured at f1) when
  /// run at frequency f, given the frequency-scalable fraction `s`:
  ///   t(f) = t_f1 * (s * f1 / f + (1 - s)).
  double time_at(double t_f1, double f1, double f, double scalable) const;

  /// Energy = (C * f^3 + P_static) * t(f).
  double energy_at(double t_f1, double f1, double f, double scalable) const;

  /// Frequency in `candidates` minimizing energy subject to a slowdown cap
  /// time(f) <= max_slowdown * t_f1. Returns f1 if none qualifies.
  double best_frequency(double t_f1, double f1,
                        std::span<const double> candidates, double scalable,
                        double max_slowdown) const;
};

}  // namespace wats::core
