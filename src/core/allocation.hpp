// Algorithm 1 of the paper: the static near-optimal allocation of weighted
// items (tasks, or task classes weighted by total class workload) across the
// k c-groups of an AMC machine.
#pragma once

#include <span>
#include <vector>

#include "core/lower_bound.hpp"
#include "core/topology.hpp"

namespace wats::core {

/// Run Algorithm 1 on workloads that are ALREADY sorted in descending
/// order (the paper's precondition). Returns the boundary indices
/// p1..p(k-1) plus the implicit pk = m, as a ContiguousPartition.
///
/// Faithful to the paper's pseudo-code: walk the sorted items accumulating
/// weight w; when w exceeds TL * Fj * Nj the current item is pushed into
/// the next group. Any remaining items land in the last group, and if the
/// items run out early the trailing groups are empty.
ContiguousPartition allocate_sorted(std::span<const double> sorted_workloads,
                                    const AmcTopology& topo);

/// Convenience wrapper: sorts (descending) a copy of the workloads, runs
/// Algorithm 1, and returns a per-item group assignment in the ORIGINAL
/// item order.
std::vector<GroupIndex> allocate(std::span<const double> workloads,
                                 const AmcTopology& topo);

/// Quality report for benchmarking Algorithm 1 against the bound.
struct AllocationQuality {
  double lower_bound = 0.0;   ///< TL of Lemma 1.
  double makespan = 0.0;      ///< achieved by Algorithm 1's partition.
  double ratio = 1.0;         ///< makespan / TL (>= 1; 1 == optimal).
  std::vector<double> group_finish;  ///< per-group finish times.
};

AllocationQuality evaluate_allocation(std::span<const double> sorted_workloads,
                                      const AmcTopology& topo);

}  // namespace wats::core
