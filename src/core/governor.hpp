// DVFS governor: per-c-group frequency as a dynamic, governed quantity.
//
// The paper's §IV-E sketch — the CMPI signal that drives placement can
// also drive DVFS — needs the speed model to stop being a topology
// constant. This header defines the SpeedPlan (an epoch-versioned
// per-c-group frequency vector published RCU-style, exactly like the
// PartitionPlan), the discrete per-group frequency ladders (SpeedLevels),
// the pluggable governor policies, and the SpeedView indirection every
// frequency consumer (sim engine, runtime throttle, serving capacity
// math) reads through.
//
// kStatic is the default and is BIT-INVISIBLE: it never publishes a
// plan beyond the initial one (which copies the topology's base
// frequencies, the exact same doubles), schedules no events and draws no
// randomness, so fig6-10 goldens and the serving/perf probes are
// unchanged. See DESIGN.md "DVFS governor & SpeedPlan".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/cmpi.hpp"
#include "core/topology.hpp"

namespace wats::core {

struct PartitionPlan;

/// Pluggable frequency policies.
enum class GovernorPolicy {
  /// Base frequencies forever. Publishes nothing, bit-identical to the
  /// pre-governor code. The default.
  kStatic,
  /// Busy groups at their base frequency, idle groups at their lowest
  /// level (saves idle draw when EnergyModel::idle_factor > 0).
  kRaceToIdle,
  /// Slow a c-group whose projected finish time (the PartitionPlan's
  /// per-group finish) is under the plan's predicted makespan: pick the
  /// lowest level that still finishes by makespan * (1 + pace_epsilon).
  /// The critical group never slows, so the makespan is preserved up to
  /// prediction error.
  kPaceToDeadline,
  /// Memory-bound groups clocked down via the CMPI-derived
  /// frequency-scalable fraction: EnergyModel::best_frequency under a
  /// per-task slowdown cap. Groups with no signal stay at base.
  kCmpiAware,
};

std::string to_string(GovernorPolicy policy);
/// Parses "static" / "race-to-idle" / "pace-to-deadline" / "cmpi-aware".
/// Returns false on unknown names.
bool governor_policy_from_string(const std::string& name,
                                 GovernorPolicy* out);

/// The published speed map: one frequency per c-group, versioned like a
/// PartitionPlan. Immutable after publication.
struct SpeedPlan {
  std::uint64_t epoch = 0;
  std::vector<double> group_frequency_ghz;  ///< indexed by GroupIndex
};

/// Discrete DVFS steps per c-group, ascending; the last entry is always
/// the group's base frequency (the identical double from the topology).
struct SpeedLevels {
  std::vector<std::vector<double>> per_group;

  /// dvfs_levels == 0: the machine's native frequency set truncated at
  /// each group's base (a group can clock down to any slower group's
  /// base frequency). dvfs_levels == N >= 1: N evenly spaced steps from
  /// the machine's slowest base frequency up to the group's base; for
  /// the slowest group (no slower base exists) the ladder spans
  /// [base / 2, base].
  static SpeedLevels from_topology(const AmcTopology& topo,
                                   std::size_t dvfs_levels);
};

struct GovernorConfig {
  GovernorPolicy policy = GovernorPolicy::kStatic;
  /// 0 = native frequency set; N = evenly spaced ladder (see SpeedLevels).
  std::size_t dvfs_levels = 0;
  /// kPaceToDeadline slack tolerance: groups may finish up to
  /// makespan * (1 + pace_epsilon).
  double pace_epsilon = 0.02;
  /// kCmpiAware per-task slowdown cap fed to EnergyModel::best_frequency.
  double cmpi_slowdown_cap = 1.2;
  /// Governor cadence in the virtual-time sim (the runtime ticks with
  /// its helper thread instead). Ignored when the policy is kStatic.
  double tick_period = 25.0;
  /// Model used for kCmpiAware decisions and the first-class
  /// energy_joules / edp run statistics.
  EnergyModel energy;

  bool active() const { return policy != GovernorPolicy::kStatic; }
};

/// Everything a governor decision reads. All fields are optional: a
/// missing plan or signal degrades the policy to base frequencies for
/// the affected groups (never to an invalid speed).
struct GovernorInputs {
  /// Current partition plan (kPaceToDeadline fallback); may be null.
  const PartitionPlan* plan = nullptr;
  /// Live per-group predicted finish times — e.g. backlog drained at base
  /// capacity (kPaceToDeadline). When it carries >= group_count() entries
  /// it takes precedence over `plan`'s cumulative-history predictions,
  /// which go stale behind the publication gate and are self-referential
  /// under pacing (a slowed group accrues history slower).
  std::vector<double> group_finish;
  /// Per-group: does the group currently have a task executing?
  std::vector<std::uint8_t> group_busy;
  /// Per-group work-weighted mean frequency-scalable fraction observed
  /// so far (< 0 = no signal yet). Feeds kCmpiAware.
  std::vector<double> group_scalable;
};

/// Pure policy evaluation: the per-group frequencies the config picks
/// for these inputs. Always returns group_count() entries, each drawn
/// from the group's ladder (base frequency when the policy abstains).
std::vector<double> governor_frequencies(const GovernorConfig& config,
                                         const AmcTopology& topo,
                                         const SpeedLevels& levels,
                                         const GovernorInputs& inputs);

/// Stateful governor: owns the current SpeedPlan and publishes updates
/// RCU-style (raw atomic pointer + retired list, freed at destruction —
/// the same pattern as the policy kernel's cluster-map publication, and
/// for the same reason: atomic<shared_ptr> trips TSan in this codebase).
/// Single writer (the sim event loop / the runtime helper thread),
/// many concurrent readers through current() or a SpeedView.
class Governor {
 public:
  Governor(const GovernorConfig& config, const AmcTopology& topo);
  ~Governor();
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  /// The plan readers should use. Never null; epoch 0 holds the base
  /// frequencies.
  const SpeedPlan* current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Re-evaluate the policy. Publishes epoch + 1 and returns true when
  /// the frequency map changed; identical maps are skipped WITHOUT
  /// burning an epoch (the publication gate — readers cannot observe an
  /// identical republish). kStatic never publishes.
  bool tick(const GovernorInputs& inputs);

  const GovernorConfig& config() const { return config_; }
  const SpeedLevels& levels() const { return levels_; }
  std::uint64_t ticks() const { return ticks_; }
  /// Published plans (excluding the initial base plan).
  std::uint64_t swaps() const { return swaps_; }

 private:
  GovernorConfig config_;
  const AmcTopology& topo_;
  SpeedLevels levels_;
  std::atomic<const SpeedPlan*> current_{nullptr};
  std::mutex retired_mu_;
  std::vector<std::unique_ptr<const SpeedPlan>> retired_;
  std::uint64_t ticks_ = 0;
  std::uint64_t swaps_ = 0;
};

/// The indirection every frequency consumer reads through. Wraps the
/// topology's base frequencies plus an optional governor; with no
/// governor (or a kStatic one) every accessor returns the topology's
/// own doubles, so static-speed code paths are bit-identical.
class SpeedView {
 public:
  SpeedView() = default;
  explicit SpeedView(const AmcTopology* topo, const Governor* governor = nullptr)
      : topo_(topo), governor_(governor) {}

  bool valid() const { return topo_ != nullptr; }

  /// Current operating frequency of group g.
  double frequency(GroupIndex g) const {
    if (governor_ != nullptr) {
      return governor_->current()->group_frequency_ghz[g];
    }
    return topo_->group(g).frequency_ghz;
  }

  double base_frequency(GroupIndex g) const {
    return topo_->group(g).frequency_ghz;
  }

  /// F1 of the BASE topology: workloads stay normalized to it even when
  /// the fastest group is clocked down (stall time is pinned to it).
  double fastest_base() const { return topo_->fastest_frequency(); }

  /// Current speed of group g relative to the base F1.
  double relative_speed(GroupIndex g) const {
    return frequency(g) / topo_->fastest_frequency();
  }

  /// Current capacity Ng * f_g of group g.
  double group_capacity(GroupIndex g) const {
    return static_cast<double>(topo_->group(g).core_count) * frequency(g);
  }

  /// Sum of current group capacities.
  double total_capacity() const {
    double c = 0.0;
    for (GroupIndex g = 0; g < topo_->group_count(); ++g) {
      c += group_capacity(g);
    }
    return c;
  }

  /// The governed plan, or null when speeds are static.
  const SpeedPlan* plan() const {
    return governor_ != nullptr ? governor_->current() : nullptr;
  }

 private:
  const AmcTopology* topo_ = nullptr;
  const Governor* governor_ = nullptr;
};

}  // namespace wats::core
