// Preference lists for preference-based task stealing (§III-B, Fig. 4,
// Table I).
//
// A core in c-group Ci scans task clusters in the order
//   {Ci, Ci+1, ..., Ck, Ci-1, Ci-2, ..., C1}
// — its own cluster first, then slower clusters ("rob the weaker first"),
// then faster clusters in decreasing speed distance.
#pragma once

#include <vector>

#include "core/topology.hpp"

namespace wats::core {

/// Build the preference list for a core in group `own` of a machine with
/// `group_count` c-groups (0-based group indices; group 0 is fastest).
std::vector<GroupIndex> preference_list(GroupIndex own,
                                        std::size_t group_count);

/// All k preference lists, indexed by the core's own group.
std::vector<std::vector<GroupIndex>> all_preference_lists(
    std::size_t group_count);

}  // namespace wats::core
