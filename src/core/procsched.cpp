#include "core/procsched.hpp"

#include <algorithm>

#include "core/allocation.hpp"
#include "util/check.hpp"

namespace wats::core {

ProcessScheduler::ProcessScheduler(AmcTopology topo) : topo_(std::move(topo)) {}

ProcessId ProcessScheduler::submit(double estimated_work) {
  WATS_CHECK(estimated_work > 0.0);
  const ProcessId id = next_id_++;
  processes_.emplace(id, ProcessInfo{id, estimated_work, 0});
  rebalance();
  return id;
}

GroupIndex ProcessScheduler::group_of(ProcessId id) const {
  const auto it = processes_.find(id);
  WATS_CHECK_MSG(it != processes_.end(), "unknown or completed process");
  return it->second.group;
}

void ProcessScheduler::update_estimate(ProcessId id, double remaining_work) {
  WATS_CHECK(remaining_work >= 0.0);
  const auto it = processes_.find(id);
  WATS_CHECK_MSG(it != processes_.end(), "unknown or completed process");
  it->second.remaining_work = remaining_work;
  rebalance();
}

void ProcessScheduler::complete(ProcessId id) {
  const auto erased = processes_.erase(id);
  WATS_CHECK_MSG(erased == 1, "unknown or completed process");
  rebalance();
}

void ProcessScheduler::rebalance() {
  if (processes_.empty()) return;
  // Algorithm 1 over the live processes, sorted by descending remaining
  // work — exactly the task-class partition with one "class" per process.
  std::vector<ProcessInfo*> live;
  live.reserve(processes_.size());
  for (auto& [id, p] : processes_) live.push_back(&p);
  std::sort(live.begin(), live.end(), [](const ProcessInfo* a,
                                         const ProcessInfo* b) {
    if (a->remaining_work != b->remaining_work) {
      return a->remaining_work > b->remaining_work;
    }
    return a->id < b->id;  // deterministic tie-break
  });
  std::vector<double> weights;
  weights.reserve(live.size());
  for (const auto* p : live) weights.push_back(p->remaining_work);

  const ContiguousPartition split = allocate_sorted(weights, topo_);
  for (GroupIndex g = 0; g < topo_.group_count(); ++g) {
    for (std::size_t i = split.group_begin(g); i < split.group_end(g); ++i) {
      live[i]->group = g;
    }
  }
}

std::vector<ProcessInfo> ProcessScheduler::snapshot() const {
  std::vector<ProcessInfo> out;
  out.reserve(processes_.size());
  for (const auto& [id, p] : processes_) out.push_back(p);
  std::sort(out.begin(), out.end(),
            [](const ProcessInfo& a, const ProcessInfo& b) {
              return a.id < b.id;
            });
  return out;
}

double ProcessScheduler::group_finish_estimate(GroupIndex g) const {
  double work = 0.0;
  for (const auto& [id, p] : processes_) {
    if (p.group == g) work += p.remaining_work;
  }
  return work / topo_.group_capacity(g);
}

double ProcessScheduler::makespan_estimate() const {
  double worst = 0.0;
  for (GroupIndex g = 0; g < topo_.group_count(); ++g) {
    worst = std::max(worst, group_finish_estimate(g));
  }
  return worst;
}

}  // namespace wats::core
