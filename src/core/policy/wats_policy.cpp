// The WATS family: history-based allocation + preference-based stealing.
//   - WATS:    full Algorithm 3 (cross-cluster stealing allowed)
//   - WATS-NP: stealing restricted to the core's own cluster (§IV-C)
//   - WATS-TS: WATS + workload-aware snatching (§IV-D): the victim is the
//              slower core running the LARGEST remaining task
//   - WATS-M:  WATS + memory-bound classes pinned to the slowest c-group
//
// The class->cluster assignment is published RCU-style as an immutable,
// epoch-versioned PartitionPlan: the helper thread (or the simulator's
// completion hook) builds a fresh candidate through the Partitioner
// pipeline and — when the PlanGate allows — publishes it through a plain
// atomic pointer; spawn-path readers load it without taking any lock.
// Superseded plans are retired to a list that is only freed when the
// policy is destroyed — a reader that loaded a stale pointer can keep
// using it for as long as it likes. Publishes are rare (at most once per
// helper period with new completions, fewer under the gate) and plans are
// a few words per class, so the retired list stays tiny.
//
// The gate (core/partition_plan.hpp) is what keeps live history drift
// from thrashing task placement: assignment-identical candidates are
// never republished (readers could not tell), and the optional churn
// rule suppresses plans that move many classes for a marginal predicted
// makespan gain. PolicyOptions::plan_gate.always_republish restores the
// pre-gate behavior for A/B comparisons.
#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "core/dnc_detect.hpp"
#include "core/partition_plan.hpp"
#include "core/policy/policy.hpp"
#include "core/preference.hpp"
#include "util/check.hpp"

namespace wats::core::policy {
namespace {

class WatsPolicy : public PolicyKernel {
 public:
  WatsPolicy(PolicyKind kind, TaskClassRegistry& registry, bool cross_cluster,
             bool snatching, bool memory_aware)
      : PolicyKernel(kind),
        registry_(registry),
        cross_cluster_(cross_cluster),
        snatching_(snatching),
        memory_aware_(memory_aware) {}

  void bind(const AmcTopology& topo, const PolicyOptions& options) override {
    PolicyKernel::bind(topo, options);
    k_ = topo.group_count();
    prefs_ = all_preference_lists(k_);
    repairer_ = IncrementalRepairPartitioner(options.plan_repair);
    if (registry_.total_completions() > 0) {
      // Warm start: the registry carries persisted history — publish a
      // plan from it immediately (ungated: there are no readers yet and
      // nothing to diff against but the empty epoch-0 plan) instead of
      // treating every class as unknown.
      last_completions_ = registry_.total_completions();
      PartitionPlan seed;  // epoch 0: the all-unknown empty plan
      seed.map = ClusterMap(registry_.size(), k_);
      publish(std::make_unique<const PartitionPlan>(build_partition_plan(
          registry_.snapshot(), topology(), options.cluster_algorithm,
          &seed)));
      published_.fetch_add(1, std::memory_order_relaxed);
    } else {
      auto empty = std::make_unique<PartitionPlan>();
      empty->map = ClusterMap(registry_.size(), k_);
      publish(std::move(empty));
    }
  }

  std::size_t lane_count() const override { return k_; }
  bool may_snatch() const override { return snatching_; }
  bool wants_history() const override { return true; }

  Placement place(TaskClassId cls) override {
    if (dnc_active()) {
      if (decisions_traced()) {
        note_dnc_state(true);
        emit_placement(cls, 0, obs::ReasonCode::kDncFallback);
      }
      return {Placement::Where::kLocalPool, 0};
    }
    GroupIndex cluster =
        plan_.load(std::memory_order_acquire)->map.cluster_of(cls);
    // WATS-M (§IV-E): classes OBSERVED to be memory-bound (mean scalable
    // fraction from counter history, not per-task oracle knowledge) gain
    // almost nothing from fast cores — pin them to the slowest c-group.
    bool pinned = false;
    if (memory_aware_ && k_ > 1 && registry_.has_history(cls) &&
        registry_.info(cls).mean_scalable < 0.5) {
      cluster = static_cast<GroupIndex>(k_ - 1);
      pinned = true;
    }
    if (decisions_traced()) {
      note_dnc_state(false);
      emit_placement(cls, cluster,
                     pinned ? obs::ReasonCode::kMemoryBoundPin
                            : (registry_.has_history(cls)
                                   ? obs::ReasonCode::kHistoryCluster
                                   : obs::ReasonCode::kUnknownClass));
    }
    return {Placement::Where::kLocalPool, cluster};
  }

  std::optional<AcquireDecision> acquire(MachineView& view,
                                         CoreIndex self) override {
    const AmcTopology& topo = view.topology();
    const GroupIndex own = topo.group_of_core(self);
    // §IV-E fallback: a divide-and-conquer program collapses into one
    // class, which clustering cannot spread — degrade to plain stealing
    // (scan every lane in index order; stale lanes from before the
    // fallback engaged still need draining).
    const bool plain = dnc_active();
    const bool traced = decisions_traced();
    if (traced) note_dnc_state(plain);
    // Algorithm 3: walk the preference list; per cluster, local pool first,
    // then the central (external-spawn) lane, then steal from a victim
    // whose pool for that cluster is non-empty. WATS-NP only ever looks at
    // its own cluster.
    for (std::size_t step = 0; step < k_; ++step) {
      const GroupIndex cluster =
          plain ? static_cast<GroupIndex>(step) : prefs_[own][step];
      if (!plain && !cross_cluster_ && cluster != own) continue;
      if (view.pool_size(self, cluster) > 0) {
        if (traced) {
          emit_acquire(view, self, static_cast<std::int32_t>(cluster),
                       obs::ReasonCode::kLocalPool);
        }
        return AcquireDecision{AcquireDecision::Action::kPopLocal, cluster};
      }
      if (view.central_size(cluster) > 0) {
        if (traced) {
          emit_acquire(view, self, static_cast<std::int32_t>(cluster),
                       obs::ReasonCode::kCentralTake);
        }
        return AcquireDecision{AcquireDecision::Action::kTakeCentral,
                               cluster};
      }
      const auto victim =
          pick_steal_victim(view, self, cluster, options().steal_victim);
      if (!victim.has_value()) continue;
      if (!plain && cluster < own) {
        // Robbing a cluster FASTER than our own: per the §II makespan
        // analysis this only helps when the cluster's owners are
        // backlogged — otherwise a slower core holding one of their tasks
        // past the point the owners would have reached it PROLONGS the
        // makespan. Rob only when the owners' drain time exceeds our
        // execution time for the lightest available task, and take that
        // lightest task.
        double backlog = 0.0;
        const std::size_t n = topo.total_cores();
        for (CoreIndex c = 0; c < n; ++c) {
          backlog += view.pool_queued_work(c, cluster);
        }
        // The owners also have to finish what they are running right now.
        const CoreIndex first = topo.first_core_of_group(cluster);
        for (CoreIndex c = first;
             c < first + topo.group(cluster).core_count; ++c) {
          if (view.core_busy(c)) backlog += view.running_remaining(c);
        }
        const double owner_drain = backlog / topo.group_capacity(cluster);
        const double lightest = view.pool_lightest_work(*victim, cluster);
        const double my_time = lightest / view.core_speed(self);
        if (owner_drain <= my_time) {
          if (traced) {
            emit_acquire(view, self, static_cast<std::int32_t>(cluster),
                         obs::ReasonCode::kRobFasterVetoed,
                         static_cast<std::int32_t>(*victim));
          }
          continue;
        }
        if (traced) {
          emit_acquire(view, self, static_cast<std::int32_t>(cluster),
                       obs::ReasonCode::kRobFasterAccepted,
                       static_cast<std::int32_t>(*victim));
        }
        return AcquireDecision{AcquireDecision::Action::kSteal, cluster,
                               *victim, /*take_lightest=*/true};
      }
      if (traced) {
        emit_acquire(view, self, static_cast<std::int32_t>(cluster),
                     obs::ReasonCode::kStealPreferred,
                     static_cast<std::int32_t>(*victim));
      }
      return AcquireDecision{AcquireDecision::Action::kSteal, cluster,
                             *victim};
    }
    if (traced) {
      emit_acquire(view, self, /*chosen=*/-1, obs::ReasonCode::kNoWork);
    }
    return std::nullopt;
  }

  std::optional<CoreIndex> snatch_victim(MachineView& view,
                                         CoreIndex thief) override {
    if (!snatching_) return std::nullopt;
    const auto victim = largest_remaining_busy_slower(view, thief);
    if (decisions_traced()) {
      emit_snatch_scan(thief,
                       victim.has_value()
                           ? obs::ReasonCode::kSnatchLargestRemaining
                           : obs::ReasonCode::kNoVictim,
                       victim.has_value()
                           ? static_cast<std::int32_t>(*victim)
                           : -1);
    }
    return victim;
  }

  void record_spawn_edge(TaskClassId parent, TaskClassId child) override {
    dnc_.record_spawn(parent, child);
  }

  ReclusterOutcome maybe_recluster() override {
    std::lock_guard lock(rebuild_mu_);
    ReclusterOutcome out;
    const std::uint64_t total = registry_.total_completions();
    const PartitionPlan* current = plan_.load(std::memory_order_relaxed);
    out.epoch = current->epoch;
    if (total == last_completions_) return out;
    last_completions_ = total;
    out.attempted = true;

    // The repairer produces a candidate bit-identical to a full rebuild
    // on every path (core/repair.hpp); when repair is disabled or the
    // algorithm has no incremental walk it runs the full rebuild itself.
    auto built = repairer_.build(registry_, topology(),
                                 options().cluster_algorithm, current);
    PartitionPlan candidate = std::move(built.plan);
    out.repaired = built.repaired;
    out.repair_fallback = built.drift_fallback;
    if (built.repaired) {
      repairs_.fetch_add(1, std::memory_order_relaxed);
    }
    if (built.drift_fallback) {
      repair_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
    out.classes_moved = candidate.diff.classes_moved;
    out.weight_moved = candidate.diff.weight_moved;
    out.ratio_to_tl = candidate.ratio_to_tl;

    if (!plan_gate_allows(options().plan_gate, candidate)) {
      // Readers keep the current plan; the candidate (and its epoch) is
      // dropped. Identical candidates are the common steady-state case.
      out.skip = candidate.diff.assignment_identical
                     ? ReclusterOutcome::Skip::kIdentical
                     : ReclusterOutcome::Skip::kChurn;
      if (out.skip == ReclusterOutcome::Skip::kIdentical) {
        skipped_identical_.fetch_add(1, std::memory_order_relaxed);
      } else {
        skipped_churn_.fetch_add(1, std::memory_order_relaxed);
      }
      if (decisions_traced()) {
        obs::DecisionRecord record;
        record.kind = obs::DecisionKind::kRecluster;
        record.reason = out.skip == ReclusterOutcome::Skip::kIdentical
                            ? obs::ReasonCode::kPlanIdentical
                            : obs::ReasonCode::kPlanChurnSuppressed;
        record.chosen = static_cast<std::int32_t>(std::min<std::size_t>(
            candidate.diff.classes_moved, 0x7FFFFFFF));
        emit_decision(record);
      }
      return out;
    }

    out.published = true;
    out.epoch = candidate.epoch;
    publish(std::make_unique<const PartitionPlan>(std::move(candidate)));
    published_.fetch_add(1, std::memory_order_relaxed);
    if (decisions_traced()) {
      obs::DecisionRecord record;
      record.kind = obs::DecisionKind::kRecluster;
      record.reason = obs::ReasonCode::kHistoryRefresh;
      record.chosen = static_cast<std::int32_t>(
          registry_.size() < 0x7FFFFFFF ? registry_.size() : 0x7FFFFFFF);
      emit_decision(record);
    }
    return out;
  }

  const PartitionPlan* current_plan() const override {
    return plan_.load(std::memory_order_acquire);
  }

  PlanStats plan_stats() const override {
    PlanStats stats;
    stats.published = published_.load(std::memory_order_relaxed);
    stats.skipped_identical =
        skipped_identical_.load(std::memory_order_relaxed);
    stats.skipped_churn = skipped_churn_.load(std::memory_order_relaxed);
    stats.repairs = repairs_.load(std::memory_order_relaxed);
    stats.repair_fallbacks = repair_fallbacks_.load(std::memory_order_relaxed);
    return stats;
  }

  bool dnc_active() const override {
    if (!options().dnc_fallback) return false;
    if (dnc_.observed_spawns() < options().dnc_min_spawns) return false;
    return dnc_.self_recursive_fraction() > options().dnc_threshold;
  }

  GroupIndex cluster_of(TaskClassId cls) const override {
    return plan_.load(std::memory_order_acquire)->map.cluster_of(cls);
  }

  std::vector<GroupIndex> wake_order(GroupIndex lane) const override {
    // WATS-NP never steals across clusters, so waking another group's
    // core for this lane would be a guaranteed spurious wakeup: only the
    // lane's own group can acquire the work. (Under the §IV-E fallback
    // any group scans any lane, and a group-`lane` worker still reaches
    // the task, so the restriction stays safe.)
    if (!cross_cluster_) return {lane};
    return prefs_[lane];
  }

 private:
  /// Emit a kDncFlip record on every engaged<->released transition. Only
  /// called under decisions_traced(); the exchange makes concurrent
  /// observers of the same flip emit it exactly once.
  void note_dnc_state(bool engaged) {
    const int now = engaged ? 1 : 0;
    if (dnc_state_.exchange(now, std::memory_order_relaxed) != now) {
      obs::DecisionRecord record;
      record.kind = obs::DecisionKind::kDncFlip;
      record.reason = engaged ? obs::ReasonCode::kDncEngaged
                              : obs::ReasonCode::kDncReleased;
      emit_decision(record);
    }
  }

  /// Swing readers to `next` and retire the old plan. Callers are either
  /// pre-run (bind) or hold rebuild_mu_ (maybe_recluster), so the retired
  /// list itself needs no extra lock.
  void publish(std::unique_ptr<const PartitionPlan> next) {
    plan_.store(next.get(), std::memory_order_release);
    retired_.push_back(std::move(next));
  }

  TaskClassRegistry& registry_;
  bool cross_cluster_;
  bool snatching_;
  bool memory_aware_;

  std::size_t k_ = 1;
  std::vector<std::vector<GroupIndex>> prefs_;
  std::atomic<const PartitionPlan*> plan_{nullptr};
  /// Every plan ever published, newest last; freed only on destruction so
  /// readers holding a stale pointer stay safe (see file comment).
  std::vector<std::unique_ptr<const PartitionPlan>> retired_;
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> skipped_identical_{0};
  std::atomic<std::uint64_t> skipped_churn_{0};
  std::atomic<std::uint64_t> repairs_{0};
  std::atomic<std::uint64_t> repair_fallbacks_{0};
  /// Incremental candidate builder; all access under rebuild_mu_ (bind
  /// runs pre-threads).
  IncrementalRepairPartitioner repairer_;
  DncDetector dnc_;
  std::atomic<int> dnc_state_{0};  ///< last traced DNC state (kDncFlip dedup)
  std::mutex rebuild_mu_;  // serializes rebuilds; readers never block
  std::uint64_t last_completions_ = 0;  // guarded by rebuild_mu_ after bind
};

}  // namespace

namespace detail {

std::unique_ptr<PolicyKernel> make_wats_policy(PolicyKind kind,
                                               TaskClassRegistry& registry) {
  switch (kind) {
    case PolicyKind::kWats:
      return std::make_unique<WatsPolicy>(kind, registry,
                                          /*cross_cluster=*/true,
                                          /*snatching=*/false,
                                          /*memory_aware=*/false);
    case PolicyKind::kWatsNp:
      return std::make_unique<WatsPolicy>(kind, registry,
                                          /*cross_cluster=*/false,
                                          /*snatching=*/false,
                                          /*memory_aware=*/false);
    case PolicyKind::kWatsTs:
      return std::make_unique<WatsPolicy>(kind, registry,
                                          /*cross_cluster=*/true,
                                          /*snatching=*/true,
                                          /*memory_aware=*/false);
    case PolicyKind::kWatsM:
      return std::make_unique<WatsPolicy>(kind, registry,
                                          /*cross_cluster=*/true,
                                          /*snatching=*/false,
                                          /*memory_aware=*/true);
    default:
      WATS_CHECK_MSG(false, "not a WATS-family policy kind");
      __builtin_unreachable();
  }
}

}  // namespace detail
}  // namespace wats::core::policy
