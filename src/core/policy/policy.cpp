#include "core/policy/policy.hpp"

#include <vector>

#include "core/preference.hpp"
#include "util/check.hpp"

namespace wats::core::policy {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kCilk:
      return "Cilk";
    case PolicyKind::kPft:
      return "PFT";
    case PolicyKind::kRts:
      return "RTS";
    case PolicyKind::kWats:
      return "WATS";
    case PolicyKind::kWatsNp:
      return "WATS-NP";
    case PolicyKind::kWatsTs:
      return "WATS-TS";
    case PolicyKind::kWatsM:
      return "WATS-M";
    case PolicyKind::kLptOracle:
      return "LPT-oracle";
  }
  WATS_CHECK_MSG(false, "unknown policy kind");
  __builtin_unreachable();
}

std::vector<GroupIndex> PolicyKernel::wake_order(GroupIndex lane) const {
  // Default: §III-B's preference list anchored at the lane the work landed
  // on — the lane's own group first, then slower groups, then faster ones
  // in decreasing distance. Single-lane policies (lane 0) therefore wake
  // the fastest group first, which is also the §III-A rule for work with
  // no cluster affinity.
  return preference_list(lane, topology().group_count());
}

void PolicyKernel::fill_group_load(MachineView& view,
                                   obs::DecisionRecord& record) const {
  const std::size_t n = view.topology().total_cores();
  const std::size_t lanes = lane_count() < obs::kMaxDecisionGroups
                                ? lane_count()
                                : obs::kMaxDecisionGroups;
  record.group_count = static_cast<std::uint8_t>(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    std::size_t load = view.central_size(lane);
    for (CoreIndex c = 0; c < n; ++c) {
      load += view.pool_size(c, lane);
    }
    record.group_load[lane] = static_cast<std::uint32_t>(
        load < 0xFFFFFFFFu ? load : 0xFFFFFFFFu);
  }
}

std::optional<CoreIndex> pick_steal_victim(MachineView& view, CoreIndex self,
                                           GroupIndex lane,
                                           StealVictimRule rule) {
  const std::size_t n = view.topology().total_cores();
  if (rule == StealVictimRule::kRandom) {
    std::vector<CoreIndex> candidates;
    candidates.reserve(n);
    for (CoreIndex c = 0; c < n; ++c) {
      if (c != self && view.pool_size(c, lane) > 0) candidates.push_back(c);
    }
    if (candidates.empty()) return std::nullopt;
    return candidates[view.random_below(candidates.size())];
  }
  std::optional<CoreIndex> best;
  double best_work = 0.0;
  for (CoreIndex c = 0; c < n; ++c) {
    if (c == self || view.pool_size(c, lane) == 0) continue;
    const double w = view.pool_queued_work(c, lane);
    if (!best.has_value() || w > best_work) {
      best = c;
      best_work = w;
    }
  }
  return best;
}

std::optional<CoreIndex> random_busy_slower(MachineView& view,
                                            CoreIndex thief) {
  const double my_speed = view.core_speed(thief);
  const std::size_t n = view.topology().total_cores();
  std::vector<CoreIndex> candidates;
  candidates.reserve(n);
  for (CoreIndex c = 0; c < n; ++c) {
    if (c != thief && view.core_busy(c) && view.core_speed(c) < my_speed) {
      candidates.push_back(c);
    }
  }
  if (candidates.empty()) return std::nullopt;
  return candidates[view.random_below(candidates.size())];
}

std::optional<CoreIndex> largest_remaining_busy_slower(MachineView& view,
                                                       CoreIndex thief) {
  const double my_speed = view.core_speed(thief);
  const std::size_t n = view.topology().total_cores();
  std::optional<CoreIndex> best;
  double best_remaining = 0.0;
  for (CoreIndex c = 0; c < n; ++c) {
    if (c == thief || !view.core_busy(c)) continue;
    if (view.core_speed(c) >= my_speed) continue;
    const double rem = view.running_remaining(c);
    if (rem > best_remaining) {
      best_remaining = rem;
      best = c;
    }
  }
  return best;
}

namespace detail {
std::unique_ptr<PolicyKernel> make_basic_policy(PolicyKind kind);
std::unique_ptr<PolicyKernel> make_wats_policy(PolicyKind kind,
                                               TaskClassRegistry& registry);
}  // namespace detail

std::unique_ptr<PolicyKernel> make_policy(PolicyKind kind,
                                          TaskClassRegistry& registry) {
  switch (kind) {
    case PolicyKind::kCilk:
    case PolicyKind::kPft:
    case PolicyKind::kRts:
    case PolicyKind::kLptOracle:
      return detail::make_basic_policy(kind);
    case PolicyKind::kWats:
    case PolicyKind::kWatsNp:
    case PolicyKind::kWatsTs:
    case PolicyKind::kWatsM:
      return detail::make_wats_policy(kind, registry);
  }
  WATS_CHECK_MSG(false, "unknown policy kind");
  __builtin_unreachable();
}

}  // namespace wats::core::policy
