// The backend-agnostic scheduling-decision kernel.
//
// Every evaluated policy (Cilk, PFT, RTS, the WATS family, the LPT oracle)
// is implemented ONCE here, as pure decisions over a MachineView: where a
// spawned task is placed, what an idle core should do next, which victim a
// snatch preempts, when the class->cluster map is rebuilt, and when the
// divide-and-conquer fallback (§IV-E) engages. The virtual-time simulator
// and the real-thread runtime are thin drivers that execute these
// decisions against their own mechanics (PoolSet deques vs Chase–Lev
// deques, virtual latencies vs wall clock). New policies land in this
// directory only — a policy that touches src/sim or src/runtime directly
// cannot be validated in both backends.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/partition_plan.hpp"
#include "core/repair.hpp"
#include "core/policy/view.hpp"
#include "core/task_class.hpp"
#include "core/topology.hpp"
#include "obs/decision.hpp"

namespace wats::core::policy {

enum class PolicyKind {
  kCilk,    ///< child-first spawning, random continuation stealing
  kPft,     ///< parent-first + plain random task stealing
  kRts,     ///< Cilk + random task snatching (Bender & Rabin style)
  kWats,    ///< history-based allocation + preference stealing
  kWatsNp,  ///< WATS without cross-cluster stealing (§IV-C ablation)
  kWatsTs,  ///< WATS + workload-aware snatching (§IV-D)
  /// WATS-M (§IV-E extension): classes observed to be memory-bound are
  /// pinned to the slowest c-group — fast cores cannot speed them up, so
  /// they should not occupy fast-core capacity.
  kWatsM,
  /// Omniscient LPT oracle (not in the paper): a single global pool from
  /// which every idle core takes the LONGEST remaining task, with exact
  /// workload knowledge and no steal cost. An upper baseline showing how
  /// much headroom remains above WATS's history-based approximation.
  kLptOracle,
};

std::string to_string(PolicyKind kind);

/// Steal-victim selection: uniformly random among qualifying cores (the
/// paper's policy) or the core with the most queued work ("richest").
enum class StealVictimRule { kRandom, kRichest };

/// How a backend's central queue hands out tasks.
enum class CentralOrder {
  kFifo,          ///< spawn order (Cilk's continuation-steal order)
  kLongestFirst,  ///< largest remaining work first (LPT oracle)
};

/// Backend-independent tuning knobs, bound once before the run.
struct PolicyOptions {
  StealVictimRule steal_victim = StealVictimRule::kRandom;
  ClusterAlgorithm cluster_algorithm = ClusterAlgorithm::kAlgorithm1;
  /// Publication gate for freshly built PartitionPlans (WATS family):
  /// defaults skip only assignment-identical candidates (unobservable to
  /// readers); set always_republish for the pre-refactor behavior or
  /// tighten max_classes_moved / min_rel_improvement for churn
  /// hysteresis under live history drift.
  PlanGate plan_gate;
  /// Incremental plan repair (core/repair.hpp): recluster ticks start
  /// from the previous plan's maintained class order instead of paying a
  /// snapshot + full sort. Bit-exact on every path, so the default is on;
  /// disable for honest full-rebuild latency baselines.
  PlanRepairConfig plan_repair;
  /// Automatic fallback to plain stealing for divide-and-conquer programs
  /// (§IV-E): enabled when the observed self-recursive spawn fraction
  /// exceeds dnc_threshold after dnc_min_spawns spawns.
  bool dnc_fallback = true;
  double dnc_threshold = 0.5;
  std::uint64_t dnc_min_spawns = 64;
};

/// Where a newly spawned task goes.
struct Placement {
  enum class Where {
    kLocalPool,  ///< the spawner's own pool for lane `lane`
    kCentral,    ///< the shared central queue for lane `lane`
  };
  Where where = Where::kLocalPool;
  GroupIndex lane = 0;  ///< task-cluster lane (always 0 for 1-lane policies)
};

/// What one maybe_recluster() call did. `attempted` is false when there
/// was nothing to do (no new completions since the last attempt, or the
/// policy keeps no history); `published` is true when readers were swung
/// to a new plan. A skipped attempt reports why plus the candidate's diff
/// so drivers can trace it without rebuilding anything.
struct ReclusterOutcome {
  bool attempted = false;
  bool published = false;
  enum class Skip : std::uint8_t {
    kNone,       ///< published, or nothing attempted
    kIdentical,  ///< candidate assignment-identical to the current plan
    kChurn,      ///< churn hysteresis: too many moves, too little gain
  };
  Skip skip = Skip::kNone;
  /// Epoch of the plan readers see AFTER this call (the fresh plan's on
  /// publish, the retained plan's on skip).
  std::uint64_t epoch = 0;
  std::size_t classes_moved = 0;  ///< candidate's diff vs current plan
  double weight_moved = 0.0;
  double ratio_to_tl = 0.0;  ///< candidate's predicted makespan / TL
  /// The candidate came out of the incremental repair path (bit-identical
  /// to a full rebuild; see core/repair.hpp).
  bool repaired = false;
  /// This attempt's full rebuild was forced by the repair drift bound.
  bool repair_fallback = false;
};

/// Lifetime counters for the plan pipeline (monotone; cheap to read).
struct PlanStats {
  std::uint64_t published = 0;  ///< plans readers were swung to
  std::uint64_t skipped_identical = 0;
  std::uint64_t skipped_churn = 0;
  /// Candidates built by the incremental repair path / full rebuilds the
  /// repair drift bound forced (both count attempts, not publishes).
  std::uint64_t repairs = 0;
  std::uint64_t repair_fallbacks = 0;

  std::uint64_t skipped() const { return skipped_identical + skipped_churn; }
};

/// What an idle core should do. The decision is computed against a possibly
/// stale MachineView; drivers whose queues race (the real runtime) must
/// tolerate the chosen source having drained and simply ask again.
struct AcquireDecision {
  enum class Action {
    kPopLocal,     ///< pop own pool for `lane` (LIFO / deque bottom)
    kTakeCentral,  ///< take from the central queue for `lane`
    kSteal,        ///< steal from `victim`'s pool for `lane`
  };
  Action action = Action::kPopLocal;
  GroupIndex lane = 0;
  CoreIndex victim = 0;       ///< kSteal only
  /// kSteal only: take the victim's LIGHTEST task (robbing a faster
  /// cluster, §II) instead of the oldest (FIFO).
  bool take_lightest = false;

  friend bool operator==(const AcquireDecision&,
                         const AcquireDecision&) = default;
};

class PolicyKernel {
 public:
  virtual ~PolicyKernel() = default;

  PolicyKind kind() const { return kind_; }

  /// Bind to a machine before the run. Must be called exactly once, before
  /// any other decision method.
  virtual void bind(const AmcTopology& topo, const PolicyOptions& options) {
    topo_ = &topo;
    options_ = options;
  }

  // ---- structural properties (drivers size their queues from these) ----

  /// Number of task-cluster lanes (local pools and central lanes) the
  /// backend must provide per core: k for the WATS family, 1 otherwise.
  virtual std::size_t lane_count() const { return 1; }

  /// True when spawns are placed centrally (Cilk, RTS, LPT oracle).
  virtual bool uses_central_queue() const { return false; }

  virtual CentralOrder central_order() const { return CentralOrder::kFifo; }

  /// True when taking from the central queue costs nothing even across
  /// cores (the LPT oracle pays no overheads).
  virtual bool central_is_free() const { return false; }

  /// True when the policy preempts running tasks (RTS, WATS-TS).
  virtual bool may_snatch() const { return false; }

  /// True when the policy consumes completion history (the WATS family):
  /// the driver must feed completions into the shared TaskClassRegistry.
  virtual bool wants_history() const { return false; }

  // ---- decisions ----

  /// Placement of a newly spawned task of class `cls`.
  virtual Placement place(TaskClassId cls) = 0;

  /// Next action for an idle core, or nothing when the view shows no
  /// reachable work.
  virtual std::optional<AcquireDecision> acquire(MachineView& view,
                                                 CoreIndex self) = 0;

  /// Snatch victim for an idle `thief` that found no queued work, or
  /// nothing. Only policies with may_snatch() pick one.
  virtual std::optional<CoreIndex> snatch_victim(MachineView& view,
                                                 CoreIndex thief) {
    (void)view;
    (void)thief;
    return std::nullopt;
  }

  /// Observe a spawn edge (parent class -> child class) for
  /// divide-and-conquer detection. kNoTaskClass parents are ignored.
  virtual void record_spawn_edge(TaskClassId parent, TaskClassId child) {
    (void)parent;
    (void)child;
  }

  /// Recluster trigger (Algorithm 1): build a candidate PartitionPlan iff
  /// new completions arrived since the last attempt, and publish it iff
  /// the PolicyOptions::plan_gate allows. Thread-safe; the runtime's
  /// helper thread calls this periodically while workers read the plan.
  virtual ReclusterOutcome maybe_recluster() { return {}; }

  /// The currently published plan, or null for policies without one.
  /// The pointer stays valid for the policy's lifetime (retired plans are
  /// only freed at destruction — same RCU discipline as the cluster map).
  virtual const PartitionPlan* current_plan() const { return nullptr; }

  /// Lifetime publish/skip counters for the plan pipeline.
  virtual PlanStats plan_stats() const { return {}; }

  /// True when the §IV-E divide-and-conquer fallback currently routes
  /// everything through plain random stealing.
  virtual bool dnc_active() const { return false; }

  /// Current cluster of a class (0 for policies without clustering).
  virtual GroupIndex cluster_of(TaskClassId cls) const {
    (void)cls;
    return 0;
  }

  /// Preferred order of c-groups to WAKE an idle core for new work placed
  /// on task-cluster lane `lane` — Algorithm 3's scan order seen from the
  /// waker's side: the groups whose preference list reaches `lane`
  /// earliest come first, i.e. {C_i, C_i+1, ..., C_k, C_i-1, ..., C_1}
  /// for a task on lane i. Backends with sleeping cores (the real-thread
  /// runtime's parking lot) use this to wake ONE well-chosen worker
  /// instead of all of them; keeping the hook on the kernel means wake
  /// targeting can never diverge from the steal preference the woken core
  /// will scan with. Valid after bind(). Policies that restrict stealing
  /// (WATS-NP) override this to exclude groups that could never acquire
  /// the lane's work.
  virtual std::vector<GroupIndex> wake_order(GroupIndex lane) const;

  /// Attach (or detach, with nullptr) a decision sink: every subsequent
  /// placement / acquisition / snatch / DNC-flip / recluster decision
  /// emits a structured obs::DecisionRecord. Set it before the run — the
  /// pointer itself is not synchronized against in-flight decisions. With
  /// no sink attached the decision paths pay one pointer compare; with
  /// WATS_TRACE=OFF they compile out entirely.
  void set_decision_sink(obs::DecisionSink* sink) { sink_ = sink; }

 protected:
  explicit PolicyKernel(PolicyKind kind) : kind_(kind) {}

  const AmcTopology& topology() const { return *topo_; }
  const PolicyOptions& options() const { return options_; }

  /// True when emit_decision() would deliver — lets decision sites skip
  /// building load snapshots that only the record needs.
  bool decisions_traced() const {
    if constexpr (obs::kTraceCompiledIn) {
      return sink_ != nullptr;
    } else {
      return false;
    }
  }

  /// Stamp and deliver a record (no-op without a sink / when compiled out).
  void emit_decision(obs::DecisionRecord record) const {
    if constexpr (obs::kTraceCompiledIn) {
      if (sink_ != nullptr) {
        record.tsc = obs::tsc_now();
        sink_->on_decision(record);
      }
    } else {
      (void)record;
    }
  }

  /// Queued tasks per lane (every core's pool plus the central lane) —
  /// the load snapshot attached to acquire/snatch records. Costs k*(n+1)
  /// view calls; call only under decisions_traced().
  void fill_group_load(MachineView& view, obs::DecisionRecord& record) const;

  /// Placement record for the spawn path (self = 0xFFFF).
  void emit_placement(TaskClassId cls, GroupIndex lane,
                      obs::ReasonCode reason) const {
    obs::DecisionRecord record;
    record.kind = obs::DecisionKind::kPlacement;
    record.reason = reason;
    record.cls = cls;
    record.chosen = static_cast<std::int32_t>(lane);
    emit_decision(record);
  }

  /// Acquire record with the per-lane load snapshot attached. `chosen` is
  /// the lane acted on, or -1 for a no-work scan.
  void emit_acquire(MachineView& view, CoreIndex self, std::int32_t chosen,
                    obs::ReasonCode reason, std::int32_t victim = -1) const {
    obs::DecisionRecord record;
    record.kind = obs::DecisionKind::kAcquire;
    record.reason = reason;
    record.self = static_cast<std::uint16_t>(self);
    record.chosen = chosen;
    record.victim = victim;
    fill_group_load(view, record);
    emit_decision(record);
  }

  /// Snatch-scan record (victim = -1 when the scan came up empty).
  void emit_snatch_scan(CoreIndex thief, obs::ReasonCode reason,
                        std::int32_t victim) const {
    obs::DecisionRecord record;
    record.kind = obs::DecisionKind::kSnatchScan;
    record.reason = reason;
    record.self = static_cast<std::uint16_t>(thief);
    record.victim = victim;
    emit_decision(record);
  }

 private:
  PolicyKind kind_;
  const AmcTopology* topo_ = nullptr;
  PolicyOptions options_;
  obs::DecisionSink* sink_ = nullptr;
};

/// Factory. The registry is shared with the backend and the workload
/// drivers (all sides must agree on task-class ids); only the WATS family
/// reads it, and the DRIVER owns writing completions into it (see
/// wants_history()).
std::unique_ptr<PolicyKernel> make_policy(PolicyKind kind,
                                          TaskClassRegistry& registry);

// ---- shared selection helpers (used by several policies) ----

/// Uniformly random victim among cores (excluding `self`) whose pool for
/// `lane` appears non-empty, or the richest such pool, per `rule`.
/// Candidates are enumerated in core order and the random rule draws
/// exactly once — the contract the simulator's bit-reproducibility
/// depends on.
std::optional<CoreIndex> pick_steal_victim(MachineView& view, CoreIndex self,
                                           GroupIndex lane,
                                           StealVictimRule rule);

/// Uniformly random busy core strictly slower than `thief` (RTS snatch).
std::optional<CoreIndex> random_busy_slower(MachineView& view,
                                            CoreIndex thief);

/// Busy core strictly slower than `thief` running the task with the
/// largest remaining work (WATS-TS snatch, §IV-D). First maximum wins.
std::optional<CoreIndex> largest_remaining_busy_slower(MachineView& view,
                                                       CoreIndex thief);

}  // namespace wats::core::policy
