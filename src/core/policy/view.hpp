// The backend-supplied machine view the policy kernel decides against.
//
// A scheduling policy needs to observe the machine — queue depths, who is
// busy, how fast each core is, how much work a running task has left — and
// to draw random numbers. How those observations are obtained differs
// radically between the virtual-time simulator (exact, single-threaded,
// one global seeded RNG) and the real-thread runtime (racy approximate
// reads over Chase–Lev deques, per-worker RNGs). MachineView is the
// narrow waist between the two: each backend implements it over its own
// state, and every policy in src/core/policy reads the machine only
// through it.
#pragma once

#include <cstdint>

#include "core/topology.hpp"

namespace wats::core::policy {

class MachineView {
 public:
  virtual ~MachineView() = default;

  virtual const AmcTopology& topology() const = 0;

  // ---- queue state ----

  /// Tasks queued in `core`'s local pool for `cluster`. Backends may
  /// return a racy approximation (the runtime's deque sizes); decisions
  /// that act on it must tolerate the pool having drained meanwhile.
  virtual std::size_t pool_size(CoreIndex core, GroupIndex cluster) const = 0;

  /// Total queued work in that pool. The simulator reports exact
  /// F1-normalized work; the runtime approximates with the task count
  /// (unit weights) since a deque cannot be traversed by observers.
  virtual double pool_queued_work(CoreIndex core,
                                  GroupIndex cluster) const = 0;

  /// Work of the lightest task queued in that pool. Only meaningful when
  /// pool_size() > 0 (the simulator aborts otherwise; the runtime returns
  /// its unit-weight approximation).
  virtual double pool_lightest_work(CoreIndex core,
                                    GroupIndex cluster) const = 0;

  /// Entries in the central queue lane (Cilk-style shared FIFO, or the
  /// runtime's external-spawn lane). Backends without a central lane for
  /// the policy return 0.
  virtual std::size_t central_size(GroupIndex lane) const = 0;

  // ---- running-task state ----

  virtual bool core_busy(CoreIndex core) const = 0;

  /// Current speed of a core. The simulator reports the c-group frequency;
  /// the runtime reports the worker's emulated speed scale (which RTS-style
  /// speed swaps move between workers).
  virtual double core_speed(CoreIndex core) const = 0;

  /// Remaining work of the task running on `core`. Exact in the simulator;
  /// the runtime estimates it from the class's mean workload minus the
  /// elapsed execution time (0 when the class has no history).
  virtual double running_remaining(CoreIndex core) const = 0;

  // ---- randomness ----

  /// Uniform integer in [0, bound). Every stochastic policy decision draws
  /// through this hook so the simulator stays bit-reproducible (one seeded
  /// engine) while the runtime uses the calling worker's own RNG.
  virtual std::uint64_t random_below(std::uint64_t bound) = 0;
};

}  // namespace wats::core::policy
