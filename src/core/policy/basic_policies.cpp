// The history-free policies: Cilk, PFT, RTS, and the LPT oracle.
#include <memory>

#include "core/policy/policy.hpp"
#include "util/check.hpp"

namespace wats::core::policy {
namespace {

// ---------------------------------------------------------------------
// Cilk: child-first spawning with random continuation stealing.
//
// For the flat spawn loops of the batch/pipeline drivers, child-first
// work-stealing means the spawner executes each child immediately while
// the continuation (which spawns the rest) is stolen by whichever core
// goes idle next. The net effect — tasks handed out in spawn order to
// cores in idle order, each handoff costing one steal — is modelled by a
// central FIFO; the driver remembers each task's spawner so the spawner
// itself pays no steal cost for a task it picks up directly.
// ---------------------------------------------------------------------
class CilkPolicy : public PolicyKernel {
 public:
  CilkPolicy() : PolicyKernel(PolicyKind::kCilk) {}

  bool uses_central_queue() const override { return true; }

  Placement place(TaskClassId cls) override {
    if (decisions_traced()) {
      emit_placement(cls, 0, obs::ReasonCode::kCentralSpawn);
    }
    return {Placement::Where::kCentral, 0};
  }

  std::optional<AcquireDecision> acquire(MachineView& view,
                                         CoreIndex self) override {
    if (view.central_size(0) == 0) {
      if (decisions_traced()) {
        emit_acquire(view, self, /*chosen=*/-1, obs::ReasonCode::kNoWork);
      }
      return std::nullopt;
    }
    if (decisions_traced()) {
      emit_acquire(view, self, 0, obs::ReasonCode::kCentralTake);
    }
    return AcquireDecision{AcquireDecision::Action::kTakeCentral, 0};
  }

 protected:
  explicit CilkPolicy(PolicyKind kind) : PolicyKernel(kind) {}
};

// ---------------------------------------------------------------------
// RTS (Bender & Rabin style random task snatching): Cilk spawning and
// stealing, plus: an idle faster core preempts the task of a RANDOMLY
// chosen busy slower core (thread swap, cost Delta_s).
// ---------------------------------------------------------------------
class RtsPolicy : public CilkPolicy {
 public:
  RtsPolicy() : CilkPolicy(PolicyKind::kRts) {}

  bool may_snatch() const override { return true; }

  std::optional<CoreIndex> snatch_victim(MachineView& view,
                                         CoreIndex thief) override {
    const auto victim = random_busy_slower(view, thief);
    if (decisions_traced()) {
      emit_snatch_scan(
          thief,
          victim.has_value() ? obs::ReasonCode::kSnatchRandomSlower
                             : obs::ReasonCode::kNoVictim,
          victim.has_value() ? static_cast<std::int32_t>(*victim) : -1);
    }
    return victim;
  }
};

// ---------------------------------------------------------------------
// PFT: parent-first spawning + traditional random task stealing.
// Spawned tasks pile up in the spawner's pool; idle cores pop their own
// pool LIFO, drain the central (external-spawn) lane, or steal FIFO from
// a random non-empty victim.
// ---------------------------------------------------------------------
class PftPolicy : public PolicyKernel {
 public:
  PftPolicy() : PolicyKernel(PolicyKind::kPft) {}

  Placement place(TaskClassId cls) override {
    if (decisions_traced()) {
      emit_placement(cls, 0, obs::ReasonCode::kLocalPool);
    }
    return {Placement::Where::kLocalPool, 0};
  }

  std::optional<AcquireDecision> acquire(MachineView& view,
                                         CoreIndex self) override {
    if (view.pool_size(self, 0) > 0) {
      if (decisions_traced()) {
        emit_acquire(view, self, 0, obs::ReasonCode::kLocalPool);
      }
      return AcquireDecision{AcquireDecision::Action::kPopLocal, 0};
    }
    if (view.central_size(0) > 0) {
      if (decisions_traced()) {
        emit_acquire(view, self, 0, obs::ReasonCode::kCentralTake);
      }
      return AcquireDecision{AcquireDecision::Action::kTakeCentral, 0};
    }
    const auto victim =
        pick_steal_victim(view, self, 0, options().steal_victim);
    if (!victim.has_value()) {
      if (decisions_traced()) {
        emit_acquire(view, self, /*chosen=*/-1, obs::ReasonCode::kNoWork);
      }
      return std::nullopt;
    }
    if (decisions_traced()) {
      emit_acquire(view, self, 0, obs::ReasonCode::kStealPreferred,
                   static_cast<std::int32_t>(*victim));
    }
    return AcquireDecision{AcquireDecision::Action::kSteal, 0, *victim};
  }
};

// ---------------------------------------------------------------------
// LPT oracle: global pool, longest task first, free acquisition. Not a
// realizable scheduler (it knows exact workloads and pays no overheads);
// used as the achievable-upper-bound baseline in benches and tests.
// ---------------------------------------------------------------------
class LptOraclePolicy : public PolicyKernel {
 public:
  LptOraclePolicy() : PolicyKernel(PolicyKind::kLptOracle) {}

  bool uses_central_queue() const override { return true; }
  CentralOrder central_order() const override {
    return CentralOrder::kLongestFirst;
  }
  bool central_is_free() const override { return true; }

  Placement place(TaskClassId cls) override {
    if (decisions_traced()) {
      emit_placement(cls, 0, obs::ReasonCode::kCentralSpawn);
    }
    return {Placement::Where::kCentral, 0};
  }

  std::optional<AcquireDecision> acquire(MachineView& view,
                                         CoreIndex self) override {
    if (view.central_size(0) == 0) {
      if (decisions_traced()) {
        emit_acquire(view, self, /*chosen=*/-1, obs::ReasonCode::kNoWork);
      }
      return std::nullopt;
    }
    if (decisions_traced()) {
      emit_acquire(view, self, 0, obs::ReasonCode::kCentralTake);
    }
    return AcquireDecision{AcquireDecision::Action::kTakeCentral, 0};
  }
};

}  // namespace

namespace detail {

std::unique_ptr<PolicyKernel> make_basic_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kCilk:
      return std::make_unique<CilkPolicy>();
    case PolicyKind::kPft:
      return std::make_unique<PftPolicy>();
    case PolicyKind::kRts:
      return std::make_unique<RtsPolicy>();
    case PolicyKind::kLptOracle:
      return std::make_unique<LptOraclePolicy>();
    default:
      WATS_CHECK_MSG(false, "not a basic policy kind");
      __builtin_unreachable();
  }
}

}  // namespace detail
}  // namespace wats::core::policy
