#include "core/hetsched.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace wats::core {

double effective_rate(const HetTaskClass& cls, const HetDevice& device) {
  WATS_CHECK(cls.data_parallel_fraction >= 0.0 &&
             cls.data_parallel_fraction <= 1.0);
  WATS_CHECK(device.scalar_gops > 0.0 && device.simd_gops > 0.0);
  // Amdahl split: dp of the work runs at SIMD rate, the rest at scalar
  // rate; time per unit work = dp/simd + (1-dp)/scalar.
  const double dp = cls.data_parallel_fraction;
  const double compute_rate =
      1.0 / (dp / device.simd_gops + (1.0 - dp) / device.scalar_gops);
  if (cls.bytes_per_work <= 0.0) return compute_rate;
  WATS_CHECK(device.mem_gbps > 0.0);
  const double memory_rate = device.mem_gbps / cls.bytes_per_work;
  return std::min(compute_rate, memory_rate);
}

HetAssignment schedule_heterogeneous(const std::vector<HetTaskClass>& classes,
                                     const std::vector<HetDevice>& devices) {
  WATS_CHECK(!devices.empty());
  HetAssignment out;
  out.device_of_class.assign(classes.size(), 0);
  out.device_finish.assign(devices.size(), 0.0);
  if (classes.empty()) return out;

  std::vector<std::size_t> order(classes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return classes[a].total_work > classes[b].total_work;
                   });

  for (std::size_t idx : order) {
    const HetTaskClass& cls = classes[idx];
    WATS_CHECK(cls.total_work >= 0.0);
    std::size_t best = 0;
    double best_finish = 0.0;
    for (std::size_t d = 0; d < devices.size(); ++d) {
      const double rate = effective_rate(cls, devices[d]);
      const double finish = out.device_finish[d] + cls.total_work / rate;
      if (d == 0 || finish < best_finish) {
        best = d;
        best_finish = finish;
      }
    }
    out.device_of_class[idx] = best;
    out.device_finish[best] = best_finish;
  }
  out.makespan =
      *std::max_element(out.device_finish.begin(), out.device_finish.end());
  return out;
}

std::vector<HetDevice> example_devices() {
  return {
      {"cpu-bigcore", 10.0, 40.0, 50.0},
      {"gpu", 1.0, 400.0, 500.0},
      {"dsp-stream", 2.0, 80.0, 200.0},
  };
}

}  // namespace wats::core
