// Heterogeneous-accelerator scheduling — the paper's §VI future work:
// "divide parallel tasks into task clusters according to their internal
// features and the hardware features. The task clusters will be allocated
// to the most suitable accelerators that can complete them in the
// shortest time. For example, we can schedule memory-bound tasks to cores
// with large and fast caches, but schedule data-parallel tasks to GPU or
// streaming processors."
//
// Model: every device advertises scalar throughput, SIMD/stream
// throughput and memory bandwidth; every task class carries the two
// internal features the paper names (data-parallel fraction and memory
// intensity). The effective rate of a class on a device is a
// roofline-style minimum of its compute rate (Amdahl split between scalar
// and SIMD work) and its achievable memory rate. Classes are then
// list-scheduled greedily onto the devices, heaviest first, each to the
// device minimizing its projected finish time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wats::core {

struct HetDevice {
  std::string name;
  double scalar_gops = 1.0;  ///< serial-code throughput
  double simd_gops = 1.0;    ///< data-parallel throughput
  double mem_gbps = 10.0;    ///< memory bandwidth
};

struct HetTaskClass {
  std::string name;
  double total_work = 1.0;           ///< normalized work units
  double data_parallel_fraction = 0.0;  ///< in [0, 1]
  /// Bytes of memory traffic per unit of work (memory intensity); high
  /// values make the class bandwidth-bound on weak-memory devices.
  double bytes_per_work = 0.0;
};

/// Effective execution rate (work units / time) of `cls` on `device`:
/// min(compute roofline, bandwidth roofline).
double effective_rate(const HetTaskClass& cls, const HetDevice& device);

struct HetAssignment {
  std::vector<std::size_t> device_of_class;  ///< index into devices
  std::vector<double> device_finish;         ///< projected finish per device
  double makespan = 0.0;
};

/// Greedy list scheduling on unrelated machines: classes in descending
/// total-work order, each to the device with the earliest projected
/// finish for it.
HetAssignment schedule_heterogeneous(const std::vector<HetTaskClass>& classes,
                                     const std::vector<HetDevice>& devices);

/// Reference devices for examples/tests: a big out-of-order CPU, a GPU
/// (huge SIMD + bandwidth, weak scalar), and a streaming DSP.
std::vector<HetDevice> example_devices();

}  // namespace wats::core
