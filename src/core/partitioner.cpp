#include "core/partitioner.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/allocation.hpp"
#include "core/alt_allocation.hpp"
#include "core/lower_bound.hpp"
#include "util/check.hpp"

namespace wats::core {

double assignment_makespan(std::span<const double> weights,
                           std::span<const GroupIndex> assignment,
                           const AmcTopology& topo) {
  const auto finish = assignment_finish_times(weights, assignment, topo);
  return finish.empty() ? 0.0
                        : *std::max_element(finish.begin(), finish.end());
}

std::vector<double> assignment_finish_times(
    std::span<const double> weights, std::span<const GroupIndex> assignment,
    const AmcTopology& topo) {
  WATS_CHECK(weights.size() == assignment.size());
  std::vector<double> load(topo.group_count(), 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    WATS_CHECK(assignment[i] < topo.group_count());
    load[assignment[i]] += weights[i];
  }
  for (GroupIndex g = 0; g < topo.group_count(); ++g) {
    load[g] /= topo.group_capacity(g);
  }
  return load;
}

std::vector<GroupIndex> GreedyPartitioner::partition(
    std::span<const double> weights, const AmcTopology& topo) const {
  std::vector<GroupIndex> assignment(weights.size(), 0);
  if (weights.empty() || topo.group_count() == 1) return assignment;

  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double tl = total / topo.total_capacity();

  // Algorithm 1's boundary walk over the items IN THE GIVEN ORDER, with
  // the same boundary-rounding rule as core/allocation.cpp: the class at
  // a group boundary goes to whichever side keeps the group's finish time
  // closer to TL (Algorithm 1's stated objective). This is the exact walk
  // ClusterMap::build ran inline before the partitioner refactor — the
  // fig6-10 goldens depend on it byte for byte.
  double acc = 0.0;
  GroupIndex g = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    GroupIndex assign_to = g;
    if (g + 1 < topo.group_count()) {
      const double budget = tl * topo.group_capacity(g);
      if (acc > budget) {
        const double overshoot = acc - budget;
        const double undershoot = budget - (acc - weights[i]);
        // Keep unless pushing yields a strictly better worst finish time.
        const double keep_finish = acc / topo.group_capacity(g);
        const double push_floor = weights[i] / topo.group_capacity(g + 1);
        if (overshoot <= undershoot || push_floor > keep_finish) {
          assign_to = g;  // keep the boundary item in this group
          ++g;
          acc = 0.0;
        } else {
          ++g;
          assign_to = g;
          acc = weights[i];
        }
      }
    }
    assignment[i] = assign_to;
  }
  return assignment;
}

std::vector<GroupIndex> DualApproxPartitioner::partition(
    std::span<const double> weights, const AmcTopology& topo) const {
  if (weights.empty()) return {};
  return allocate_dual_approx(weights, topo, iterations_).group_of_item;
}

std::vector<GroupIndex> ExactPartitioner::partition(
    std::span<const double> weights, const AmcTopology& topo) const {
  const std::size_t m = weights.size();
  const std::size_t k = topo.group_count();
  std::vector<GroupIndex> best(m, 0);
  if (m == 0 || k == 1) return best;

  // Seed the incumbent with every cheap heuristic we have. This is what
  // makes the oracle guarantee unconditional: even when the node budget
  // (or max_items) truncates the search, the result is the best of
  // {greedy-in-order, greedy-on-sorted, LPT, dual approximation} — never
  // worse than any of them.
  double best_makespan = std::numeric_limits<double>::infinity();
  auto consider = [&](std::vector<GroupIndex> assignment) {
    const double ms = assignment_makespan(weights, assignment, topo);
    if (ms < best_makespan) {
      best_makespan = ms;
      best = std::move(assignment);
    }
  };
  consider(GreedyPartitioner{}.partition(weights, topo));
  consider(allocate_lpt(weights, topo).group_of_item);
  consider(allocate_dual_approx(weights, topo).group_of_item);

  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return weights[a] > weights[b];
  });
  {
    // Algorithm 1 proper (descending order) — can beat the in-order walk
    // when the caller's order is not weight-sorted.
    std::vector<double> sorted(m);
    for (std::size_t i = 0; i < m; ++i) sorted[i] = weights[order[i]];
    const ContiguousPartition p = allocate_sorted(sorted, topo);
    std::vector<GroupIndex> assignment(m, 0);
    for (GroupIndex g = 0; g < k; ++g) {
      for (std::size_t i = p.group_begin(g); i < p.group_end(g); ++i) {
        assignment[order[i]] = g;
      }
    }
    consider(std::move(assignment));
  }
  if (m > max_items_) return best;

  // Branch and bound over per-item group choices, items in descending
  // weight order (big decisions first = early pruning). A branch is cut
  // when its partial makespan already reaches the incumbent; groups that
  // are indistinguishable (same capacity, same current load) are tried
  // only once per level.
  std::vector<double> w_desc(m);
  for (std::size_t i = 0; i < m; ++i) w_desc[i] = weights[order[i]];
  std::vector<double> caps(k);
  for (GroupIndex g = 0; g < k; ++g) caps[g] = topo.group_capacity(g);

  std::vector<double> loads(k, 0.0);
  std::vector<GroupIndex> current(m, 0);
  std::uint64_t nodes = 0;

  auto dfs = [&](auto&& self, std::size_t i, double partial_makespan) -> void {
    if (nodes >= node_budget_) return;
    ++nodes;
    if (i == m) {
      // partial_makespan is now the full makespan; strictly-better only,
      // so ties keep the deterministic seed assignment.
      best_makespan = partial_makespan;
      for (std::size_t j = 0; j < m; ++j) best[order[j]] = current[j];
      return;
    }
    for (GroupIndex g = 0; g < k; ++g) {
      bool symmetric_dup = false;
      for (GroupIndex h = 0; h < g; ++h) {
        if (caps[h] == caps[g] && loads[h] == loads[g]) {
          symmetric_dup = true;
          break;
        }
      }
      if (symmetric_dup) continue;
      loads[g] += w_desc[i];
      const double child =
          std::max(partial_makespan, loads[g] / caps[g]);
      if (child < best_makespan) {
        current[i] = g;
        self(self, i + 1, child);
      }
      loads[g] -= w_desc[i];
    }
  };
  dfs(dfs, 0, 0.0);
  return best;
}

std::unique_ptr<Partitioner> make_partitioner(ClusterAlgorithm algorithm) {
  switch (algorithm) {
    case ClusterAlgorithm::kAlgorithm1:
      return std::make_unique<GreedyPartitioner>();
    case ClusterAlgorithm::kDualApprox:
      return std::make_unique<DualApproxPartitioner>();
    case ClusterAlgorithm::kExactDp:
      return std::make_unique<ExactPartitioner>();
  }
  WATS_CHECK_MSG(false, "unknown ClusterAlgorithm");
  __builtin_unreachable();
}

}  // namespace wats::core
