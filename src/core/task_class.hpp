// Task classes and the history statistics of §III-A.
//
// The paper's modified cilk2c tags every task frame with its function name;
// completed tasks are folded into a task class TC(f, n, w) holding the task
// count n and running-average normalized workload w (Algorithm 2, Eq. 2).
// Here "function name" is an explicit TaskClassId that callers obtain once
// via intern(); the registry is shared by the simulator and the real-thread
// runtime.
//
// Two update paths feed the table:
//
//  * record_completion() — the serial path: one mutex per completion,
//    Algorithm 2's incremental mean verbatim. The single-threaded
//    simulator uses it (bit-reproducible figures depend on the exact
//    fold order), and the real runtime keeps it reachable behind
//    RuntimeConfig::locked_history for honest before/after benchmarks.
//  * HistoryShard + apply_history_delta() — the sharded path: each worker
//    accumulates per-class deltas into a private cache-line-aligned shard
//    with wait-free relaxed stores, and a single folder (the runtime's
//    helper thread) drains every shard into the table at each recluster
//    tick. The combine is ORDER-INSENSITIVE: counts and fixed-point
//    integer sums add exactly (commutative + associative), min/max are
//    idempotent lattice joins, and the mean is derived from the exact sum
//    — so folding any partition of a completion stream in any order
//    yields the identical table (tests/history_merge_test.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/topology.hpp"

namespace wats::core {

using TaskClassId = std::uint32_t;

/// Sentinel: task has no class (treated as never-seen; scheduled to the
/// fastest c-group per §III-A).
inline constexpr TaskClassId kNoTaskClass = 0xFFFFFFFFu;

/// Fixed-point scale of the exact workload accumulators: 2^20 units per
/// F1-normalized microsecond (≈1 ps resolution). Integer sums at this
/// scale are what make the shard merge order-insensitive — floating-point
/// addition is not associative, 128-bit integer addition is.
inline constexpr double kHistoryFixedScale = 1048576.0;

/// Quantize a non-negative sample to fixed point (saturating; a single
/// sample near 2^64 / 2^20 µs ≈ 500 000 years is out of scope).
std::uint64_t quantize_history(double value);

/// Exact 128-bit unsigned accumulator (two 64-bit words; no __int128 so
/// -Wpedantic stays clean). Addition never rounds, so any association /
/// commutation of the same deltas produces the same bits — the foundation
/// of the merge-equivalence guarantee.
struct FixedSum {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  void add(std::uint64_t v) {
    lo += v;
    hi += (lo < v) ? 1u : 0u;
  }
  void add(const FixedSum& other) {
    const std::uint64_t other_lo = other.lo;  // copy first: self-add safe
    const std::uint64_t other_hi = other.hi;
    lo += other_lo;
    hi += ((lo < other_lo) ? 1u : 0u) + other_hi;
  }
  /// this += a * b (full 64x64 -> 128 product).
  void add_product(std::uint64_t a, std::uint64_t b);

  /// Deterministic double conversion (hi * 2^64 + lo, rounded once per
  /// word). Equal (lo, hi) pairs convert to equal doubles everywhere.
  double to_double() const;

  friend bool operator==(const FixedSum&, const FixedSum&) = default;
};

/// Snapshot of one task class: TC(f, n, w) from the paper, extended with
/// the class's observed frequency-scalable fraction (§IV-E: derived from
/// CMPI performance-counter readings in a real system) and the observed
/// workload extremes (collected by the history shards; min is +inf until
/// the first completion).
struct TaskClassInfo {
  TaskClassId id = kNoTaskClass;
  std::string name;           ///< f  — the function name.
  std::uint64_t completed = 0;  ///< n  — tasks of this class completed.
  double mean_workload = 0.0;   ///< w  — mean F1-normalized workload.
  double mean_scalable = 1.0;   ///< observed frequency-scalable fraction.
  /// Smallest / largest observed F1-normalized workload sample. Exact
  /// (never rounded) and order-insensitive by construction.
  double min_workload = std::numeric_limits<double>::infinity();
  double max_workload = 0.0;

  /// The weight Algorithm 1 uses when partitioning classes: n * w.
  double total_workload() const {
    return static_cast<double>(completed) * mean_workload;
  }
};

/// Eq. 2: workload of a task that took `cycles` on a core of frequency
/// `core_freq`, normalized against the fastest frequency `fastest_freq`.
double normalized_workload(double cycles, double core_freq,
                           double fastest_freq);

/// How the per-class workload estimate folds in new completions.
enum class WorkloadEstimator {
  /// Algorithm 2's running mean (the paper's choice): every completion
  /// weighs equally, so long histories adapt slowly to phase changes.
  kRunningMean,
  /// Exponentially weighted moving average: w <- (1-a)*w + a*sample.
  /// Adapts within ~1/a completions of a phase change (§III-A's "timely
  /// update" goal taken further); an extension, off by default. The EWMA
  /// fold is inherently order-sensitive, so it is only reachable through
  /// the serial record_completion path — sharded folding requires
  /// kRunningMean.
  kEwma,
};

/// Change-point detection on the per-class completion stream (ROADMAP
/// item 5): the paper's running mean never forgets, so when a class's
/// workload drifts mid-run (a new execution phase) the stale mean keeps
/// mis-placing the class until enough new samples dilute it — O(history)
/// completions. A two-sided CUSUM on the normalized deviation of each
/// completion from a reference mean detects the drift in O(threshold /
/// shift) samples instead; on detection the class's history is DECAYED to
/// a few synthetic samples at the post-change mean estimate (via the same
/// exact-FixedSum rebuild as restore(), so later shard folds and merges
/// keep combining exactly) and the reference re-arms. WATS's next
/// recluster then re-places the class from fresh data.
///
/// Detection runs wherever history lands: per sample on the serial
/// record_completion path (the simulator), and per folded delta on
/// apply_history_delta (the runtime's helper thread, right next to the
/// existing shard fold). Disabled by default — a disabled detector is
/// bit-invisible.
struct ChangePointConfig {
  bool enabled = false;
  /// CUSUM slack k per sample, in units of the reference mean: deviations
  /// below this fraction are absorbed as noise (covers the within-class
  /// cv of the Table III models).
  double slack = 0.5;
  /// Detection threshold h, in accumulated reference-mean units. With a
  /// step of size s x ref the detection lag is ~ threshold / (s - 1 -
  /// slack) samples.
  double threshold = 6.0;
  /// Completions before the reference mean arms (too-early references
  /// are noise).
  std::uint64_t min_samples = 8;
  /// History kept after a reset: the class restarts as `decay_to`
  /// synthetic samples at the post-change mean estimate (0 = forget
  /// entirely; the class then re-enters as never-seen -> fastest group).
  std::uint64_t decay_to = 4;
};

/// One history reset performed by the change-point detector (drained by
/// the runtime's helper thread for the kHistoryReset ring event, and by
/// tests).
struct HistoryReset {
  TaskClassId id = kNoTaskClass;
  double stale_mean = 0.0;  ///< mean the detector rejected
  double fresh_mean = 0.0;  ///< post-change estimate history decayed to
  std::uint64_t at_completions = 0;  ///< registry-wide completion count
};

class TaskClassRegistry;

/// Per-worker completion-history shard: the wait-free side of the sharded
/// path. Exactly ONE owner thread calls record(); exactly one folder at a
/// time calls fold_into() (the runtime serializes folders behind a mutex).
/// Owner and folder never block each other:
///
///  * record() is plain relaxed loads/stores into a per-class slot —
///    no RMW, no lock, no fence. The only slow path is growing the slot
///    array the first time the shard sees a class id beyond its capacity
///    (an owner-local RCU swing; superseded arrays are retired until
///    destruction so a folder holding a stale pointer stays safe).
///  * fold_into() computes per-field deltas against a folder-owned cursor
///    (last-folded values). Counts and sums are monotone u64 accumulators
///    read with relaxed loads; unsigned wraparound subtraction makes the
///    delta exact provided fewer than 2^64 fixed-point units (~200 days
///    of per-class cpu time) accumulate between folds. Fields are not
///    read atomically as a group — a fold may catch the count of a
///    completion whose sum lands next fold — but every unit is folded
///    exactly once, so totals are exact at quiescence (the TSan stress
///    test pins this down).
class alignas(64) HistoryShard {
 public:
  HistoryShard() = default;
  ~HistoryShard() = default;
  HistoryShard(const HistoryShard&) = delete;
  HistoryShard& operator=(const HistoryShard&) = delete;

  /// Owner-only: fold one completed task of class `id` into the shard.
  /// `workload` is the F1-normalized workload (Eq. 2), `scalable` the
  /// observed frequency-scalable fraction. Wait-free after the shard has
  /// seen the class id range (growth allocates).
  void record(TaskClassId id, double workload, double scalable = 1.0);

  /// Folder-owned per-shard memory of the last fold (what has already
  /// been pushed into the table). One cursor per (folder, shard) pair.
  struct FoldCursor {
    std::vector<std::uint64_t> count;
    std::vector<std::uint64_t> sum_w;
    std::vector<std::uint64_t> sum_s;
    std::vector<double> min_w;
    std::vector<double> max_w;
  };

  struct FoldStats {
    std::uint64_t completions = 0;         ///< completions folded this pass
    std::uint64_t classes_discovered = 0;  ///< table history went 0 -> >0
  };

  /// Fold everything recorded since `cursor`'s last visit into `table`
  /// via TaskClassRegistry::apply_history_delta. Safe to call while the
  /// owner keeps recording; callers must serialize concurrent folders of
  /// the SAME shard+cursor themselves.
  FoldStats fold_into(TaskClassRegistry& table, FoldCursor& cursor) const;

  /// Racy total of recorded completions (tests/diagnostics).
  std::uint64_t recorded_approx() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_w{0};  ///< fixed-point; wraps mod 2^64
    std::atomic<std::uint64_t> sum_s{0};  ///< fixed-point; wraps mod 2^64
    std::atomic<double> min_w{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_w{0.0};
  };
  struct SlotArray {
    explicit SlotArray(std::size_t n)
        : capacity(n), slots(std::make_unique<Slot[]>(n)) {}
    std::size_t capacity;
    std::unique_ptr<Slot[]> slots;
  };

  /// Owner-only growth: allocate a larger array, copy the accumulated
  /// values, publish, retire the old array (freed at destruction only).
  SlotArray* grow(TaskClassId id);

  std::atomic<SlotArray*> arr_{nullptr};
  std::vector<std::unique_ptr<SlotArray>> retired_;  ///< owner-only
};

/// Thread-safe registry of task classes.
class TaskClassRegistry {
 public:
  TaskClassRegistry() = default;
  explicit TaskClassRegistry(WorkloadEstimator estimator,
                             double ewma_alpha = 0.2);

  /// Intern a class name; returns a stable dense id. Idempotent. Lookups
  /// take only a striped lock keyed by the name hash; true discovery (an
  /// unseen name) additionally takes the table lock to allocate the next
  /// dense id — the "striped-lock slow path" that keeps ids stable
  /// without serializing repeat interns behind one global mutex.
  TaskClassId intern(std::string_view name);

  /// Look up an interned name without creating it.
  std::optional<TaskClassId> find(std::string_view name) const;

  /// Algorithm 2 (serial path): fold one completed task into its class.
  /// `workload` must already be normalized (Eq. 2 / normalized_workload()).
  /// `scalable` is the task's observed frequency-scalable fraction
  /// (1.0 = CPU-bound; a real system derives it from CMPI counters,
  /// §IV-E). One mutex acquisition per call — the contention the sharded
  /// path exists to remove.
  void record_completion(TaskClassId id, double workload,
                         double scalable = 1.0);

  /// Sharded path: apply one class's accumulated delta (from a
  /// HistoryShard fold or a warm-start merge). dcount completions whose
  /// fixed-point workload/scalable sums are dsum_w/dsum_s; min_w/max_w
  /// are the source's observed extremes (folded as lattice joins, so
  /// re-applying the same extremes is a no-op). The mean is re-derived
  /// from the exact sums, which is what makes any fold order produce
  /// identical bits. Requires the kRunningMean estimator. Returns true
  /// when the class had no history before (a "discovery").
  bool apply_history_delta(TaskClassId id, std::uint64_t dcount,
                           FixedSum dsum_w, FixedSum dsum_s, double min_w,
                           double max_w);

  /// Warm-start merge: combine persisted statistics (n completions of
  /// mean workload w) through the SAME order-insensitive combine as shard
  /// folding — the persisted run is treated as n samples of value w, its
  /// mean standing in for the unrecorded extremes. Merging before, after
  /// or between live shard folds yields the identical table; it never
  /// overwrites (use restore() for that) and never double-weights a class
  /// that also appears in live history.
  void merge_history(TaskClassId id, std::uint64_t completed,
                     double mean_workload, double mean_scalable = 1.0);

  /// Number of classes interned so far.
  std::size_t size() const;

  /// Total completions recorded across all classes.
  std::uint64_t total_completions() const;

  /// Has this class completed at least one task (i.e. does history know its
  /// workload)?
  bool has_history(TaskClassId id) const;

  /// Copy out the per-class statistics.
  std::vector<TaskClassInfo> snapshot() const;

  /// Delta export for the incremental plan repairer: calls
  /// fn(id, completed, mean_workload) for every interned class, under one
  /// lock acquisition — a consistent cut of the scheduling-relevant stats
  /// without the per-class string copies snapshot() pays. The scan walks
  /// a compact structure-of-arrays mirror (16 bytes per class instead of
  /// a whole TaskClassInfo), which is what keeps a 10k-class visit in the
  /// tens of microseconds. The caller diffs against its own mirror of the
  /// table to recover exactly the classes whose weight moved since its
  /// last visit (covers every mutation path: record_completion, shard
  /// folds, warm-start merges, restore, change-point decays,
  /// reset_history). The callback must not re-enter the registry.
  template <typename F>
  void visit_class_stats(F&& fn) const {
    std::lock_guard lock(mu_);
    const std::size_t n = stats_completed_.size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(static_cast<TaskClassId>(i), stats_completed_[i], stats_mean_[i]);
    }
  }

  TaskClassInfo info(TaskClassId id) const;

  /// Overwrite a class's statistics (history persistence / warm starts).
  /// Counts as completions for change-detection purposes. The exact
  /// accumulators are reset to n samples of the given mean so later
  /// merges/folds combine consistently.
  void restore(TaskClassId id, std::uint64_t completed, double mean_workload);

  /// Drop all history but keep interned names/ids (used by phase-change
  /// tests and by callers that want a cold-start).
  void reset_history();

  // ---- change-point detection (see ChangePointConfig) ----

  /// Install the detector configuration. Call before the run; flipping
  /// `enabled` mid-run is safe (detector state is per-class and lazily
  /// armed) but resets nothing retroactively.
  void configure_change_point(const ChangePointConfig& config);

  const ChangePointConfig& change_point_config() const { return cp_config_; }

  /// Total history resets the detector performed so far.
  std::uint64_t history_resets() const;

  /// Remove and return the resets recorded since the last drain (the
  /// runtime's helper thread turns these into kHistoryReset ring events).
  std::vector<HistoryReset> drain_history_resets();

 private:
  static constexpr std::size_t kInternStripes = 8;
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, TaskClassId> by_name;
  };
  static std::size_t stripe_of(std::string_view name) {
    return std::hash<std::string_view>{}(name) % kInternStripes;
  }

  /// Exact per-class accumulators backing the order-insensitive combine.
  struct ExactStats {
    FixedSum sum_w;
    FixedSum sum_s;
  };

  /// Re-derive the means from the exact sums (callers hold mu_).
  void derive_means_locked(TaskClassId id);

  /// Refresh class `id`'s slots in the SoA stats mirror after a mutation
  /// (callers hold mu_). Every public mutator ends with this.
  void sync_stats_locked(TaskClassId id) {
    stats_completed_[id] = classes_[id].completed;
    stats_mean_[id] = classes_[id].mean_workload;
  }

  /// Per-class CUSUM accumulators (allocated lazily alongside classes_).
  struct CusumState {
    bool armed = false;
    double ref_mean = 0.0;  ///< mean the deviations are measured against
    double pos = 0.0;       ///< upward CUSUM, in reference-mean units
    double neg = 0.0;       ///< downward CUSUM
    /// Post-deviation window: samples folded since the CUSUM last left
    /// zero — the post-change mean estimate at detection time.
    double recent_sum = 0.0;
    std::uint64_t recent_count = 0;
  };

  /// Feed `count` completions of mean `mean` into class `id`'s detector;
  /// fires the decay/reset when a CUSUM crosses the threshold. Callers
  /// hold mu_.
  void observe_change_point_locked(TaskClassId id, double mean,
                                   std::uint64_t count);

  /// The decay itself: rebuild the class as cp_config_.decay_to synthetic
  /// samples at `fresh_mean` (exact-FixedSum rebuild, like restore()) and
  /// re-arm the detector. Callers hold mu_.
  void reset_class_locked(TaskClassId id, double fresh_mean);

  mutable std::mutex mu_;  ///< guards classes_/exact_/total_completions_
  WorkloadEstimator estimator_ = WorkloadEstimator::kRunningMean;
  double ewma_alpha_ = 0.2;
  std::array<Stripe, kInternStripes> stripes_;
  std::vector<TaskClassInfo> classes_;
  std::vector<ExactStats> exact_;
  /// SoA mirror of (classes_[i].completed, classes_[i].mean_workload),
  /// kept in lockstep by sync_stats_locked so visit_class_stats scans
  /// two dense arrays instead of the string-bearing AoS table.
  std::vector<std::uint64_t> stats_completed_;
  std::vector<double> stats_mean_;
  std::uint64_t total_completions_ = 0;

  ChangePointConfig cp_config_;  ///< guarded by mu_
  std::vector<CusumState> cusum_;  ///< lazily sized to classes_ (mu_)
  std::uint64_t history_resets_ = 0;  ///< guarded by mu_
  std::vector<HistoryReset> pending_resets_;  ///< guarded by mu_
};

}  // namespace wats::core
