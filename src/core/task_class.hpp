// Task classes and the history statistics of §III-A.
//
// The paper's modified cilk2c tags every task frame with its function name;
// completed tasks are folded into a task class TC(f, n, w) holding the task
// count n and running-average normalized workload w (Algorithm 2, Eq. 2).
// Here "function name" is an explicit TaskClassId that callers obtain once
// via intern(); the registry is shared by the simulator and the real-thread
// runtime, so updates are mutex-protected (they happen at task completion,
// which is far off the spawn/steal fast path).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/topology.hpp"

namespace wats::core {

using TaskClassId = std::uint32_t;

/// Sentinel: task has no class (treated as never-seen; scheduled to the
/// fastest c-group per §III-A).
inline constexpr TaskClassId kNoTaskClass = 0xFFFFFFFFu;

/// Snapshot of one task class: TC(f, n, w) from the paper, extended with
/// the class's observed frequency-scalable fraction (§IV-E: derived from
/// CMPI performance-counter readings in a real system).
struct TaskClassInfo {
  TaskClassId id = kNoTaskClass;
  std::string name;           ///< f  — the function name.
  std::uint64_t completed = 0;  ///< n  — tasks of this class completed.
  double mean_workload = 0.0;   ///< w  — mean F1-normalized workload.
  double mean_scalable = 1.0;   ///< observed frequency-scalable fraction.

  /// The weight Algorithm 1 uses when partitioning classes: n * w.
  double total_workload() const {
    return static_cast<double>(completed) * mean_workload;
  }
};

/// Eq. 2: workload of a task that took `cycles` on a core of frequency
/// `core_freq`, normalized against the fastest frequency `fastest_freq`.
double normalized_workload(double cycles, double core_freq,
                           double fastest_freq);

/// How the per-class workload estimate folds in new completions.
enum class WorkloadEstimator {
  /// Algorithm 2's running mean (the paper's choice): every completion
  /// weighs equally, so long histories adapt slowly to phase changes.
  kRunningMean,
  /// Exponentially weighted moving average: w <- (1-a)*w + a*sample.
  /// Adapts within ~1/a completions of a phase change (§III-A's "timely
  /// update" goal taken further); an extension, off by default.
  kEwma,
};

/// Thread-safe registry of task classes.
class TaskClassRegistry {
 public:
  TaskClassRegistry() = default;
  explicit TaskClassRegistry(WorkloadEstimator estimator,
                             double ewma_alpha = 0.2);

  /// Intern a class name; returns a stable dense id. Idempotent.
  TaskClassId intern(std::string_view name);

  /// Look up an interned name without creating it.
  std::optional<TaskClassId> find(std::string_view name) const;

  /// Algorithm 2: fold one completed task into its class. `workload` must
  /// already be normalized (Eq. 2 / normalized_workload()). `scalable` is
  /// the task's observed frequency-scalable fraction (1.0 = CPU-bound;
  /// a real system derives it from CMPI counters, §IV-E).
  void record_completion(TaskClassId id, double workload,
                         double scalable = 1.0);

  /// Number of classes interned so far.
  std::size_t size() const;

  /// Total completions recorded across all classes.
  std::uint64_t total_completions() const;

  /// Has this class completed at least one task (i.e. does history know its
  /// workload)?
  bool has_history(TaskClassId id) const;

  /// Copy out the per-class statistics.
  std::vector<TaskClassInfo> snapshot() const;

  TaskClassInfo info(TaskClassId id) const;

  /// Overwrite a class's statistics (history persistence / warm starts).
  /// Counts as completions for change-detection purposes.
  void restore(TaskClassId id, std::uint64_t completed, double mean_workload);

  /// Drop all history but keep interned names/ids (used by phase-change
  /// tests and by callers that want a cold-start).
  void reset_history();

 private:
  mutable std::mutex mu_;
  WorkloadEstimator estimator_ = WorkloadEstimator::kRunningMean;
  double ewma_alpha_ = 0.2;
  std::unordered_map<std::string, TaskClassId> by_name_;
  std::vector<TaskClassInfo> classes_;
  std::uint64_t total_completions_ = 0;
};

}  // namespace wats::core
