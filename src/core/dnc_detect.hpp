// Divide-and-conquer detection (§IV-E limitation).
//
// WATS degrades when almost all tasks share one class (e.g. recursive
// divide-and-conquer like nqueens): a few classes cannot be spread across
// k c-groups. The paper detects this *at compile time* by checking whether
// any function spawns tasks of its own class. Our runtime equivalent
// observes spawn edges (parent class -> child class) and flags classes that
// spawn themselves; schedulers consult this to fall back to plain random
// stealing.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "core/task_class.hpp"

namespace wats::core {

class DncDetector {
 public:
  /// Record that a task of class `parent` spawned a task of class `child`.
  /// kNoTaskClass parents (the root) are ignored.
  void record_spawn(TaskClassId parent, TaskClassId child);

  /// True if this class has been seen spawning tasks of its own class.
  bool is_self_recursive(TaskClassId cls) const;

  /// Program-level verdict used by the scheduler fallback: the fraction of
  /// observed spawns that were self-recursive. Above ~0.5 the program is
  /// dominated by divide-and-conquer recursion.
  double self_recursive_fraction() const;

  std::uint64_t observed_spawns() const;

 private:
  mutable std::mutex mu_;
  std::unordered_set<TaskClassId> self_recursive_;
  std::uint64_t spawns_ = 0;
  std::uint64_t self_spawns_ = 0;
};

}  // namespace wats::core
