#include "core/alt_allocation.hpp"

#include <algorithm>
#include <numeric>

#include "core/lower_bound.hpp"
#include "util/check.hpp"

namespace wats::core {

namespace {

std::vector<std::size_t> descending_order(std::span<const double> w) {
  std::vector<std::size_t> order(w.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return w[a] > w[b]; });
  return order;
}

void finalize(AltAllocation& out, const AmcTopology& topo) {
  out.makespan = 0.0;
  for (GroupIndex g = 0; g < topo.group_count(); ++g) {
    out.makespan = std::max(out.makespan, out.group_finish[g]);
  }
}

}  // namespace

AltAllocation allocate_lpt(std::span<const double> workloads,
                           const AmcTopology& topo) {
  AltAllocation out;
  out.group_of_item.assign(workloads.size(), 0);
  out.group_finish.assign(topo.group_count(), 0.0);

  for (std::size_t idx : descending_order(workloads)) {
    WATS_CHECK(workloads[idx] >= 0.0);
    GroupIndex best = 0;
    double best_finish = 0.0;
    for (GroupIndex g = 0; g < topo.group_count(); ++g) {
      const double finish =
          out.group_finish[g] + workloads[idx] / topo.group_capacity(g);
      if (g == 0 || finish < best_finish) {
        best = g;
        best_finish = finish;
      }
    }
    out.group_of_item[idx] = best;
    out.group_finish[best] = best_finish;
  }
  finalize(out, topo);
  return out;
}

AltAllocation allocate_dual_approx(std::span<const double> workloads,
                                   const AmcTopology& topo, int iterations) {
  // Feasibility oracle: FFD into budgets T * cap_g (fastest group first,
  // i.e. largest budget first). Returns the assignment when it fits.
  auto try_pack = [&](double t,
                      std::vector<GroupIndex>* assignment) -> bool {
    std::vector<double> used(topo.group_count(), 0.0);
    for (std::size_t idx : descending_order(workloads)) {
      bool placed = false;
      for (GroupIndex g = 0; g < topo.group_count(); ++g) {
        if (used[g] + workloads[idx] <= t * topo.group_capacity(g)) {
          used[g] += workloads[idx];
          if (assignment != nullptr) (*assignment)[idx] = g;
          placed = true;
          break;
        }
      }
      if (!placed) return false;
    }
    return true;
  };

  // Search interval: [TL, makespan of LPT] — LPT is always feasible.
  const AltAllocation lpt = allocate_lpt(workloads, topo);
  double lo = makespan_lower_bound(workloads, topo);
  double hi = std::max(lpt.makespan, lo);

  AltAllocation out;
  out.group_of_item.assign(workloads.size(), 0);
  std::vector<GroupIndex> best = lpt.group_of_item;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    std::vector<GroupIndex> candidate(workloads.size(), 0);
    if (try_pack(mid, &candidate)) {
      best = std::move(candidate);
      hi = mid;
    } else {
      lo = mid;
    }
  }

  out.group_of_item = std::move(best);
  out.group_finish.assign(topo.group_count(), 0.0);
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    out.group_finish[out.group_of_item[i]] +=
        workloads[i] / topo.group_capacity(out.group_of_item[i]);
  }
  finalize(out, topo);
  return out;
}

}  // namespace wats::core
