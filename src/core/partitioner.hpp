// Pluggable static partitioners: one interface over every algorithm that
// splits weighted items (task classes weighted by n*w) across the k
// c-groups of an AMC machine.
//
// The recluster pipeline (core/partition_plan.hpp) builds PartitionPlans
// through this interface, so the paper's Algorithm 1 greedy walk, the
// Hochbaum–Shmoys dual approximation, and the exact branch-and-bound
// oracle are interchangeable: same inputs (item weights in w-sorted class
// order + topology), same output (a per-item group assignment). The exact
// partitioner exists primarily as a QUALITY ORACLE — tests and
// bench_allocation_quality measure how far greedy/dual-approx sit from
// the optimum — but it is cheap enough to run online for small class
// counts (see ExactPartitioner::max_items).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/topology.hpp"

namespace wats::core {

/// A static allocator of weighted items to c-groups. Implementations are
/// stateless w.r.t. the items (safe to reuse across reclusters) and must
/// be deterministic: identical inputs yield identical assignments (the
/// fig6-10 bit-reproducibility and the plan-diff hysteresis both depend
/// on this).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Assign each item to a group. `weights` follows the caller's item
  /// order (the recluster pipeline passes classes sorted by descending
  /// mean workload, per §III-A — NOT necessarily by descending weight).
  /// Returns one GroupIndex per item, each < topo.group_count().
  virtual std::vector<GroupIndex> partition(std::span<const double> weights,
                                            const AmcTopology& topo) const = 0;

  /// Stable identifier for traces / bench output.
  virtual std::string name() const = 0;
};

/// The paper's Algorithm 1: greedy contiguous split of the item list
/// against per-group budgets TL * Fi * Ni, with the boundary-rounding
/// refinement documented in DESIGN.md (the overflow item stays in the
/// current group when that leaves the finish time closer to TL). Walks
/// the items IN THE GIVEN ORDER — this is byte-for-byte the walk
/// ClusterMap::build has always run on the w-sorted class list.
class GreedyPartitioner final : public Partitioner {
 public:
  std::vector<GroupIndex> partition(std::span<const double> weights,
                                    const AmcTopology& topo) const override;
  std::string name() const override { return "greedy"; }
};

/// Hochbaum–Shmoys style dual approximation (§II-C's cited alternative
/// [14]): binary search on the target makespan with an FFD packing
/// oracle. Non-contiguous; wraps core/alt_allocation.cpp.
class DualApproxPartitioner final : public Partitioner {
 public:
  explicit DualApproxPartitioner(int iterations = 40)
      : iterations_(iterations) {}

  std::vector<GroupIndex> partition(std::span<const double> weights,
                                    const AmcTopology& topo) const override;
  std::string name() const override { return "dual_approx"; }

 private:
  int iterations_;
};

/// Exact optimal partitioner: branch-and-bound over per-item group
/// choices, minimizing the makespan max_g(load_g / cap_g). The incumbent
/// is seeded with the best of {greedy on the descending-sorted items,
/// LPT, dual approximation}, so the result is NEVER worse than any of
/// those even when the node budget truncates the search — the invariant
/// the quality-oracle property tests rely on.
///
/// Feasible at the paper's scale (m <= ~20 classes, k <= 4 groups explore
/// in well under a millisecond); above `max_items` the search is skipped
/// entirely and the best seed is returned, so the partitioner stays safe
/// to leave enabled online.
class ExactPartitioner final : public Partitioner {
 public:
  explicit ExactPartitioner(std::size_t max_items = 24,
                            std::uint64_t node_budget = 4'000'000)
      : max_items_(max_items), node_budget_(node_budget) {}

  std::vector<GroupIndex> partition(std::span<const double> weights,
                                    const AmcTopology& topo) const override;
  std::string name() const override { return "exact"; }

  std::size_t max_items() const { return max_items_; }

 private:
  std::size_t max_items_;
  std::uint64_t node_budget_;
};

/// Makespan of an assignment: max over groups of (assigned weight /
/// group capacity). Shared by the partitioners and the plan builder.
double assignment_makespan(std::span<const double> weights,
                           std::span<const GroupIndex> assignment,
                           const AmcTopology& topo);

/// Per-group predicted finish times of an assignment (size group_count).
std::vector<double> assignment_finish_times(
    std::span<const double> weights, std::span<const GroupIndex> assignment,
    const AmcTopology& topo);

/// The partitioner a ClusterAlgorithm names (used by ClusterMap::build
/// and the plan pipeline so both stay in lockstep).
std::unique_ptr<Partitioner> make_partitioner(ClusterAlgorithm algorithm);

}  // namespace wats::core
