#include "core/history_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace wats::core {

std::string serialize_history(const TaskClassRegistry& registry) {
  std::ostringstream out;
  out.precision(17);
  for (const auto& cls : registry.snapshot()) {
    if (cls.completed == 0) continue;
    WATS_CHECK_MSG(cls.name.find('\t') == std::string::npos &&
                       cls.name.find('\n') == std::string::npos,
                   "class names must not contain tabs or newlines");
    out << cls.name << '\t' << cls.completed << '\t' << cls.mean_workload
        << '\n';
  }
  return out.str();
}

std::size_t load_history(TaskClassRegistry& registry, std::string_view text) {
  std::size_t loaded = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    const std::size_t t1 = line.find('\t');
    WATS_CHECK_MSG(t1 != std::string_view::npos, "malformed history line");
    const std::size_t t2 = line.find('\t', t1 + 1);
    WATS_CHECK_MSG(t2 != std::string_view::npos, "malformed history line");

    const std::string_view name = line.substr(0, t1);
    const std::string_view n_str = line.substr(t1 + 1, t2 - t1 - 1);
    const std::string_view w_str = line.substr(t2 + 1);

    std::uint64_t n = 0;
    const auto [p1, e1] =
        std::from_chars(n_str.data(), n_str.data() + n_str.size(), n);
    WATS_CHECK_MSG(e1 == std::errc() && p1 == n_str.data() + n_str.size(),
                   "malformed completion count");
    double w = 0.0;
    const auto [p2, e2] =
        std::from_chars(w_str.data(), w_str.data() + w_str.size(), w);
    WATS_CHECK_MSG(e2 == std::errc() && p2 == w_str.data() + w_str.size(),
                   "malformed workload value");

    const TaskClassId id = registry.intern(name);
    registry.restore(id, n, w);
    ++loaded;
  }
  return loaded;
}

void save_history_file(const TaskClassRegistry& registry,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  WATS_CHECK_MSG(out.good(), "cannot open history file for writing");
  out << serialize_history(registry);
  WATS_CHECK_MSG(out.good(), "history file write failed");
}

std::size_t load_history_file(TaskClassRegistry& registry,
                              const std::string& path) {
  std::ifstream in(path);
  WATS_CHECK_MSG(in.good(), "cannot open history file for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_history(registry, buffer.str());
}

}  // namespace wats::core
