#include "core/task_class.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace wats::core {

double normalized_workload(double cycles, double core_freq,
                           double fastest_freq) {
  WATS_CHECK(cycles >= 0.0);
  WATS_CHECK(core_freq > 0.0 && fastest_freq > 0.0);
  return cycles * (core_freq / fastest_freq);
}

std::uint64_t quantize_history(double value) {
  WATS_CHECK(value >= 0.0);
  const double scaled = value * kHistoryFixedScale + 0.5;
  // 2^64 as a double is exactly representable; anything at or above it
  // saturates (a single saturating sample would need ~500k years of cpu).
  constexpr double kLimit = 18446744073709551616.0;
  if (scaled >= kLimit) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(scaled);
}

void FixedSum::add_product(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t a_lo = a & 0xFFFFFFFFull;
  const std::uint64_t a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xFFFFFFFFull;
  const std::uint64_t b_hi = b >> 32;
  FixedSum p;
  p.lo = a_lo * b_lo;
  p.hi = a_hi * b_hi;
  for (const std::uint64_t mid : {a_lo * b_hi, a_hi * b_lo}) {
    const std::uint64_t m_lo = mid << 32;
    p.lo += m_lo;
    p.hi += ((p.lo < m_lo) ? 1u : 0u) + (mid >> 32);
  }
  add(p);
}

double FixedSum::to_double() const {
  return std::ldexp(static_cast<double>(hi), 64) + static_cast<double>(lo);
}

// ---------------------------------------------------------------------------
// HistoryShard
// ---------------------------------------------------------------------------

void HistoryShard::record(TaskClassId id, double workload, double scalable) {
  WATS_CHECK(workload >= 0.0);
  WATS_CHECK(scalable >= 0.0 && scalable <= 1.0);
  SlotArray* arr = arr_.load(std::memory_order_relaxed);
  if (arr == nullptr || id >= arr->capacity) arr = grow(id);
  Slot& s = arr->slots[id];
  // Single-writer accumulation: plain relaxed load+store, no RMW. Sums go
  // first and the count last so a folder that observes the count bump is
  // likely (not guaranteed — everything is relaxed) to see the sums too;
  // either way each unit is folded exactly once (wraparound deltas).
  s.sum_w.store(s.sum_w.load(std::memory_order_relaxed) +
                    quantize_history(workload),
                std::memory_order_relaxed);
  s.sum_s.store(s.sum_s.load(std::memory_order_relaxed) +
                    quantize_history(scalable),
                std::memory_order_relaxed);
  if (workload < s.min_w.load(std::memory_order_relaxed))
    s.min_w.store(workload, std::memory_order_relaxed);
  if (workload > s.max_w.load(std::memory_order_relaxed))
    s.max_w.store(workload, std::memory_order_relaxed);
  s.count.store(s.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
}

HistoryShard::SlotArray* HistoryShard::grow(TaskClassId id) {
  SlotArray* old = arr_.load(std::memory_order_relaxed);
  const std::size_t want = static_cast<std::size_t>(id) + 1;
  std::size_t new_cap = (old == nullptr) ? 16 : old->capacity;
  while (new_cap < want) new_cap *= 2;
  auto fresh = std::make_unique<SlotArray>(new_cap);
  if (old != nullptr) {
    for (std::size_t i = 0; i < old->capacity; ++i) {
      const Slot& src = old->slots[i];
      Slot& dst = fresh->slots[i];
      dst.count.store(src.count.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      dst.sum_w.store(src.sum_w.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      dst.sum_s.store(src.sum_s.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      dst.min_w.store(src.min_w.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      dst.max_w.store(src.max_w.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
  }
  SlotArray* raw = fresh.get();
  // retired_ owns every array ever published (including the current one);
  // a folder still holding the superseded pointer reads valid — merely
  // stale — values, and the cursor is keyed by slot id, not by array, so
  // nothing is double-folded after the swing.
  retired_.push_back(std::move(fresh));
  arr_.store(raw, std::memory_order_release);
  return raw;
}

HistoryShard::FoldStats HistoryShard::fold_into(TaskClassRegistry& table,
                                                FoldCursor& cursor) const {
  FoldStats stats;
  const SlotArray* arr = arr_.load(std::memory_order_acquire);
  if (arr == nullptr) return stats;
  const std::size_t n = arr->capacity;
  if (cursor.count.size() < n) {
    cursor.count.resize(n, 0);
    cursor.sum_w.resize(n, 0);
    cursor.sum_s.resize(n, 0);
    cursor.min_w.resize(n, std::numeric_limits<double>::infinity());
    cursor.max_w.resize(n, 0.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& s = arr->slots[i];
    const std::uint64_t cur_count = s.count.load(std::memory_order_relaxed);
    // Untouched slot (counts are monotone): nothing to fold, and skipping
    // avoids touching three more cache lines per empty slot.
    if (cur_count == 0 && cursor.count[i] == 0) continue;
    const std::uint64_t cur_sum_w = s.sum_w.load(std::memory_order_relaxed);
    const std::uint64_t cur_sum_s = s.sum_s.load(std::memory_order_relaxed);
    const double cur_min = s.min_w.load(std::memory_order_relaxed);
    const double cur_max = s.max_w.load(std::memory_order_relaxed);
    // Exact while < 2^64 fixed-point units accumulate between folds
    // (unsigned wraparound subtraction).
    const std::uint64_t dcount = cur_count - cursor.count[i];
    const std::uint64_t dw = cur_sum_w - cursor.sum_w[i];
    const std::uint64_t ds = cur_sum_s - cursor.sum_s[i];
    const bool extremes_moved =
        cur_min < cursor.min_w[i] || cur_max > cursor.max_w[i];
    if (dcount == 0 && dw == 0 && ds == 0 && !extremes_moved) continue;
    FixedSum fdw;
    fdw.lo = dw;
    FixedSum fds;
    fds.lo = ds;
    const bool discovered = table.apply_history_delta(
        static_cast<TaskClassId>(i), dcount, fdw, fds, cur_min, cur_max);
    stats.completions += dcount;
    if (discovered) ++stats.classes_discovered;
    cursor.count[i] = cur_count;
    cursor.sum_w[i] = cur_sum_w;
    cursor.sum_s[i] = cur_sum_s;
    cursor.min_w[i] = cur_min;
    cursor.max_w[i] = cur_max;
  }
  return stats;
}

std::uint64_t HistoryShard::recorded_approx() const {
  const SlotArray* arr = arr_.load(std::memory_order_acquire);
  if (arr == nullptr) return 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < arr->capacity; ++i)
    total += arr->slots[i].count.load(std::memory_order_relaxed);
  return total;
}

// ---------------------------------------------------------------------------
// TaskClassRegistry
// ---------------------------------------------------------------------------

TaskClassRegistry::TaskClassRegistry(WorkloadEstimator estimator,
                                     double ewma_alpha)
    : estimator_(estimator), ewma_alpha_(ewma_alpha) {
  WATS_CHECK(ewma_alpha > 0.0 && ewma_alpha <= 1.0);
}

TaskClassId TaskClassRegistry::intern(std::string_view name) {
  auto& stripe = stripes_[stripe_of(name)];
  std::string key(name);
  std::lock_guard stripe_lock(stripe.mu);
  auto it = stripe.by_name.find(key);
  if (it != stripe.by_name.end()) return it->second;
  // Discovery slow path: allocate the next dense id under the table lock
  // (stripe -> table lock order, never the reverse). Repeat interns of a
  // known name stay on their stripe and never contend on mu_.
  TaskClassId id;
  {
    std::lock_guard table_lock(mu_);
    id = static_cast<TaskClassId>(classes_.size());
    WATS_CHECK_MSG(id != kNoTaskClass, "task class id space exhausted");
    TaskClassInfo info;
    info.id = id;
    info.name = key;
    classes_.push_back(std::move(info));
    exact_.emplace_back();
    stats_completed_.push_back(0);
    stats_mean_.push_back(0.0);
  }
  stripe.by_name.emplace(std::move(key), id);
  return id;
}

std::optional<TaskClassId> TaskClassRegistry::find(
    std::string_view name) const {
  auto& stripe = stripes_[stripe_of(name)];
  std::lock_guard lock(stripe.mu);
  auto it = stripe.by_name.find(std::string(name));
  if (it == stripe.by_name.end()) return std::nullopt;
  return it->second;
}

void TaskClassRegistry::record_completion(TaskClassId id, double workload,
                                          double scalable) {
  WATS_CHECK(workload >= 0.0);
  WATS_CHECK(scalable >= 0.0 && scalable <= 1.0);
  std::lock_guard lock(mu_);
  WATS_CHECK(id < classes_.size());
  auto& c = classes_[id];
  if (estimator_ == WorkloadEstimator::kRunningMean || c.completed == 0) {
    // Algorithm 2: w <- (n*w + w_gamma) / (n+1), n <- n+1. Kept verbatim —
    // the simulator's bit-reproducible figures depend on this exact fold
    // order, so the serial path does NOT derive its mean from the exact
    // sums (the sharded path does; the two agree to rounding error).
    const auto n = static_cast<double>(c.completed);
    c.mean_workload = (n * c.mean_workload + workload) / (n + 1.0);
    c.mean_scalable = (n * c.mean_scalable + scalable) / (n + 1.0);
  } else {
    c.mean_workload =
        (1.0 - ewma_alpha_) * c.mean_workload + ewma_alpha_ * workload;
    c.mean_scalable =
        (1.0 - ewma_alpha_) * c.mean_scalable + ewma_alpha_ * scalable;
  }
  ++c.completed;
  ++total_completions_;
  auto& e = exact_[id];
  e.sum_w.add(quantize_history(workload));
  e.sum_s.add(quantize_history(scalable));
  c.min_workload = std::min(c.min_workload, workload);
  c.max_workload = std::max(c.max_workload, workload);
  if (cp_config_.enabled) observe_change_point_locked(id, workload, 1);
  sync_stats_locked(id);
}

bool TaskClassRegistry::apply_history_delta(TaskClassId id,
                                            std::uint64_t dcount,
                                            FixedSum dsum_w, FixedSum dsum_s,
                                            double min_w, double max_w) {
  std::lock_guard lock(mu_);
  WATS_CHECK_MSG(estimator_ == WorkloadEstimator::kRunningMean,
                 "sharded history folding requires the running-mean "
                 "estimator (EWMA folds are order-sensitive)");
  WATS_CHECK(id < classes_.size());
  auto& c = classes_[id];
  const bool discovered = c.completed == 0 && dcount > 0;
  auto& e = exact_[id];
  e.sum_w.add(dsum_w);
  e.sum_s.add(dsum_s);
  c.completed += dcount;
  total_completions_ += dcount;
  if (min_w < c.min_workload) c.min_workload = min_w;
  if (max_w > c.max_workload) c.max_workload = max_w;
  // A fold can catch a completion's sum before its count (or vice versa —
  // the shard fields are read non-atomically as a group), so re-derive on
  // any change; at quiescence both have landed and the means are exact.
  const bool changed =
      dcount > 0 || dsum_w != FixedSum{} || dsum_s != FixedSum{};
  if (changed && c.completed > 0) derive_means_locked(id);
  if (cp_config_.enabled && dcount > 0) {
    // The folded delta stands in for dcount samples at the delta mean —
    // the detector sees the same total deviation mass as the serial path,
    // just coarser (per fold instead of per completion).
    const double delta_mean =
        dsum_w.to_double() / (static_cast<double>(dcount) *
                              kHistoryFixedScale);
    observe_change_point_locked(id, delta_mean, dcount);
  }
  sync_stats_locked(id);
  return discovered;
}

void TaskClassRegistry::merge_history(TaskClassId id, std::uint64_t completed,
                                      double mean_workload,
                                      double mean_scalable) {
  WATS_CHECK(mean_workload >= 0.0);
  WATS_CHECK(mean_scalable >= 0.0 && mean_scalable <= 1.0);
  if (completed == 0) return;
  // Treat the persisted run as `completed` samples of the persisted mean:
  // an exact integer product folded through the same combine as a shard
  // delta, so the merge lands identically wherever it sits in the fold
  // order. The mean stands in for the unrecorded extremes.
  FixedSum dw;
  dw.add_product(quantize_history(mean_workload), completed);
  FixedSum ds;
  ds.add_product(quantize_history(mean_scalable), completed);
  apply_history_delta(id, completed, dw, ds, mean_workload, mean_workload);
}

void TaskClassRegistry::derive_means_locked(TaskClassId id) {
  auto& c = classes_[id];
  const auto& e = exact_[id];
  const double denom = static_cast<double>(c.completed) * kHistoryFixedScale;
  c.mean_workload = e.sum_w.to_double() / denom;
  c.mean_scalable = e.sum_s.to_double() / denom;
}

std::size_t TaskClassRegistry::size() const {
  std::lock_guard lock(mu_);
  return classes_.size();
}

std::uint64_t TaskClassRegistry::total_completions() const {
  std::lock_guard lock(mu_);
  return total_completions_;
}

bool TaskClassRegistry::has_history(TaskClassId id) const {
  if (id == kNoTaskClass) return false;
  std::lock_guard lock(mu_);
  return id < classes_.size() && classes_[id].completed > 0;
}

std::vector<TaskClassInfo> TaskClassRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  return classes_;
}

TaskClassInfo TaskClassRegistry::info(TaskClassId id) const {
  std::lock_guard lock(mu_);
  WATS_CHECK(id < classes_.size());
  return classes_[id];
}

void TaskClassRegistry::restore(TaskClassId id, std::uint64_t completed,
                                double mean_workload) {
  WATS_CHECK(mean_workload >= 0.0);
  std::lock_guard lock(mu_);
  WATS_CHECK(id < classes_.size());
  auto& c = classes_[id];
  // Keep total_completions_ consistent (it drives recluster triggers).
  total_completions_ -= c.completed;
  c.completed = completed;
  c.mean_workload = mean_workload;
  total_completions_ += completed;
  // Rebuild the exact accumulators to `completed` samples of the restored
  // mean so later merges/folds combine consistently with the overwrite.
  auto& e = exact_[id];
  e.sum_w = FixedSum{};
  e.sum_s = FixedSum{};
  if (completed > 0) {
    e.sum_w.add_product(quantize_history(mean_workload), completed);
    e.sum_s.add_product(quantize_history(c.mean_scalable), completed);
    c.min_workload = mean_workload;
    c.max_workload = mean_workload;
  } else {
    c.min_workload = std::numeric_limits<double>::infinity();
    c.max_workload = 0.0;
  }
  sync_stats_locked(id);
}

void TaskClassRegistry::reset_history() {
  std::lock_guard lock(mu_);
  for (auto& c : classes_) {
    c.completed = 0;
    c.mean_workload = 0.0;
    c.min_workload = std::numeric_limits<double>::infinity();
    c.max_workload = 0.0;
  }
  for (auto& e : exact_) e = ExactStats{};
  for (auto& s : cusum_) s = CusumState{};
  stats_completed_.assign(classes_.size(), 0);
  stats_mean_.assign(classes_.size(), 0.0);
  total_completions_ = 0;
}

void TaskClassRegistry::configure_change_point(
    const ChangePointConfig& config) {
  WATS_CHECK(config.slack >= 0.0);
  WATS_CHECK(config.threshold > 0.0);
  std::lock_guard lock(mu_);
  cp_config_ = config;
}

std::uint64_t TaskClassRegistry::history_resets() const {
  std::lock_guard lock(mu_);
  return history_resets_;
}

std::vector<HistoryReset> TaskClassRegistry::drain_history_resets() {
  std::lock_guard lock(mu_);
  return std::exchange(pending_resets_, {});
}

void TaskClassRegistry::observe_change_point_locked(TaskClassId id,
                                                    double mean,
                                                    std::uint64_t count) {
  if (cusum_.size() < classes_.size()) cusum_.resize(classes_.size());
  auto& s = cusum_[id];
  const auto& c = classes_[id];
  if (!s.armed) {
    // Arm once the class has a stable-enough mean. The reference is the
    // CURRENT mean (which includes the arming samples): deviations are
    // measured against what the allocator actually believes.
    if (c.completed >= cp_config_.min_samples) {
      s.armed = true;
      s.ref_mean = c.mean_workload;
    }
    return;
  }
  const double ref = std::max(s.ref_mean, 1e-12);
  const double dev = (mean - s.ref_mean) / ref;  // fractional deviation
  const double n = static_cast<double>(count);
  s.pos = std::max(0.0, s.pos + (dev - cp_config_.slack) * n);
  s.neg = std::max(0.0, s.neg + (-dev - cp_config_.slack) * n);
  if (s.pos > 0.0 || s.neg > 0.0) {
    // A deviation run is open: keep the post-change window so the
    // detection-time estimate comes from the drifted samples only.
    s.recent_sum += mean * n;
    s.recent_count += count;
  } else {
    s.recent_sum = 0.0;
    s.recent_count = 0;
  }
  if (s.pos > cp_config_.threshold || s.neg > cp_config_.threshold) {
    const double fresh = s.recent_count > 0
                             ? s.recent_sum /
                                   static_cast<double>(s.recent_count)
                             : mean;
    reset_class_locked(id, fresh);
  }
}

void TaskClassRegistry::reset_class_locked(TaskClassId id,
                                           double fresh_mean) {
  auto& c = classes_[id];
  pending_resets_.push_back(
      {id, c.mean_workload, fresh_mean, total_completions_});
  ++history_resets_;
  // The decay is restore()'s exact rebuild: decay_to synthetic samples at
  // the fresh mean, FixedSum accumulators reset to the exact product —
  // later shard folds and warm-start merges keep combining exactly.
  const std::uint64_t n = cp_config_.decay_to;
  total_completions_ -= c.completed;
  c.completed = n;
  total_completions_ += n;
  auto& e = exact_[id];
  e.sum_w = FixedSum{};
  e.sum_s = FixedSum{};
  if (n > 0) {
    e.sum_w.add_product(quantize_history(fresh_mean), n);
    e.sum_s.add_product(quantize_history(c.mean_scalable), n);
    c.mean_workload = fresh_mean;
    c.min_workload = fresh_mean;
    c.max_workload = fresh_mean;
  } else {
    c.mean_workload = 0.0;
    c.min_workload = std::numeric_limits<double>::infinity();
    c.max_workload = 0.0;
  }
  auto& s = cusum_[id];
  s = CusumState{};
  s.armed = n > 0;  // n == 0: re-arm after min_samples fresh completions
  s.ref_mean = fresh_mean;
  sync_stats_locked(id);
}

}  // namespace wats::core
