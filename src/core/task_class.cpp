#include "core/task_class.hpp"

#include "util/check.hpp"

namespace wats::core {

double normalized_workload(double cycles, double core_freq,
                           double fastest_freq) {
  WATS_CHECK(cycles >= 0.0);
  WATS_CHECK(core_freq > 0.0 && fastest_freq > 0.0);
  return cycles * (core_freq / fastest_freq);
}

TaskClassRegistry::TaskClassRegistry(WorkloadEstimator estimator,
                                     double ewma_alpha)
    : estimator_(estimator), ewma_alpha_(ewma_alpha) {
  WATS_CHECK(ewma_alpha > 0.0 && ewma_alpha <= 1.0);
}

TaskClassId TaskClassRegistry::intern(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return it->second;
  const auto id = static_cast<TaskClassId>(classes_.size());
  WATS_CHECK_MSG(id != kNoTaskClass, "task class id space exhausted");
  TaskClassInfo info;
  info.id = id;
  info.name = std::string(name);
  classes_.push_back(std::move(info));
  by_name_.emplace(std::string(name), id);
  return id;
}

std::optional<TaskClassId> TaskClassRegistry::find(
    std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

void TaskClassRegistry::record_completion(TaskClassId id, double workload,
                                          double scalable) {
  WATS_CHECK(workload >= 0.0);
  WATS_CHECK(scalable >= 0.0 && scalable <= 1.0);
  std::lock_guard lock(mu_);
  WATS_CHECK(id < classes_.size());
  auto& c = classes_[id];
  if (estimator_ == WorkloadEstimator::kRunningMean || c.completed == 0) {
    // Algorithm 2: w <- (n*w + w_gamma) / (n+1), n <- n+1.
    const auto n = static_cast<double>(c.completed);
    c.mean_workload = (n * c.mean_workload + workload) / (n + 1.0);
    c.mean_scalable = (n * c.mean_scalable + scalable) / (n + 1.0);
  } else {
    c.mean_workload =
        (1.0 - ewma_alpha_) * c.mean_workload + ewma_alpha_ * workload;
    c.mean_scalable =
        (1.0 - ewma_alpha_) * c.mean_scalable + ewma_alpha_ * scalable;
  }
  ++c.completed;
  ++total_completions_;
}

std::size_t TaskClassRegistry::size() const {
  std::lock_guard lock(mu_);
  return classes_.size();
}

std::uint64_t TaskClassRegistry::total_completions() const {
  std::lock_guard lock(mu_);
  return total_completions_;
}

bool TaskClassRegistry::has_history(TaskClassId id) const {
  if (id == kNoTaskClass) return false;
  std::lock_guard lock(mu_);
  return id < classes_.size() && classes_[id].completed > 0;
}

std::vector<TaskClassInfo> TaskClassRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  return classes_;
}

TaskClassInfo TaskClassRegistry::info(TaskClassId id) const {
  std::lock_guard lock(mu_);
  WATS_CHECK(id < classes_.size());
  return classes_[id];
}

void TaskClassRegistry::restore(TaskClassId id, std::uint64_t completed,
                                double mean_workload) {
  WATS_CHECK(mean_workload >= 0.0);
  std::lock_guard lock(mu_);
  WATS_CHECK(id < classes_.size());
  auto& c = classes_[id];
  // Keep total_completions_ consistent (it drives recluster triggers).
  total_completions_ -= c.completed;
  c.completed = completed;
  c.mean_workload = mean_workload;
  total_completions_ += completed;
}

void TaskClassRegistry::reset_history() {
  std::lock_guard lock(mu_);
  for (auto& c : classes_) {
    c.completed = 0;
    c.mean_workload = 0.0;
  }
  total_completions_ = 0;
}

}  // namespace wats::core
