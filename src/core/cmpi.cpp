#include "core/cmpi.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace wats::core {

CachePenalties CachePenalties::opteron_like() {
  // L1 miss ~ 12 cycles (L2 hit), L2 miss ~ 40 cycles (L3 hit),
  // L3 miss ~ 200 cycles (DRAM).
  return CachePenalties{{12.0, 40.0, 200.0}};
}

double cmpi(const CacheStats& stats, const CachePenalties& penalties) {
  WATS_CHECK(stats.instructions > 0);
  WATS_CHECK(!penalties.penalty_cycles.empty());
  WATS_CHECK_MSG(stats.misses.size() <= penalties.penalty_cycles.size(),
                 "more cache levels than penalties");
  const double p1 = penalties.penalty_cycles.front();
  double m = 0.0;
  for (std::size_t i = 0; i < stats.misses.size(); ++i) {
    m += static_cast<double>(stats.misses[i]) *
         (penalties.penalty_cycles[i] / p1);
  }
  return m / static_cast<double>(stats.instructions);
}

Boundedness classify(const CacheStats& stats, const CachePenalties& penalties,
                     double threshold) {
  return cmpi(stats, penalties) > threshold ? Boundedness::kMemoryBound
                                            : Boundedness::kCpuBound;
}

double frequency_scalable_fraction(double cmpi_value, double cmpi_saturation) {
  WATS_CHECK(cmpi_saturation > 0.0);
  // At CMPI 0 the task is pure compute (fraction 1); the compute share
  // decays towards 0 as CMPI approaches the saturation point where memory
  // stalls dominate completely.
  const double x = std::clamp(cmpi_value / cmpi_saturation, 0.0, 1.0);
  return 1.0 - x;
}

double EnergyModel::time_at(double t_f1, double f1, double f,
                            double scalable) const {
  WATS_CHECK(f > 0.0 && f1 > 0.0);
  WATS_CHECK(scalable >= 0.0 && scalable <= 1.0);
  return t_f1 * (scalable * f1 / f + (1.0 - scalable));
}

double EnergyModel::energy_at(double t_f1, double f1, double f,
                              double scalable) const {
  const double t = time_at(t_f1, f1, f, scalable);
  const double dynamic_power = capacitance * f * f * f;
  return (dynamic_power + static_power) * t;
}

double EnergyModel::best_frequency(double t_f1, double f1,
                                   std::span<const double> candidates,
                                   double scalable,
                                   double max_slowdown) const {
  double best_f = f1;
  double best_e = energy_at(t_f1, f1, f1, scalable);
  for (double f : candidates) {
    const double t = time_at(t_f1, f1, f, scalable);
    if (t > max_slowdown * t_f1) continue;
    const double e = energy_at(t_f1, f1, f, scalable);
    if (e < best_e) {
      best_e = e;
      best_f = f;
    }
  }
  return best_f;
}

}  // namespace wats::core
