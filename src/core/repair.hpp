// Incremental PartitionPlan repair (ISSUE 8 / ROADMAP item 3).
//
// The paper's recluster tick rebuilds the plan from scratch: snapshot the
// registry (one string copy per class), stable_sort every class by mean
// workload, run the Algorithm 1 walk, evaluate. At 8 cores and 24 classes
// that is noise; at 256-1024 cores and 10k+ classes the snapshot+sort
// dominates the helper thread's tick.
//
// IncrementalRepairPartitioner keeps a mirror of the scheduling-relevant
// stats (completed, mean, n*w weight per class) plus the w-sorted class
// order between ticks. Each tick it pulls the per-class deltas from the
// history fold (TaskClassRegistry::visit_class_stats — one lock, no
// strings), relocates ONLY the classes whose sort key or history
// membership actually moved (extract dirty ids, sort the dirty subset,
// merge with the untouched — already sorted — remainder), re-runs the
// cheap O(m) greedy boundary walk on the maintained order, and evaluates
// through the SAME evaluate_partition_plan the full rebuild uses.
//
// Exactness: (mean descending, id ascending) is a total order, and it is
// precisely what ClusterMap::build's stable_sort over the ascending-id
// snapshot produces — so the maintained order, the weights read off it,
// the greedy walk, and the shared evaluator are all bit-identical to a
// full rebuild from the same registry state. A repaired plan is therefore
// ALWAYS bit-identical to what the full rebuild would publish (asserted
// by tests/plan_repair_test.cpp's property suite); the drift threshold
// does not guard correctness, it only bounds how long the repairer runs
// before re-anchoring on a genuine full rebuild (a cheap safety net
// against unbounded accumulation of mirror state).
#pragma once

#include <cstdint>
#include <vector>

#include "core/partition_plan.hpp"
#include "core/partitioner.hpp"
#include "core/task_class.hpp"
#include "core/topology.hpp"

namespace wats::core {

/// Knobs of the incremental repair path. Enabled by default — the path is
/// bit-exact, so the only observable change is the latency of the tick
/// (plus the plan_repairs / repair_fallbacks counters).
struct PlanRepairConfig {
  bool enabled = true;
  /// Re-anchor rule: when the accumulated absolute weight drift since the
  /// last full rebuild exceeds this fraction of the current total weight,
  /// the next tick runs a full rebuild instead of a repair (counted as a
  /// repair fallback). Roughly: one re-anchor per doubling of total
  /// history mass at the default.
  double drift_threshold = 0.5;
};

/// Stateful incremental counterpart of build_partition_plan. NOT thread
/// safe — the owning policy kernel calls build() under its rebuild lock,
/// exactly where the full rebuild used to run.
class IncrementalRepairPartitioner {
 public:
  explicit IncrementalRepairPartitioner(PlanRepairConfig config = {})
      : config_(config) {}

  struct Outcome {
    PartitionPlan plan;
    /// Plan came out of the incremental path (false: full rebuild, either
    /// because repair is disabled/unsupported for the algorithm, because
    /// the mirror was not yet synced, or because drift forced a fallback).
    bool repaired = false;
    /// This tick's full rebuild was forced by the drift threshold.
    bool drift_fallback = false;
  };

  /// One recluster tick: produce the candidate plan for the registry's
  /// current state. Bit-identical to
  /// build_partition_plan(registry.snapshot(), topo, algorithm, previous)
  /// on every path. Only kAlgorithm1 has an incremental walk; other
  /// algorithms transparently take the full rebuild.
  Outcome build(const TaskClassRegistry& registry, const AmcTopology& topo,
                ClusterAlgorithm algorithm, const PartitionPlan* previous);

  /// Accumulated |weight delta| since the last full rebuild (tests).
  double accumulated_drift() const { return drift_; }
  const PlanRepairConfig& config() const { return config_; }

 private:
  struct ClassDelta {
    TaskClassId id = kNoTaskClass;
    std::uint64_t completed = 0;
    double mean = 0.0;
  };

  Outcome full_rebuild(const TaskClassRegistry& registry,
                       const AmcTopology& topo, ClusterAlgorithm algorithm,
                       const PartitionPlan* previous, bool drift_fallback);

  PlanRepairConfig config_;
  GreedyPartitioner greedy_;
  bool synced_ = false;
  double drift_ = 0.0;
  double total_weight_ = 0.0;

  // Mirror of the registry's scheduling-relevant stats, indexed by id.
  std::vector<std::uint64_t> completed_;
  std::vector<double> means_;
  std::vector<double> weights_;
  /// Classes with history, sorted by (mean desc, id asc) — the exact
  /// order ClusterMap::build's stable_sort produces.
  std::vector<TaskClassId> order_;

  // Per-tick scratch (kept hot across ticks to avoid reallocation).
  std::vector<ClassDelta> changes_;
  std::vector<char> touched_;
  std::vector<TaskClassId> keep_;
  std::vector<TaskClassId> moved_;
  std::vector<double> sorted_weights_;
};

}  // namespace wats::core
