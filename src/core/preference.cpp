#include "core/preference.hpp"

#include "util/check.hpp"

namespace wats::core {

std::vector<GroupIndex> preference_list(GroupIndex own,
                                        std::size_t group_count) {
  WATS_CHECK(group_count > 0);
  WATS_CHECK(own < group_count);
  std::vector<GroupIndex> order;
  order.reserve(group_count);
  // Own cluster, then all slower clusters in order (rob the weaker first)...
  for (GroupIndex g = own; g < group_count; ++g) order.push_back(g);
  // ...then faster clusters, nearest speed first: Ci-1, Ci-2, ..., C1.
  for (GroupIndex g = own; g > 0; --g) order.push_back(g - 1);
  return order;
}

std::vector<std::vector<GroupIndex>> all_preference_lists(
    std::size_t group_count) {
  std::vector<std::vector<GroupIndex>> lists;
  lists.reserve(group_count);
  for (GroupIndex g = 0; g < group_count; ++g) {
    lists.push_back(preference_list(g, group_count));
  }
  return lists;
}

}  // namespace wats::core
