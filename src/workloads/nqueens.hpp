// N-queens — the paper's named example of a program WATS is NOT suited
// for (§IV-E): a recursive divide-and-conquer search where nearly every
// task runs the same function, so history-based allocation finds only one
// task class and the compiler/runtime must fall back to plain stealing.
//
// The solver is real (bitboard backtracking); the task-parallel driver in
// examples/divide_and_conquer.cpp spawns one task per first-`depth` row
// placements, exercising the runtime's divide-and-conquer detector.
#pragma once

#include <cstdint>
#include <vector>

namespace wats::workloads {

/// Number of solutions for an n-queens board (sequential bitboard search).
std::uint64_t nqueens_count(unsigned n);

/// A partial placement: queen columns for the first rows.size() rows.
struct QueensPrefix {
  std::vector<unsigned> rows;
};

/// All valid placements of the first `depth` rows — the natural task
/// decomposition (each prefix becomes one subtree task).
std::vector<QueensPrefix> nqueens_prefixes(unsigned n, unsigned depth);

/// Solutions in the subtree under a prefix.
std::uint64_t nqueens_count_from(unsigned n, const QueensPrefix& prefix);

}  // namespace wats::workloads
