// Canonical Huffman coding over a generic symbol alphabet — the entropy
// stage of the Bzip-2 block compressor.
//
// The encoder derives optimal code lengths from symbol frequencies, turns
// them into canonical codes (so only the lengths need to be transmitted),
// and bit-packs the stream. The decoder rebuilds the canonical code book
// from the lengths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"
#include "workloads/bitstream.hpp"

namespace wats::workloads {

/// Optimal prefix-code lengths for the given frequencies (0 for unused
/// symbols). Handles the degenerate 0- and 1-symbol alphabets (length 1).
std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs);

/// Canonical codes from lengths: codes assigned in (length, symbol) order.
/// code[i] is valid iff lengths[i] > 0.
std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths);

/// Encode `symbols` (values < lengths.size()) with the canonical code book.
void huffman_encode(std::span<const std::uint16_t> symbols,
                    std::span<const std::uint8_t> lengths,
                    std::span<const std::uint32_t> codes, BitWriter& out);

/// Canonical decoder table.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);

  /// Decode one symbol; aborts on invalid streams.
  std::uint16_t decode(BitReader& in) const;

 private:
  // first_code_[l] / first_index_[l]: canonical decoding by length; symbols
  // sorted by (length, value) are stored in sorted_symbols_.
  std::vector<std::uint32_t> first_code_;
  std::vector<std::uint32_t> first_index_;
  std::vector<std::uint16_t> sorted_symbols_;
  std::uint8_t max_len_ = 0;
};

}  // namespace wats::workloads
