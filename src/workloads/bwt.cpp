#include "workloads/bwt.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "workloads/suffix_array.hpp"

namespace wats::workloads {

BwtResult bwt_forward(std::span<const std::uint8_t> input) {
  const std::size_t n = input.size();
  BwtResult result;
  if (n == 0) return result;

  // Prefix doubling over cyclic rotations: rank[i] orders rotations by
  // their first k characters; each round doubles k by pairing with the
  // rank k positions ahead (modulo n).
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<std::uint32_t> rank(n), new_rank(n);
  for (std::size_t i = 0; i < n; ++i) rank[i] = input[i];

  for (std::size_t k = 1;; k *= 2) {
    auto pair_of = [&](std::uint32_t i) {
      return std::pair<std::uint32_t, std::uint32_t>(
          rank[i], rank[(i + k) % n]);
    };
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return pair_of(a) < pair_of(b);
              });
    new_rank[order[0]] = 0;
    bool all_distinct = true;
    for (std::size_t i = 1; i < n; ++i) {
      const bool equal = pair_of(order[i]) == pair_of(order[i - 1]);
      new_rank[order[i]] = new_rank[order[i - 1]] + (equal ? 0u : 1u);
      all_distinct &= !equal;
    }
    rank.swap(new_rank);
    if (all_distinct || k >= n) break;
  }

  // Ties can remain for periodic inputs (e.g. "abab"): identical rotations
  // compare equal at every k, which is fine — any of their relative orders
  // yields the same L column; pick the first occurrence as primary.
  result.transformed.resize(n);
  result.primary = 0;
  for (std::size_t row = 0; row < n; ++row) {
    const std::uint32_t start = order[row];
    result.transformed[row] = input[(start + n - 1) % n];
    if (start == 0) result.primary = static_cast<std::uint32_t>(row);
  }
  return result;
}

BwtResult bwt_forward_sais(std::span<const std::uint8_t> input) {
  const std::size_t n = input.size();
  BwtResult result;
  if (n == 0) return result;

  // Suffixes of input+input that start in the first copy, in suffix-array
  // order, give the sorted rotation order: comparing such suffixes looks
  // at >= n characters before the (distinct-position) tails can matter.
  util::Bytes doubled;
  doubled.reserve(2 * n);
  doubled.insert(doubled.end(), input.begin(), input.end());
  doubled.insert(doubled.end(), input.begin(), input.end());
  const auto sa = suffix_array(doubled);

  result.transformed.reserve(n);
  std::size_t row = 0;
  for (std::uint32_t p : sa) {
    if (p >= n) continue;
    result.transformed.push_back(input[(p + n - 1) % n]);
    if (p == 0) result.primary = static_cast<std::uint32_t>(row);
    ++row;
  }
  WATS_CHECK(result.transformed.size() == n);
  return result;
}

util::Bytes bwt_inverse(std::span<const std::uint8_t> transformed,
                        std::uint32_t primary) {
  const std::size_t n = transformed.size();
  util::Bytes out(n);
  if (n == 0) return out;
  WATS_CHECK(primary < n);

  // LF mapping: LF(i) = C[L[i]] + rank_{L[i]}(i), where C[c] counts symbols
  // smaller than c in L. Walking LF from the primary row yields the input
  // backwards.
  std::array<std::uint32_t, 256> counts{};
  for (std::uint8_t b : transformed) ++counts[b];
  std::array<std::uint32_t, 256> c_before{};
  std::uint32_t acc = 0;
  for (std::size_t c = 0; c < 256; ++c) {
    c_before[c] = acc;
    acc += counts[c];
  }
  std::vector<std::uint32_t> lf(n);
  std::array<std::uint32_t, 256> seen{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = transformed[i];
    lf[i] = c_before[b] + seen[b];
    ++seen[b];
  }

  std::uint32_t row = primary;
  for (std::size_t i = n; i > 0; --i) {
    out[i - 1] = transformed[row];
    row = lf[row];
  }
  return out;
}

}  // namespace wats::workloads
