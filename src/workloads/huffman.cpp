#include "workloads/huffman.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace wats::workloads {

std::vector<std::uint8_t> huffman_code_lengths(
    std::span<const std::uint64_t> freqs) {
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  // Collect used symbols.
  std::vector<std::size_t> used;
  for (std::size_t i = 0; i < n; ++i) {
    if (freqs[i] > 0) used.push_back(i);
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;  // a 1-bit code keeps the bitstream non-degenerate
    return lengths;
  }

  // Standard Huffman tree build over (freq, node) with parent links; code
  // length of a leaf = depth.
  struct Node {
    std::uint64_t freq;
    std::int32_t parent = -1;
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * used.size());
  using HeapItem = std::pair<std::uint64_t, std::uint32_t>;  // (freq, node)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t i = 0; i < used.size(); ++i) {
    nodes.push_back({freqs[used[i]], -1});
    heap.emplace(freqs[used[i]], static_cast<std::uint32_t>(i));
  }
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    const auto parent = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back({fa + fb, -1});
    nodes[a].parent = static_cast<std::int32_t>(parent);
    nodes[b].parent = static_cast<std::int32_t>(parent);
    heap.emplace(fa + fb, parent);
  }

  for (std::size_t i = 0; i < used.size(); ++i) {
    std::uint8_t depth = 0;
    for (std::int32_t p = nodes[i].parent; p != -1; p = nodes[static_cast<std::size_t>(p)].parent) {
      ++depth;
    }
    WATS_CHECK_MSG(depth > 0 && depth < 64, "huffman code length overflow");
    lengths[used[i]] = depth;
  }
  return lengths;
}

std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  std::uint8_t max_len = 0;
  for (auto l : lengths) max_len = std::max(max_len, l);
  WATS_CHECK_MSG(max_len <= 32, "canonical codes limited to 32 bits");

  std::vector<std::uint32_t> codes(lengths.size(), 0);
  if (max_len == 0) return codes;

  // Count codes per length, derive the first code of each length.
  std::vector<std::uint32_t> count(static_cast<std::size_t>(max_len) + 1, 0);
  for (auto l : lengths) {
    if (l > 0) ++count[l];
  }
  std::vector<std::uint32_t> next(static_cast<std::size_t>(max_len) + 1, 0);
  std::uint32_t code = 0;
  for (std::size_t l = 1; l <= max_len; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) codes[i] = next[lengths[i]]++;
  }
  return codes;
}

void huffman_encode(std::span<const std::uint16_t> symbols,
                    std::span<const std::uint8_t> lengths,
                    std::span<const std::uint32_t> codes, BitWriter& out) {
  for (std::uint16_t s : symbols) {
    WATS_DCHECK(s < lengths.size());
    WATS_DCHECK(lengths[s] > 0);
    out.put(codes[s], lengths[s]);
  }
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  for (auto l : lengths) max_len_ = std::max(max_len_, l);
  WATS_CHECK_MSG(max_len_ > 0, "empty huffman code book");

  // Symbols sorted by (length, value): exactly the canonical order.
  std::vector<std::uint32_t> count(static_cast<std::size_t>(max_len_) + 1, 0);
  for (auto l : lengths) {
    if (l > 0) ++count[l];
  }
  first_index_.assign(static_cast<std::size_t>(max_len_) + 2, 0);
  for (std::size_t l = 1; l <= max_len_; ++l) {
    first_index_[l + 1] = first_index_[l] + count[l];
  }
  sorted_symbols_.resize(first_index_[static_cast<std::size_t>(max_len_) + 1]);
  std::vector<std::uint32_t> cursor(first_index_.begin(),
                                    first_index_.end());
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) {
      sorted_symbols_[cursor[lengths[i]]++] =
          static_cast<std::uint16_t>(i);
    }
  }

  first_code_.assign(static_cast<std::size_t>(max_len_) + 1, 0);
  std::uint32_t code = 0;
  for (std::size_t l = 1; l <= max_len_; ++l) {
    code = (code + count[l - 1]) << 1;
    first_code_[l] = code;
  }
}

std::uint16_t HuffmanDecoder::decode(BitReader& in) const {
  std::uint32_t code = 0;
  for (std::uint8_t l = 1; l <= max_len_; ++l) {
    code = (code << 1) | in.get_bit();
    const std::uint32_t base = first_code_[l];
    const std::uint32_t n_at_len = first_index_[l + 1] - first_index_[l];
    if (code >= base && code < base + n_at_len) {
      return sorted_symbols_[first_index_[l] + (code - base)];
    }
  }
  WATS_CHECK_MSG(false, "corrupt huffman stream");
  __builtin_unreachable();
}

}  // namespace wats::workloads
