#include "workloads/ferret.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wats::workloads {

FeatureVector extract_features(std::span<const float> image,
                               std::size_t width, std::size_t height,
                               const FeatureConfig& config) {
  WATS_CHECK(image.size() == width * height);
  WATS_CHECK(config.intensity_bins > 0 && config.gradient_bins > 0);

  FeatureVector features(config.intensity_bins + config.gradient_bins, 0.0f);

  // Intensity histogram.
  for (float v : image) {
    const double clamped = std::clamp(static_cast<double>(v), 0.0, 1.0);
    auto bin = static_cast<std::size_t>(
        clamped * static_cast<double>(config.intensity_bins));
    bin = std::min(bin, config.intensity_bins - 1);
    features[bin] += 1.0f;
  }

  // Gradient-orientation histogram (central differences, magnitude
  // weighted), over interior pixels.
  if (width >= 3 && height >= 3) {
    for (std::size_t y = 1; y + 1 < height; ++y) {
      for (std::size_t x = 1; x + 1 < width; ++x) {
        const double gx = image[y * width + x + 1] - image[y * width + x - 1];
        const double gy =
            image[(y + 1) * width + x] - image[(y - 1) * width + x];
        const double mag = std::sqrt(gx * gx + gy * gy);
        if (mag < 1e-9) continue;
        double angle = std::atan2(gy, gx);  // [-pi, pi]
        angle = (angle + std::numbers::pi) / (2.0 * std::numbers::pi);
        auto bin = static_cast<std::size_t>(
            angle * static_cast<double>(config.gradient_bins));
        bin = std::min(bin, config.gradient_bins - 1);
        features[config.intensity_bins + bin] += static_cast<float>(mag);
      }
    }
  }

  // L2 normalization (per block: intensity and gradient separately, so one
  // modality cannot drown the other).
  auto normalize = [](std::span<float> block) {
    double norm = 0.0;
    for (float v : block) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    if (norm < 1e-12) return;
    for (float& v : block) v = static_cast<float>(v / norm);
  };
  normalize(std::span<float>(features).subspan(0, config.intensity_bins));
  normalize(std::span<float>(features).subspan(config.intensity_bins));
  return features;
}

double feature_distance(const FeatureVector& a, const FeatureVector& b) {
  WATS_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    sum += d * d;
  }
  return sum;
}

FerretIndex::FerretIndex(std::size_t feature_dims, std::size_t signature_bits,
                         std::uint64_t seed)
    : dims_(feature_dims) {
  WATS_CHECK(signature_bits >= 1 && signature_bits <= 20);
  util::Xoshiro256 rng(seed);
  hyperplanes_.resize(signature_bits);
  for (auto& h : hyperplanes_) {
    h.resize(dims_);
    for (auto& v : h) {
      // Gaussian components keep hyperplane directions uniform on the
      // sphere.
      v = static_cast<float>(rng.gaussian());
    }
  }
  buckets_.resize(std::size_t{1} << signature_bits);
  bucket_mask_ = (std::uint64_t{1} << signature_bits) - 1;
}

std::uint64_t FerretIndex::signature_of(const FeatureVector& f) const {
  WATS_CHECK(f.size() == dims_);
  std::uint64_t sig = 0;
  for (std::size_t b = 0; b < hyperplanes_.size(); ++b) {
    double dot = 0.0;
    const auto& h = hyperplanes_[b];
    for (std::size_t i = 0; i < dims_; ++i) {
      dot += static_cast<double>(h[i]) * f[i];
    }
    if (dot >= 0.0) sig |= (std::uint64_t{1} << b);
  }
  return sig & bucket_mask_;
}

std::uint32_t FerretIndex::add(FeatureVector features) {
  const auto id = static_cast<std::uint32_t>(features_.size());
  const std::uint64_t sig = signature_of(features);
  buckets_[sig].push_back(id);
  features_.push_back(std::move(features));
  return id;
}

std::vector<std::uint32_t> FerretIndex::probe(
    const FeatureVector& query, std::size_t min_candidates) const {
  const std::uint64_t sig = signature_of(query);
  std::vector<std::uint32_t> candidates = buckets_[sig];
  // Multi-probe: 1-bit-flip neighbouring buckets.
  for (std::size_t b = 0; b < hyperplanes_.size(); ++b) {
    const auto& neighbour = buckets_[sig ^ (std::uint64_t{1} << b)];
    candidates.insert(candidates.end(), neighbour.begin(), neighbour.end());
  }
  if (candidates.size() < min_candidates) {
    candidates.resize(features_.size());
    for (std::uint32_t i = 0; i < features_.size(); ++i) candidates[i] = i;
  }
  return candidates;
}

std::vector<RankedMatch> FerretIndex::rank(
    const FeatureVector& query, std::span<const std::uint32_t> candidates,
    std::size_t k) const {
  std::vector<RankedMatch> matches;
  matches.reserve(candidates.size());
  for (std::uint32_t id : candidates) {
    matches.push_back({id, feature_distance(query, features_.at(id))});
  }
  std::sort(matches.begin(), matches.end(),
            [](const RankedMatch& a, const RankedMatch& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.image_id < b.image_id;
            });
  // Drop duplicate ids that multi-probe may have produced.
  matches.erase(std::unique(matches.begin(), matches.end(),
                            [](const RankedMatch& a, const RankedMatch& b) {
                              return a.image_id == b.image_id;
                            }),
                matches.end());
  if (matches.size() > k) matches.resize(k);
  return matches;
}

std::vector<RankedMatch> FerretIndex::query(const FeatureVector& query_features,
                                            std::size_t k) const {
  const auto candidates = probe(query_features, k * 4);
  return rank(query_features, candidates, k);
}

}  // namespace wats::workloads
