#include "workloads/drivers.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wats::workloads {

namespace {
using Clock = std::chrono::steady_clock;
}

DriverResult run_batch_on_runtime(runtime::TaskRuntime& rt,
                                  const BenchmarkSpec& spec, double scale,
                                  std::uint64_t seed,
                                  std::size_t batches_override) {
  WATS_CHECK(spec.kind == BenchKind::kBatch);
  const std::size_t batches =
      batches_override > 0 ? batches_override : spec.batches;

  // Intern one class per spec class (the "function names").
  std::vector<core::TaskClassId> ids;
  ids.reserve(spec.classes.size());
  for (const auto& cls : spec.classes) {
    ids.push_back(rt.register_class(cls.name));
  }

  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::size_t> tasks{0};
  util::Xoshiro256 rng(seed);

  const auto start = Clock::now();
  for (std::size_t b = 0; b < batches; ++b) {
    // Shuffled class order within the batch, like the sim driver.
    std::vector<std::size_t> mix;
    for (std::size_t c = 0; c < spec.classes.size(); ++c) {
      for (std::size_t i = 0; i < spec.classes[c].tasks_per_batch; ++i) {
        mix.push_back(c);
      }
    }
    rng.shuffle(mix);
    for (std::size_t c : mix) {
      auto task = make_real_task(spec.name, spec.classes[c].name, scale,
                                 rng.next());
      rt.spawn(ids[c], [task = std::move(task), &checksum, &tasks] {
        checksum.fetch_xor(task(), std::memory_order_relaxed);
        tasks.fetch_add(1, std::memory_order_relaxed);
      });
    }
    rt.wait_all();  // the batch barrier
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  return {checksum.load(), tasks.load(), elapsed.count()};
}

DriverResult run_pipeline_on_runtime(runtime::TaskRuntime& rt,
                                     const BenchmarkSpec& spec, double scale,
                                     std::uint64_t seed,
                                     std::size_t items_override) {
  WATS_CHECK(spec.kind == BenchKind::kPipeline);
  const std::size_t items =
      items_override > 0 ? items_override : spec.pipeline_items;
  const std::size_t stages = spec.stage_count();

  std::vector<core::TaskClassId> ids;
  ids.reserve(spec.classes.size());
  for (const auto& cls : spec.classes) {
    ids.push_back(rt.register_class(cls.name));
  }

  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::size_t> tasks{0};
  util::SplitMix64 seeder(seed);

  // Per-item seeds fixed up front so the result is schedule-independent.
  std::vector<std::uint64_t> item_seeds(items);
  for (auto& s : item_seeds) s = seeder.next();

  const auto start = Clock::now();
  // Stage chain: each stage task spawns the item's next stage.
  std::function<void(std::size_t, std::size_t)> run_stage =
      [&](std::size_t item, std::size_t stage) {
        // Resolve the stage's class (first option; branching pipelines pick
        // by the item's seed).
        std::size_t cls_index = stage;
        if (!spec.pipeline_stages.empty()) {
          const auto& st = spec.pipeline_stages[stage];
          cls_index = st.class_options.front();
          if (st.class_options.size() > 1) {
            util::SplitMix64 pick(item_seeds[item] + stage);
            const double u =
                static_cast<double>(pick.next() >> 11) * 0x1.0p-53;
            double acc = 0.0;
            for (std::size_t i = 0; i < st.class_options.size(); ++i) {
              acc += st.probabilities[i];
              if (u < acc) {
                cls_index = st.class_options[i];
                break;
              }
            }
          }
        }
        auto task = make_real_task(spec.name, spec.classes[cls_index].name,
                                   scale, item_seeds[item] ^ stage);
        rt.spawn(ids[cls_index], [task = std::move(task), &checksum, &tasks,
                                  &run_stage, item, stage, stages] {
          checksum.fetch_xor(task(), std::memory_order_relaxed);
          tasks.fetch_add(1, std::memory_order_relaxed);
          if (stage + 1 < stages) run_stage(item, stage + 1);
        });
      };

  for (std::size_t item = 0; item < items; ++item) {
    run_stage(item, 0);
  }
  rt.wait_all();
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  return {checksum.load(), tasks.load(), elapsed.count()};
}

DriverResult run_on_runtime(runtime::TaskRuntime& rt,
                            const BenchmarkSpec& spec, double scale,
                            std::uint64_t seed) {
  if (spec.kind == BenchKind::kBatch) {
    return run_batch_on_runtime(rt, spec, scale, seed);
  }
  return run_pipeline_on_runtime(rt, spec, scale, seed);
}

}  // namespace wats::workloads
