// Ferret — the content-based similarity-search pipeline of Table III (the
// paper uses PARSEC's ferret; see DESIGN.md for the substitution note).
//
// Stages, matching PARSEC's structure:
//   1. segment/extract — feature vector from a (synthetic) grayscale image:
//                        intensity histogram + gradient-orientation
//                        histogram, L2-normalized
//   2. index probe     — coarse candidate selection via an LSH table of
//                        random hyperplane signatures
//   3. rank            — exact L2 distances over the candidates, top-k
//
// The paper's key observation about Ferret — all tasks have similar
// workloads, so WATS is neutral on it — holds here too: every query image
// has the same size and the database scan cost is uniform.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wats::workloads {

using FeatureVector = std::vector<float>;

struct FeatureConfig {
  std::size_t intensity_bins = 32;
  std::size_t gradient_bins = 16;
};

/// Stage 1: extract a normalized feature vector from a row-major image.
FeatureVector extract_features(std::span<const float> image,
                               std::size_t width, std::size_t height,
                               const FeatureConfig& config = {});

/// Squared L2 distance between two feature vectors of equal length.
double feature_distance(const FeatureVector& a, const FeatureVector& b);

struct RankedMatch {
  std::uint32_t image_id = 0;
  double distance = 0.0;
};

/// The searchable image database: stores feature vectors and an LSH table
/// over random-hyperplane signatures for candidate probing.
class FerretIndex {
 public:
  /// `signature_bits` random hyperplanes define the LSH bucket hash.
  FerretIndex(std::size_t feature_dims, std::size_t signature_bits,
              std::uint64_t seed);

  /// Add an image's features; returns its id.
  std::uint32_t add(FeatureVector features);

  /// Stage 2: candidate ids from the query's LSH bucket and neighbouring
  /// buckets (1-bit flips). Falls back to the whole database when the
  /// probe yields fewer than `min_candidates`.
  std::vector<std::uint32_t> probe(const FeatureVector& query,
                                   std::size_t min_candidates) const;

  /// Stage 3: exact distances over `candidates`, best `k` first.
  std::vector<RankedMatch> rank(const FeatureVector& query,
                                std::span<const std::uint32_t> candidates,
                                std::size_t k) const;

  /// Convenience: probe + rank.
  std::vector<RankedMatch> query(const FeatureVector& query_features,
                                 std::size_t k) const;

  std::size_t size() const { return features_.size(); }
  const FeatureVector& features(std::uint32_t id) const {
    return features_.at(id);
  }

 private:
  std::uint64_t signature_of(const FeatureVector& f) const;

  std::size_t dims_;
  std::vector<std::vector<float>> hyperplanes_;
  std::vector<FeatureVector> features_;
  // bucket signature -> image ids (flat multimap; probe is read-mostly)
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::uint64_t bucket_mask_ = 0;
};

}  // namespace wats::workloads
