// The "Bzip-2" batch benchmark of Table III: a block compressor with the
// same pipeline as bzip2 — BWT, move-to-front, zero-run-length coding, and
// Huffman entropy coding — implemented from our own stages.
//
// Container format per block (all integers little-endian):
//   u32 original_size
//   u32 bwt_primary
//   u32 payload_bits      (number of valid bits in the Huffman stream)
//   258 x u8 code lengths (canonical Huffman book for the ZRLE alphabet)
//   payload bytes
#pragma once

#include <span>

#include "util/bytes.hpp"

namespace wats::workloads {

/// Compress one block (<= ~1 MiB is sensible; the SA-IS sorter is linear
/// but memory grows with block size).
util::Bytes bzip2_compress(std::span<const std::uint8_t> input);

/// Decompress a block produced by bzip2_compress.
util::Bytes bzip2_decompress(std::span<const std::uint8_t> compressed);

/// Multi-block stream (real bzip2's structure; every block is independent
/// — exactly the per-task unit of the Bzip-2 batch benchmark):
///   u32 block_count, then per block: u32 compressed_size, block bytes.
util::Bytes bzip2_compress_stream(std::span<const std::uint8_t> input,
                                  std::size_t block_size);
util::Bytes bzip2_decompress_stream(std::span<const std::uint8_t> stream);

}  // namespace wats::workloads
