// Task-class models of the nine Table III benchmarks.
//
// The scheduler experiments need each benchmark expressed as the thing the
// paper's scheduler sees: a stream of tasks, each belonging to a task class
// (function name) with a class-specific workload distribution. The batch
// benchmarks launch `tasks_per_batch` tasks per batch and wait for the
// batch to finish; the pipeline benchmarks (Dedup, Ferret) push items
// through ordered stages, each stage being a task class.
//
// Per-class mean workloads are derived from the real kernels' asymptotic
// cost on the input mixes the drivers use (e.g. BWT blocks of 16..128 KiB
// at n log n). Absolute units are arbitrary ("work units at F1"); only
// ratios matter to the scheduling experiments. The within-class coefficient
// of variation is small, matching the paper's assumption that same-function
// tasks have similar workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace wats::workloads {

enum class BenchKind {
  kBatch,     ///< rounds of independent tasks with a barrier between rounds
  kPipeline,  ///< items flowing through ordered stages
  kReplay,    ///< a recorded task stream re-played at its recorded arrivals
};

struct TaskClassSpec {
  std::string name;
  double mean_work = 1.0;  ///< mean F1-normalized work units
  double cv = 0.1;         ///< coefficient of variation within the class
  /// Batch benchmarks: number of tasks of this class per batch.
  /// Pipeline benchmarks: unused (one task per item per stage).
  std::size_t tasks_per_batch = 0;
  /// Frequency-scalable fraction (§IV-E); 1.0 = CPU-bound (default, as in
  /// all Table III benchmarks), towards 0.0 = memory-bound.
  double scalable = 1.0;
  /// Per-class workload multiplier after the spec's phase shift fires;
  /// 0 = use the spec-wide phase_scale. Lets a phase change alter the
  /// RATIO between classes (what actually stresses the history).
  double phase_scale = 0.0;
};

/// A pipeline stage that can dispatch to one of several task classes
/// (e.g. dedup's compress stage: unique chunks take the expensive path,
/// duplicate chunks the cheap one).
struct PipelineStageSpec {
  std::vector<std::size_t> class_options;  ///< indices into classes
  std::vector<double> probabilities;       ///< same length; sums to 1
};

/// One change point of a nonstationary (phase-changing) batch workload:
/// from the batch after `start_batch` onwards, class c's sampled workload
/// is multiplied by `class_scale[c]` (1.0 = unchanged). Scales are
/// absolute multipliers of the BASE spec, not cumulative: when several
/// phases have fired, the latest one wins. The single-shift
/// phase_shift_batch/phase_scale fields predate this and stay supported;
/// a PhaseSpec that is active overrides them.
struct PhaseSpec {
  std::size_t start_batch = 0;
  std::vector<double> class_scale;  ///< aligned with BenchmarkSpec::classes
};

/// One task of a replayed (kReplay) workload: spawned from the main core
/// at virtual time `arrival` with a fixed F1-normalized `work`.
struct ReplayTaskSpec {
  double arrival = 0.0;
  std::size_t class_index = 0;  ///< index into BenchmarkSpec::classes
  double work = 1.0;
};

struct BenchmarkSpec {
  std::string name;
  BenchKind kind = BenchKind::kBatch;
  /// Batch: the classes launched each batch. Pipeline: the classes the
  /// stages draw from. Replay: the classes the recorded tasks belong to.
  std::vector<TaskClassSpec> classes;
  std::size_t batches = 0;         ///< batch benchmarks: rounds
  std::size_t pipeline_items = 0;  ///< pipeline benchmarks: items
  std::size_t pipeline_window = 0; ///< in-flight item cap (queue capacity)
  /// Pipeline stage structure; when empty, stage i simply uses classes[i].
  std::vector<PipelineStageSpec> pipeline_stages;

  /// Phase change (batch benchmarks only): from batch `phase_shift_batch`
  /// (0 = disabled) onwards, every class's workload is multiplied by
  /// `phase_scale`. Exercises §III-A's claim that the history "adapts
  /// quickly to the changes of a new execution phase".
  std::size_t phase_shift_batch = 0;
  double phase_scale = 1.0;

  /// Nonstationary extension: an arbitrary schedule of change points
  /// (sorted by start_batch). Empty = stationary (or the legacy single
  /// shift above); see PhaseSpec for the override semantics.
  std::vector<PhaseSpec> phases;

  /// Recorded task stream (kReplay only), sorted by arrival.
  std::vector<ReplayTaskSpec> replay_tasks;

  /// Number of stages of a pipeline benchmark.
  std::size_t stage_count() const;

  std::size_t tasks_per_batch() const;
  /// Total tasks over the whole run.
  std::size_t total_tasks() const;

  /// Workload multiplier of class `cls` in 1-based batch `batch`: the
  /// latest active PhaseSpec wins; otherwise the legacy single shift;
  /// otherwise 1.0. The single source of truth for phase semantics
  /// (sim adapter and scenario tooling both call it).
  double phase_multiplier(std::size_t batch, std::size_t cls) const;
};

/// All nine benchmarks of Table III, in the paper's order:
/// BWT, Bzip-2, DMC, GA, LZW, MD5, SHA-1 (batch), Dedup, Ferret (pipeline).
const std::vector<BenchmarkSpec>& paper_benchmarks();

/// Lookup by name; aborts on unknown names.
const BenchmarkSpec& benchmark_by_name(const std::string& name);

/// A synthetic mixed CPU/memory-bound application for the §IV-E
/// extension experiments: half the classes are frequency-scalable, half
/// are dominated by memory stalls.
BenchmarkSpec membound_mix();

/// The Fig. 8 experiment: GA with 128 tasks per batch split across four
/// workload classes (8t, 4t, 2t, t) with counts (alpha, alpha, alpha,
/// 128 - 3*alpha). alpha in [0, 42].
BenchmarkSpec ga_mix(std::size_t alpha);

/// Sample a concrete task workload for a class: lognormal around
/// mean_work with the class's cv (deterministic given the rng state).
double sample_work(const TaskClassSpec& cls, util::Xoshiro256& rng);

/// A real-kernel task for the runtime examples: runs the actual
/// implementation (hash/compress/evolve/...) behind a benchmark class,
/// scaled by `scale` (1.0 = the class's nominal input size). Returns a
/// checksum so the work cannot be optimized away.
std::function<std::uint64_t()> make_real_task(const std::string& bench,
                                              const std::string& task_class,
                                              double scale,
                                              std::uint64_t seed);

}  // namespace wats::workloads
