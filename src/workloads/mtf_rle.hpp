// Move-to-front coding and bzip2-style zero-run-length coding, the middle
// stages of the Bzip-2 block compressor.
//
// After BWT, equal symbols cluster; MTF turns clusters into small values
// (mostly zeros); ZRLE encodes zero runs in bijective base 2 using the two
// symbols RUNA/RUNB exactly as bzip2 does, and appends an EOB marker.
// The ZRLE output alphabet is:
//   0 = RUNA, 1 = RUNB, 2..256 = MTF values 1..255, 257 = EOB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace wats::workloads {

/// Symbols produced by zrle_encode (see alphabet above).
using ZSymbol = std::uint16_t;

inline constexpr ZSymbol kRunA = 0;
inline constexpr ZSymbol kRunB = 1;
inline constexpr ZSymbol kEob = 257;
inline constexpr std::size_t kZAlphabet = 258;

/// Move-to-front transform (alphabet 0..255).
util::Bytes mtf_encode(std::span<const std::uint8_t> input);
util::Bytes mtf_decode(std::span<const std::uint8_t> input);

/// Zero-run-length encode an MTF stream; always ends with kEob.
std::vector<ZSymbol> zrle_encode(std::span<const std::uint8_t> mtf);

/// Inverse; consumes up to (and including) the first kEob.
util::Bytes zrle_decode(std::span<const ZSymbol> symbols);

}  // namespace wats::workloads
