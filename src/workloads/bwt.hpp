// Burrows–Wheeler Transform for the BWT batch benchmark of Table III and
// as the first stage of the Bzip-2-style block compressor.
//
// Forward transform sorts the cyclic rotations with prefix doubling
// (O(n log n) rank rounds with O(n log n) sorting each — plenty for the
// block sizes the benchmarks use); the inverse uses the standard
// LF-mapping walk.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"

namespace wats::workloads {

struct BwtResult {
  util::Bytes transformed;    ///< last column L of the sorted rotation matrix
  std::uint32_t primary = 0;  ///< row index of the original string
};

/// Forward BWT of a block (cyclic-rotation convention, no sentinel).
/// O(n log^2 n) prefix doubling.
BwtResult bwt_forward(std::span<const std::uint8_t> input);

/// Same transform computed in linear time: the cyclic rotation order is
/// recovered from the SA-IS suffix array of input+input (suffixes starting
/// in the first copy order rotations; identical rotations of periodic
/// inputs tie, which cannot change the L column). Produces a valid BWT
/// that bwt_inverse restores; for periodic inputs the primary index may
/// differ from bwt_forward's, both being correct.
BwtResult bwt_forward_sais(std::span<const std::uint8_t> input);

/// Inverse BWT.
util::Bytes bwt_inverse(std::span<const std::uint8_t> transformed,
                        std::uint32_t primary);

}  // namespace wats::workloads
