#include "workloads/sha1.hpp"

#include <cstring>

#include "util/check.hpp"

namespace wats::workloads {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int s) {
  return (x << s) | (x >> (32 - s));
}

}  // namespace

Sha1::Sha1()
    : state_{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0} {}

void Sha1::process_block(const std::uint8_t* block) {
  std::array<std::uint32_t, 80> w;
  for (std::size_t i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (std::size_t i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (std::size_t i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  WATS_CHECK_MSG(!finished_, "update after finish");
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest160 Sha1::finish() {
  WATS_CHECK_MSG(!finished_, "finish called twice");
  finished_ = true;
  const std::uint64_t bit_len = total_bytes_ * 8;
  std::array<std::uint8_t, 72> pad{};
  pad[0] = 0x80;
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  util::Bytes tail(pad.begin(), pad.begin() + static_cast<std::ptrdiff_t>(pad_len));
  util::put_u64be(tail, bit_len);
  finished_ = false;
  update(tail);
  finished_ = true;
  WATS_CHECK(buffered_ == 0);

  Digest160 out;
  for (std::size_t i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest160 Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 sha;
  sha.update(data);
  return sha.finish();
}

std::string Sha1::hash_hex(std::span<const std::uint8_t> data) {
  const Digest160 d = hash(data);
  return util::to_hex(d);
}

}  // namespace wats::workloads
