#include "workloads/lzw.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/check.hpp"
#include "workloads/bitstream.hpp"

namespace wats::workloads {

namespace {

constexpr std::uint32_t kClearCode = 256;  // resets the dictionary
constexpr std::uint32_t kFirstCode = 257;  // first dynamically assigned code

/// Key for the encoder dictionary: (prefix code, next byte) packed into 64
/// bits — avoids string keys on the hot path.
constexpr std::uint64_t pack(std::uint32_t prefix, std::uint8_t byte) {
  return (static_cast<std::uint64_t>(prefix) << 8) | byte;
}

unsigned bits_for(std::uint32_t next_code) {
  unsigned bits = 9;
  while ((1u << bits) < next_code + 1 && bits < 32) ++bits;
  return bits;
}

}  // namespace

util::Bytes lzw_compress(std::span<const std::uint8_t> input,
                         const LzwConfig& config) {
  WATS_CHECK(config.max_code_bits >= 9 && config.max_code_bits <= 24);
  const std::uint32_t max_codes = 1u << config.max_code_bits;

  BitWriter out;
  if (input.empty()) return out.take();

  std::unordered_map<std::uint64_t, std::uint32_t> dict;
  dict.reserve(max_codes);
  std::uint32_t next_code = kFirstCode;
  unsigned width = 9;

  std::uint32_t current = input[0];
  for (std::size_t i = 1; i < input.size(); ++i) {
    const std::uint8_t byte = input[i];
    const auto it = dict.find(pack(current, byte));
    if (it != dict.end()) {
      current = it->second;
      continue;
    }
    out.put(current, width);
    if (next_code < max_codes) {
      dict.emplace(pack(current, byte), next_code++);
      width = bits_for(next_code);
    } else {
      // Dictionary full: emit a clear code and start over. Adaptive reset
      // keeps the dictionary relevant on heterogeneous inputs.
      out.put(kClearCode, width);
      dict.clear();
      next_code = kFirstCode;
      width = 9;
    }
    current = byte;
  }
  out.put(current, width);
  return out.take();
}

util::Bytes lzw_decompress(std::span<const std::uint8_t> input,
                           std::size_t original_size,
                           const LzwConfig& config) {
  WATS_CHECK(config.max_code_bits >= 9 && config.max_code_bits <= 24);
  const std::uint32_t max_codes = 1u << config.max_code_bits;

  util::Bytes out;
  out.reserve(original_size);
  if (original_size == 0) return out;

  // Decoder dictionary: code -> (prefix code, first byte, last byte).
  // Strings are materialized by walking prefix links backwards. Index 256
  // is a placeholder for the clear code so that dynamic codes start at 257
  // and dict.size() always equals next_code.
  struct Entry {
    std::uint32_t prefix;
    std::uint8_t first;
    std::uint8_t last;
  };
  std::vector<Entry> dict(kFirstCode);
  for (std::uint32_t c = 0; c < 256; ++c) {
    dict[c] = {c, static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(c)};
  }
  auto reset_dict = [&] { dict.resize(kFirstCode); };

  auto emit = [&](std::uint32_t code) -> std::uint8_t {
    // Materialize the string for `code` by walking prefixes; returns the
    // first byte of the string.
    const std::size_t start = out.size();
    std::uint32_t c = code;
    while (true) {
      WATS_CHECK_MSG(c < dict.size() && c != kClearCode,
                     "corrupt LZW stream");
      out.push_back(dict[c].last);
      if (c < 256) break;
      c = dict[c].prefix;
    }
    std::reverse(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
    return out[start];
  };

  BitReader in(input);
  std::uint32_t next_code = kFirstCode;

  std::uint32_t prev = in.get(9);
  WATS_CHECK_MSG(prev < 256, "corrupt LZW stream: first code not a literal");
  std::uint8_t prev_first = emit(prev);

  while (out.size() < original_size) {
    // The encoder's width at this point accounts for the insertion it makes
    // right after emitting (see lzw_compress): one more than our next_code,
    // capped at the dictionary limit.
    const unsigned width =
        bits_for(next_code < max_codes ? next_code + 1 : max_codes);
    const std::uint32_t code = in.get(width);
    if (code == kClearCode) {
      reset_dict();
      next_code = kFirstCode;
      prev = in.get(9);
      WATS_CHECK_MSG(prev < 256, "corrupt LZW stream after clear");
      prev_first = emit(prev);
      continue;
    }
    if (code < next_code) {
      const std::uint8_t first = emit(code);
      if (next_code < max_codes) {
        dict.push_back({prev, dict[prev].first, first});
        ++next_code;
      }
      prev = code;
      prev_first = first;
    } else if (code == next_code && next_code < max_codes) {
      // The KwKwK special case: the string is prev's string plus its own
      // first byte and is being defined by this very code.
      emit(prev);
      out.push_back(prev_first);
      dict.push_back({prev, dict[prev].first, prev_first});
      ++next_code;
      prev = code;
      prev_first = dict[code].first;
    } else {
      WATS_CHECK_MSG(false, "corrupt LZW stream: code out of range");
    }
  }
  WATS_CHECK(out.size() == original_size);
  return out;
}

}  // namespace wats::workloads
