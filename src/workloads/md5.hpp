// MD5 (RFC 1321), implemented from scratch for the MD5 batch benchmark of
// Table III. Supports one-shot and incremental hashing.
//
// MD5 is used here purely as a CPU-bound workload kernel (and as the
// fingerprint function of the Dedup pipeline); it is not fit for any
// security purpose.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace wats::workloads {

using Digest128 = std::array<std::uint8_t, 16>;

class Md5 {
 public:
  Md5();

  void update(std::span<const std::uint8_t> data);
  Digest128 finish();

  /// One-shot convenience.
  static Digest128 hash(std::span<const std::uint8_t> data);
  static std::string hash_hex(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace wats::workloads
