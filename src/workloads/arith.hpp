// Binary range coder (LZMA-style carry handling) used by the DMC
// benchmark kernel. Probabilities are 16-bit fixed point: p0 in [1, 65535]
// is the probability (x / 65536) that the next bit is 0.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"
#include "util/check.hpp"

namespace wats::workloads {

class RangeEncoder {
 public:
  void encode(std::uint32_t bit, std::uint16_t p0) {
    WATS_DCHECK(p0 >= 1);
    const std::uint32_t bound = (range_ >> 16) * p0;
    if (bit == 0) {
      range_ = bound;
    } else {
      low_ += bound;
      range_ -= bound;
    }
    while (range_ < kTopValue) {
      shift_low();
      range_ <<= 8;
    }
  }

  /// Flush the coder and return the byte stream. The first output byte is
  /// a structural zero that the decoder consumes during priming.
  util::Bytes finish() {
    for (int i = 0; i < 5; ++i) shift_low();
    return std::move(out_);
  }

 private:
  static constexpr std::uint32_t kTopValue = 1u << 24;

  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      const auto carry = static_cast<std::uint8_t>(low_ >> 32);
      do {
        out_.push_back(static_cast<std::uint8_t>(cache_ + carry));
        cache_ = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00FFFFFFull) << 8;
  }

  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
  util::Bytes out_;
};

class RangeDecoder {
 public:
  explicit RangeDecoder(std::span<const std::uint8_t> data) : data_(data) {
    for (int i = 0; i < 5; ++i) {
      code_ = (code_ << 8) | next_byte();
    }
  }

  std::uint32_t decode(std::uint16_t p0) {
    WATS_DCHECK(p0 >= 1);
    const std::uint32_t bound = (range_ >> 16) * p0;
    std::uint32_t bit;
    if (code_ < bound) {
      bit = 0;
      range_ = bound;
    } else {
      bit = 1;
      code_ -= bound;
      range_ -= bound;
    }
    while (range_ < kTopValue) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
    return bit;
  }

 private:
  static constexpr std::uint32_t kTopValue = 1u << 24;

  std::uint8_t next_byte() {
    // Reading past the end yields zeros; the caller bounds the number of
    // decoded symbols, so trailing zero-fill is harmless.
    return pos_ < data_.size() ? data_[pos_++] : std::uint8_t{0};
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint32_t code_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
};

}  // namespace wats::workloads
