// Dedup — the pipeline benchmark of Table III (the paper uses PARSEC's
// dedup; see DESIGN.md for the substitution note).
//
// Stages, matching PARSEC's structure:
//   1. chunk       — content-defined chunking with a polynomial rolling hash
//   2. fingerprint — SHA-1 of each chunk
//   3. dedup       — global fingerprint index; decide new vs duplicate
//   4. compress    — LZW on chunks seen for the first time
// plus a reassemble step that writes the archive. Each stage maps to a
// distinct task class in the scheduler benchmarks.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/bytes.hpp"
#include "workloads/sha1.hpp"

namespace wats::workloads {

struct ChunkerConfig {
  std::size_t min_chunk = 512;
  std::size_t max_chunk = 16384;
  std::uint64_t boundary_mask = (1u << 11) - 1;  ///< mean chunk ~2 KiB + min
  std::uint64_t boundary_magic = 0x78;
  std::size_t window = 48;  ///< rolling-hash window length
};

struct ChunkRef {
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Stage 1: split `input` into content-defined chunks. Chunk boundaries
/// depend only on local content, so identical regions at different offsets
/// produce identical chunks (the property dedup relies on).
std::vector<ChunkRef> chunk_content(std::span<const std::uint8_t> input,
                                    const ChunkerConfig& config = {});

/// Stage 2: fingerprint one chunk.
Digest160 fingerprint_chunk(std::span<const std::uint8_t> chunk);

/// Stage 3: the global deduplication index (thread-safe: the dedup stage
/// runs concurrently with other pipeline items in the runtime benchmarks).
class DedupIndex {
 public:
  /// Returns the existing chunk id for this digest, or assigns and returns
  /// a fresh id with `is_new == true`.
  struct Lookup {
    std::uint32_t id = 0;
    bool is_new = false;
  };
  Lookup intern(const Digest160& digest);

  std::size_t unique_chunks() const;

 private:
  struct DigestHash {
    std::size_t operator()(const Digest160& d) const;
  };
  mutable std::mutex mu_;
  std::unordered_map<Digest160, std::uint32_t, DigestHash> ids_;
};

/// Archive produced by the pipeline; restorable via dedup_restore.
/// Format: u32 chunk_count, then per chunk either
///   0x01 u32 id u32 raw_size u32 comp_size <comp bytes>   (new chunk)
///   0x00 u32 id                                           (duplicate)
struct DedupStats {
  std::size_t total_chunks = 0;
  std::size_t unique_chunks = 0;
  std::size_t input_bytes = 0;
  std::size_t archive_bytes = 0;
};

/// Whole-pipeline convenience used by tests/examples (runs the stages
/// sequentially; the scheduler benchmarks run them as tasks instead).
util::Bytes dedup_archive(std::span<const std::uint8_t> input,
                          DedupStats* stats = nullptr,
                          const ChunkerConfig& config = {});

/// Reconstruct the original input from an archive.
util::Bytes dedup_restore(std::span<const std::uint8_t> archive);

}  // namespace wats::workloads
