#include "workloads/scenarios.hpp"

#include "util/check.hpp"

namespace wats::workloads {

BenchmarkSpec bursty_server() {
  BenchmarkSpec s;
  s.name = "BurstyServer";
  s.kind = BenchKind::kBatch;
  // 97% cheap requests, 3% expensive ones, 100:1 cost ratio — the classic
  // heavy-tailed service-time distribution.
  s.classes = {
      {"rpc_expensive", 800.0, 0.30, 4, 1.0},
      {"rpc_medium", 80.0, 0.20, 20, 1.0},
      {"rpc_cheap", 8.0, 0.15, 104, 1.0},
  };
  s.batches = 16;
  return s;
}

BenchmarkSpec diurnal_phases() {
  BenchmarkSpec s;
  s.name = "DiurnalPhases";
  s.kind = BenchKind::kBatch;
  s.classes = {
      // phase_scale: at night analytics jobs balloon 8x while interactive
      // traffic halves — the CLASS RATIO inverts, so stale means actively
      // mislead the allocator. Exercises §III-A's timely-update claim.
      {"analytics_job", 60.0, 0.10, 16, 1.0, 8.0},
      {"interactive_req", 40.0, 0.10, 112, 1.0, 0.5},
  };
  s.batches = 24;
  s.phase_shift_batch = 8;
  s.phase_scale = 1.0;
  return s;
}

BenchmarkSpec microservice_fanout() {
  BenchmarkSpec s;
  s.name = "MicroserviceFanout";
  s.kind = BenchKind::kPipeline;
  s.classes = {
      {"route", 4.0, 0.10, 0, 1.0},
      {"fetch_shard", 24.0, 0.25, 0, 1.0},
      {"aggregate", 160.0, 0.20, 0, 1.0},
      {"render", 12.0, 0.10, 0, 1.0},
  };
  s.pipeline_items = 512;
  s.pipeline_window = 48;
  return s;
}

BenchmarkSpec mixed_criticality() {
  BenchmarkSpec s;
  s.name = "MixedCriticality";
  s.kind = BenchKind::kBatch;
  s.classes = {
      {"critical_control", 200.0, 0.05, 6, 1.0},
      {"bulk_background", 25.0, 0.30, 122, 0.6},  // partially memory-bound
  };
  s.batches = 16;
  return s;
}

const std::vector<BenchmarkSpec>& scenario_catalog() {
  static const std::vector<BenchmarkSpec> catalog{
      bursty_server(), diurnal_phases(), microservice_fanout(),
      mixed_criticality()};
  return catalog;
}

const BenchmarkSpec* find_spec(const std::string& name) {
  for (const auto& s : paper_benchmarks()) {
    if (s.name == name) return &s;
  }
  for (const auto& s : scenario_catalog()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const BenchmarkSpec& spec_by_name(const std::string& name) {
  const BenchmarkSpec* s = find_spec(name);
  WATS_CHECK_MSG(s != nullptr, "unknown benchmark or scenario name");
  return *s;
}

}  // namespace wats::workloads
