#include "workloads/bzip2_like.hpp"

#include <vector>

#include "util/check.hpp"
#include "workloads/bitstream.hpp"
#include "workloads/bwt.hpp"
#include "workloads/huffman.hpp"
#include "workloads/mtf_rle.hpp"

namespace wats::workloads {

util::Bytes bzip2_compress(std::span<const std::uint8_t> input) {
  // SA-IS block sorting (linear time), as real bzip2-class sorters do.
  const BwtResult bwt = bwt_forward_sais(input);
  const util::Bytes mtf = mtf_encode(bwt.transformed);
  const std::vector<ZSymbol> symbols = zrle_encode(mtf);

  std::vector<std::uint64_t> freqs(kZAlphabet, 0);
  for (ZSymbol s : symbols) ++freqs[s];
  const std::vector<std::uint8_t> lengths = huffman_code_lengths(freqs);
  const std::vector<std::uint32_t> codes = canonical_codes(lengths);

  BitWriter writer;
  huffman_encode(symbols, lengths, codes, writer);
  const std::size_t payload_bits = writer.bit_count();
  const util::Bytes payload = writer.take();

  util::Bytes out;
  out.reserve(12 + kZAlphabet + payload.size());
  util::put_u32le(out, static_cast<std::uint32_t>(input.size()));
  util::put_u32le(out, bwt.primary);
  util::put_u32le(out, static_cast<std::uint32_t>(payload_bits));
  out.insert(out.end(), lengths.begin(), lengths.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

util::Bytes bzip2_decompress(std::span<const std::uint8_t> compressed) {
  WATS_CHECK_MSG(compressed.size() >= 12 + kZAlphabet,
                 "truncated bzip2 block");
  const std::uint32_t original_size = util::get_u32le(compressed, 0);
  const std::uint32_t primary = util::get_u32le(compressed, 4);
  const std::uint32_t payload_bits = util::get_u32le(compressed, 8);

  const std::span<const std::uint8_t> lengths =
      compressed.subspan(12, kZAlphabet);
  const std::span<const std::uint8_t> payload =
      compressed.subspan(12 + kZAlphabet);

  if (original_size == 0) return {};

  HuffmanDecoder decoder(lengths);
  BitReader reader(payload);
  std::vector<ZSymbol> symbols;
  while (reader.bits_consumed() < payload_bits) {
    const std::uint16_t s = decoder.decode(reader);
    symbols.push_back(s);
    if (s == kEob) break;
  }
  WATS_CHECK_MSG(!symbols.empty() && symbols.back() == kEob,
                 "bzip2 payload missing EOB");

  const util::Bytes mtf = zrle_decode(symbols);
  const util::Bytes bwt = mtf_decode(mtf);
  WATS_CHECK_MSG(bwt.size() == original_size, "bzip2 size mismatch");
  return bwt_inverse(bwt, primary);
}

util::Bytes bzip2_compress_stream(std::span<const std::uint8_t> input,
                                  std::size_t block_size) {
  WATS_CHECK(block_size > 0);
  const std::size_t blocks =
      input.empty() ? 0 : (input.size() + block_size - 1) / block_size;
  util::Bytes out;
  util::put_u32le(out, static_cast<std::uint32_t>(blocks));
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t offset = b * block_size;
    const std::size_t len = std::min(block_size, input.size() - offset);
    const util::Bytes packed = bzip2_compress(input.subspan(offset, len));
    util::put_u32le(out, static_cast<std::uint32_t>(packed.size()));
    out.insert(out.end(), packed.begin(), packed.end());
  }
  return out;
}

util::Bytes bzip2_decompress_stream(std::span<const std::uint8_t> stream) {
  WATS_CHECK(stream.size() >= 4);
  const std::uint32_t blocks = util::get_u32le(stream, 0);
  std::size_t pos = 4;
  util::Bytes out;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    WATS_CHECK(pos + 4 <= stream.size());
    const std::uint32_t size = util::get_u32le(stream, pos);
    pos += 4;
    WATS_CHECK(pos + size <= stream.size());
    const util::Bytes block = bzip2_decompress(stream.subspan(pos, size));
    out.insert(out.end(), block.begin(), block.end());
    pos += size;
  }
  return out;
}

}  // namespace wats::workloads
