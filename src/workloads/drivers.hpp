// Drivers that execute a BenchmarkSpec with the REAL kernels on the
// real-thread runtime — the counterpart of sim/workload_adapter.hpp for
// wall-clock execution. Each task class maps to an actual kernel
// invocation (hash/compress/evolve/...) via make_real_task; `scale`
// shrinks the nominal input sizes so examples and tests stay fast.
#pragma once

#include <cstdint>

#include "runtime/runtime.hpp"
#include "workloads/workload_model.hpp"

namespace wats::workloads {

struct DriverResult {
  std::uint64_t checksum = 0;   ///< XOR of per-task checksums (determinism)
  std::size_t tasks_run = 0;
  double wall_seconds = 0.0;
};

/// Run a batch benchmark: `batches` rounds (capped by the spec) of
/// tasks_per_batch real-kernel tasks with a barrier between rounds.
DriverResult run_batch_on_runtime(runtime::TaskRuntime& rt,
                                  const BenchmarkSpec& spec, double scale,
                                  std::uint64_t seed,
                                  std::size_t batches_override = 0);

/// Run a pipeline benchmark: items flow through the stages, each stage a
/// real-kernel task spawned by its predecessor.
DriverResult run_pipeline_on_runtime(runtime::TaskRuntime& rt,
                                     const BenchmarkSpec& spec, double scale,
                                     std::uint64_t seed,
                                     std::size_t items_override = 0);

/// Dispatch on spec.kind.
DriverResult run_on_runtime(runtime::TaskRuntime& rt,
                            const BenchmarkSpec& spec, double scale,
                            std::uint64_t seed);

}  // namespace wats::workloads
