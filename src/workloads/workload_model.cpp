#include "workloads/workload_model.hpp"

#include <cmath>
#include <string>

#include "util/check.hpp"
#include "workloads/bwt.hpp"
#include "workloads/bzip2_like.hpp"
#include "workloads/datagen.hpp"
#include "workloads/dedup.hpp"
#include "workloads/dmc.hpp"
#include "workloads/ferret.hpp"
#include "workloads/ga.hpp"
#include "workloads/lzw.hpp"
#include "workloads/md5.hpp"
#include "workloads/sha1.hpp"

namespace wats::workloads {

std::size_t BenchmarkSpec::tasks_per_batch() const {
  std::size_t n = 0;
  for (const auto& c : classes) n += c.tasks_per_batch;
  return n;
}

std::size_t BenchmarkSpec::stage_count() const {
  return pipeline_stages.empty() ? classes.size() : pipeline_stages.size();
}

std::size_t BenchmarkSpec::total_tasks() const {
  if (kind == BenchKind::kBatch) return tasks_per_batch() * batches;
  if (kind == BenchKind::kReplay) return replay_tasks.size();
  return pipeline_items * stage_count();
}

double BenchmarkSpec::phase_multiplier(std::size_t batch,
                                       std::size_t cls) const {
  // The latest phase whose start batch has been passed wins outright.
  const PhaseSpec* active = nullptr;
  for (const auto& p : phases) {
    if (batch > p.start_batch) active = &p;
  }
  if (active != nullptr) {
    return cls < active->class_scale.size() ? active->class_scale[cls] : 1.0;
  }
  if (phase_shift_batch > 0 && batch > phase_shift_batch) {
    return classes[cls].phase_scale > 0.0 ? classes[cls].phase_scale
                                          : phase_scale;
  }
  return 1.0;
}

namespace {

// n log2 n, the BWT/suffix-sort cost shape, in thousands.
double nlogn_kilo(double kib) {
  const double n = kib * 1024.0;
  return n * std::log2(n) / 1000.0;
}

std::vector<BenchmarkSpec> build_paper_benchmarks() {
  std::vector<BenchmarkSpec> specs;

  // Class counts per batch always sum to 128 (the paper: "the program
  // launches many parallel tasks (e.g., 128 tasks) in each batch"). Eight
  // classes per batch benchmark: real applications expose many function
  // classes, which is what lets the class-granularity Algorithm 1 balance
  // k c-groups (see DESIGN.md; the coarse 4-class mix exists only for the
  // Fig. 8 experiment via ga_mix()).

  // --- BWT: blocks of 16..256 KiB, cost ~ n log n; few big, many small.
  {
    BenchmarkSpec s;
    s.name = "BWT";
    s.kind = BenchKind::kBatch;
    const double sizes[] = {256, 192, 128, 96, 64, 48, 32, 16};
    const std::size_t counts[] = {2, 4, 8, 14, 20, 24, 26, 30};
    for (std::size_t i = 0; i < 8; ++i) {
      s.classes.push_back({"bwt_block_" + std::to_string(int(sizes[i])) + "k",
                           nlogn_kilo(sizes[i]), 0.08, counts[i]});
    }
    s.batches = 16;
    specs.push_back(std::move(s));
  }

  // --- Bzip-2: same block mix; BWT dominates, MTF/ZRLE/Huffman add a
  // linear term.
  {
    BenchmarkSpec s;
    s.name = "Bzip-2";
    s.kind = BenchKind::kBatch;
    auto cost = [](double kib) { return nlogn_kilo(kib) + kib * 3.0; };
    const double sizes[] = {256, 192, 128, 96, 64, 48, 32, 16};
    const std::size_t counts[] = {2, 4, 8, 14, 20, 24, 26, 30};
    for (std::size_t i = 0; i < 8; ++i) {
      s.classes.push_back(
          {"bzip2_block_" + std::to_string(int(sizes[i])) + "k",
           cost(sizes[i]), 0.10, counts[i]});
    }
    s.batches = 16;
    specs.push_back(std::move(s));
  }

  // --- DMC: bit-serial coding, cost linear in input size.
  {
    BenchmarkSpec s;
    s.name = "DMC";
    s.kind = BenchKind::kBatch;
    const double sizes[] = {96, 64, 48, 32, 24, 16, 12, 8};
    const std::size_t counts[] = {3, 5, 9, 13, 18, 22, 26, 32};
    for (std::size_t i = 0; i < 8; ++i) {
      s.classes.push_back({"dmc_block_" + std::to_string(int(sizes[i])) + "k",
                           sizes[i] * 8.0, 0.06, counts[i]});
    }
    s.batches = 16;
    specs.push_back(std::move(s));
  }

  // --- GA: islands configured at eight population/generation scales
  // (work ratio ~11x between the largest and smallest islands).
  {
    BenchmarkSpec s;
    s.name = "GA";
    s.kind = BenchKind::kBatch;
    const double mult[] = {16.0, 11.3, 8.0, 5.7, 4.0, 2.8, 2.0, 1.4};
    const std::size_t counts[] = {4, 6, 8, 12, 16, 20, 28, 34};
    constexpr double t = 60.0;
    const char* names[] = {"ga_island_p16", "ga_island_p11", "ga_island_p8",
                           "ga_island_p6",  "ga_island_p4",  "ga_island_p3",
                           "ga_island_p2",  "ga_island_p1"};
    for (std::size_t i = 0; i < 8; ++i) {
      s.classes.push_back({names[i], mult[i] * t, 0.07, counts[i]});
    }
    s.batches = 16;
    specs.push_back(std::move(s));
  }

  // --- LZW: dictionary coding, linear cost; files 16..512 KiB.
  {
    BenchmarkSpec s;
    s.name = "LZW";
    s.kind = BenchKind::kBatch;
    const double sizes[] = {512, 384, 256, 128, 96, 64, 32, 16};
    const std::size_t counts[] = {2, 3, 6, 12, 18, 25, 30, 32};
    for (std::size_t i = 0; i < 8; ++i) {
      s.classes.push_back({"lzw_file_" + std::to_string(int(sizes[i])) + "k",
                           sizes[i], 0.12, counts[i]});
    }
    s.batches = 16;
    specs.push_back(std::move(s));
  }

  // --- MD5: linear hashing over a strongly skewed file-size mix.
  {
    BenchmarkSpec s;
    s.name = "MD5";
    s.kind = BenchKind::kBatch;
    const double sizes[] = {8192, 4096, 2048, 1024, 512, 256, 128, 64};
    const std::size_t counts[] = {1, 2, 4, 8, 16, 24, 32, 41};
    for (std::size_t i = 0; i < 8; ++i) {
      const int kib = int(sizes[i]);
      const std::string name =
          kib >= 1024 ? "md5_file_" + std::to_string(kib / 1024) + "m"
                      : "md5_file_" + std::to_string(kib) + "k";
      s.classes.push_back({name, sizes[i], 0.05, counts[i]});
    }
    s.batches = 16;
    specs.push_back(std::move(s));
  }

  // --- SHA-1: the paper's best case (82.7% gain) — the most extreme mix:
  // two monster inputs dominate each batch; whether they land on a fast
  // core decides the makespan.
  {
    BenchmarkSpec s;
    s.name = "SHA-1";
    s.kind = BenchKind::kBatch;
    const double sizes[] = {16384, 8192, 2048, 512, 256, 128, 64, 32};
    const std::size_t counts[] = {1, 1, 4, 10, 16, 24, 32, 40};
    for (std::size_t i = 0; i < 8; ++i) {
      const int kib = int(sizes[i]);
      const std::string name =
          kib >= 1024 ? "sha1_file_" + std::to_string(kib / 1024) + "m"
                      : "sha1_file_" + std::to_string(kib) + "k";
      s.classes.push_back({name, sizes[i], 0.05, counts[i]});
    }
    s.batches = 16;
    specs.push_back(std::move(s));
  }

  // --- Dedup (pipeline): a narrow in-flight window and a dominant,
  // variable compress stage make placement decisions visible in the
  // makespan (a slow core holding a compress stalls the window).
  {
    BenchmarkSpec s;
    s.name = "Dedup";
    s.kind = BenchKind::kPipeline;
    s.classes = {
        {"dedup_chunk", 10.0, 0.15, 0},
        {"dedup_sha1", 30.0, 0.10, 0},
        {"dedup_compress_unique", 480.0, 0.60, 0},
        {"dedup_compress_dup", 20.0, 0.30, 0},
        {"dedup_reassemble", 6.0, 0.10, 0},
    };
    // Stage 3 branches on the dedup decision: unique chunks take the
    // expensive compression path, duplicates the cheap reference path.
    s.pipeline_stages = {
        {{0}, {1.0}},
        {{1}, {1.0}},
        {{2, 3}, {0.25, 0.75}},
        {{4}, {1.0}},
    };
    s.pipeline_items = 384;
    s.pipeline_window = 48;
    specs.push_back(std::move(s));
  }

  // --- Ferret (pipeline): near-uniform stage costs — the benchmark the
  // paper reports as neutral for WATS.
  {
    BenchmarkSpec s;
    s.name = "Ferret";
    s.kind = BenchKind::kPipeline;
    s.classes = {
        {"ferret_extract", 32.0, 0.08, 0},
        {"ferret_probe", 28.0, 0.08, 0},
        {"ferret_rank", 30.0, 0.08, 0},
    };
    s.pipeline_items = 768;
    s.pipeline_window = 64;
    specs.push_back(std::move(s));
  }

  return specs;
}

}  // namespace

const std::vector<BenchmarkSpec>& paper_benchmarks() {
  static const std::vector<BenchmarkSpec> specs = build_paper_benchmarks();
  return specs;
}

const BenchmarkSpec& benchmark_by_name(const std::string& name) {
  for (const auto& s : paper_benchmarks()) {
    if (s.name == name) return s;
  }
  WATS_CHECK_MSG(false, "unknown benchmark name");
  __builtin_unreachable();
}

BenchmarkSpec membound_mix() {
  BenchmarkSpec s;
  s.name = "MEMMIX";
  s.kind = BenchKind::kBatch;
  s.classes = {
      {"cpu_heavy", 480.0, 0.08, 12, 1.0},
      {"cpu_light", 120.0, 0.08, 52, 1.0},
      {"mem_heavy", 480.0, 0.08, 12, 0.15},
      {"mem_light", 120.0, 0.08, 52, 0.2},
  };
  s.batches = 16;
  return s;
}

BenchmarkSpec ga_mix(std::size_t alpha) {
  WATS_CHECK_MSG(3 * alpha <= 128, "alpha must satisfy 3*alpha <= 128");
  BenchmarkSpec s;
  s.name = "GA";
  s.kind = BenchKind::kBatch;
  // Base work t chosen so the heaviest class is comparable to the other
  // benchmarks' heavy classes.
  constexpr double t = 120.0;
  s.classes = {
      {"ga_island_8t", 8.0 * t, 0.07, alpha},
      {"ga_island_4t", 4.0 * t, 0.07, alpha},
      {"ga_island_2t", 2.0 * t, 0.07, alpha},
      {"ga_island_1t", 1.0 * t, 0.07, 128 - 3 * alpha},
  };
  s.batches = 16;
  return s;
}

double sample_work(const TaskClassSpec& cls, util::Xoshiro256& rng) {
  WATS_CHECK(cls.mean_work > 0.0);
  if (cls.cv <= 0.0) return cls.mean_work;
  // Lognormal with mean = mean_work and cv = cls.cv:
  //   sigma^2 = ln(1 + cv^2), mu = ln(mean) - sigma^2 / 2.
  const double sigma2 = std::log(1.0 + cls.cv * cls.cv);
  const double mu = std::log(cls.mean_work) - sigma2 / 2.0;
  return std::exp(mu + std::sqrt(sigma2) * rng.gaussian());
}

namespace {

/// Input size in bytes implied by a class name like "md5_file_256k".
std::size_t suffix_size_bytes(const std::string& cls) {
  const auto pos = cls.find_last_of('_');
  WATS_CHECK(pos != std::string::npos);
  const std::string tail = cls.substr(pos + 1);
  WATS_CHECK(!tail.empty());
  const char unit = tail.back();
  const std::size_t value = std::stoul(tail.substr(0, tail.size() - 1));
  switch (unit) {
    case 'k':
      return value * 1024;
    case 'm':
      return value * 1024 * 1024;
    default:
      WATS_CHECK_MSG(false, "class name lacks a size suffix");
      __builtin_unreachable();
  }
}

std::uint64_t checksum(const util::Bytes& data) {
  return util::fnv1a(data);
}

}  // namespace

std::function<std::uint64_t()> make_real_task(const std::string& bench,
                                              const std::string& task_class,
                                              double scale,
                                              std::uint64_t seed) {
  WATS_CHECK(scale > 0.0);
  auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(64, static_cast<std::size_t>(
                                         static_cast<double>(n) * scale));
  };

  if (bench == "BWT") {
    const std::size_t n = scaled(suffix_size_bytes(task_class));
    return [n, seed] {
      const util::Bytes input = text_corpus(n, seed);
      const BwtResult r = bwt_forward(input);
      return checksum(r.transformed);
    };
  }
  if (bench == "Bzip-2") {
    const std::size_t n = scaled(suffix_size_bytes(task_class));
    return [n, seed] {
      const util::Bytes input = text_corpus(n, seed);
      return checksum(bzip2_compress(input));
    };
  }
  if (bench == "DMC") {
    const std::size_t n = scaled(suffix_size_bytes(task_class));
    return [n, seed] {
      const util::Bytes input = text_corpus(n, seed);
      return checksum(dmc_compress(input));
    };
  }
  if (bench == "GA") {
    // Class names encode the island's work multiplier: "ga_island_8t" (the
    // Fig. 8 mixes) or "ga_island_p16" (the default 8-class mix).
    std::size_t mult = 1;
    const auto t_pos = task_class.rfind("_p");
    if (t_pos != std::string::npos) {
      mult = std::stoul(task_class.substr(t_pos + 2));
    } else if (task_class == "ga_island_8t") {
      mult = 8;
    } else if (task_class == "ga_island_4t") {
      mult = 4;
    } else if (task_class == "ga_island_2t") {
      mult = 2;
    }
    GaConfig cfg;
    cfg.population = 48;
    cfg.generations = std::max<std::size_t>(
        2, static_cast<std::size_t>(static_cast<double>(12 * mult) * scale));
    return [cfg, seed]() -> std::uint64_t {
      Island island(cfg, seed);
      const double best = island.evolve();
      return static_cast<std::uint64_t>(best * 1e6);
    };
  }
  if (bench == "LZW") {
    const std::size_t n = scaled(suffix_size_bytes(task_class));
    return [n, seed] {
      const util::Bytes input = text_corpus(n, seed);
      return checksum(lzw_compress(input));
    };
  }
  if (bench == "MD5") {
    const std::size_t n = scaled(suffix_size_bytes(task_class));
    return [n, seed]() -> std::uint64_t {
      const util::Bytes input = random_bytes(n, seed);
      const Digest128 d = Md5::hash(input);
      return util::fnv1a(d);
    };
  }
  if (bench == "SHA-1") {
    const std::size_t n = scaled(suffix_size_bytes(task_class));
    return [n, seed]() -> std::uint64_t {
      const util::Bytes input = random_bytes(n, seed);
      const Digest160 d = Sha1::hash(input);
      return util::fnv1a(d);
    };
  }
  if (bench == "Dedup") {
    const std::size_t n = scaled(64 * 1024);
    return [n, seed] {
      const util::Bytes input = repetitive_corpus(n, 0.6, seed);
      return checksum(dedup_archive(input));
    };
  }
  if (bench == "Ferret") {
    const std::size_t side = scaled(64);
    return [side, seed]() -> std::uint64_t {
      const auto img = synthetic_image(side, side, 6, seed);
      const FeatureVector f = extract_features(img, side, side);
      std::uint64_t h = 0;
      for (float v : f) {
        h = h * 1099511628211ULL + static_cast<std::uint64_t>(v * 1e6);
      }
      return h;
    };
  }
  WATS_CHECK_MSG(false, "unknown benchmark for make_real_task");
  __builtin_unreachable();
}

}  // namespace wats::workloads
