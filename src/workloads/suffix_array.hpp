// Suffix-array construction: SA-IS (Nong, Zhang & Chan 2009) in O(n),
// plus a naive comparator-based builder used as the test oracle.
//
// bzip2-class block sorters are suffix sorters at heart; the BWT kernel
// (workloads/bwt.hpp) can run on either the O(n log^2 n) prefix-doubling
// rotation sort or, via the s+s trick, on this linear-time SA-IS — the
// micro benchmarks compare the two.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace wats::workloads {

/// Suffix array of `input` (positions of suffixes in lexicographic order,
/// excluding the implicit sentinel suffix). Linear time, SA-IS.
std::vector<std::uint32_t> suffix_array(std::span<const std::uint8_t> input);

/// O(n^2 log n) oracle for tests.
std::vector<std::uint32_t> suffix_array_naive(
    std::span<const std::uint8_t> input);

}  // namespace wats::workloads
