#include "workloads/suffix_array.hpp"

#include <algorithm>
#include <string_view>

#include "util/check.hpp"

namespace wats::workloads {

namespace {

/// Core SA-IS recursion. `s` must end with a unique smallest sentinel
/// (value 0, appearing exactly once, at the end). `K` is the maximum
/// symbol value. Returns the full suffix array including the sentinel
/// suffix (which always sorts first).
std::vector<std::int32_t> sais(const std::vector<std::int32_t>& s,
                               std::int32_t K) {
  const auto n = static_cast<std::int32_t>(s.size());
  WATS_DCHECK(n >= 1 && s[static_cast<std::size_t>(n - 1)] == 0);
  std::vector<std::int32_t> sa(static_cast<std::size_t>(n), -1);
  if (n == 1) {
    sa[0] = 0;
    return sa;
  }

  // Suffix types: S if s[i..] < s[i+1..] in the induced order.
  std::vector<bool> is_s(static_cast<std::size_t>(n));
  is_s[static_cast<std::size_t>(n - 1)] = true;
  for (std::int32_t i = n - 2; i >= 0; --i) {
    const auto ui = static_cast<std::size_t>(i);
    is_s[ui] = s[ui] < s[ui + 1] || (s[ui] == s[ui + 1] && is_s[ui + 1]);
  }
  auto is_lms = [&](std::int32_t i) {
    return i > 0 && is_s[static_cast<std::size_t>(i)] &&
           !is_s[static_cast<std::size_t>(i - 1)];
  };

  std::vector<std::int32_t> bkt(static_cast<std::size_t>(K) + 1);
  auto fill_buckets = [&](bool heads) {
    std::fill(bkt.begin(), bkt.end(), 0);
    for (std::int32_t c : s) ++bkt[static_cast<std::size_t>(c)];
    std::int32_t sum = 0;
    for (std::size_t c = 0; c <= static_cast<std::size_t>(K); ++c) {
      sum += bkt[c];
      bkt[c] = heads ? sum - bkt[c] : sum;
    }
  };

  auto induce = [&](const std::vector<std::int32_t>& lms_in_order) {
    std::fill(sa.begin(), sa.end(), -1);
    // Seed: LMS suffixes at their bucket tails, last first.
    fill_buckets(/*heads=*/false);
    for (auto it = lms_in_order.rbegin(); it != lms_in_order.rend(); ++it) {
      sa[static_cast<std::size_t>(--bkt[static_cast<std::size_t>(
          s[static_cast<std::size_t>(*it)])])] = *it;
    }
    // Induce L-type from the left.
    fill_buckets(/*heads=*/true);
    for (std::int32_t i = 0; i < n; ++i) {
      const std::int32_t j = sa[static_cast<std::size_t>(i)] - 1;
      if (j >= 0 && !is_s[static_cast<std::size_t>(j)]) {
        sa[static_cast<std::size_t>(
            bkt[static_cast<std::size_t>(s[static_cast<std::size_t>(j)])]++)] =
            j;
      }
    }
    // Induce S-type from the right.
    fill_buckets(/*heads=*/false);
    for (std::int32_t i = n - 1; i >= 0; --i) {
      const std::int32_t j = sa[static_cast<std::size_t>(i)] - 1;
      if (j >= 0 && is_s[static_cast<std::size_t>(j)]) {
        sa[static_cast<std::size_t>(--bkt[static_cast<std::size_t>(
            s[static_cast<std::size_t>(j)])])] = j;
      }
    }
  };

  // First pass: approximate order of the LMS suffixes.
  std::vector<std::int32_t> lms;
  for (std::int32_t i = 1; i < n; ++i) {
    if (is_lms(i)) lms.push_back(i);
  }
  induce(lms);

  // Extract the LMS suffixes in their induced order and name the LMS
  // substrings.
  std::vector<std::int32_t> sorted_lms;
  sorted_lms.reserve(lms.size());
  for (std::int32_t i = 0; i < n; ++i) {
    const std::int32_t p = sa[static_cast<std::size_t>(i)];
    if (p > 0 && is_lms(p)) sorted_lms.push_back(p);
  }

  auto lms_equal = [&](std::int32_t a, std::int32_t b) {
    if (a == n - 1 || b == n - 1) return false;  // sentinel LMS is unique
    std::int32_t i = 0;
    while (true) {
      const bool al = is_lms(a + i), bl = is_lms(b + i);
      if (i > 0 && al && bl) return true;
      if (al != bl) return false;
      if (s[static_cast<std::size_t>(a + i)] !=
          s[static_cast<std::size_t>(b + i)]) {
        return false;
      }
      ++i;
    }
  };

  std::vector<std::int32_t> name(static_cast<std::size_t>(n), -1);
  std::int32_t names = 0;
  std::int32_t prev = -1;
  for (std::int32_t p : sorted_lms) {
    if (prev == -1 || !lms_equal(prev, p)) ++names;
    name[static_cast<std::size_t>(p)] = names - 1;
    prev = p;
  }

  // Order the LMS suffixes exactly.
  std::vector<std::int32_t> lms_order(lms.size());
  if (names == static_cast<std::int32_t>(lms.size())) {
    // All names distinct: the induced order is already exact.
    lms_order = sorted_lms;
  } else {
    // Recurse on the reduced string (names in LMS position order).
    std::vector<std::int32_t> reduced;
    reduced.reserve(lms.size());
    for (std::int32_t p : lms) {
      reduced.push_back(name[static_cast<std::size_t>(p)]);
    }
    // The sentinel's LMS gets the smallest name (0) and sits at the end of
    // `reduced`, so the recursion precondition holds.
    const auto sub_sa = sais(reduced, names - 1);
    for (std::size_t i = 0; i < lms.size(); ++i) {
      lms_order[i] = lms[static_cast<std::size_t>(sub_sa[i])];
    }
  }

  induce(lms_order);
  return sa;
}

}  // namespace

std::vector<std::uint32_t> suffix_array(std::span<const std::uint8_t> input) {
  std::vector<std::int32_t> s;
  s.reserve(input.size() + 1);
  for (std::uint8_t b : input) s.push_back(static_cast<std::int32_t>(b) + 1);
  s.push_back(0);  // unique smallest sentinel
  const auto sa = sais(s, 256);
  std::vector<std::uint32_t> out;
  out.reserve(input.size());
  for (std::int32_t p : sa) {
    if (p != static_cast<std::int32_t>(input.size())) {
      out.push_back(static_cast<std::uint32_t>(p));
    }
  }
  return out;
}

std::vector<std::uint32_t> suffix_array_naive(
    std::span<const std::uint8_t> input) {
  std::vector<std::uint32_t> sa(input.size());
  for (std::uint32_t i = 0; i < input.size(); ++i) sa[i] = i;
  const std::string_view view(reinterpret_cast<const char*>(input.data()),
                              input.size());
  std::sort(sa.begin(), sa.end(), [&](std::uint32_t a, std::uint32_t b) {
    return view.substr(a) < view.substr(b);
  });
  return sa;
}

}  // namespace wats::workloads
