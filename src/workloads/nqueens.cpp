#include "workloads/nqueens.hpp"

#include "util/check.hpp"

namespace wats::workloads {

namespace {

/// Bitboard backtracking: cols/diag1/diag2 mark attacked columns on the
/// current row; free bits are candidate placements.
std::uint64_t solve(unsigned n, unsigned row, std::uint32_t cols,
                    std::uint32_t diag1, std::uint32_t diag2) {
  if (row == n) return 1;
  std::uint64_t count = 0;
  const std::uint32_t mask = (n == 32 ? 0xFFFFFFFFu : ((1u << n) - 1));
  std::uint32_t free = mask & ~(cols | diag1 | diag2);
  while (free != 0) {
    const std::uint32_t bit = free & (0u - free);  // lowest set bit
    free ^= bit;
    count += solve(n, row + 1, cols | bit, (diag1 | bit) << 1,
                   (diag2 | bit) >> 1);
  }
  return count;
}

struct PrefixState {
  std::uint32_t cols = 0, diag1 = 0, diag2 = 0;
  bool valid = true;
};

PrefixState apply_prefix(unsigned n, const QueensPrefix& prefix) {
  PrefixState st;
  const std::uint32_t mask = (n == 32 ? 0xFFFFFFFFu : ((1u << n) - 1));
  for (unsigned col : prefix.rows) {
    WATS_CHECK(col < n);
    const std::uint32_t bit = 1u << col;
    if ((mask & ~(st.cols | st.diag1 | st.diag2) & bit) == 0) {
      st.valid = false;
      return st;
    }
    st.cols |= bit;
    st.diag1 = (st.diag1 | bit) << 1;
    st.diag2 = (st.diag2 | bit) >> 1;
  }
  return st;
}

void collect_prefixes(unsigned n, unsigned depth, unsigned row,
                      std::uint32_t cols, std::uint32_t diag1,
                      std::uint32_t diag2, QueensPrefix& current,
                      std::vector<QueensPrefix>& out) {
  if (row == depth) {
    out.push_back(current);
    return;
  }
  const std::uint32_t mask = (n == 32 ? 0xFFFFFFFFu : ((1u << n) - 1));
  std::uint32_t free = mask & ~(cols | diag1 | diag2);
  while (free != 0) {
    const std::uint32_t bit = free & (0u - free);
    free ^= bit;
    unsigned col = 0;
    while (((bit >> col) & 1u) == 0) ++col;
    current.rows.push_back(col);
    collect_prefixes(n, depth, row + 1, cols | bit, (diag1 | bit) << 1,
                     (diag2 | bit) >> 1, current, out);
    current.rows.pop_back();
  }
}

}  // namespace

std::uint64_t nqueens_count(unsigned n) {
  WATS_CHECK(n >= 1 && n <= 32);
  return solve(n, 0, 0, 0, 0);
}

std::vector<QueensPrefix> nqueens_prefixes(unsigned n, unsigned depth) {
  WATS_CHECK(depth <= n);
  std::vector<QueensPrefix> out;
  QueensPrefix current;
  collect_prefixes(n, depth, 0, 0, 0, 0, current, out);
  return out;
}

std::uint64_t nqueens_count_from(unsigned n, const QueensPrefix& prefix) {
  const PrefixState st = apply_prefix(n, prefix);
  if (!st.valid) return 0;
  return solve(n, static_cast<unsigned>(prefix.rows.size()), st.cols,
               st.diag1, st.diag2);
}

}  // namespace wats::workloads
