// Synthetic input corpora for the workload kernels. All generators are
// seed-deterministic so tests and benchmarks are reproducible.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace wats::workloads {

/// Pseudo-natural text: zipf-distributed words over a synthetic lexicon,
/// spaces and occasional punctuation/newlines. Compresses like prose,
/// which matters for the BWT/Bzip-2/DMC/LZW kernels.
util::Bytes text_corpus(std::size_t size, std::uint64_t seed);

/// Uniform random bytes (incompressible; worst case for the coders).
util::Bytes random_bytes(std::size_t size, std::uint64_t seed);

/// Redundant data for the Dedup pipeline: a pool of base blocks repeated
/// with occasional point mutations. `redundancy` in [0,1] is the fraction
/// of blocks drawn from the pool rather than generated fresh.
util::Bytes repetitive_corpus(std::size_t size, double redundancy,
                              std::uint64_t seed);

/// A smooth synthetic grayscale image (sum of random gaussian blobs),
/// row-major `width x height`, values in [0, 1]. Input of the Ferret
/// feature-extraction stage.
std::vector<float> synthetic_image(std::size_t width, std::size_t height,
                                   std::size_t blobs, std::uint64_t seed);

}  // namespace wats::workloads
