// Scenario catalog: workload patterns beyond the paper's Table III,
// modeling situations a production scheduler meets. Each is an ordinary
// BenchmarkSpec, so every tool (sweep, simulate_machine, the experiment
// harness) accepts them.
//
//  * bursty_server   — a request mix dominated by cheap calls with rare,
//                      very expensive ones (heavy-tailed service times).
//  * diurnal_phases  — a long-running service whose per-class workloads
//                      shift mid-run (phase change; exercises history
//                      adaptation / the EWMA estimator).
//  * microservice_fanout — a pipeline with a wide cheap fan-out stage and
//                      one expensive aggregation stage.
//  * mixed_criticality — few latency-critical heavy tasks among bulk
//                      background work (the case where wait times, not
//                      makespan, are the interesting metric).
#pragma once

#include "workloads/workload_model.hpp"

namespace wats::workloads {

BenchmarkSpec bursty_server();
BenchmarkSpec diurnal_phases();
BenchmarkSpec microservice_fanout();
BenchmarkSpec mixed_criticality();

/// All catalog scenarios (for sweeps/tests).
const std::vector<BenchmarkSpec>& scenario_catalog();

/// Lookup across paper benchmarks AND scenarios; aborts on unknown names.
const BenchmarkSpec& spec_by_name(const std::string& name);

/// Non-aborting lookup (the scenario layer's workload resolution reports
/// unknown names as validation errors instead of dying).
const BenchmarkSpec* find_spec(const std::string& name);

}  // namespace wats::workloads
