#include "workloads/dedup.hpp"

#include "util/check.hpp"
#include "workloads/lzw.hpp"

namespace wats::workloads {

std::vector<ChunkRef> chunk_content(std::span<const std::uint8_t> input,
                                    const ChunkerConfig& config) {
  WATS_CHECK(config.min_chunk > 0 && config.min_chunk < config.max_chunk);
  WATS_CHECK(config.window > 0);

  std::vector<ChunkRef> chunks;
  if (input.empty()) return chunks;

  // Polynomial rolling hash h = sum(b[i] * P^(w-1-i)) mod 2^64 over a
  // sliding window; a boundary is declared when the masked hash hits the
  // magic value (content-defined, offset-independent).
  constexpr std::uint64_t kP = 0x3B9ACA07ULL;
  // Precompute P^(window) for O(1) removal of the outgoing byte.
  std::uint64_t p_pow = 1;
  for (std::size_t i = 0; i < config.window; ++i) p_pow *= kP;

  std::size_t chunk_start = 0;
  std::uint64_t hash = 0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    hash = hash * kP + input[i];
    const std::size_t in_chunk = i + 1 - chunk_start;
    if (in_chunk > config.window) {
      hash -= p_pow * input[i - config.window];
    }
    const bool at_boundary =
        in_chunk >= config.min_chunk &&
        ((hash & config.boundary_mask) == config.boundary_magic);
    if (at_boundary || in_chunk >= config.max_chunk) {
      chunks.push_back({chunk_start, in_chunk});
      chunk_start = i + 1;
      hash = 0;
    }
  }
  if (chunk_start < input.size()) {
    chunks.push_back({chunk_start, input.size() - chunk_start});
  }
  return chunks;
}

Digest160 fingerprint_chunk(std::span<const std::uint8_t> chunk) {
  return Sha1::hash(chunk);
}

std::size_t DedupIndex::DigestHash::operator()(const Digest160& d) const {
  // The digest is already uniform; fold the first 8 bytes.
  std::size_t h = 0;
  for (std::size_t i = 0; i < sizeof(h); ++i) {
    h = (h << 8) | d[i];
  }
  return h;
}

DedupIndex::Lookup DedupIndex::intern(const Digest160& digest) {
  std::lock_guard lock(mu_);
  auto [it, inserted] =
      ids_.emplace(digest, static_cast<std::uint32_t>(ids_.size()));
  return {it->second, inserted};
}

std::size_t DedupIndex::unique_chunks() const {
  std::lock_guard lock(mu_);
  return ids_.size();
}

util::Bytes dedup_archive(std::span<const std::uint8_t> input,
                          DedupStats* stats, const ChunkerConfig& config) {
  const std::vector<ChunkRef> chunks = chunk_content(input, config);
  DedupIndex index;

  util::Bytes out;
  util::put_u32le(out, static_cast<std::uint32_t>(chunks.size()));
  for (const ChunkRef& ref : chunks) {
    const auto chunk = input.subspan(ref.offset, ref.length);
    const Digest160 digest = fingerprint_chunk(chunk);
    const DedupIndex::Lookup lookup = index.intern(digest);
    if (lookup.is_new) {
      const util::Bytes compressed = lzw_compress(chunk);
      out.push_back(0x01);
      util::put_u32le(out, lookup.id);
      util::put_u32le(out, static_cast<std::uint32_t>(ref.length));
      util::put_u32le(out, static_cast<std::uint32_t>(compressed.size()));
      out.insert(out.end(), compressed.begin(), compressed.end());
    } else {
      out.push_back(0x00);
      util::put_u32le(out, lookup.id);
    }
  }

  if (stats != nullptr) {
    stats->total_chunks = chunks.size();
    stats->unique_chunks = index.unique_chunks();
    stats->input_bytes = input.size();
    stats->archive_bytes = out.size();
  }
  return out;
}

util::Bytes dedup_restore(std::span<const std::uint8_t> archive) {
  WATS_CHECK(archive.size() >= 4);
  const std::uint32_t chunk_count = util::get_u32le(archive, 0);
  std::size_t pos = 4;

  std::vector<util::Bytes> store;  // chunk id -> raw bytes
  util::Bytes out;
  for (std::uint32_t c = 0; c < chunk_count; ++c) {
    WATS_CHECK(pos + 1 <= archive.size());
    const std::uint8_t tag = archive[pos++];
    if (tag == 0x01) {
      WATS_CHECK(pos + 12 <= archive.size());
      const std::uint32_t id = util::get_u32le(archive, pos);
      const std::uint32_t raw_size = util::get_u32le(archive, pos + 4);
      const std::uint32_t comp_size = util::get_u32le(archive, pos + 8);
      pos += 12;
      WATS_CHECK(pos + comp_size <= archive.size());
      util::Bytes raw =
          lzw_decompress(archive.subspan(pos, comp_size), raw_size);
      pos += comp_size;
      WATS_CHECK_MSG(id == store.size(), "dedup archive ids out of order");
      out.insert(out.end(), raw.begin(), raw.end());
      store.push_back(std::move(raw));
    } else {
      WATS_CHECK_MSG(tag == 0x00, "corrupt dedup archive tag");
      WATS_CHECK(pos + 4 <= archive.size());
      const std::uint32_t id = util::get_u32le(archive, pos);
      pos += 4;
      WATS_CHECK(id < store.size());
      out.insert(out.end(), store[id].begin(), store[id].end());
    }
  }
  return out;
}

}  // namespace wats::workloads
