#include "workloads/ga.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "util/check.hpp"

namespace wats::workloads {

double rastrigin(const std::vector<double>& x) {
  constexpr double kA = 10.0;
  double sum = kA * static_cast<double>(x.size());
  for (double xi : x) {
    sum += xi * xi - kA * std::cos(2.0 * std::numbers::pi * xi);
  }
  return sum;
}

Island::Island(const GaConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  WATS_CHECK(config_.population >= 2);
  WATS_CHECK(config_.genome_length >= 1);
  WATS_CHECK(config_.tournament >= 1);
  population_.resize(config_.population);
  for (auto& ind : population_) {
    ind.genome.resize(config_.genome_length);
    for (auto& g : ind.genome) {
      g = rng_.uniform(config_.domain_min, config_.domain_max);
    }
    evaluate(ind);
  }
}

void Island::evaluate(Individual& ind) const { ind.fitness = rastrigin(ind.genome); }

const Individual& Island::tournament_pick(util::Xoshiro256& rng) const {
  const Individual* best = &population_[rng.pick_index(population_)];
  for (std::size_t i = 1; i < config_.tournament; ++i) {
    const Individual& challenger = population_[rng.pick_index(population_)];
    if (challenger.fitness < best->fitness) best = &challenger;
  }
  return *best;
}

double Island::evolve() {
  std::vector<Individual> next;
  next.reserve(population_.size());
  for (std::size_t gen = 0; gen < config_.generations; ++gen) {
    next.clear();
    // Elitism: keep the current best unchanged.
    next.push_back(best());
    while (next.size() < population_.size()) {
      Individual child = tournament_pick(rng_);
      if (rng_.chance(config_.crossover_rate)) {
        const Individual& other = tournament_pick(rng_);
        // Blend (BLX-0) crossover: uniform pick within the parent interval.
        for (std::size_t g = 0; g < child.genome.size(); ++g) {
          const double lo = std::min(child.genome[g], other.genome[g]);
          const double hi = std::max(child.genome[g], other.genome[g]);
          child.genome[g] = lo == hi ? lo : rng_.uniform(lo, hi);
        }
      }
      for (auto& g : child.genome) {
        if (rng_.chance(config_.mutation_rate)) {
          // Gaussian step, clamped to the domain.
          g = std::clamp(g + rng_.gaussian() * config_.mutation_sigma,
                         config_.domain_min, config_.domain_max);
        }
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    population_.swap(next);
  }
  return best().fitness;
}

const Individual& Island::best() const {
  return *std::min_element(population_.begin(), population_.end(),
                           [](const Individual& a, const Individual& b) {
                             return a.fitness < b.fitness;
                           });
}

void Island::immigrate(const std::vector<Individual>& immigrants) {
  if (immigrants.empty()) return;
  // Replace the worst |immigrants| individuals.
  std::vector<std::size_t> order(population_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return population_[a].fitness > population_[b].fitness;
  });
  for (std::size_t i = 0; i < immigrants.size() && i < order.size(); ++i) {
    population_[order[i]] = immigrants[i];
  }
}

std::vector<Individual> Island::emigrants(std::size_t n) const {
  std::vector<Individual> sorted = population_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Individual& a, const Individual& b) {
              return a.fitness < b.fitness;
            });
  if (sorted.size() > n) sorted.resize(n);
  return sorted;
}

double run_island_ga(std::vector<GaConfig> island_configs, std::size_t batches,
                     std::size_t migrants, std::uint64_t seed) {
  WATS_CHECK(!island_configs.empty());
  util::SplitMix64 seeder(seed);
  std::vector<Island> islands;
  islands.reserve(island_configs.size());
  for (const auto& cfg : island_configs) {
    islands.emplace_back(cfg, seeder.next());
  }

  double global_best = islands.front().best().fitness;
  for (std::size_t b = 0; b < batches; ++b) {
    for (auto& island : islands) {
      global_best = std::min(global_best, island.evolve());
    }
    // Ring migration: island i sends its elite to island (i+1) % n.
    std::vector<std::vector<Individual>> outbound;
    outbound.reserve(islands.size());
    for (const auto& island : islands) {
      outbound.push_back(island.emigrants(migrants));
    }
    for (std::size_t i = 0; i < islands.size(); ++i) {
      islands[(i + 1) % islands.size()].immigrate(outbound[i]);
    }
  }
  return global_best;
}

}  // namespace wats::workloads
