// SHA-1 (FIPS 180-1), implemented from scratch for the SHA-1 batch
// benchmark of Table III and as the chunk fingerprint of the Dedup
// pipeline. Workload kernel only — not for security use.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace wats::workloads {

using Digest160 = std::array<std::uint8_t, 20>;

class Sha1 {
 public:
  Sha1();

  void update(std::span<const std::uint8_t> data);
  Digest160 finish();

  static Digest160 hash(std::span<const std::uint8_t> data);
  static std::string hash_hex(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace wats::workloads
