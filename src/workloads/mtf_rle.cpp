#include "workloads/mtf_rle.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "util/check.hpp"

namespace wats::workloads {

namespace {

struct MtfTable {
  std::array<std::uint8_t, 256> order;

  MtfTable() {
    std::iota(order.begin(), order.end(), 0);
  }

  /// Position of `byte`, then move it to the front.
  std::uint8_t encode(std::uint8_t byte) {
    std::uint8_t pos = 0;
    while (order[pos] != byte) ++pos;
    std::copy_backward(order.begin(), order.begin() + pos,
                       order.begin() + pos + 1);
    order[0] = byte;
    return pos;
  }

  /// Byte at position `pos`, then move it to the front.
  std::uint8_t decode(std::uint8_t pos) {
    const std::uint8_t byte = order[pos];
    std::copy_backward(order.begin(), order.begin() + pos,
                       order.begin() + pos + 1);
    order[0] = byte;
    return byte;
  }
};

}  // namespace

util::Bytes mtf_encode(std::span<const std::uint8_t> input) {
  MtfTable table;
  util::Bytes out;
  out.reserve(input.size());
  for (std::uint8_t b : input) out.push_back(table.encode(b));
  return out;
}

util::Bytes mtf_decode(std::span<const std::uint8_t> input) {
  MtfTable table;
  util::Bytes out;
  out.reserve(input.size());
  for (std::uint8_t b : input) out.push_back(table.decode(b));
  return out;
}

std::vector<ZSymbol> zrle_encode(std::span<const std::uint8_t> mtf) {
  std::vector<ZSymbol> out;
  out.reserve(mtf.size() / 2 + 2);

  auto flush_run = [&](std::uint64_t run) {
    // Bijective base-2: run length n >= 1 is written as digits d in {1, 2}
    // (RUNA for 1, RUNB for 2), least significant digit first, where
    // n = sum(d_i * 2^i).
    while (run > 0) {
      if (run & 1) {
        out.push_back(kRunA);
        run = (run - 1) / 2;
      } else {
        out.push_back(kRunB);
        run = (run - 2) / 2;
      }
    }
  };

  std::uint64_t zero_run = 0;
  for (std::uint8_t v : mtf) {
    if (v == 0) {
      ++zero_run;
      continue;
    }
    flush_run(zero_run);
    zero_run = 0;
    out.push_back(static_cast<ZSymbol>(v + 1));
  }
  flush_run(zero_run);
  out.push_back(kEob);
  return out;
}

util::Bytes zrle_decode(std::span<const ZSymbol> symbols) {
  util::Bytes out;
  std::uint64_t run = 0;        // accumulated zero-run value
  std::uint64_t digit_weight = 1;  // 2^i for the next RUNA/RUNB digit

  auto flush_run = [&] {
    out.insert(out.end(), static_cast<std::size_t>(run), std::uint8_t{0});
    run = 0;
    digit_weight = 1;
  };

  for (ZSymbol s : symbols) {
    if (s == kRunA) {
      run += digit_weight;
      digit_weight *= 2;
    } else if (s == kRunB) {
      run += 2 * digit_weight;
      digit_weight *= 2;
    } else if (s == kEob) {
      flush_run();
      return out;
    } else {
      WATS_CHECK_MSG(s >= 2 && s <= 256, "invalid ZRLE symbol");
      flush_run();
      out.push_back(static_cast<std::uint8_t>(s - 1));
    }
  }
  WATS_CHECK_MSG(false, "ZRLE stream missing EOB");
  __builtin_unreachable();
}

}  // namespace wats::workloads
