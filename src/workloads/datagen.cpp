#include "workloads/datagen.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wats::workloads {

util::Bytes text_corpus(std::size_t size, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);

  // Build a lexicon of 1024 words, lengths 2..10, letter frequencies
  // loosely English-like via a zipf over a scrambled alphabet.
  constexpr std::size_t kLexicon = 1024;
  util::ZipfSampler letter_dist(26, 1.0);
  std::vector<std::string> words(kLexicon);
  for (auto& w : words) {
    const std::size_t len = 2 + static_cast<std::size_t>(rng.bounded(9));
    w.resize(len);
    for (auto& c : w) {
      c = static_cast<char>('a' + letter_dist.sample(rng));
    }
  }

  util::ZipfSampler word_dist(kLexicon, 1.1);
  util::Bytes out;
  out.reserve(size + 16);
  std::size_t since_newline = 0;
  while (out.size() < size) {
    const std::string& w = words[word_dist.sample(rng)];
    out.insert(out.end(), w.begin(), w.end());
    ++since_newline;
    if (rng.chance(0.08)) out.push_back('.');
    if (since_newline >= 12 && rng.chance(0.3)) {
      out.push_back('\n');
      since_newline = 0;
    } else {
      out.push_back(' ');
    }
  }
  out.resize(size);
  return out;
}

util::Bytes random_bytes(std::size_t size, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  util::Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.bounded(256));
  return out;
}

util::Bytes repetitive_corpus(std::size_t size, double redundancy,
                              std::uint64_t seed) {
  WATS_CHECK(redundancy >= 0.0 && redundancy <= 1.0);
  util::Xoshiro256 rng(seed);

  constexpr std::size_t kBlock = 4096;
  constexpr std::size_t kPool = 32;
  std::vector<util::Bytes> pool(kPool);
  for (std::size_t i = 0; i < kPool; ++i) {
    pool[i] = text_corpus(kBlock, rng.next());
  }

  util::Bytes out;
  out.reserve(size + kBlock);
  while (out.size() < size) {
    if (rng.chance(redundancy)) {
      util::Bytes block = pool[rng.pick_index(pool)];
      // Occasional point mutation so duplicate detection has near-misses.
      if (rng.chance(0.1)) {
        block[rng.pick_index(block)] ^= 0x5A;
      }
      out.insert(out.end(), block.begin(), block.end());
    } else {
      const util::Bytes fresh = text_corpus(kBlock, rng.next());
      out.insert(out.end(), fresh.begin(), fresh.end());
    }
  }
  out.resize(size);
  return out;
}

std::vector<float> synthetic_image(std::size_t width, std::size_t height,
                                   std::size_t blobs, std::uint64_t seed) {
  WATS_CHECK(width > 0 && height > 0);
  util::Xoshiro256 rng(seed);
  std::vector<float> img(width * height, 0.0f);

  struct Blob {
    double cx, cy, sigma, amplitude;
  };
  std::vector<Blob> bs(blobs);
  for (auto& b : bs) {
    b.cx = rng.uniform(0.0, static_cast<double>(width));
    b.cy = rng.uniform(0.0, static_cast<double>(height));
    b.sigma = rng.uniform(2.0, static_cast<double>(std::max(width, height)) / 4.0);
    b.amplitude = rng.uniform(0.2, 1.0);
  }

  float peak = 1e-6f;
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      double v = 0.0;
      for (const auto& b : bs) {
        const double dx = static_cast<double>(x) - b.cx;
        const double dy = static_cast<double>(y) - b.cy;
        v += b.amplitude *
             std::exp(-(dx * dx + dy * dy) / (2.0 * b.sigma * b.sigma));
      }
      img[y * width + x] = static_cast<float>(v);
      peak = std::max(peak, img[y * width + x]);
    }
  }
  for (auto& v : img) v /= peak;
  return img;
}

}  // namespace wats::workloads
