// Dynamic Markov Coding (Cormack & Horspool 1987) — the DMC batch
// benchmark of Table III.
//
// A bit-level finite-state predictor: states carry 0/1 transition counts;
// heavily used transitions are "cloned" to refine the model. Predictions
// feed the binary range coder in arith.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytes.hpp"

namespace wats::workloads {

struct DmcConfig {
  /// Cloning thresholds (MIN_CNT1/MIN_CNT2 in the original paper).
  double clone_visits = 2.0;
  double clone_remainder = 2.0;
  /// Node budget; the model resets to the initial braid when exhausted.
  std::size_t max_nodes = 1u << 20;
};

/// The adaptive model, shared verbatim by encoder and decoder (both sides
/// must make identical predictions and updates).
class DmcModel {
 public:
  explicit DmcModel(const DmcConfig& config);

  /// Probability (16-bit fixed point, in [1, 65535]) that the next bit is 0.
  std::uint16_t predict_p0() const;

  /// Advance the model with the actual bit.
  void update(std::uint32_t bit);

  std::size_t node_count() const { return nodes_.size(); }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Node {
    std::uint32_t next[2];
    double count[2];
  };

  void reset();

  DmcConfig config_;
  std::vector<Node> nodes_;
  std::uint32_t current_ = 0;
  std::uint64_t resets_ = 0;
};

/// Compress a buffer (bit-serial, MSB first within each byte).
util::Bytes dmc_compress(std::span<const std::uint8_t> input,
                         const DmcConfig& config = {});

/// Decompress exactly `original_size` bytes.
util::Bytes dmc_decompress(std::span<const std::uint8_t> compressed,
                           std::size_t original_size,
                           const DmcConfig& config = {});

}  // namespace wats::workloads
