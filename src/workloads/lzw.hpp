// Lempel–Ziv–Welch compression for the LZW batch benchmark of Table III
// and the compression stage of the Dedup pipeline.
//
// Variable-width codes (9..16 bits) with dictionary reset when full,
// mirroring the classic `compress(1)` behaviour (without its header).
#pragma once

#include <span>

#include "util/bytes.hpp"

namespace wats::workloads {

struct LzwConfig {
  unsigned max_code_bits = 16;  ///< dictionary capacity is 2^max_code_bits.
};

/// Compress `input`; output is self-delimiting given the original length
/// (the decoder takes the expected output size).
util::Bytes lzw_compress(std::span<const std::uint8_t> input,
                         const LzwConfig& config = {});

/// Decompress exactly `original_size` bytes from `input`. Aborts on corrupt
/// streams (round-trip / fuzz tests exercise the guard paths).
util::Bytes lzw_decompress(std::span<const std::uint8_t> input,
                           std::size_t original_size,
                           const LzwConfig& config = {});

}  // namespace wats::workloads
