// Island-model Genetic Algorithm — the GA batch benchmark of Table III and
// the workload used by Figs. 7, 8 and 9.
//
// Each task evolves one island (a private population) for a fixed number
// of generations; between batches the driver migrates elite individuals
// along a ring. Work per island scales with population x generations x
// genome length, which is how the paper's "8t/4t/2t/t" workload mix is
// realized (islands of different sizes are distinct task classes).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace wats::workloads {

/// Minimization objective: the Rastrigin function, a standard multimodal
/// GA testbed with global minimum 0 at the origin.
double rastrigin(const std::vector<double>& x);

struct GaConfig {
  std::size_t genome_length = 16;
  std::size_t population = 64;
  std::size_t generations = 40;
  std::size_t tournament = 3;
  double crossover_rate = 0.9;
  double mutation_rate = 0.05;
  double mutation_sigma = 0.3;
  double domain_min = -5.12;
  double domain_max = 5.12;
};

struct Individual {
  std::vector<double> genome;
  double fitness = 0.0;  ///< objective value; lower is better.
};

/// One island: owns a population and can evolve independently (= one task).
class Island {
 public:
  Island(const GaConfig& config, std::uint64_t seed);

  /// Run `config.generations` generations of tournament selection, blend
  /// crossover and gaussian mutation. Returns the best objective value.
  double evolve();

  const Individual& best() const;

  /// Replace the island's worst individuals with copies of `immigrants`.
  void immigrate(const std::vector<Individual>& immigrants);

  /// Top `n` individuals (copies), best first.
  std::vector<Individual> emigrants(std::size_t n) const;

  const GaConfig& config() const { return config_; }

 private:
  void evaluate(Individual& ind) const;
  const Individual& tournament_pick(util::Xoshiro256& rng) const;

  GaConfig config_;
  std::vector<Individual> population_;
  mutable util::Xoshiro256 rng_;
};

/// Whole-application driver used by tests and examples: `islands` islands
/// evolved for `batches` rounds with ring migration in between; returns the
/// global best objective value. (The scheduler benchmarks instead submit
/// each Island::evolve as one runtime task.)
double run_island_ga(std::vector<GaConfig> island_configs,
                     std::size_t batches, std::size_t migrants,
                     std::uint64_t seed);

}  // namespace wats::workloads
