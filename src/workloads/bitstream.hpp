// Bit-level reader/writer shared by the LZW and Huffman coders.
// Bits are emitted MSB-first within each byte.
#pragma once

#include <cstdint>
#include <span>

#include "util/bytes.hpp"
#include "util/check.hpp"

namespace wats::workloads {

class BitWriter {
 public:
  /// Append the low `bits` bits of `value`, most significant bit first.
  void put(std::uint32_t value, unsigned bits) {
    WATS_DCHECK(bits <= 32);
    for (unsigned i = bits; i > 0; --i) {
      const std::uint32_t bit = (value >> (i - 1)) & 1u;
      acc_ = static_cast<std::uint8_t>((acc_ << 1) | bit);
      if (++filled_ == 8) {
        out_.push_back(acc_);
        acc_ = 0;
        filled_ = 0;
      }
    }
  }

  /// Flush any partial byte (zero-padded) and return the buffer.
  util::Bytes take() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - filled_)));
      acc_ = 0;
      filled_ = 0;
    }
    return std::move(out_);
  }

  std::size_t bit_count() const { return out_.size() * 8 + filled_; }

 private:
  util::Bytes out_;
  std::uint8_t acc_ = 0;
  unsigned filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `bits` bits MSB-first. Reading past the end returns zero bits
  /// (callers track logical length separately).
  std::uint32_t get(unsigned bits) {
    WATS_DCHECK(bits <= 32);
    std::uint32_t v = 0;
    for (unsigned i = 0; i < bits; ++i) {
      v = (v << 1) | get_bit();
    }
    return v;
  }

  std::uint32_t get_bit() {
    if (byte_ >= data_.size()) return 0;
    const std::uint32_t bit = (data_[byte_] >> (7 - bit_)) & 1u;
    if (++bit_ == 8) {
      bit_ = 0;
      ++byte_;
    }
    return bit;
  }

  bool exhausted() const { return byte_ >= data_.size(); }
  std::size_t bits_consumed() const { return byte_ * 8 + bit_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t byte_ = 0;
  unsigned bit_ = 0;
};

}  // namespace wats::workloads
