#include "workloads/dmc.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "workloads/arith.hpp"

namespace wats::workloads {

DmcModel::DmcModel(const DmcConfig& config) : config_(config) {
  WATS_CHECK(config_.max_nodes >= 512);
  reset();
}

void DmcModel::reset() {
  // Initial machine: the classic byte "braid" — a complete binary tree
  // over the 8 bit positions of a byte; both transitions of the last level
  // return to the root, so the model starts as an order-0-within-byte
  // predictor. Tree node for (level l, path p) sits at index 2^l - 1 + p.
  nodes_.clear();
  nodes_.reserve(512);
  for (std::uint32_t level = 0; level < 8; ++level) {
    const std::uint32_t next_base = (1u << (level + 1)) - 1;
    for (std::uint32_t path = 0; path < (1u << level); ++path) {
      Node node{};
      if (level == 7) {
        node.next[0] = node.next[1] = 0;  // back to the root
      } else {
        node.next[0] = next_base + path * 2;
        node.next[1] = next_base + path * 2 + 1;
      }
      node.count[0] = node.count[1] = 0.2;
      nodes_.push_back(node);
    }
  }
  current_ = 0;
  ++resets_;
}

std::uint16_t DmcModel::predict_p0() const {
  const Node& s = nodes_[current_];
  // Laplace-style smoothing keeps freshly cloned (low-count) states from
  // committing too hard; without it incompressible input expands several
  // percent instead of a fraction of one.
  constexpr double kDelta = 0.45;
  const double p0 = (s.count[0] + kDelta) /
                    (s.count[0] + s.count[1] + 2.0 * kDelta);
  const auto scaled = static_cast<std::int32_t>(p0 * 65536.0);
  return static_cast<std::uint16_t>(std::clamp(scaled, 1, 65535));
}

void DmcModel::update(std::uint32_t bit) {
  WATS_DCHECK(bit <= 1);
  Node& s = nodes_[current_];
  const std::uint32_t target = s.next[bit];
  Node& t = nodes_[target];
  const double t_total = t.count[0] + t.count[1];

  // Cloning rule: if this transition is hot and the target state has
  // substantial traffic from elsewhere, split the target so this context
  // gets a private successor.
  if (s.count[bit] >= config_.clone_visits &&
      t_total - s.count[bit] >= config_.clone_remainder) {
    if (nodes_.size() >= config_.max_nodes) {
      reset();
      // After a reset `current_` is the root; redo the update against the
      // fresh model so encoder and decoder stay in lockstep.
      Node& root = nodes_[current_];
      root.count[bit] += 1.0;
      current_ = root.next[bit];
      return;
    }
    Node clone{};
    const double ratio = s.count[bit] / t_total;
    clone.next[0] = t.next[0];
    clone.next[1] = t.next[1];
    clone.count[0] = t.count[0] * ratio;
    clone.count[1] = t.count[1] * ratio;
    t.count[0] -= clone.count[0];
    t.count[1] -= clone.count[1];
    const auto clone_index = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(clone);
    // Note: `s` and `t` references may be dangling after push_back;
    // re-index through the vector.
    nodes_[current_].next[bit] = clone_index;
    nodes_[current_].count[bit] += 1.0;
    current_ = clone_index;
    return;
  }

  s.count[bit] += 1.0;
  current_ = target;
}

util::Bytes dmc_compress(std::span<const std::uint8_t> input,
                         const DmcConfig& config) {
  DmcModel model(config);
  RangeEncoder encoder;
  for (std::uint8_t byte : input) {
    for (int b = 7; b >= 0; --b) {
      const std::uint32_t bit = (byte >> b) & 1u;
      encoder.encode(bit, model.predict_p0());
      model.update(bit);
    }
  }
  return encoder.finish();
}

util::Bytes dmc_decompress(std::span<const std::uint8_t> compressed,
                           std::size_t original_size,
                           const DmcConfig& config) {
  DmcModel model(config);
  RangeDecoder decoder(compressed);
  util::Bytes out;
  out.reserve(original_size);
  for (std::size_t i = 0; i < original_size; ++i) {
    std::uint8_t byte = 0;
    for (int b = 7; b >= 0; --b) {
      const std::uint32_t bit = decoder.decode(model.predict_p0());
      model.update(bit);
      byte = static_cast<std::uint8_t>((byte << 1) | bit);
    }
    out.push_back(byte);
  }
  return out;
}

}  // namespace wats::workloads
