// Umbrella header for the WATS library.
//
// Most users need only this include plus either runtime/runtime.hpp's
// TaskRuntime (real threads) or sim/experiment.hpp's harness (virtual
// time); both are pulled in here for convenience.
#pragma once

// The paper's contribution (substrate-independent).
#include "core/allocation.hpp"     // Algorithm 1
#include "core/cluster.hpp"        // task clusters (§III-A)
#include "core/cmpi.hpp"           // §IV-E CMPI / DVFS extension
#include "core/dnc_detect.hpp"     // §IV-E divide-and-conquer fallback
#include "core/hetsched.hpp"       // §VI future work: heterogeneous accelerators
#include "core/history_io.hpp"     // history persistence (warm starts)
#include "core/lower_bound.hpp"    // Lemma 1 / Theorem 1
#include "core/preference.hpp"     // preference lists (§III-B)
#include "core/procsched.hpp"      // §IV-E process-level adaptation
#include "core/task_class.hpp"     // Algorithm 2 history
#include "core/topology.hpp"       // AMC machine descriptions (Table II)

// The real-thread task runtime.
#include "runtime/runtime.hpp"

// The virtual-time evaluation substrate.
#include "sim/experiment.hpp"
#include "sim/trace.hpp"

// Benchmark workload models (Table III).
#include "workloads/workload_model.hpp"
