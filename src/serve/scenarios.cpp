#include "serve/scenarios.hpp"

#include <algorithm>
#include <cstdio>

#include "core/topology.hpp"
#include "util/check.hpp"

namespace wats::serve {

workloads::BenchmarkSpec serving_batch_job(const std::string& bench,
                                           std::size_t batches,
                                           std::size_t task_div) {
  workloads::BenchmarkSpec spec = workloads::benchmark_by_name(bench);
  WATS_CHECK(spec.kind == workloads::BenchKind::kBatch);
  WATS_CHECK(batches > 0 && task_div > 0);
  spec.batches = batches;
  for (auto& cls : spec.classes) {
    cls.tasks_per_batch = std::max<std::size_t>(1, cls.tasks_per_batch / task_div);
  }
  return spec;
}

workloads::BenchmarkSpec serving_pipeline_job(const std::string& bench,
                                              std::size_t items,
                                              std::size_t window) {
  workloads::BenchmarkSpec spec = workloads::benchmark_by_name(bench);
  WATS_CHECK(spec.kind == workloads::BenchKind::kPipeline);
  WATS_CHECK(items > 0 && window > 0);
  spec.pipeline_items = items;
  spec.pipeline_window = window;
  return spec;
}

namespace {

std::vector<ServingScenario> build_scenarios() {
  std::vector<ServingScenario> scenarios;

  // The serving machine: 16 cores in 8 DISTINCT-frequency c-groups (the
  // topology constructor merges equal-frequency groups, and group-
  // granular leases want granularity).
  const std::string machine =
      "2x2.6+2x2.4+2x2.2+2x2.0+2x1.4+2x1.2+2x1.0+2x0.8";

  {
    ServingScenario s;
    s.name = "serving-sweep";
    s.summary =
        "Acceptance sweep: 4 lease policies x {poisson,mmpp} x 3 loads, "
        "120 jobs over 3 tenants, no admission control";
    s.base.machine = machine;
    // Near-homogeneous job sizes (expected works ~5.3k/5.3k/5.8k): the
    // sweep measures POLICY differences, not job-size luck — and the
    // shortest-remaining-first flavor of the greedy policy has no heavy
    // tail of giant jobs to starve.
    s.base.job_specs = {serving_batch_job("LZW", 2, 4),
                        serving_batch_job("GA", 1, 5),
                        serving_pipeline_job("Dedup", 32, 8)};
    s.base.jobs = 120;
    s.base.tenants = 3;
    s.base.deadline_scale = 6.0;
    s.base.sim.seed = 97;
    s.policies = {LeasePolicy::kFcfs, LeasePolicy::kEqui,
                  LeasePolicy::kSpeedupGreedy, LeasePolicy::kDeadline};
    s.arrival_kinds = {ArrivalKind::kPoisson, ArrivalKind::kMmpp};
    s.load_factors = {0.6, 1.0, 1.4};
    scenarios.push_back(std::move(s));
  }

  {
    ServingScenario s;
    s.name = "serving-smoke";
    s.summary =
        "CI smoke: {equi,greedy,shared} x {poisson,diurnal} x 2 loads, "
        "48 jobs over 2 tenants, admission control on";
    s.base.machine = machine;
    s.base.job_specs = {serving_batch_job("MD5", 1, 8),
                        serving_batch_job("GA", 2, 4)};
    s.base.jobs = 48;
    s.base.tenants = 2;
    s.base.deadline_scale = 6.0;
    s.base.sim.seed = 1009;
    s.base.admission.enabled = true;
    s.base.admission.token_burst = 6.0;
    s.base.admission.queue_cap = 16;
    s.policies = {LeasePolicy::kEqui, LeasePolicy::kSpeedupGreedy,
                  LeasePolicy::kShared};
    s.arrival_kinds = {ArrivalKind::kPoisson, ArrivalKind::kDiurnal};
    s.load_factors = {0.8, 1.3};
    scenarios.push_back(std::move(s));
  }

  return scenarios;
}

}  // namespace

const std::vector<ServingScenario>& serving_scenarios() {
  static const std::vector<ServingScenario> scenarios = build_scenarios();
  return scenarios;
}

const ServingScenario* find_serving_scenario(const std::string& name) {
  for (const ServingScenario& s : serving_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ServingConfig cell_config(const ServingScenario& scenario,
                          LeasePolicy policy, ArrivalKind arrival,
                          double load) {
  ServingConfig config = scenario.base;
  config.policy = policy;
  config.arrivals.kind = arrival;

  // Self-calibrating load: rate = load * capacity / mean job work, so
  // load 1.0 offers exactly the machine's aggregate service capacity.
  const core::AmcTopology topo = core::amc_by_name_or_spec(config.machine);
  double mean_work = 0.0;
  for (const auto& spec : config.job_specs) {
    mean_work += expected_total_work(spec);
  }
  mean_work /= static_cast<double>(config.job_specs.size());
  WATS_CHECK(mean_work > 0.0);
  const double rate = load * topo.total_capacity() / mean_work;
  config.arrivals.rate = rate;
  // Keep burstiness shape-invariant across loads: dwells and the diurnal
  // period scale with the mean interarrival time 1 / rate.
  config.arrivals.calm_dwell = 20.0 / rate;
  config.arrivals.burst_dwell = 2.5 / rate;
  config.arrivals.diurnal_period = 30.0 / rate;
  if (config.admission.enabled) {
    // Admit at most ~90% of the saturation rate: overload sheds load
    // through rejections instead of unbounded queueing.
    config.admission.token_rate =
        0.9 * topo.total_capacity() / mean_work;
  }
  return config;
}

std::vector<ServingCell> run_serving_scenario(
    const ServingScenario& scenario) {
  std::vector<ServingCell> cells;
  for (const ArrivalKind arrival : scenario.arrival_kinds) {
    for (const double load : scenario.load_factors) {
      for (const LeasePolicy policy : scenario.policies) {
        ServingCell cell;
        cell.policy = policy;
        cell.arrival = arrival;
        cell.load = load;
        cell.result =
            run_serving(cell_config(scenario, policy, arrival, load));
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

std::string render_serving_table(const ServingScenario& scenario,
                                 const std::vector<ServingCell>& cells) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "serving scenario %s: %s\n",
                scenario.name.c_str(), scenario.summary.c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "%-8s %-5s %-9s %10s %10s %10s %8s %8s %6s %6s %6s\n",
                "arrival", "load", "policy", "p50_lat", "p99_lat",
                "p999_lat", "slowdown", "goodput", "admit", "reject",
                "churn");
  out += line;
  for (const ServingCell& cell : cells) {
    const ServingResult& r = cell.result;
    std::snprintf(line, sizeof(line),
                  "%-8s %-5.2f %-9s %10.1f %10.1f %10.1f %8.2f %8.3f "
                  "%6llu %6llu %6llu\n",
                  to_string(cell.arrival), cell.load,
                  to_string(cell.policy), r.p50_latency, r.p99_latency,
                  r.p999_latency, r.mean_slowdown, r.goodput,
                  static_cast<unsigned long long>(r.admitted),
                  static_cast<unsigned long long>(r.rejected),
                  static_cast<unsigned long long>(r.lease_churn));
    out += line;
  }
  return out;
}

}  // namespace wats::serve
