// Declarative serving scenarios: named load sweeps over (policy x arrival
// process x load factor) grids, runnable from bench_serving, wats_run and
// the tests from one registry.
//
// A ServingScenario fixes the machine, the job templates and the sweep
// axes; cell_config() materializes one grid cell into a concrete
// ServingConfig. The arrival rate is self-calibrating: a load factor L
// sets the rate to L * machine_capacity / mean_job_work, i.e. L = 1 is
// the machine's saturation point, L > 1 is overload. The MMPP dwells and
// the diurnal period scale with the mean interarrival so burstiness is
// shape-invariant across loads.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "serve/serving.hpp"

namespace wats::serve {

struct ServingScenario {
  std::string name;
  std::string summary;
  ServingConfig base;  ///< machine, specs, jobs, tenants, admission, sim
  std::vector<LeasePolicy> policies;
  std::vector<ArrivalKind> arrival_kinds;
  std::vector<double> load_factors;
};

/// One evaluated grid cell.
struct ServingCell {
  LeasePolicy policy = LeasePolicy::kFcfs;
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double load = 1.0;
  ServingResult result;
};

/// The built-in serving scenarios:
///  * "serving-sweep" — the committed acceptance sweep: 4 lease policies
///    x {poisson, mmpp} x 3 loads on a 16-core 8-group machine; the tests
///    assert speedup-curve-greedy beats EQUI on p99 latency at the
///    highest load.
///  * "serving-smoke" — the CI smoke: smaller grid with admission control
///    enabled (rejections exercised) and the shared-scheduler baseline.
const std::vector<ServingScenario>& serving_scenarios();

/// Lookup by name; nullptr when unknown.
const ServingScenario* find_serving_scenario(const std::string& name);

/// Materialize one grid cell: sets policy and the arrival process, and
/// calibrates rate / dwells / period (and the admission token rate) to
/// the load factor.
ServingConfig cell_config(const ServingScenario& scenario,
                          LeasePolicy policy, ArrivalKind arrival,
                          double load);

/// Run the full grid of a scenario, cells ordered arrival-major, then
/// load, then policy.
std::vector<ServingCell> run_serving_scenario(
    const ServingScenario& scenario);

/// Render the grid as the human-readable sweep table (one row per cell:
/// p50/p99/p999 latency, slowdown, goodput, admitted/rejected, lease
/// churn). Shared by bench_serving and wats_run.
std::string render_serving_table(const ServingScenario& scenario,
                                 const std::vector<ServingCell>& cells);

/// Shrunken batch benchmark for serving jobs: `bench` with the batch
/// count replaced and each class's per-batch task count divided by
/// `task_div` (floor 1). Exported so the tests build the same jobs the
/// committed scenarios run.
workloads::BenchmarkSpec serving_batch_job(const std::string& bench,
                                           std::size_t batches,
                                           std::size_t task_div);

/// Shrunken pipeline benchmark: `bench` with the item count and window
/// replaced.
workloads::BenchmarkSpec serving_pipeline_job(const std::string& bench,
                                              std::size_t items,
                                              std::size_t window);

}  // namespace wats::serve
