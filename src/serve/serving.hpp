// The multi-tenant serving layer: an open-loop stream of jobs sharing one
// AMC machine under admission control, malleable c-group leases, and
// per-tenant accounting.
//
// This is the layer above WATS: the paper schedules TASKS within one
// application; run_serving() schedules JOBS (each one a whole
// BenchmarkSpec instance) across the machine. Jobs arrive from a seeded
// LoadGenerator (serve/arrivals.hpp), pass admission control (token
// bucket + queue cap), and are granted c-group leases by a pluggable
// policy (serve/lease.hpp). Lease maps are epoch-versioned
// core::PartitionPlans published through the standard PlanGate, so lease
// churn is observable with the same machinery as partition-plan churn.
//
// Everything is deterministic: the arrival stream, admission decisions,
// lease assignments and per-job latencies are a pure function of the
// ServingConfig (the property harness in tests/serving_test.cpp pins this
// down). LeasePolicy::kShared degenerates to the multiprogram co-run —
// one task-level scheduler, no leases — which is the bit-parity bridge to
// run_multiprogram that guards bench_multiprogram's migration onto this
// layer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/partition_plan.hpp"
#include "obs/metrics.hpp"
#include "serve/arrivals.hpp"
#include "serve/lease.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"
#include "workloads/workload_model.hpp"

namespace wats::serve {

/// Admission control at job arrival: a token bucket (refilled in virtual
/// time) plus a cap on admitted-but-unfinished jobs. Disabled by default —
/// every job is admitted — so closed co-run parity holds out of the box.
struct AdmissionConfig {
  bool enabled = false;
  double token_rate = 1e-3;  ///< tokens per unit virtual time
  double token_burst = 4.0;  ///< bucket capacity (initial fill)
  std::size_t queue_cap = 64;  ///< max admitted-but-unfinished jobs
};

struct ServingConfig {
  /// Machine spec (Table II name or "NxF+NxF+..."). Serving machines want
  /// several distinct-frequency c-groups: leases are group-granular, and
  /// AmcTopology merges equal-frequency groups.
  std::string machine = "2x2.6+2x2.4+2x2.2+2x2.0+2x1.4+2x1.2+2x1.0+2x0.8";
  /// Job templates; arrival i instantiates job_specs[i % size].
  std::vector<workloads::BenchmarkSpec> job_specs;
  ArrivalConfig arrivals;
  std::size_t jobs = 32;     ///< total arrivals to generate
  std::size_t tenants = 1;   ///< arrivals round-robin over tenants
  LeasePolicy policy = LeasePolicy::kSpeedupGreedy;
  /// Task-level scheduler for LeasePolicy::kShared (the no-lease co-run
  /// baseline; ignored otherwise).
  sim::SchedulerKind shared_kind = sim::SchedulerKind::kWats;
  AdmissionConfig admission;
  /// Deadline = arrival + deadline_scale * ideal solo duration.
  double deadline_scale = 4.0;
  /// Publication gate for lease maps (default: skip identical maps).
  core::PlanGate lease_gate;
  sim::SimConfig sim;
  /// Test/diagnostic hook: called at every lease recomputation with the
  /// fresh per-group owners (JobView::job values, kUnleased for free
  /// groups) and the runnable-job views the policy saw. Null = unused.
  std::function<void(double now, const std::vector<std::size_t>& owners,
                     const std::vector<JobView>& views)>
      lease_observer;
};

/// Outcome of one generated arrival.
struct JobOutcome {
  std::size_t tenant = 0;
  std::size_t spec_index = 0;
  double arrival = 0.0;
  bool admitted = false;
  double finish = 0.0;    ///< virtual finish time (admitted jobs)
  double latency = 0.0;   ///< finish - arrival
  double ideal = 0.0;     ///< estimated solo duration on the idle machine
  double slowdown = 0.0;  ///< latency / ideal
  double deadline = 0.0;  ///< absolute deadline
  bool met_deadline = false;
};

/// Per-tenant DRF accounting over fast/slow capacity-seconds. "Fast"
/// groups are those at or above the midpoint frequency (F1 + Fk) / 2; the
/// dominant share is the larger of the tenant's fast and slow shares of
/// the machine-seconds the run offered.
struct TenantUsage {
  double fast_capacity_seconds = 0.0;
  double slow_capacity_seconds = 0.0;
  double dominant_share = 0.0;
};

struct ServingResult {
  std::vector<JobOutcome> jobs;  ///< one per generated arrival, in order
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t finished = 0;
  double makespan = 0.0;
  /// Exact nearest-rank percentiles over finished-job latencies.
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double p999_latency = 0.0;
  double mean_slowdown = 0.0;
  /// Finished jobs that met their deadline, per 1000 units of makespan.
  double goodput = 0.0;
  /// Lease-plan pipeline counters (zero under LeasePolicy::kShared).
  std::uint64_t lease_publishes = 0;
  std::uint64_t lease_skips = 0;
  std::uint64_t lease_epoch = 0;
  std::uint64_t lease_churn = 0;  ///< total groups that changed owner
  std::size_t peak_leased_groups = 0;
  std::size_t peak_leased_cores = 0;
  std::size_t peak_active_jobs = 0;
  std::vector<TenantUsage> tenants;
  sim::RunStats stats;
};

/// Run one serving experiment to completion. Deterministic: the result is
/// a pure function of `config`.
ServingResult run_serving(const ServingConfig& config);

/// Exact nearest-rank percentile (p in [0, 1]) of `values`: the smallest
/// element with at least ceil(p * n) elements <= it. Returns 0 on an
/// empty input; the single-element stream returns that element for every
/// p. This is the exact companion to obs::Histogram::quantile_bound
/// (which only returns a log2-bucket upper bound).
double exact_percentile(std::vector<double> values, double p);

/// Estimated solo duration of one job spec on an idle `topo`: the larger
/// of the work bound (total expected work / machine capacity) and the
/// barrier bound (per-batch critical path at F1). The denominator of a
/// job's slowdown and the base of its deadline.
double ideal_duration(const workloads::BenchmarkSpec& spec,
                      const core::AmcTopology& topo);

/// Expected total F1-normalized work of one job spec (phase multipliers
/// included).
double expected_total_work(const workloads::BenchmarkSpec& spec);

/// Export a result into an obs registry: counters (jobs_arrived,
/// jobs_admitted, jobs_rejected, jobs_finished, lease_publishes,
/// lease_skips, lease_churn), gauges (active_leases = peak leased groups,
/// serving_goodput, serving_p99_latency) and the job_latency_ns histogram
/// (virtual latency at 1 unit = 1 us, recorded in ns).
void export_metrics(const ServingResult& result,
                    obs::MetricsRegistry& registry);

}  // namespace wats::serve
