// Malleable c-group leases: which job owns which c-group, and when a new
// lease map is worth publishing.
//
// The serving layer allocates whole c-groups to jobs ("leases") and
// recomputes the allocation on arrival / finish / deadline events. The
// allocation itself is a pure function of the job set — assign_leases()
// below — so every policy is deterministic and unit-testable without a
// simulator. The resulting lease map is packaged as a core::PartitionPlan
// (items = machine c-groups, groups = job slots, slot 0 = unleased) so
// lease publication reuses the plan machinery wholesale: PlanDiff counts
// the groups whose owner changed (lease churn), plan_gate_allows decides
// whether the new map is worth swinging to (identical maps are skipped by
// default), and epochs count published lease maps exactly like published
// partition plans.
//
// Policies (see docs/SERVING.md):
//  * kFcfs          — jobs in arrival order take the fastest groups up to
//                     their parallelism cap.
//  * kEqui          — hierarchical equipartition: groups (capacity-sorted)
//                     are dealt cyclically across tenants with eligible
//                     jobs, then within a tenant to its oldest uncapped
//                     job. At every instant the per-tenant group counts
//                     differ by at most one — the DRF-ish fairness bound
//                     the property tests pin down.
//  * kSpeedupGreedy — each group goes to the job with the best marginal
//                     gain on a concave speedup curve (geometric
//                     saturation toward the parallelism cap, clipped at
//                     the job's instantaneous demand), weighted by a
//                     response ratio (wait + remaining) / remaining with
//                     a floored denominator — demand-aware water-filling
//                     with HRRN aging, the malleable-jobs model. Beats
//                     EQUI's processor-sharing on p99 latency at
//                     saturation load (the acceptance cell the serving
//                     tests assert).
//  * kDeadline      — earliest-deadline-first: like kFcfs but in deadline
//                     order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/governor.hpp"
#include "core/partition_plan.hpp"
#include "core/topology.hpp"

namespace wats::serve {

enum class LeasePolicy {
  kShared,  ///< no leases: all jobs share one task-level scheduler
  kFcfs,
  kEqui,
  kSpeedupGreedy,
  kDeadline,
};

/// What a lease policy needs to know about one runnable job.
struct JobView {
  std::size_t job = 0;     ///< stable job index (arrival order)
  std::size_t tenant = 0;
  double arrival = 0.0;
  double deadline = 0.0;
  double remaining = 0.0;  ///< estimated remaining F1-normalized work
  double total_work = 0.0;  ///< expected work at admission (aging floor)
  std::size_t max_cores = 1;  ///< parallelism cap (speedup saturates here)
  /// Instantaneous runnable parallelism (queued tasks + cores currently
  /// serving the job). kSpeedupGreedy clips its speedup curve here so a
  /// draining job (barrier tail, pipeline flush) cannot hoard cores it
  /// has no tasks for; the default leaves the curve uncapped.
  std::size_t demand = static_cast<std::size_t>(-1);
};

/// Sentinel owner for groups no job can use (all jobs capped).
inline constexpr std::size_t kUnleased = static_cast<std::size_t>(-1);

/// Allocate every c-group of `topo` to at most one job: result[g] is the
/// owning JobView::job, or kUnleased. Pure and deterministic: the output
/// depends only on the arguments. Every job with max_cores > 0 is
/// guaranteed a group whenever fewer jobs than groups are runnable, so no
/// runnable job starves once earlier jobs finish. `incumbents` (optional,
/// same shape as the result) names each group's current owner;
/// kSpeedupGreedy gives the incumbent a 10% gain edge for that specific
/// group, so marginal-gain oscillation has to clear a real bar before a
/// lease changes hands. Other policies have stable orderings and ignore
/// it. `speeds` (optional) is the live DVFS view: when present, dealing
/// order, marginal rates and capacities price groups at their CURRENT
/// governed frequency instead of the topology's base; null (or a static
/// view) reproduces the base-frequency math bit for bit.
std::vector<std::size_t> assign_leases(
    LeasePolicy policy, const core::AmcTopology& topo,
    const std::vector<JobView>& jobs, double now,
    const std::vector<std::size_t>* incumbents = nullptr,
    const core::SpeedView* speeds = nullptr);

/// Usable capacity of a job that owns `groups` (indices into topo): sums
/// group capacity counting at most max_cores cores, fastest groups first —
/// the piecewise-linear speedup curve of the malleable-jobs model.
/// With `speeds`, both the ordering and the per-core rate use the live
/// governed frequency.
double usable_capacity(const core::AmcTopology& topo,
                       const std::vector<std::size_t>& groups,
                       std::size_t max_cores,
                       const core::SpeedView* speeds = nullptr);

/// Package a lease assignment (per-group owner, kUnleased allowed) as a
/// PartitionPlan: map items are machine c-groups, map groups are job slots
/// (slot 0 = unleased, slot j+1 = job j), and the diff vs `previous`
/// counts groups whose owner changed — weight_moved is the capacity that
/// changed hands. `makespan` carries the predicted completion horizon of
/// the assignment (max remaining/usable over leased jobs) so the churn
/// gate's improvement rule can price a re-lease; `slots` fixes the slot
/// count so maps stay comparable across recomputes.
core::PartitionPlan build_lease_plan(const std::vector<std::size_t>& owners,
                                     std::size_t slots,
                                     const core::AmcTopology& topo,
                                     const std::vector<JobView>& jobs,
                                     const core::PartitionPlan* previous,
                                     const core::SpeedView* speeds = nullptr);

const char* to_string(LeasePolicy policy);
/// Inverse of to_string; aborts on unknown names (CLI/scenario wiring).
LeasePolicy lease_policy_from_string(const std::string& name);

}  // namespace wats::serve
