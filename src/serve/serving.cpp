#include "serve/serving.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <utility>

#include "sim/workload_adapter.hpp"
#include "util/check.hpp"

namespace wats::serve {

namespace {

constexpr std::size_t kNoJob = static_cast<std::size_t>(-1);

/// One admitted job instance.
struct Job {
  std::size_t arrival_index = 0;  ///< index into the arrival stream
  std::size_t tenant = 0;
  std::size_t spec_index = 0;
  double arrival = 0.0;
  double deadline = 0.0;
  double ideal = 0.0;
  // unique_ptr: the driver holds a reference to the spec, so the spec's
  // address must survive vector reallocation (same as CompositeWorkload).
  std::unique_ptr<workloads::BenchmarkSpec> spec;
  std::unique_ptr<sim::Workload> driver;
  std::uint64_t outstanding = 0;
  double remaining = 0.0;  ///< estimated remaining F1-normalized work
  double total_work = 0.0;  ///< expected work at admission
  std::size_t max_cores = 1;
  double finish = 0.0;
  bool done = false;
};

/// State shared between the workload driver and the lease scheduler.
struct ServingShared {
  const core::AmcTopology* topo = nullptr;
  std::vector<std::size_t> job_of_class;  ///< class id -> job index
  std::vector<std::size_t> group_owner;   ///< group -> job index/kUnleased
  std::vector<std::deque<sim::SimTask>> queues;  ///< per-job FIFO
  std::vector<std::size_t> running;  ///< per-job tasks currently on cores
};

/// Task-level scheduler for leased serving: each job has one FIFO queue;
/// a core only takes work from the job that currently leases its c-group.
/// No stealing, no snatching, no randomness — serving determinism does
/// not depend on engine RNG state, and lease semantics stay strict.
class LeaseScheduler : public sim::Scheduler {
 public:
  explicit LeaseScheduler(ServingShared& shared) : shared_(shared) {}

  void bind(sim::Engine& engine) override { (void)engine; }

  void on_spawn(sim::Engine& engine, sim::SimTask task,
                core::CoreIndex spawner) override {
    (void)engine;
    (void)spawner;
    WATS_CHECK_MSG(task.cls < shared_.job_of_class.size() &&
                       shared_.job_of_class[task.cls] != kNoJob,
                   "spawned task belongs to no serving job");
    shared_.queues[shared_.job_of_class[task.cls]].push_back(
        std::move(task));
  }

  std::optional<sim::Acquired> acquire(sim::Engine& engine,
                                       core::CoreIndex core) override {
    (void)engine;
    const core::GroupIndex g = shared_.topo->group_of_core(core);
    const std::size_t owner = shared_.group_owner[g];
    if (owner == kUnleased) return std::nullopt;
    auto& queue = shared_.queues[owner];
    if (queue.empty()) return std::nullopt;
    sim::Acquired acquired{std::move(queue.front()), 0.0};
    queue.pop_front();
    ++shared_.running[owner];
    return acquired;
  }

  bool has_pending() const override {
    for (const auto& q : shared_.queues) {
      if (!q.empty()) return true;
    }
    return false;
  }

 private:
  ServingShared& shared_;
};

/// The workload driver: materializes the arrival stream, admits jobs,
/// runs each admitted job's BenchmarkSpec driver, and (in lease mode)
/// recomputes leases on arrival / finish / deadline events.
class ServingWorkload : public sim::Workload {
 public:
  ServingWorkload(const ServingConfig& config,
                  const core::AmcTopology& topo,
                  core::TaskClassRegistry& registry,
                  std::vector<JobArrival> arrivals, ServingShared& shared)
      : config_(config),
        topo_(topo),
        registry_(registry),
        arrivals_(std::move(arrivals)),
        shared_(shared),
        lease_mode_(config.policy != LeasePolicy::kShared),
        tokens_(config.admission.token_burst),
        outcomes_(arrivals_.size()) {
    shared_.topo = &topo_;
    shared_.group_owner.assign(topo_.group_count(), kUnleased);
    usage_.resize(config_.tenants);
    for (std::size_t i = 0; i < arrivals_.size(); ++i) {
      outcomes_[i].tenant = arrivals_[i].tenant;
      outcomes_[i].spec_index = arrivals_[i].spec_index;
      outcomes_[i].arrival = arrivals_[i].time;
    }
  }

  void start(sim::Engine& engine) override {
    // t = 0 arrivals run inline, in stream order — in closed mode this
    // reproduces CompositeWorkload::start's member loop exactly (same
    // interning order, same driver seeds), which is what the
    // run_multiprogram cross-check rests on.
    std::size_t i = 0;
    for (; i < arrivals_.size() && arrivals_[i].time <= 0.0; ++i) {
      arrive(engine, i);
    }
    for (; i < arrivals_.size(); ++i) {
      const std::size_t index = i;
      engine.call_at(arrivals_[i].time, [this, index](sim::Engine& e) {
        arrive(e, index);
      });
    }
    if (lease_mode_) recompute_leases(engine);
  }

  void on_complete(sim::Engine& engine, const sim::SimTask& task,
                   core::CoreIndex core) override {
    WATS_CHECK_MSG(task.cls < shared_.job_of_class.size() &&
                       shared_.job_of_class[task.cls] != kNoJob,
                   "completed task belongs to no serving job");
    const std::size_t job_index = shared_.job_of_class[task.cls];
    Job& job = jobs_[job_index];
    if (lease_mode_) {
      WATS_CHECK(shared_.running[job_index] > 0);
      --shared_.running[job_index];
    }
    job.driver->on_complete(engine, task, core);
    job.remaining = std::max(0.0, job.remaining - task.work);
    WATS_CHECK(job.outstanding > 0);
    if (--job.outstanding == 0) {
      WATS_CHECK(job.driver->done());
      job.done = true;
      job.finish = engine.now();
      ++finished_;
      JobOutcome& out = outcomes_[job.arrival_index];
      out.finish = job.finish;
      out.latency = job.finish - job.arrival;
      out.slowdown = job.ideal > 0.0 ? out.latency / job.ideal : 0.0;
      out.met_deadline = job.finish <= job.deadline;
    }
    // Recompute on EVERY finish, not just job completions: queue depths
    // (and so demand) shift task by task, and a lease map sized to stale
    // demand strands cores on a draining job. The plan gate skips
    // publication when the recomputed map is identical, so steady states
    // cost a skip counter bump, not churn.
    if (lease_mode_) recompute_leases(engine);
  }

  bool done() const override {
    return arrivals_started_ == arrivals_.size() && finished_ == admitted_;
  }

  // ---- result assembly (after Engine::run) ----

  /// Bind the engine's live speed view. Called after the engine is
  /// constructed (the workload is built first); every capacity figure
  /// below — midpoint classification, usage accrual, lease pricing —
  /// reads through it so a governed run prices groups at their actual
  /// frequency. A static view returns the topology's own doubles.
  void bind_speeds(core::SpeedView speeds) { speeds_ = speeds; }

  void finalize(ServingResult& result, double makespan) {
    result.jobs = outcomes_;
    result.arrived = arrivals_started_;
    result.admitted = admitted_;
    result.rejected = rejected_;
    result.finished = finished_;
    result.lease_publishes = lease_publishes_;
    result.lease_skips = lease_skips_;
    result.lease_epoch = plan_ != nullptr ? plan_->epoch : 0;
    result.lease_churn = lease_churn_;
    result.peak_leased_groups = peak_leased_groups_;
    result.peak_leased_cores = peak_leased_cores_;
    result.peak_active_jobs = peak_active_jobs_;

    std::vector<double> latencies;
    double slowdown_sum = 0.0;
    std::uint64_t met = 0;
    for (const JobOutcome& out : outcomes_) {
      if (!out.admitted || out.finish <= 0.0) continue;
      latencies.push_back(out.latency);
      slowdown_sum += out.slowdown;
      if (out.met_deadline) ++met;
    }
    result.p50_latency = exact_percentile(latencies, 0.50);
    result.p99_latency = exact_percentile(latencies, 0.99);
    result.p999_latency = exact_percentile(latencies, 0.999);
    result.mean_slowdown =
        latencies.empty() ? 0.0
                          : slowdown_sum /
                                static_cast<double>(latencies.size());
    result.goodput = makespan > 0.0
                         ? static_cast<double>(met) * 1000.0 / makespan
                         : 0.0;

    // Dominant shares vs the capacity-seconds the run offered, priced at
    // the frequencies the groups ended the run on.
    double fast_capacity = 0.0;
    double slow_capacity = 0.0;
    const double midpoint = fast_midpoint();
    for (core::GroupIndex g = 0; g < topo_.group_count(); ++g) {
      (live_frequency(g) >= midpoint ? fast_capacity : slow_capacity) +=
          live_capacity(g);
    }
    result.tenants = usage_;
    for (TenantUsage& u : result.tenants) {
      const double fast_share =
          fast_capacity > 0.0 && makespan > 0.0
              ? u.fast_capacity_seconds / (fast_capacity * makespan)
              : 0.0;
      const double slow_share =
          slow_capacity > 0.0 && makespan > 0.0
              ? u.slow_capacity_seconds / (slow_capacity * makespan)
              : 0.0;
      u.dominant_share = std::max(fast_share, slow_share);
    }
  }

 private:
  double live_frequency(core::GroupIndex g) const {
    return speeds_.valid() ? speeds_.frequency(g)
                           : topo_.group(g).frequency_ghz;
  }

  double live_capacity(core::GroupIndex g) const {
    return static_cast<double>(topo_.group(g).core_count) *
           live_frequency(g);
  }

  /// Midpoint of the LIVE frequency range. Base frequencies are sorted
  /// descending, so without a governor this is exactly the old
  /// (fastest + slowest) / 2; under DVFS a down-clocked big group can
  /// fall below the midpoint and its capacity-seconds bill as slow.
  double fast_midpoint() const {
    double hi = live_frequency(0);
    double lo = hi;
    for (core::GroupIndex g = 1; g < topo_.group_count(); ++g) {
      const double f = live_frequency(g);
      hi = std::max(hi, f);
      lo = std::min(lo, f);
    }
    return (hi + lo) / 2.0;
  }

  bool admit(double now) {
    if (!config_.admission.enabled) return true;
    // Token bucket in virtual time, then the queue-length cap.
    tokens_ = std::min(config_.admission.token_burst,
                       tokens_ + (now - tokens_updated_) *
                                     config_.admission.token_rate);
    tokens_updated_ = now;
    if (tokens_ < 1.0) return false;
    if (admitted_ - finished_ >= config_.admission.queue_cap) return false;
    tokens_ -= 1.0;
    return true;
  }

  void arrive(sim::Engine& engine, std::size_t index) {
    WATS_CHECK(index == arrivals_started_);
    ++arrivals_started_;
    const JobArrival& a = arrivals_[index];
    if (!admit(engine.now())) {
      ++rejected_;  // rejections change no leases; no recompute
      return;
    }
    ++admitted_;

    Job job;
    job.arrival_index = index;
    job.tenant = a.tenant;
    job.spec_index = a.spec_index;
    job.arrival = engine.now();
    const std::size_t job_index = jobs_.size();
    // Same per-member naming and seeding scheme as CompositeWorkload, so
    // closed-mode kShared runs are bit-identical to run_multiprogram.
    job.spec = std::make_unique<workloads::BenchmarkSpec>(
        config_.job_specs[a.spec_index]);
    for (auto& cls : job.spec->classes) {
      cls.name = "app" + std::to_string(job_index) + "/" + job.spec->name +
                 "/" + cls.name;
    }
    job.driver = sim::make_workload(
        *job.spec, registry_,
        (config_.sim.seed ^ 0xC0FFEEu) + job_index);
    job.outstanding = job.spec->total_tasks();
    job.remaining = expected_total_work(*job.spec);
    job.total_work = job.remaining;
    job.max_cores = parallelism_cap(*job.spec);
    job.ideal = ideal_duration(*job.spec, topo_);
    job.deadline = job.arrival + config_.deadline_scale * job.ideal;

    JobOutcome& out = outcomes_[index];
    out.admitted = true;
    out.ideal = job.ideal;
    out.deadline = job.deadline;

    jobs_.push_back(std::move(job));
    shared_.queues.resize(jobs_.size());
    shared_.running.resize(jobs_.size(), 0);
    peak_active_jobs_ =
        std::max(peak_active_jobs_,
                 static_cast<std::size_t>(admitted_ - finished_));

    // Map this job's class ids BEFORE starting its driver: start() spawns
    // tasks synchronously and the lease scheduler routes each spawn
    // through job_of_class. Pre-interning is id-identical to letting the
    // driver intern (all drivers intern spec.classes in order, and
    // intern() is idempotent), so closed-mode kShared parity with
    // CompositeWorkload is preserved. An explicit id->job map, not a
    // range — jobs intern at staggered times, so ranges would interleave.
    const std::size_t before = registry_.size();
    for (const auto& cls : jobs_.back().spec->classes) {
      const core::TaskClassId id = registry_.intern(cls.name);
      if (id >= shared_.job_of_class.size()) {
        shared_.job_of_class.resize(id + 1, kNoJob);
      }
      WATS_CHECK_MSG(shared_.job_of_class[id] == kNoJob,
                     "task class claimed by two jobs");
      shared_.job_of_class[id] = job_index;
    }
    WATS_CHECK_MSG(registry_.size() > before,
                   "job interned no task classes");
    jobs_.back().driver->start(engine);

    if (lease_mode_) {
      recompute_leases(engine);
      if (config_.policy == LeasePolicy::kDeadline &&
          jobs_[job_index].deadline > engine.now()) {
        engine.call_at(jobs_[job_index].deadline,
                       [this](sim::Engine& e) { recompute_leases(e); });
      }
    }
  }

  std::size_t parallelism_cap(const workloads::BenchmarkSpec& spec) const {
    switch (spec.kind) {
      case workloads::BenchKind::kBatch:
        return std::max<std::size_t>(1, spec.tasks_per_batch());
      case workloads::BenchKind::kPipeline:
        return std::max<std::size_t>(
            1, spec.pipeline_window > 0 ? spec.pipeline_window
                                        : spec.pipeline_items);
      case workloads::BenchKind::kReplay:
        return topo_.total_cores();
    }
    return 1;
  }

  void accrue_usage(double now) {
    const double dt = now - last_accrual_;
    last_accrual_ = now;
    if (dt <= 0.0) return;
    const double midpoint = fast_midpoint();
    for (core::GroupIndex g = 0; g < topo_.group_count(); ++g) {
      const std::size_t owner = shared_.group_owner[g];
      if (owner == kUnleased) continue;
      TenantUsage& u = usage_[jobs_[owner].tenant];
      // Bill the interval at the frequency in force when it closes — the
      // accrual points are lease recomputes, which the governor's swaps
      // are strictly coarser than in serving runs.
      (live_frequency(g) >= midpoint
           ? u.fast_capacity_seconds
           : u.slow_capacity_seconds) += live_capacity(g) * dt;
    }
  }

  void recompute_leases(sim::Engine& engine) {
    // Settle the accounting for the interval the outgoing leases covered
    // before the map changes hands.
    accrue_usage(engine.now());

    std::vector<JobView> views;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const Job& job = jobs_[j];
      if (job.done) continue;
      JobView v;
      v.job = j;
      v.tenant = job.tenant;
      v.arrival = job.arrival;
      v.deadline = job.deadline;
      v.remaining = job.remaining;
      v.total_work = job.total_work;
      v.max_cores = job.max_cores;
      // Instantaneous demand: queued tasks plus tasks on cores right
      // now. A job whose demand is momentarily zero still floors to one
      // core inside the policy, and every task finish recomputes — so
      // clipping can delay a job by at most one event gap, never
      // deadlock it.
      v.demand = shared_.queues[j].size() + shared_.running[j];
      views.push_back(v);
    }
    const core::SpeedView* speeds = speeds_.valid() ? &speeds_ : nullptr;
    const std::vector<std::size_t> owners =
        assign_leases(config_.policy, topo_, views, engine.now(),
                      &shared_.group_owner, speeds);
    if (config_.lease_observer) {
      config_.lease_observer(engine.now(), owners, views);
    }

    core::PartitionPlan candidate = build_lease_plan(
        owners, arrivals_.size() + 1, topo_, views, plan_.get(), speeds);
    if (!core::plan_gate_allows(config_.lease_gate, candidate)) {
      ++lease_skips_;
      return;
    }
    lease_churn_ += candidate.diff.classes_moved;
    ++lease_publishes_;
    plan_ = std::make_unique<core::PartitionPlan>(std::move(candidate));
    shared_.group_owner = owners;

    std::size_t leased_groups = 0;
    std::size_t leased_cores = 0;
    for (core::GroupIndex g = 0; g < owners.size(); ++g) {
      if (owners[g] == kUnleased) continue;
      ++leased_groups;
      leased_cores += topo_.group(g).core_count;
    }
    peak_leased_groups_ = std::max(peak_leased_groups_, leased_groups);
    peak_leased_cores_ = std::max(peak_leased_cores_, leased_cores);
  }

  const ServingConfig& config_;
  const core::AmcTopology& topo_;
  core::TaskClassRegistry& registry_;
  const std::vector<JobArrival> arrivals_;
  ServingShared& shared_;
  const bool lease_mode_;

  std::vector<Job> jobs_;  ///< admitted jobs, in admission order
  std::size_t arrivals_started_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t finished_ = 0;
  double tokens_ = 0.0;
  double tokens_updated_ = 0.0;

  std::unique_ptr<core::PartitionPlan> plan_;  ///< current lease map
  std::uint64_t lease_publishes_ = 0;
  std::uint64_t lease_skips_ = 0;
  std::uint64_t lease_churn_ = 0;
  std::size_t peak_leased_groups_ = 0;
  std::size_t peak_leased_cores_ = 0;
  std::size_t peak_active_jobs_ = 0;
  double last_accrual_ = 0.0;
  std::vector<TenantUsage> usage_;
  std::vector<JobOutcome> outcomes_;
  core::SpeedView speeds_;  ///< engine's live DVFS view (invalid until bound)
};

}  // namespace

double expected_total_work(const workloads::BenchmarkSpec& spec) {
  using workloads::BenchKind;
  double work = 0.0;
  switch (spec.kind) {
    case BenchKind::kBatch:
      for (std::size_t b = 1; b <= spec.batches; ++b) {
        for (std::size_t c = 0; c < spec.classes.size(); ++c) {
          work += spec.classes[c].mean_work * spec.phase_multiplier(b, c) *
                  static_cast<double>(spec.classes[c].tasks_per_batch);
        }
      }
      break;
    case BenchKind::kPipeline: {
      double per_item = 0.0;
      if (!spec.pipeline_stages.empty()) {
        for (const auto& stage : spec.pipeline_stages) {
          double mean = 0.0;
          for (std::size_t o = 0; o < stage.class_options.size(); ++o) {
            mean += spec.classes[stage.class_options[o]].mean_work *
                    stage.probabilities[o];
          }
          per_item += mean;
        }
      } else {
        for (const auto& cls : spec.classes) per_item += cls.mean_work;
      }
      work = per_item * static_cast<double>(spec.pipeline_items);
      break;
    }
    case BenchKind::kReplay:
      for (const auto& t : spec.replay_tasks) work += t.work;
      break;
  }
  return work;
}

double ideal_duration(const workloads::BenchmarkSpec& spec,
                      const core::AmcTopology& topo) {
  const double work_bound =
      expected_total_work(spec) / topo.total_capacity();
  double critical = 0.0;
  if (spec.kind == workloads::BenchKind::kBatch) {
    // Each batch's barrier waits for its slowest class at F1.
    double max_mean = 0.0;
    for (const auto& cls : spec.classes) {
      max_mean = std::max(max_mean, cls.mean_work);
    }
    critical = static_cast<double>(spec.batches) * max_mean /
               topo.fastest_frequency();
  } else if (spec.kind == workloads::BenchKind::kPipeline) {
    // One item's stage chain at F1.
    double per_item = 0.0;
    for (const auto& cls : spec.classes) per_item += cls.mean_work;
    critical = per_item / topo.fastest_frequency();
  }
  return std::max(work_bound, critical);
}

double exact_percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  WATS_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(p * n));
  if (rank == 0) rank = 1;
  return values[std::min(values.size(), rank) - 1];
}

ServingResult run_serving(const ServingConfig& config) {
  WATS_CHECK_MSG(!config.job_specs.empty(),
                 "serving config needs at least one job spec");
  const core::AmcTopology topo = core::amc_by_name_or_spec(config.machine);
  std::vector<JobArrival> arrivals = generate_arrivals(
      config.arrivals, config.jobs, config.tenants,
      config.job_specs.size(), config.sim.seed ^ 0x5EEDA11Bu);

  core::TaskClassRegistry registry;
  ServingShared shared;
  ServingWorkload workload(config, topo, registry, std::move(arrivals),
                           shared);
  std::unique_ptr<sim::Scheduler> scheduler;
  if (config.policy == LeasePolicy::kShared) {
    scheduler = sim::make_scheduler(config.shared_kind, registry);
  } else {
    scheduler = std::make_unique<LeaseScheduler>(shared);
  }
  sim::Engine engine(topo, config.sim, *scheduler, workload);
  scheduler->bind(engine);
  workload.bind_speeds(engine.speed_view());

  ServingResult result;
  result.stats = engine.run();
  result.makespan = result.stats.makespan;
  workload.finalize(result, result.makespan);
  return result;
}

void export_metrics(const ServingResult& result,
                    obs::MetricsRegistry& registry) {
  registry.counter("jobs_arrived").add(result.arrived);
  registry.counter("jobs_admitted").add(result.admitted);
  registry.counter("jobs_rejected").add(result.rejected);
  registry.counter("jobs_finished").add(result.finished);
  registry.counter("lease_publishes").add(result.lease_publishes);
  registry.counter("lease_skips").add(result.lease_skips);
  registry.counter("lease_churn").add(result.lease_churn);
  registry.set_gauge("active_leases",
                     static_cast<double>(result.peak_leased_groups));
  registry.set_gauge("serving_goodput", result.goodput);
  registry.set_gauge("serving_p99_latency", result.p99_latency);
  obs::Histogram& latency = registry.histogram("job_latency_ns");
  for (const JobOutcome& out : result.jobs) {
    if (!out.admitted || out.finish <= 0.0) continue;
    // Virtual time units are arbitrary; exported at 1 unit = 1 us.
    latency.record(static_cast<std::uint64_t>(
        std::llround(std::max(0.0, out.latency) * 1000.0)));
  }
}

}  // namespace wats::serve
