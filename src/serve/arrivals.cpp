#include "serve/arrivals.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wats::serve {

namespace {

constexpr double kTau = 6.283185307179586476925287;  // 2*pi

double exponential(util::Xoshiro256& rng, double rate) {
  WATS_CHECK(rate > 0.0);
  // uniform() is in [0, 1), so 1 - u is in (0, 1] and the log is finite.
  return -std::log(1.0 - rng.uniform()) / rate;
}

}  // namespace

std::vector<JobArrival> generate_arrivals(const ArrivalConfig& config,
                                          std::size_t jobs,
                                          std::size_t tenants,
                                          std::size_t spec_count,
                                          std::uint64_t seed) {
  WATS_CHECK(tenants > 0);
  WATS_CHECK(spec_count > 0);
  std::vector<JobArrival> out;
  out.reserve(jobs);
  util::Xoshiro256 rng(seed);

  double now = 0.0;
  // kMmpp state: start calm, with a full exponential dwell ahead.
  bool burst = false;
  double state_ends = 0.0;
  if (config.kind == ArrivalKind::kMmpp) {
    WATS_CHECK(config.burst_factor >= 1.0);
    state_ends = exponential(rng, 1.0 / config.calm_dwell);
  }
  // kDiurnal thinning bound: the intensity never exceeds
  // rate * (1 + amplitude).
  const double peak_rate = config.rate * (1.0 + config.diurnal_amplitude);

  for (std::size_t i = 0; i < jobs; ++i) {
    switch (config.kind) {
      case ArrivalKind::kClosed:
        break;  // every job at t = 0
      case ArrivalKind::kPoisson:
        now += exponential(rng, config.rate);
        break;
      case ArrivalKind::kMmpp: {
        // Walk state changes until the next arrival lands inside the
        // current state's dwell window.
        for (;;) {
          const double rate =
              burst ? config.rate * config.burst_factor : config.rate;
          const double gap = exponential(rng, rate);
          if (now + gap <= state_ends) {
            now += gap;
            break;
          }
          now = state_ends;
          burst = !burst;
          const double dwell =
              burst ? config.burst_dwell : config.calm_dwell;
          state_ends = now + exponential(rng, 1.0 / dwell);
        }
        break;
      }
      case ArrivalKind::kDiurnal: {
        WATS_CHECK(config.diurnal_amplitude >= 0.0 &&
                   config.diurnal_amplitude < 1.0);
        // Lewis-Shedler thinning against the constant peak rate.
        for (;;) {
          now += exponential(rng, peak_rate);
          const double intensity =
              config.rate *
              (1.0 + config.diurnal_amplitude *
                         std::sin(kTau * now / config.diurnal_period));
          if (rng.uniform() * peak_rate < intensity) break;
        }
        break;
      }
    }
    JobArrival a;
    a.time = now;
    a.tenant = i % tenants;
    // Stripe specs per tenant round (not per arrival): with k tenants,
    // every tenant sees the identical spec sequence — the "k identical
    // tenants" premise of the EQUI fairness bound.
    a.spec_index = (i / tenants) % spec_count;
    out.push_back(a);
  }
  return out;
}

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kClosed:
      return "closed";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kMmpp:
      return "mmpp";
    case ArrivalKind::kDiurnal:
      return "diurnal";
  }
  return "?";
}

ArrivalKind arrival_kind_from_string(const std::string& name) {
  if (name == "closed") return ArrivalKind::kClosed;
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "mmpp") return ArrivalKind::kMmpp;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  WATS_CHECK_MSG(false, "unknown arrival kind");
  __builtin_unreachable();
}

}  // namespace wats::serve
