#include "serve/lease.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace wats::serve {

namespace {

/// Live operating frequency of a group: the governed speed when a valid
/// SpeedView is supplied, the topology's base frequency otherwise. A
/// static view returns the identical base doubles, so all the lease math
/// below is bit-identical with or without one.
double live_frequency(const core::AmcTopology& topo,
                      const core::SpeedView* speeds, std::size_t g) {
  if (speeds != nullptr && speeds->valid()) {
    return speeds->frequency(static_cast<core::GroupIndex>(g));
  }
  return topo.group(g).frequency_ghz;
}

double live_capacity(const core::AmcTopology& topo,
                     const core::SpeedView* speeds, std::size_t g) {
  return static_cast<double>(topo.group(g).core_count) *
         live_frequency(topo, speeds, g);
}

/// Group indices in dealing order: largest capacity first (index breaks
/// ties), so the policies hand out the most valuable leases first. A
/// down-clocked group is worth exactly what it currently delivers.
std::vector<std::size_t> capacity_order(const core::AmcTopology& topo,
                                        const core::SpeedView* speeds) {
  std::vector<std::size_t> order(topo.group_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return live_capacity(topo, speeds, a) >
                            live_capacity(topo, speeds, b);
                   });
  return order;
}

/// Fill jobs in `positions` order: each takes groups (dealing order) until
/// its parallelism cap is covered. Shared by kFcfs and kDeadline.
std::vector<std::size_t> fill_in_order(
    const core::AmcTopology& topo, const std::vector<JobView>& jobs,
    const std::vector<std::size_t>& positions,
    const core::SpeedView* speeds) {
  std::vector<std::size_t> owners(topo.group_count(), kUnleased);
  const std::vector<std::size_t> order = capacity_order(topo, speeds);
  std::size_t next_group = 0;
  for (const std::size_t p : positions) {
    std::size_t cores = 0;
    while (next_group < order.size() && cores < jobs[p].max_cores) {
      const std::size_t g = order[next_group++];
      owners[g] = jobs[p].job;
      cores += topo.group(g).core_count;
    }
    if (next_group == order.size()) break;
  }
  return owners;
}

}  // namespace

std::vector<std::size_t> assign_leases(
    LeasePolicy policy, const core::AmcTopology& topo,
    const std::vector<JobView>& jobs, double now,
    const std::vector<std::size_t>* incumbents,
    const core::SpeedView* speeds) {
  std::vector<std::size_t> owners(topo.group_count(), kUnleased);
  if (jobs.empty()) return owners;

  // Arrival-order positions (arrival, then stable job id) — the base
  // ordering every policy starts from.
  std::vector<std::size_t> by_arrival(jobs.size());
  std::iota(by_arrival.begin(), by_arrival.end(), std::size_t{0});
  std::sort(by_arrival.begin(), by_arrival.end(),
            [&](std::size_t a, std::size_t b) {
              if (jobs[a].arrival != jobs[b].arrival) {
                return jobs[a].arrival < jobs[b].arrival;
              }
              return jobs[a].job < jobs[b].job;
            });

  switch (policy) {
    case LeasePolicy::kShared:
      WATS_CHECK_MSG(false, "kShared has no lease assignment");
      __builtin_unreachable();

    case LeasePolicy::kFcfs:
      return fill_in_order(topo, jobs, by_arrival, speeds);

    case LeasePolicy::kDeadline: {
      std::vector<std::size_t> by_deadline = by_arrival;
      std::stable_sort(by_deadline.begin(), by_deadline.end(),
                       [&](std::size_t a, std::size_t b) {
                         return jobs[a].deadline < jobs[b].deadline;
                       });
      return fill_in_order(topo, jobs, by_deadline, speeds);
    }

    case LeasePolicy::kEqui: {
      // Hierarchical equipartition: deal groups cyclically across tenants
      // with an uncapped job; within a tenant, the uncapped job holding
      // the fewest cores (oldest breaks ties) takes the group. While
      // every tenant stays eligible, one full deal round gives each
      // tenant exactly one group — so per-tenant group counts never
      // differ by more than one (the fairness bound).
      std::vector<std::size_t> tenants;
      for (const JobView& j : jobs) tenants.push_back(j.tenant);
      std::sort(tenants.begin(), tenants.end());
      tenants.erase(std::unique(tenants.begin(), tenants.end()),
                    tenants.end());

      std::vector<std::size_t> cores_of(jobs.size(), 0);
      const std::vector<std::size_t> order = capacity_order(topo, speeds);
      std::size_t cursor = 0;
      for (const std::size_t g : order) {
        bool dealt = false;
        for (std::size_t probe = 0; probe < tenants.size() && !dealt;
             ++probe) {
          const std::size_t tenant =
              tenants[(cursor + probe) % tenants.size()];
          std::size_t pick = jobs.size();
          for (const std::size_t p : by_arrival) {
            if (jobs[p].tenant != tenant) continue;
            if (cores_of[p] >= jobs[p].max_cores) continue;
            if (pick == jobs.size() || cores_of[p] < cores_of[pick]) {
              pick = p;  // by_arrival order breaks core-count ties
            }
          }
          if (pick != jobs.size()) {
            owners[g] = jobs[pick].job;
            cores_of[pick] += topo.group(g).core_count;
            cursor = (cursor + probe + 1) % tenants.size();
            dealt = true;
          }
        }
        if (!dealt) break;  // every job capped: remaining groups unleased
      }
      return owners;
    }

    case LeasePolicy::kSpeedupGreedy: {
      // Speedup-curve greedy (malleable-jobs model): a job's effective
      // parallelism saturates geometrically toward its cap (barriers and
      // pipeline windows keep extra cores idle), so the marginal service
      // rate of a group shrinks as a job accumulates cores. Each group
      // goes to the job with the highest marginal rate weighted by its
      // response ratio (wait + remaining) / remaining — HRRN aging on
      // top of water-filling. The ratio makes short jobs win early (the
      // SRPT flavor) while a waiting job's priority grows without bound,
      // so persistent overload cannot starve slow-draining jobs the way
      // pure SRPT does. Ties go to less remaining, then earlier arrival,
      // then job id.
      const auto speedup = [](double cap, double c) {
        if (cap <= 1.0) return std::min(c, cap);
        return cap * (1.0 - std::pow(1.0 - 1.0 / cap, c));
      };
      std::vector<std::size_t> cores_of(jobs.size(), 0);
      const std::vector<std::size_t> order = capacity_order(topo, speeds);
      for (const std::size_t g : order) {
        const double freq = live_frequency(topo, speeds, g);
        const std::size_t cores = topo.group(g).core_count;
        std::size_t best = jobs.size();
        double best_gain = 0.0;
        for (std::size_t p = 0; p < jobs.size(); ++p) {
          const std::size_t slack =
              jobs[p].max_cores > cores_of[p]
                  ? jobs[p].max_cores - cores_of[p]
                  : 0;
          if (slack == 0) continue;
          // Clip the curve at instantaneous demand (but never below one
          // core): a job mid-barrier or mid-flush gets only what it can
          // run right now, not its structural cap.
          const double cap = static_cast<double>(std::min(
              jobs[p].max_cores, std::max<std::size_t>(1, jobs[p].demand)));
          const double have = static_cast<double>(cores_of[p]);
          if (have >= cap) continue;
          const double used =
              static_cast<double>(std::min(cores, slack));
          const double rate =
              freq * (speedup(cap, have + used) - speedup(cap, have));
          const double remaining = std::max(jobs[p].remaining, 1e-9);
          const double wait = std::max(0.0, now - jobs[p].arrival);
          // Response ratio with a floored denominator: a job's priority
          // grows without bound as it WAITS (so overload cannot starve
          // it), but depletion (remaining -> 0) can only boost it 4x —
          // otherwise nearly-done jobs snowball and hoard the machine.
          const double floor_rem =
              std::max(remaining, 0.25 * jobs[p].total_work);
          double gain =
              rate * (wait + remaining) / std::max(floor_rem, 1e-9);
          // Lease stickiness: the group's current owner keeps it unless
          // a challenger's gain is >10% better — recomputes fire on
          // every task finish, and unpriced re-leases would shuffle
          // groups (and idle their cores) on marginal-gain noise.
          if (incumbents != nullptr && (*incumbents)[g] == jobs[p].job) {
            gain *= 1.10;
          }
          if (gain <= 0.0) continue;
          const bool better =
              best == jobs.size() || gain > best_gain ||
              (gain == best_gain &&
               (jobs[p].remaining < jobs[best].remaining ||
                (jobs[p].remaining == jobs[best].remaining &&
                 (jobs[p].arrival < jobs[best].arrival ||
                  (jobs[p].arrival == jobs[best].arrival &&
                   jobs[p].job < jobs[best].job)))));
          if (better) {
            best = p;
            best_gain = gain;
          }
        }
        if (best == jobs.size()) break;  // all jobs capped
        owners[g] = jobs[best].job;
        cores_of[best] += cores;
      }
      return owners;
    }
  }
  WATS_CHECK_MSG(false, "unknown lease policy");
  __builtin_unreachable();
}

double usable_capacity(const core::AmcTopology& topo,
                       const std::vector<std::size_t>& groups,
                       std::size_t max_cores,
                       const core::SpeedView* speeds) {
  // Fastest groups first: the job saturates its cap with its best cores.
  // "Fastest" is the live governed frequency — a down-clocked big group
  // can rank below an untouched little one.
  std::vector<std::size_t> order = groups;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return live_frequency(topo, speeds, a) >
                            live_frequency(topo, speeds, b);
                   });
  double capacity = 0.0;
  std::size_t budget = max_cores;
  for (const std::size_t g : order) {
    if (budget == 0) break;
    const std::size_t used = std::min(budget, topo.group(g).core_count);
    capacity += static_cast<double>(used) * live_frequency(topo, speeds, g);
    budget -= used;
  }
  return capacity;
}

namespace {

/// Predicted completion horizon of an assignment: max over runnable jobs
/// of remaining / usable capacity. A runnable job with NO capacity would
/// never finish under this assignment; it contributes ten times the rest
/// of the horizon so the churn gate's improvement rule prices fixing the
/// starvation as a large win (the default gate never reads this).
double predicted_horizon(const core::AmcTopology& topo,
                         const std::vector<std::size_t>& owners,
                         const std::vector<JobView>& jobs,
                         const core::SpeedView* speeds) {
  double horizon = 0.0;
  bool starved = false;
  for (const JobView& j : jobs) {
    std::vector<std::size_t> groups;
    for (std::size_t g = 0; g < owners.size(); ++g) {
      if (owners[g] == j.job) groups.push_back(g);
    }
    const double usable =
        usable_capacity(topo, groups, j.max_cores, speeds);
    if (usable > 0.0) {
      horizon = std::max(horizon, j.remaining / usable);
    } else if (j.remaining > 0.0) {
      starved = true;
    }
  }
  return starved ? std::max(horizon, 1.0) * 10.0 : horizon;
}

}  // namespace

core::PartitionPlan build_lease_plan(const std::vector<std::size_t>& owners,
                                     std::size_t slots,
                                     const core::AmcTopology& topo,
                                     const std::vector<JobView>& jobs,
                                     const core::PartitionPlan* previous,
                                     const core::SpeedView* speeds) {
  WATS_CHECK(owners.size() == topo.group_count());
  WATS_CHECK(slots > 0);

  std::vector<core::GroupIndex> assignment(owners.size(), 0);
  for (std::size_t g = 0; g < owners.size(); ++g) {
    if (owners[g] == kUnleased) continue;
    WATS_CHECK_MSG(owners[g] + 1 < slots, "job slot out of range");
    assignment[g] = owners[g] + 1;
  }

  core::PartitionPlan plan;
  plan.epoch = previous != nullptr ? previous->epoch + 1 : 1;
  plan.map = core::ClusterMap(std::move(assignment), slots);

  // Per-slot predicted finish (slot j+1 = job j); slot 0 stays 0.
  plan.group_finish.assign(slots, 0.0);
  double total_remaining = 0.0;
  for (const JobView& j : jobs) {
    std::vector<std::size_t> groups;
    for (std::size_t g = 0; g < owners.size(); ++g) {
      if (owners[g] == j.job) groups.push_back(g);
    }
    const double usable =
        usable_capacity(topo, groups, j.max_cores, speeds);
    if (usable > 0.0 && j.job + 1 < slots) {
      plan.group_finish[j.job + 1] = j.remaining / usable;
    }
    total_remaining += j.remaining;
  }
  plan.makespan = predicted_horizon(topo, owners, jobs, speeds);
  plan.lower_bound =
      total_remaining / (speeds != nullptr && speeds->valid()
                             ? speeds->total_capacity()
                             : topo.total_capacity());
  plan.ratio_to_tl =
      plan.lower_bound > 0.0 ? plan.makespan / plan.lower_bound : 1.0;

  // Diff vs the previous lease map: a group whose owning slot changed is a
  // "moved class"; the weight that moved is its capacity. Readers of a
  // missing previous map see everything unleased (slot 0) — the same
  // fall-back-to-group-0 semantics as partition-plan readers.
  core::PlanDiff diff;
  for (std::size_t g = 0; g < owners.size(); ++g) {
    const core::GroupIndex before =
        previous != nullptr && g < previous->map.class_count()
            ? previous->map.cluster_of(static_cast<core::TaskClassId>(g))
            : 0;
    if (before != plan.map.cluster_of(static_cast<core::TaskClassId>(g))) {
      ++diff.classes_moved;
      diff.weight_moved += topo.group_capacity(g);
    }
  }
  diff.assignment_identical = diff.classes_moved == 0;
  if (previous != nullptr) {
    // Horizon of keeping the old leases for the current job set: groups
    // owned by departed jobs count as unleased.
    std::vector<std::size_t> stale(owners.size(), kUnleased);
    for (std::size_t g = 0; g < owners.size(); ++g) {
      const core::GroupIndex slot =
          g < previous->map.class_count()
              ? previous->map.cluster_of(static_cast<core::TaskClassId>(g))
              : 0;
      if (slot == 0) continue;
      const std::size_t job = slot - 1;
      for (const JobView& j : jobs) {
        if (j.job == job) {
          stale[g] = job;
          break;
        }
      }
    }
    diff.stale_makespan = predicted_horizon(topo, stale, jobs, speeds);
  } else {
    diff.stale_makespan = predicted_horizon(
        topo, std::vector<std::size_t>(owners.size(), kUnleased), jobs,
        speeds);
  }
  plan.diff = diff;
  return plan;
}

const char* to_string(LeasePolicy policy) {
  switch (policy) {
    case LeasePolicy::kShared:
      return "shared";
    case LeasePolicy::kFcfs:
      return "fcfs";
    case LeasePolicy::kEqui:
      return "equi";
    case LeasePolicy::kSpeedupGreedy:
      return "greedy";
    case LeasePolicy::kDeadline:
      return "deadline";
  }
  return "?";
}

LeasePolicy lease_policy_from_string(const std::string& name) {
  if (name == "shared") return LeasePolicy::kShared;
  if (name == "fcfs") return LeasePolicy::kFcfs;
  if (name == "equi") return LeasePolicy::kEqui;
  if (name == "greedy") return LeasePolicy::kSpeedupGreedy;
  if (name == "deadline") return LeasePolicy::kDeadline;
  WATS_CHECK_MSG(false, "unknown lease policy");
  __builtin_unreachable();
}

}  // namespace wats::serve
