// Open-loop job arrival processes for the serving layer.
//
// A LoadGenerator turns an ArrivalConfig into a concrete, fully
// materialized arrival stream before the simulation starts: job i arrives
// at a virtual time drawn from the configured process, belongs to tenant
// (i mod tenants), and instantiates job spec (i mod spec_count). The
// stream is a pure function of (config, jobs, tenants, spec_count, seed),
// which is what the serving determinism tests pin down: same seed means a
// bit-identical stream, and therefore bit-identical admission decisions
// and per-job latencies downstream.
//
// Three processes (plus the closed-loop degenerate case):
//  * kPoisson — exponential interarrivals at `rate` (the classic open-loop
//    M/G/* arrival side).
//  * kMmpp — a 2-state Markov-modulated Poisson process: a calm state at
//    `rate` and a burst state at `rate * burst_factor`, with exponential
//    dwell times. Models flash crowds / bursty tenants.
//  * kDiurnal — an inhomogeneous Poisson process with sinusoidal intensity
//    rate * (1 + amplitude * sin(2*pi*t / period)), sampled by thinning.
//    Models the day/night cycle of a serving fleet.
//  * kClosed — every job arrives at t = 0 (the multiprogram co-run case;
//    used by the cross-check against run_multiprogram).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wats::serve {

enum class ArrivalKind { kClosed, kPoisson, kMmpp, kDiurnal };

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean arrival rate (jobs per unit virtual time). For kMmpp this is the
  /// calm-state rate; for kDiurnal the mean of the sinusoid.
  double rate = 1e-3;
  /// kMmpp: burst-state rate multiplier (>= 1) and mean dwell times in
  /// each state.
  double burst_factor = 8.0;
  double calm_dwell = 20000.0;
  double burst_dwell = 2500.0;
  /// kDiurnal: relative amplitude in [0, 1) and period of the cycle.
  double diurnal_amplitude = 0.8;
  double diurnal_period = 50000.0;
};

/// One generated job arrival.
struct JobArrival {
  double time = 0.0;
  std::size_t tenant = 0;      ///< round-robin over the tenant count
  /// Striped per tenant round ((i / tenants) mod spec_count): every
  /// tenant sees the identical spec sequence.
  std::size_t spec_index = 0;
};

/// Materialize the arrival stream: `jobs` arrivals in nondecreasing time
/// order. Deterministic: the stream is a pure function of the arguments.
std::vector<JobArrival> generate_arrivals(const ArrivalConfig& config,
                                          std::size_t jobs,
                                          std::size_t tenants,
                                          std::size_t spec_count,
                                          std::uint64_t seed);

const char* to_string(ArrivalKind kind);
/// Inverse of to_string; aborts on unknown names (CLI/scenario wiring).
ArrivalKind arrival_kind_from_string(const std::string& name);

}  // namespace wats::serve
