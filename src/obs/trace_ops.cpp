#include "obs/trace_ops.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.hpp"

namespace wats::obs {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Re-serialize a parsed value (numbers print with up-to-µs precision —
/// enough for trace timestamps, which the exporters write with 3 decimal
/// digits to begin with).
void render(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      break;
    case JsonValue::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Type::kNumber: {
      char buf[40];
      const double n = v.as_number();
      if (n == static_cast<double>(static_cast<long long>(n))) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
      } else {
        std::snprintf(buf, sizeof(buf), "%.3f", n);
      }
      out += buf;
      break;
    }
    case JsonValue::Type::kString:
      out += '"';
      out += json_escape(v.as_string());
      out += '"';
      break;
    case JsonValue::Type::kArray: {
      out += '[';
      const auto& items = v.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ',';
        render(items[i], out);
      }
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      const auto& members = v.members();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        out += json_escape(members[i].first);
        out += "\":";
        render(members[i].second, out);
      }
      out += '}';
      break;
    }
  }
}

/// Render one event, overriding its pid (merge assigns one pid per input).
void render_event(const JsonValue& event, int pid_override,
                  std::string& out) {
  out += '{';
  bool first = true;
  bool saw_pid = false;
  for (const auto& [key, value] : event.members()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(key);
    out += "\":";
    if (key == "pid" && pid_override >= 0) {
      out += std::to_string(pid_override);
      saw_pid = true;
    } else {
      render(value, out);
    }
  }
  if (!saw_pid && pid_override >= 0) {
    if (!first) out += ',';
    out += "\"pid\":" + std::to_string(pid_override);
  }
  out += '}';
}

std::unique_ptr<JsonValue> parse_trace_text(const std::string& text,
                                            std::string* error) {
  std::string parse_error;
  auto doc = parse_json(text, &parse_error);
  if (doc == nullptr) {
    if (error != nullptr) *error = "JSON parse error: " + parse_error;
    return nullptr;
  }
  const auto* events = doc->find("traceEvents");
  if (events == nullptr || events->type() != JsonValue::Type::kArray) {
    if (error != nullptr) {
      *error = "not a trace-event file (no traceEvents)";
    }
    return nullptr;
  }
  return doc;
}

}  // namespace

bool summarize_trace(const std::string& json_text, TraceSummary* summary,
                     std::string* error) {
  const auto doc = parse_trace_text(json_text, error);
  if (doc == nullptr) return false;
  const auto& events = doc->find("traceEvents")->as_array();

  TraceSummary s;
  s.events = events.size();
  std::map<int, std::string> track_names;
  std::map<int, double> track_busy_us;
  std::map<int, std::size_t> track_slices;
  std::map<std::string, std::size_t> by_name;

  for (const auto& e : events) {
    const std::string ph = e.string_or("ph", "");
    const int tid = static_cast<int>(e.number_or("tid", 0));
    if (ph == "M") {
      ++s.metadata;
      if (e.string_or("name", "") == "thread_name") {
        if (const auto* args = e.find("args")) {
          track_names[tid] = args->string_or("name", "");
        }
      }
      continue;
    }
    const double ts = e.number_or("ts", 0.0);
    const double dur = e.number_or("dur", 0.0);
    if (!s.any_ts || ts < s.t_min_us) s.t_min_us = ts;
    if (!s.any_ts || ts + dur > s.t_max_us) s.t_max_us = ts + dur;
    s.any_ts = true;
    const std::string name = e.string_or("name", "?");
    ++by_name[name];
    if (name == "plan_publish" || name == "plan_skip") {
      const auto* args = e.find("args");
      if (name == "plan_publish") {
        ++s.plan_publishes;
        const auto moved = static_cast<std::size_t>(
            args != nullptr ? args->number_or("moved", 0.0) : 0.0);
        s.plan_moved_total += moved;
        s.plan_moved_max = std::max(s.plan_moved_max, moved);
      } else if (args != nullptr &&
                 args->string_or("reason", "") == "churn") {
        ++s.plan_skips_churn;
      } else {
        ++s.plan_skips_identical;
      }
      if (args != nullptr) {
        s.plan_last_epoch =
            std::max(s.plan_last_epoch, args->number_or("epoch", 0.0));
      }
    }
    if (name == "events_dropped") {
      ++s.lossy_rings;
      if (const auto* args = e.find("args")) {
        s.events_dropped +=
            static_cast<std::uint64_t>(args->number_or("dropped", 0.0));
      }
    }
    if (ph == "X") {
      ++s.slices;
      track_busy_us[tid] += dur;
      ++track_slices[tid];
    } else {
      ++s.instants;
    }
  }

  for (const auto& [tid, busy] : track_busy_us) {
    TrackSummary t;
    t.tid = tid;
    const auto it = track_names.find(tid);
    t.name = it != track_names.end() ? it->second
                                     : "tid " + std::to_string(tid);
    t.slices = track_slices[tid];
    t.busy_us = busy;
    s.tracks.push_back(std::move(t));
  }
  s.by_name.assign(by_name.begin(), by_name.end());
  std::sort(s.by_name.begin(), s.by_name.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  *summary = std::move(s);
  return true;
}

std::string render_summary(const TraceSummary& s, const std::string& label) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%s: %zu events (%zu slices, %zu instants, %zu metadata)\n",
                label.c_str(), s.events, s.slices, s.instants, s.metadata);
  out << line;
  if (s.lossy()) {
    std::snprintf(line, sizeof(line),
                  "WARNING: trace is lossy — %llu events overwritten across "
                  "%zu ring(s); counts below under-report (size the rings "
                  "up via TraceOptions::ring_capacity)\n",
                  static_cast<unsigned long long>(s.events_dropped),
                  s.lossy_rings);
    out << line;
  }
  if (s.any_ts) {
    std::snprintf(line, sizeof(line), "span: %.3f ms\n",
                  (s.t_max_us - s.t_min_us) / 1000.0);
    out << line;
  }
  if (!s.tracks.empty()) {
    out << "tracks:\n";
    for (const auto& t : s.tracks) {
      std::snprintf(line, sizeof(line),
                    "  %-28s %6zu slices, busy %10.3f us\n", t.name.c_str(),
                    t.slices, t.busy_us);
      out << line;
    }
  }
  if (s.plan_publishes + s.plan_skips_identical + s.plan_skips_churn > 0) {
    out << "plan churn:\n";
    std::snprintf(line, sizeof(line),
                  "  publishes                    %zu (last epoch %.0f)\n",
                  s.plan_publishes, s.plan_last_epoch);
    out << line;
    std::snprintf(line, sizeof(line),
                  "  skips                        %zu identical, %zu churn\n",
                  s.plan_skips_identical, s.plan_skips_churn);
    out << line;
    if (s.plan_publishes > 0) {
      std::snprintf(line, sizeof(line),
                    "  classes moved per publish    mean %.1f, max %zu\n",
                    static_cast<double>(s.plan_moved_total) /
                        static_cast<double>(s.plan_publishes),
                    s.plan_moved_max);
      out << line;
    }
  }
  out << "event counts by name:\n";
  for (const auto& [name, count] : s.by_name) {
    std::snprintf(line, sizeof(line), "  %-28s %zu\n", name.c_str(), count);
    out << line;
  }
  return out.str();
}

std::string merge_traces(const std::vector<std::string>& json_texts,
                         std::string* error) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < json_texts.size(); ++i) {
    const auto doc = parse_trace_text(json_texts[i], error);
    if (doc == nullptr) return {};
    for (const auto& e : doc->find("traceEvents")->as_array()) {
      if (!first) out += ",\n";
      first = false;
      render_event(e, static_cast<int>(i), out);
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string convert_trace(const std::string& json_text, std::string* error) {
  const auto doc = parse_trace_text(json_text, error);
  if (doc == nullptr) return {};
  const auto& events = doc->find("traceEvents")->as_array();
  // Normalize: shift timestamps so the earliest is 0 (merging traces from
  // different epochs by hand becomes feasible after this).
  double t_min = 0.0;
  bool any = false;
  for (const auto& e : events) {
    if (e.string_or("ph", "") == "M") continue;
    const double ts = e.number_or("ts", 0.0);
    if (!any || ts < t_min) t_min = ts;
    any = true;
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += '{';
    bool first_key = true;
    for (const auto& [key, value] : e.members()) {
      if (!first_key) out += ',';
      first_key = false;
      out += '"';
      out += json_escape(key);
      out += "\":";
      if (key == "ts" && e.string_or("ph", "") != "M") {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.3f", value.as_number() - t_min);
        out += buf;
      } else {
        render(value, out);
      }
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace wats::obs
