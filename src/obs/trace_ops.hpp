// The logic behind the wats_trace subcommands (summarize / merge /
// convert), factored out of the CLI so tests can cover the paths without
// spawning binaries. All functions take trace-event JSON documents as
// text and either return the transformed document or fill `error`.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wats::obs {

struct TrackSummary {
  int tid = 0;
  std::string name;
  std::size_t slices = 0;
  double busy_us = 0.0;
};

struct TraceSummary {
  std::size_t events = 0;
  std::size_t slices = 0;
  std::size_t instants = 0;
  std::size_t metadata = 0;
  bool any_ts = false;
  double t_min_us = 0.0;
  double t_max_us = 0.0;
  std::vector<TrackSummary> tracks;  ///< tracks with slices, by tid
  /// Event counts by name, sorted descending.
  std::vector<std::pair<std::string, std::size_t>> by_name;
  // Plan churn (plan_publish / plan_skip instants).
  std::size_t plan_publishes = 0;
  std::size_t plan_skips_identical = 0;
  std::size_t plan_skips_churn = 0;
  std::size_t plan_moved_total = 0;
  std::size_t plan_moved_max = 0;
  double plan_last_epoch = 0.0;
  // Ring-overwrite loss ("events_dropped" markers; see obs/export.hpp).
  std::uint64_t events_dropped = 0;
  std::size_t lossy_rings = 0;
  bool lossy() const { return events_dropped > 0; }
};

/// Parse and tally one trace document. Returns false + `error` when the
/// text is not a trace-event file.
bool summarize_trace(const std::string& json_text, TraceSummary* summary,
                     std::string* error);

/// The `wats_trace summarize` text, including the loss warning when the
/// trace dropped events. `label` heads the output (usually the path).
std::string render_summary(const TraceSummary& summary,
                           const std::string& label);

/// Merge documents into one file, one pid per input (sim vs runtime side
/// by side). Empty return + `error` on a malformed input.
std::string merge_traces(const std::vector<std::string>& json_texts,
                         std::string* error);

/// Parse, validate and re-emit with timestamps normalized to start at 0.
std::string convert_trace(const std::string& json_text, std::string* error);

}  // namespace wats::obs
