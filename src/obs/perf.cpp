#include "obs/perf.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json.hpp"

namespace wats::obs {

double PerfMetric::best() const {
  if (values.empty()) return 0.0;
  return higher_is_better
             ? *std::max_element(values.begin(), values.end())
             : *std::min_element(values.begin(), values.end());
}

const PerfMetric* PerfReport::find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string render_perf_json(const PerfReport& report) {
  std::ostringstream out;
  const auto escape = [](const std::string& s) {
    std::string e;
    for (const char c : s) {
      if (c == '"' || c == '\\') e += '\\';
      e += c;
    }
    return e;
  };
  out << "{\n  \"schema\": \"" << kPerfSchema << "\",\n"
      << "  \"probe\": \"" << escape(report.probe) << "\",\n"
      << "  \"repeats\": " << report.repeats << ",\n"
      << "  \"metrics\": [\n";
  char num[48];
  for (std::size_t i = 0; i < report.metrics.size(); ++i) {
    const auto& m = report.metrics[i];
    std::snprintf(num, sizeof(num), "%.4f", m.rel_threshold);
    out << "    {\"name\": \"" << escape(m.name) << "\", \"unit\": \""
        << escape(m.unit) << "\", \"higher_is_better\": "
        << (m.higher_is_better ? "true" : "false")
        << ", \"rel_threshold\": " << num;
    if (m.abs_floor > 0.0) {
      std::snprintf(num, sizeof(num), "%.6g", m.abs_floor);
      out << ", \"abs_floor\": " << num;
    }
    out << ", \"values\": [";
    for (std::size_t j = 0; j < m.values.size(); ++j) {
      std::snprintf(num, sizeof(num), "%.6g", m.values[j]);
      out << (j > 0 ? ", " : "") << num;
    }
    out << "]}" << (i + 1 < report.metrics.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

bool parse_perf_json(const std::string& json_text, PerfReport* report,
                     std::string* error) {
  std::string parse_error;
  const auto doc = parse_json(json_text, &parse_error);
  if (doc == nullptr) {
    if (error != nullptr) *error = "JSON parse error: " + parse_error;
    return false;
  }
  if (doc->string_or("schema", "") != kPerfSchema) {
    if (error != nullptr) {
      *error = "schema mismatch: expected " + std::string(kPerfSchema) +
               ", got '" + doc->string_or("schema", "") + "'";
    }
    return false;
  }
  PerfReport r;
  r.probe = doc->string_or("probe", "");
  r.repeats = static_cast<std::size_t>(doc->number_or("repeats", 0.0));
  const auto* metrics = doc->find("metrics");
  if (metrics == nullptr || metrics->type() != JsonValue::Type::kArray) {
    if (error != nullptr) *error = "missing metrics array";
    return false;
  }
  for (const auto& m : metrics->as_array()) {
    PerfMetric metric;
    metric.name = m.string_or("name", "");
    if (metric.name.empty()) {
      if (error != nullptr) *error = "metric without a name";
      return false;
    }
    metric.unit = m.string_or("unit", "");
    const auto* hib = m.find("higher_is_better");
    metric.higher_is_better = hib != nullptr &&
                              hib->type() == JsonValue::Type::kBool &&
                              hib->as_bool();
    metric.rel_threshold = m.number_or("rel_threshold", 0.10);
    metric.abs_floor = m.number_or("abs_floor", 0.0);
    const auto* values = m.find("values");
    if (values != nullptr && values->type() == JsonValue::Type::kArray) {
      for (const auto& v : values->as_array()) {
        metric.values.push_back(v.as_number());
      }
    }
    r.metrics.push_back(std::move(metric));
  }
  *report = std::move(r);
  return true;
}

PerfDiffResult diff_perf(const PerfReport& baseline,
                         const PerfReport& current, double slack) {
  PerfDiffResult result;
  if (slack <= 0.0) slack = 1.0;
  for (const auto& base : baseline.metrics) {
    PerfDelta d;
    d.name = base.name;
    d.base = base.best();
    const PerfMetric* cur = current.find(base.name);
    if (cur == nullptr || cur->values.empty() || base.values.empty()) {
      d.missing = true;
      result.deltas.push_back(std::move(d));
      continue;
    }
    d.current = cur->best();
    // The BASELINE's band governs: the committed file carries the
    // per-metric noise expectation the repo has agreed on.
    d.allowed = base.rel_threshold * slack;
    // The metric's absolute floor absorbs small-count jitter outright and
    // caps how much a near-zero baseline can inflate the relative change
    // (a 0 -> 2 counter move used to read as an infinite regression).
    const double denom = std::max(std::abs(d.base), base.abs_floor);
    if (std::abs(d.current - d.base) <= base.abs_floor) {
      d.rel_change = 0.0;
    } else if (denom != 0.0) {
      // Positive rel_change = worse, regardless of direction.
      d.rel_change = base.higher_is_better ? (d.base - d.current) / denom
                                           : (d.current - d.base) / denom;
    } else {
      d.rel_change = d.current == 0.0 ? 0.0 : 1.0;
    }
    d.regressed = d.rel_change > d.allowed;
    d.improved = d.rel_change < -d.allowed;
    result.regression |= d.regressed;
    result.deltas.push_back(std::move(d));
  }
  for (const auto& cur : current.metrics) {
    if (baseline.find(cur.name) == nullptr) {
      PerfDelta d;
      d.name = cur.name;
      d.current = cur.best();
      d.missing = true;
      result.deltas.push_back(std::move(d));
    }
  }
  return result;
}

std::string render_perf_diff(const PerfDiffResult& diff) {
  std::ostringstream out;
  char line[224];
  std::snprintf(line, sizeof(line), "%-28s %14s %14s %9s %9s  %s\n",
                "metric", "baseline", "current", "change", "allowed",
                "verdict");
  out << line;
  for (const auto& d : diff.deltas) {
    if (d.missing) {
      std::snprintf(line, sizeof(line), "%-28s %14.4g %14.4g %9s %9s  %s\n",
                    d.name.c_str(), d.base, d.current, "-", "-",
                    "missing (ignored)");
      out << line;
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "%-28s %14.4g %14.4g %+8.1f%% %8.1f%%  %s\n",
                  d.name.c_str(), d.base, d.current, 100.0 * d.rel_change,
                  100.0 * d.allowed,
                  d.regressed ? "REGRESSED"
                              : (d.improved ? "improved" : "ok"));
    out << line;
  }
  out << (diff.regression ? "RESULT: regression detected\n"
                          : "RESULT: no regression\n");
  return out.str();
}

}  // namespace wats::obs
