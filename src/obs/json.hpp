// A minimal JSON reader for the trace tools: enough of RFC 8259 to parse
// what the Perfetto exporters write (objects, arrays, strings with basic
// escapes, numbers, booleans, null). Not a general-purpose library — the
// tools and tests own both ends of the format.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wats::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Convenience getters with defaults for absent/mistyped members.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return object_;
  }

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parse `text`; on failure returns nullptr and fills `error` (when given)
/// with a byte offset + message.
std::unique_ptr<JsonValue> parse_json(const std::string& text,
                                      std::string* error = nullptr);

}  // namespace wats::obs
