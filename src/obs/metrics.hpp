// Counters, gauges and log2-bucket histograms with a point-in-time
// snapshot API and a text renderer. Hot-path friendly: callers register
// once (mutex) and then hold stable pointers whose updates are single
// relaxed atomic RMWs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wats::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Histogram over unsigned values (latencies in ns, sizes, ...): 64
/// power-of-two buckets (bucket b counts values with bit_width b), exact
/// count/sum and tracked min/max. record() is wait-free.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) /
                              static_cast<double>(count);
    }
    /// Upper bound of the bucket holding the p-quantile (p in [0,1]).
    std::uint64_t quantile_bound(double p) const;
  };

  Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Named registry. counter()/histogram() return stable references that
/// outlive the call (entries are never removed); set_gauge() overwrites.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  void set_gauge(const std::string& name, double value);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };

  /// Consistent-enough racy snapshot: each metric is read atomically, the
  /// set as a whole is not quiesced (same contract as RuntimeStats).
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;  // guards the name maps, not the metric values
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
  std::vector<std::pair<std::string, double>> gauges_;
};

/// Human-readable multi-line summary of a snapshot (the text exporter).
std::string render_text(const MetricsRegistry::Snapshot& snapshot);

/// Machine-readable JSON rendering of a snapshot: counters and gauges as
/// name/value maps, histograms as {count, mean, min, p50, p99, p999, max}
/// (quantiles are log2-bucket upper bounds, like the text summary).
std::string render_json(const MetricsRegistry::Snapshot& snapshot);

}  // namespace wats::obs
