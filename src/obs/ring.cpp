#include "obs/ring.hpp"

#include <bit>

namespace wats::obs {

EventRing::EventRing(std::size_t capacity) {
  if (capacity < 2) capacity = 2;
  slots_ = std::vector<Slot>(std::bit_ceil(capacity));
  mask_ = slots_.size() - 1;
}

void EventRing::emit(EventKind kind, std::uint16_t worker, std::uint8_t lane,
                     std::uint32_t cls, std::uint64_t arg) noexcept {
  const std::uint64_t i = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[i & mask_];
  // Seqlock write: odd marker, payload, even marker carrying the absolute
  // index (so readers can tell WHICH event the slot holds, not just that
  // it is stable).
  s.seq.store(2 * i + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.tsc.store(tsc_now(), std::memory_order_relaxed);
  s.meta.store(pack_meta(kind, worker, lane, cls), std::memory_order_relaxed);
  s.arg.store(arg, std::memory_order_relaxed);
  s.seq.store(2 * (i + 1), std::memory_order_release);
  head_.store(i + 1, std::memory_order_release);
}

std::vector<TraceEvent> EventRing::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n =
      head < slots_.size() ? head : static_cast<std::uint64_t>(slots_.size());
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head - n; i < head; ++i) {
    const Slot& s = slots_[i & mask_];
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 != 2 * (i + 1)) continue;  // mid-write or already overwritten
    TraceEvent e;
    e.tsc = s.tsc.load(std::memory_order_relaxed);
    unpack_meta(s.meta.load(std::memory_order_relaxed), e);
    e.arg = s.arg.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    out.push_back(e);
  }
  return out;
}

}  // namespace wats::obs
