#include "obs/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.hpp"
#include "obs/trace_event.hpp"

namespace wats::obs {

namespace {

constexpr double kEps = 1e-12;

double quantile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank on the sorted samples (exact, not bucketed).
  const double rank = std::ceil(p * static_cast<double>(sorted.size()));
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

QueueDelayStats delay_stats(std::vector<double> samples) {
  QueueDelayStats s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = quantile(samples, 0.50);
  s.p99 = quantile(samples, 0.99);
  s.p999 = quantile(samples, 0.999);
  s.max = samples.back();
  return s;
}

/// Fast = the core's group runs at the machine's top relative speed.
bool core_is_fast(const SpanGraph& g, std::uint32_t core) {
  if (core >= g.core_speed.size()) return true;
  double max_speed = 0.0;
  for (const double s : g.core_speed) max_speed = std::max(max_speed, s);
  return g.core_speed[core] >= max_speed - 1e-9;
}

std::string class_label(const SpanGraph& g, std::uint32_t cls) {
  if (cls < g.class_names.size() && !g.class_names[cls].empty()) {
    return g.class_names[cls];
  }
  if (cls == kObsNoClass) return "unclassified";
  return "class " + std::to_string(cls);
}

}  // namespace

const char* to_string(CostComponent component) {
  switch (component) {
    case CostComponent::kFastCompute:
      return "fast-core compute";
    case CostComponent::kSlowCompute:
      return "slow-core compute";
    case CostComponent::kQueueWait:
      return "queue wait";
    case CostComponent::kStealMigration:
      return "steal/migration";
    case CostComponent::kReclusterStall:
      return "recluster stall";
    case CostComponent::kParkWake:
      return "park/wake";
  }
  return "?";
}

CriticalPathReport analyze_spans(const SpanGraph& graph) {
  CriticalPathReport report;
  report.exact = graph.exact;
  report.total_tasks = graph.spans.size();

  // Machine shape: one GroupReport per distinct group id.
  std::map<std::uint32_t, GroupReport> groups;
  for (std::size_t c = 0; c < graph.core_group.size(); ++c) {
    GroupReport& g = groups[graph.core_group[c]];
    g.group = graph.core_group[c];
    g.speed = c < graph.core_speed.size() ? graph.core_speed[c] : 1.0;
    ++g.cores;
  }
  const auto group_of = [&](std::uint32_t core) -> std::uint32_t {
    return core < graph.core_group.size() ? graph.core_group[core] : 0;
  };

  // Whole-trace aggregates: per-group busy time, per-class task counts
  // and queue-delay samples (ready -> first dispatch).
  std::map<std::uint32_t, ClassReport> classes;
  std::vector<double> all_delays;
  std::size_t total_slices = 0;
  double makespan = 0.0;
  std::map<std::uint64_t, const TaskSpan*> by_id;
  const TaskSpan* last = nullptr;
  for (const auto& span : graph.spans) {
    by_id[span.id] = &span;
    ClassReport& cr = classes[span.cls];
    cr.cls = span.cls;
    ++cr.tasks;
    total_slices += span.slices.size();
    for (const auto& s : span.slices) {
      groups[group_of(s.core)].busy += s.end - s.start;
      if (s.end > makespan) {
        makespan = s.end;
        last = &span;
      }
    }
    if (!span.slices.empty()) {
      const double delay =
          std::max(0.0, span.slices.front().dispatched - span.ready);
      all_delays.push_back(delay);
    }
  }
  if (graph.makespan > makespan) makespan = graph.makespan;
  report.makespan = makespan;

  std::map<std::uint32_t, std::vector<double>> class_delays;
  for (const auto& span : graph.spans) {
    if (span.slices.empty()) continue;
    class_delays[span.cls].push_back(
        std::max(0.0, span.slices.front().dispatched - span.ready));
  }

  // Backward last-arrival walk: attribute [0, makespan] by telescoping
  // contiguous intervals, jumping to the spawning task at each `ready`.
  const auto add = [&](CostComponent c, double dt) {
    if (dt > 0.0) report.components[static_cast<std::size_t>(c)] += dt;
  };
  double t = makespan;
  const TaskSpan* cur = last;
  std::size_t steps = 0;
  const std::size_t max_steps = 4 * total_slices + graph.spans.size() + 16;
  while (cur != nullptr && t > kEps && steps++ < max_steps) {
    ++report.critical_tasks;
    for (auto it = cur->slices.rbegin(); it != cur->slices.rend(); ++it) {
      const SpanSlice& s = *it;
      if (s.dispatched >= t) continue;  // slice entirely after the cursor
      if (t > s.end) {
        // Gap above the slice (spawn-cost stagger, parent finished before
        // a deferred spawn fired): nothing was executing on the chain.
        add(CostComponent::kQueueWait, t - s.end);
        t = s.end;
      }
      const double exec_from = std::min(std::max(s.start, s.dispatched), t);
      if (t > exec_from) {
        const double dt = t - exec_from;
        add(core_is_fast(graph, s.core) ? CostComponent::kFastCompute
                                        : CostComponent::kSlowCompute,
            dt);
        groups[group_of(s.core)].critical_compute += dt;
        classes[cur->cls].critical_compute += dt;
        t = exec_from;
      }
      if (t > s.dispatched) {
        add(CostComponent::kStealMigration, t - s.dispatched);
        t = s.dispatched;
      }
    }
    const double ready = std::min(cur->ready, t);
    if (t > ready) {
      add(CostComponent::kQueueWait, t - ready);
      t = ready;
    }
    if (cur->parent == 0) break;
    const auto parent = by_id.find(cur->parent);
    cur = parent == by_id.end() ? nullptr : parent->second;
  }
  if (t > 0.0) {
    // Root reached (or an unlinked parent): the head of the chain is the
    // initial spawn stagger — ready but nothing dispatched yet.
    add(CostComponent::kQueueWait, t);
  }

  report.queue_delay = delay_stats(std::move(all_delays));
  for (auto& [cls, cr] : classes) {
    cr.name = class_label(graph, cls);
    cr.queue_delay = delay_stats(std::move(class_delays[cls]));
    report.classes.push_back(std::move(cr));
  }
  for (auto& [id, g] : groups) report.groups.push_back(g);
  return report;
}

// ---------------------------------------------------------------------------
// JSON ingestion (both producers).

namespace {

struct TrackInfo {
  bool is_worker = false;  ///< "core N (...)" / "worker N (...)" label
  std::uint32_t group = 0;
  double speed = 1.0;
};

/// Parse "core 3 (group 1, 0.40x)" / "worker 3 (group 1, 0.40x)".
bool parse_track_label(const std::string& label, TrackInfo* info) {
  std::size_t idx;
  unsigned long group;
  double speed;
  if (std::sscanf(label.c_str(), "core %zu (group %lu, %lfx)", &idx, &group,
                  &speed) == 3 ||
      std::sscanf(label.c_str(), "worker %zu (group %lu, %lfx)", &idx,
                  &group, &speed) == 3) {
    info->is_worker = true;
    info->group = static_cast<std::uint32_t>(group);
    info->speed = speed;
    return true;
  }
  return false;
}

struct ParsedDoc {
  const JsonValue* events = nullptr;
  std::map<int, std::string> track_names;  // tid -> label
  std::string process_name;
};

bool parse_doc(const JsonValue& doc, ParsedDoc* out, std::string* error) {
  out->events = doc.find("traceEvents");
  if (out->events == nullptr ||
      out->events->type() != JsonValue::Type::kArray) {
    if (error != nullptr) *error = "not a trace-event file (no traceEvents)";
    return false;
  }
  for (const auto& e : out->events->as_array()) {
    if (e.string_or("ph", "") != "M") continue;
    const auto* args = e.find("args");
    if (args == nullptr) continue;
    if (e.string_or("name", "") == "thread_name") {
      out->track_names[static_cast<int>(e.number_or("tid", 0))] =
          args->string_or("name", "");
    } else if (e.string_or("name", "") == "process_name") {
      if (out->process_name.empty()) {
        out->process_name = args->string_or("name", "");
      }
    }
  }
  return true;
}

bool build_sim_graph(const ParsedDoc& doc, SpanGraph* graph) {
  graph->exact = true;
  int max_tid = -1;
  for (const auto& [tid, label] : doc.track_names) {
    TrackInfo info;
    if (parse_track_label(label, &info) && tid > max_tid) max_tid = tid;
  }
  graph->core_group.assign(static_cast<std::size_t>(max_tid + 1), 0);
  graph->core_speed.assign(static_cast<std::size_t>(max_tid + 1), 1.0);
  for (const auto& [tid, label] : doc.track_names) {
    TrackInfo info;
    if (parse_track_label(label, &info) && tid >= 0) {
      graph->core_group[static_cast<std::size_t>(tid)] = info.group;
      graph->core_speed[static_cast<std::size_t>(tid)] = info.speed;
    }
  }

  std::map<std::uint64_t, TaskSpan> spans;
  for (const auto& e : doc.events->as_array()) {
    if (e.string_or("ph", "") != "X") continue;
    const auto* args = e.find("args");
    if (args == nullptr || args->find("task") == nullptr) continue;
    const auto id = static_cast<std::uint64_t>(args->number_or("task", 0.0));
    const double ts = e.number_or("ts", 0.0);
    const double dur = e.number_or("dur", 0.0);
    TaskSpan& span = spans[id];
    span.id = id;
    const double cls = args->number_or("cls", -1.0);
    span.cls = cls < 0.0 ? kObsNoClass : static_cast<std::uint32_t>(cls);
    span.parent =
        static_cast<std::uint64_t>(args->number_or("parent", 0.0));
    SpanSlice slice;
    slice.start = ts;
    slice.end = ts + dur;
    slice.dispatched = std::min(args->number_or("dispatched", ts), ts);
    slice.core = static_cast<std::uint32_t>(e.number_or("tid", 0.0));
    slice.preempted = [&] {
      const auto* p = args->find("preempted");
      return p != nullptr && p->type() == JsonValue::Type::kBool &&
             p->as_bool();
    }();
    span.slices.push_back(slice);
    // `ready` defaults to the earliest dispatch when the producer predates
    // lifecycle recording (queue wait then collapses to 0 for the task).
    const double ready = args->number_or("ready", slice.dispatched);
    if (span.slices.size() == 1 || ready < span.ready) span.ready = ready;
    if (span.cls != kObsNoClass) {
      if (graph->class_names.size() <= span.cls) {
        graph->class_names.resize(span.cls + 1);
      }
      if (graph->class_names[span.cls].empty()) {
        graph->class_names[span.cls] = e.string_or("name", "");
      }
    }
    if (slice.end > graph->makespan) graph->makespan = slice.end;
  }
  for (auto& [id, span] : spans) {
    std::sort(span.slices.begin(), span.slices.end(),
              [](const SpanSlice& a, const SpanSlice& b) {
                return a.start < b.start;
              });
    graph->spans.push_back(std::move(span));
  }
  return true;
}

/// Best-effort runtime decomposition: per-worker timelines averaged over
/// the workers so the components still sum to the wall span.
CriticalPathReport analyze_runtime_doc(const ParsedDoc& doc) {
  CriticalPathReport report;
  report.exact = false;

  struct WorkerAgg {
    TrackInfo info;
    double busy = 0.0;
    double parked = 0.0;
    double park_since = -1.0;
  };
  std::map<int, WorkerAgg> workers;
  for (const auto& [tid, label] : doc.track_names) {
    TrackInfo info;
    if (parse_track_label(label, &info)) workers[tid].info = info;
  }

  double t_min = 0.0, t_max = 0.0;
  bool any_ts = false;
  std::map<std::uint32_t, ClassReport> classes;
  std::map<std::uint32_t, std::vector<double>> class_delays;
  std::vector<double> all_delays;
  std::map<std::uint32_t, GroupReport> groups;
  std::uint64_t tasks = 0;
  bool has_queue_delay = false;
  // First pass: prefer the explicit task_dispatch queue-delay samples
  // over the spawn->start dispatch instants when both are present.
  for (const auto& e : doc.events->as_array()) {
    if (e.string_or("ph", "") == "i" &&
        e.string_or("name", "") == "task_dispatch") {
      has_queue_delay = true;
      break;
    }
  }

  for (const auto& e : doc.events->as_array()) {
    const std::string ph = e.string_or("ph", "");
    if (ph == "M") continue;
    const int tid = static_cast<int>(e.number_or("tid", 0.0));
    const double ts = e.number_or("ts", 0.0);
    const double dur = e.number_or("dur", 0.0);
    if (!any_ts || ts < t_min) t_min = ts;
    if (!any_ts || ts + dur > t_max) t_max = ts + dur;
    any_ts = true;
    const std::string name = e.string_or("name", "");
    const auto* args = e.find("args");
    if (ph == "X") {
      ++tasks;
      auto it = workers.find(tid);
      if (it != workers.end()) {
        it->second.busy += dur;
        GroupReport& g = groups[it->second.info.group];
        g.group = it->second.info.group;
        g.speed = it->second.info.speed;
        g.busy += dur;
      }
      const double cls_num =
          args != nullptr ? args->number_or("cls", -1.0) : -1.0;
      const std::uint32_t cls = cls_num < 0.0
                                    ? kObsNoClass
                                    : static_cast<std::uint32_t>(cls_num);
      ClassReport& cr = classes[cls];
      cr.cls = cls;
      if (cr.name.empty()) cr.name = name;
      ++cr.tasks;
      continue;
    }
    if (ph != "i") continue;
    auto it = workers.find(tid);
    if (name == "park" && it != workers.end()) {
      it->second.park_since = ts;
    } else if (name == "unpark" && it != workers.end()) {
      if (it->second.park_since >= 0.0 && ts > it->second.park_since) {
        it->second.parked += ts - it->second.park_since;
      }
      it->second.park_since = -1.0;
    } else if ((has_queue_delay && name == "task_dispatch") ||
               (!has_queue_delay && name == "dispatch")) {
      const double us =
          args != nullptr
              ? args->number_or(
                    has_queue_delay ? "queue_delay_us" : "dispatch_latency_us",
                    0.0)
              : 0.0;
      all_delays.push_back(us);
      const double cls_num =
          args != nullptr ? args->number_or("cls", -1.0) : -1.0;
      if (cls_num >= 0.0) {
        class_delays[static_cast<std::uint32_t>(cls_num)].push_back(us);
      }
    }
  }

  const double span = any_ts ? t_max - t_min : 0.0;
  report.makespan = span;
  report.total_tasks = tasks;
  double max_speed = 0.0;
  for (const auto& [tid, w] : workers) {
    max_speed = std::max(max_speed, w.info.speed);
  }
  if (!workers.empty() && span > 0.0) {
    const double n = static_cast<double>(workers.size());
    for (const auto& [tid, w] : workers) {
      const double busy = std::min(w.busy, span);
      const double parked = std::min(w.parked, span - busy);
      const double idle = std::max(0.0, span - busy - parked);
      const bool fast = w.info.speed >= max_speed - 1e-9;
      report.components[static_cast<std::size_t>(
          fast ? CostComponent::kFastCompute
               : CostComponent::kSlowCompute)] += busy / n;
      report.components[static_cast<std::size_t>(
          CostComponent::kParkWake)] += parked / n;
      // Task identity does not survive the rings, so unattributed idle is
      // binned into queue wait (documented in OBSERVABILITY.md).
      report.components[static_cast<std::size_t>(
          CostComponent::kQueueWait)] += idle / n;
    }
  }

  report.queue_delay = delay_stats(std::move(all_delays));
  for (auto& [cls, cr] : classes) {
    cr.queue_delay = delay_stats(std::move(class_delays[cls]));
    report.classes.push_back(std::move(cr));
  }
  for (auto& [id, g] : groups) report.groups.push_back(g);
  return report;
}

}  // namespace

bool span_graph_from_trace_json(const std::string& json_text,
                                SpanGraph* graph, std::string* error) {
  std::string parse_error;
  const auto doc = parse_json(json_text, &parse_error);
  if (doc == nullptr) {
    if (error != nullptr) *error = "JSON parse error: " + parse_error;
    return false;
  }
  ParsedDoc parsed;
  if (!parse_doc(*doc, &parsed, error)) return false;
  return build_sim_graph(parsed, graph);
}

AnalyzeResult analyze_trace_json(const std::string& json_text) {
  AnalyzeResult result;
  std::string parse_error;
  const auto doc = parse_json(json_text, &parse_error);
  if (doc == nullptr) {
    result.error = "JSON parse error: " + parse_error;
    return result;
  }
  ParsedDoc parsed;
  if (!parse_doc(*doc, &parsed, &result.error)) return result;

  // Producer detection: the simulator stamps its process label; failing
  // that, slices carrying a task id (the sim's args) mean exact mode.
  bool is_sim =
      parsed.process_name.rfind("wats simulator", 0) == 0;
  if (!is_sim && parsed.process_name.rfind("wats runtime", 0) != 0) {
    for (const auto& e : parsed.events->as_array()) {
      if (e.string_or("ph", "") != "X") continue;
      const auto* args = e.find("args");
      is_sim = args != nullptr && args->find("task") != nullptr;
      break;
    }
  }
  if (is_sim) {
    SpanGraph graph;
    build_sim_graph(parsed, &graph);
    result.report = analyze_spans(graph);
  } else {
    result.report = analyze_runtime_doc(parsed);
  }
  return result;
}

std::string render_report(const CriticalPathReport& report) {
  std::ostringstream out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "critical path (%s, makespan %.3f us, %llu tasks):\n",
                report.exact ? "exact, virtual time"
                             : "best-effort, wall time",
                report.makespan,
                static_cast<unsigned long long>(report.total_tasks));
  out << line;
  const double denom = report.makespan > 0.0 ? report.makespan : 1.0;
  for (std::size_t i = 0; i < kCostComponentCount; ++i) {
    std::snprintf(line, sizeof(line), "  %-20s %14.3f us  %5.1f%%\n",
                  to_string(static_cast<CostComponent>(i)),
                  report.components[i], 100.0 * report.components[i] / denom);
    out << line;
  }
  std::snprintf(line, sizeof(line), "  %-20s %14.3f us  %5.1f%%\n", "sum",
                report.components_sum(),
                100.0 * report.components_sum() / denom);
  out << line;
  if (report.exact && report.critical_tasks > 0) {
    std::snprintf(line, sizeof(line), "  [chain: %zu of %llu tasks]\n",
                  report.critical_tasks,
                  static_cast<unsigned long long>(report.total_tasks));
    out << line;
  }
  if (!report.groups.empty()) {
    out << "per c-group:\n";
    for (const auto& g : report.groups) {
      std::snprintf(line, sizeof(line),
                    "  group %u (%.2fx, %zu cores)  on-chain compute "
                    "%12.3f us  busy %12.3f us\n",
                    g.group, g.speed, g.cores, g.critical_compute, g.busy);
      out << line;
    }
  }
  if (report.queue_delay.count > 0) {
    std::snprintf(line, sizeof(line),
                  "queue delay (us): n=%llu mean=%.3f p50=%.3f p99=%.3f "
                  "p999=%.3f max=%.3f\n",
                  static_cast<unsigned long long>(report.queue_delay.count),
                  report.queue_delay.mean, report.queue_delay.p50,
                  report.queue_delay.p99, report.queue_delay.p999,
                  report.queue_delay.max);
    out << line;
  }
  if (!report.classes.empty()) {
    out << "per task class:\n";
    for (const auto& c : report.classes) {
      std::snprintf(line, sizeof(line),
                    "  %-24s tasks %6llu  on-chain %10.3f us  queue p50 "
                    "%8.3f p99 %8.3f p999 %8.3f\n",
                    c.name.c_str(),
                    static_cast<unsigned long long>(c.tasks),
                    c.critical_compute, c.queue_delay.p50, c.queue_delay.p99,
                    c.queue_delay.p999);
      out << line;
    }
  }
  return out.str();
}

}  // namespace wats::obs
