// Event taxonomy for the runtime trace rings. One fixed-size POD per
// event; the ring stores them packed into atomic words (see ring.hpp).
//
// Compile-time kill switch: configuring with -DWATS_TRACE=OFF defines
// WATS_OBS_ENABLED=0, and every instrumentation site in the runtime and
// the policy kernel is wrapped in `if constexpr (obs::kTraceCompiledIn)`,
// so the traced paths compile to nothing. With tracing compiled in but not
// enabled at runtime, the hot path pays one predicted branch (a null ring
// pointer / null sink check).
#pragma once

#include <cstddef>
#include <cstdint>

#ifndef WATS_OBS_ENABLED
#define WATS_OBS_ENABLED 1
#endif

namespace wats::obs {

inline constexpr bool kTraceCompiledIn = WATS_OBS_ENABLED != 0;

/// What happened. The `arg` field of TraceEvent is kind-specific; see
/// docs/OBSERVABILITY.md for the full taxonomy.
enum class EventKind : std::uint8_t {
  kTaskBegin = 0,     ///< arg = dispatch-to-start latency in ticks
  kTaskEnd,           ///< arg = execution duration in ticks (incl. throttle)
  kStealAttempt,      ///< arg = victim core; the deque may still come up dry
  kStealSuccess,      ///< arg = victim core
  kCrossCluster,      ///< arg = lane the task belonged to (!= own group)
  kSnatch,            ///< arg = victim core (speed-swap succeeded)
  kRecluster,         ///< arg = total reclusters so far (helper thread)
  kIdleSpin,          ///< arg = coalesced count of consecutive empty rounds
  kPark,              ///< arg = eventcount ticket the worker parked with
  kUnpark,            ///< arg = 1 woken by a wake, 0 timed out (snatch poll)
  kWake,              ///< arg = c-group whose sleeper the spawn woke
  kHistoryMerge,      ///< arg = completions folded from the history shards
  kPlanPublish,       ///< arg = classes moved by the plan; cls = plan epoch
  kPlanSkip,          ///< arg = 1 identical / 2 churn-suppressed; cls = epoch
  kHistoryReset,      ///< arg = total resets so far; cls = decayed class
  kTaskDispatch,      ///< arg = ready-to-dispatch queue delay in ticks
  kPlanRepair,        ///< arg = classes moved by the repaired candidate;
                      ///< cls = epoch of the attempt's current plan
  kSpeedSwap,         ///< arg = new group frequency in MHz; lane = c-group;
                      ///< cls = SpeedPlan epoch (governor-driven DVFS step)
};

inline constexpr std::size_t kEventKindCount = 18;

inline const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTaskBegin:
      return "task_begin";
    case EventKind::kTaskEnd:
      return "task_end";
    case EventKind::kStealAttempt:
      return "steal_attempt";
    case EventKind::kStealSuccess:
      return "steal_success";
    case EventKind::kCrossCluster:
      return "cross_cluster";
    case EventKind::kSnatch:
      return "snatch";
    case EventKind::kRecluster:
      return "recluster";
    case EventKind::kIdleSpin:
      return "idle_spin";
    case EventKind::kPark:
      return "park";
    case EventKind::kUnpark:
      return "unpark";
    case EventKind::kWake:
      return "wake";
    case EventKind::kHistoryMerge:
      return "history_merge";
    case EventKind::kPlanPublish:
      return "plan_publish";
    case EventKind::kPlanSkip:
      return "plan_skip";
    case EventKind::kHistoryReset:
      return "history_reset";
    case EventKind::kTaskDispatch:
      return "task_dispatch";
    case EventKind::kPlanRepair:
      return "plan_repair";
    case EventKind::kSpeedSwap:
      return "speed_swap";
  }
  return "?";
}

/// Sentinel class id, mirroring core::kNoTaskClass (obs must not depend on
/// wats_core, so the constant is restated here; a static_assert in
/// runtime.cpp keeps the two in sync).
inline constexpr std::uint32_t kObsNoClass = 0xFFFFFFFFu;

struct TraceEvent {
  std::uint64_t tsc = 0;   ///< tsc_now() stamp at emission
  std::uint64_t arg = 0;   ///< kind-specific payload (see EventKind)
  std::uint32_t cls = kObsNoClass;  ///< task class, when meaningful
  EventKind kind = EventKind::kTaskBegin;
  std::uint8_t lane = 0;    ///< task-cluster lane involved
  std::uint16_t worker = 0; ///< emitting worker (ring owner)
};

}  // namespace wats::obs
