// Timestamping for the observability layer: a raw cycle counter for the
// hot path (one rdtsc, no syscall) plus a calibration that maps ticks to
// wall-clock nanoseconds after the fact. Header-only so the policy kernel
// can stamp decision records without linking wats_obs.
//
// On non-x86 hosts (or when the TSC is unusable) tsc_now() falls back to
// steady_clock nanoseconds; calibration then comes out as ~1 ns/tick and
// everything downstream keeps working, just with a slower stamp.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace wats::obs {

/// Raw timestamp in "ticks". Monotonic per thread; across threads the TSC
/// is synchronized on every invariant-TSC x86 machine made this decade.
inline std::uint64_t tsc_now() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Linear tick -> nanosecond map measured against steady_clock.
struct TscCalibration {
  std::uint64_t base_ticks = 0;  ///< tsc_now() at calibration time
  std::int64_t base_ns = 0;      ///< steady_clock ns at base_ticks
  double ns_per_tick = 1.0;

  /// Nanoseconds (steady_clock epoch) for a tick stamp. Stamps taken
  /// before base_ticks map backwards correctly (signed delta).
  std::int64_t to_ns(std::uint64_t ticks) const {
    const auto delta = static_cast<double>(
        static_cast<std::int64_t>(ticks - base_ticks));
    return base_ns + static_cast<std::int64_t>(delta * ns_per_tick);
  }

  double to_us(std::uint64_t ticks) const {
    return static_cast<double>(to_ns(ticks)) / 1000.0;
  }

  /// Duration (not epoch) conversion for tick deltas.
  double delta_ns(std::uint64_t ticks) const {
    return static_cast<double>(ticks) * ns_per_tick;
  }
};

/// Measure ns_per_tick by sampling (tsc, steady_clock) across a short
/// sleep. ~2 ms by default: plenty for 3 significant digits, cheap enough
/// to run once per traced runtime.
inline TscCalibration calibrate_tsc(
    std::chrono::microseconds sample = std::chrono::microseconds(2000)) {
  using std::chrono::steady_clock;
  const auto ns_of = [](steady_clock::time_point t) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
  };
  TscCalibration cal;
  const std::uint64_t t0 = tsc_now();
  const auto c0 = steady_clock::now();
  const auto deadline = c0 + sample;
  while (steady_clock::now() < deadline) {
    // Busy wait: sleeping can park the thread on a different core; the
    // spin keeps the two clock reads tightly paired.
  }
  const std::uint64_t t1 = tsc_now();
  const auto c1 = steady_clock::now();
  const double dticks =
      static_cast<double>(static_cast<std::int64_t>(t1 - t0));
  const double dns = static_cast<double>(ns_of(c1) - ns_of(c0));
  cal.base_ticks = t0;
  cal.base_ns = ns_of(c0);
  cal.ns_per_tick = dticks > 0.0 ? dns / dticks : 1.0;
  return cal;
}

}  // namespace wats::obs
