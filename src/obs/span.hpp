// Backend-neutral task-lifecycle span model: the data both trace
// producers (the simulator's TraceRecorder, the runtime's event rings)
// can be reduced to, and the input of the critical-path analyzer
// (obs/analyze.hpp).
//
// A task's lifecycle is spawn -> ready -> dispatch -> start -> complete:
// `ready` is when the spawn became visible to the scheduler (for the
// simulator, the engine's spawn event; the paper's Algorithm 1 placement
// happens here), `dispatched` when an idle core began acquiring it
// (steal/snatch latency accrues from here), `start` when execution
// actually began, `end` when the slice ended — by completion or by a
// snatch preemption, in which case the task has a later slice on the
// thief core whose `dispatched` equals this slice's `end` (the virtual
// timeline is gapless; see DESIGN.md "Span-edge semantics").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wats::obs {

/// One contiguous execution window of a task on one core.
struct SpanSlice {
  double dispatched = 0.0;  ///< acquisition began (<= start)
  double start = 0.0;       ///< execution began (post steal/snatch latency)
  double end = 0.0;         ///< completion or preemption
  std::uint32_t core = 0;   ///< executing core / worker
  bool preempted = false;   ///< ended by a snatch, not completion
};

struct TaskSpan {
  std::uint64_t id = 0;
  std::uint32_t cls = 0xFFFFFFFFu;  ///< kObsNoClass when unclassified
  std::uint64_t parent = 0;  ///< spawning task id; 0 = external / root
  double ready = 0.0;        ///< spawn time (virtual microseconds)
  std::vector<SpanSlice> slices;  ///< time-ordered; >= 1 once executed
};

/// Everything the analyzer needs: the spans plus the machine shape (which
/// c-group each core belongs to and its relative speed — the fast/slow
/// compute split keys off the fastest group).
struct SpanGraph {
  std::vector<TaskSpan> spans;
  double makespan = 0.0;  ///< max slice end (virtual microseconds)
  std::vector<std::uint32_t> core_group;  ///< per core: c-group index
  std::vector<double> core_speed;         ///< per core: relative speed
  std::vector<std::string> class_names;   ///< by class id; may be short
  /// True for virtual-time sim graphs: the decomposition telescopes and
  /// the components sum exactly to the makespan. False for TSC-stamped
  /// runtime graphs (best-effort per-worker attribution).
  bool exact = true;
};

}  // namespace wats::obs
