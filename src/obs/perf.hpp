// The noise-aware perf-regression harness behind tools/wats_perf and the
// committed BENCH_*.json trajectory (ROADMAP item 3).
//
// A PerfReport is a schema-versioned set of named metrics, each with the
// raw value of every repeat, a direction (higher/lower is better) and a
// per-metric relative noise band. `diff_perf` compares best-of-repeats
// (min for lower-is-better, max for higher-is-better — the least-noisy
// estimator of the machine's capability) and flags a regression only when
// the relative change exceeds the metric's band times the caller's slack
// multiplier, so identical runs always pass and a 2x slowdown always
// fails.
#pragma once

#include <string>
#include <vector>

namespace wats::obs {

inline constexpr const char* kPerfSchema = "wats_perf/1";

struct PerfMetric {
  std::string name;
  std::string unit;              ///< "ns", "1/s", ... (informational)
  bool higher_is_better = false;
  /// Relative noise band: changes within best*(1 +/- band*slack) pass.
  double rel_threshold = 0.10;
  /// Absolute noise floor in the metric's unit. Differences within
  /// +/- abs_floor are noise regardless of the relative band, and the
  /// floor also clamps the denominator of the relative change — so a
  /// zero or near-zero baseline (a counter that is usually 0) can't
  /// blow up into an inf/NaN or a spurious +-100% verdict. 0 keeps the
  /// pure-relative behavior.
  double abs_floor = 0.0;
  std::vector<double> values;    ///< one per repeat

  double best() const;  ///< min (lower-is-better) / max (higher)
};

struct PerfReport {
  std::string probe;  ///< free-text description of the probe setup
  std::size_t repeats = 0;
  std::vector<PerfMetric> metrics;

  const PerfMetric* find(const std::string& name) const;
};

/// Schema-versioned JSON document (the BENCH_*.json format).
std::string render_perf_json(const PerfReport& report);

/// Parse a wats_perf/1 document. False + `error` on malformed input or a
/// schema mismatch.
bool parse_perf_json(const std::string& json_text, PerfReport* report,
                     std::string* error);

struct PerfDelta {
  std::string name;
  double base = 0.0;      ///< baseline best-of-repeats
  double current = 0.0;   ///< candidate best-of-repeats
  double rel_change = 0.0;  ///< signed; positive = worse
  double allowed = 0.0;     ///< rel_threshold * slack actually applied
  bool regressed = false;
  bool improved = false;
  bool missing = false;   ///< metric absent from one of the reports
};

struct PerfDiffResult {
  std::vector<PerfDelta> deltas;
  bool regression = false;  ///< any metric regressed beyond its band
};

/// Compare candidate against baseline. `slack` scales every metric's
/// noise band (>1 for cross-machine CI smoke runs). Metrics present in
/// only one report are noted but never count as regressions.
PerfDiffResult diff_perf(const PerfReport& baseline,
                         const PerfReport& current, double slack = 1.0);

/// Human-readable diff table (the `wats_perf diff` output).
std::string render_perf_diff(const PerfDiffResult& diff);

}  // namespace wats::obs
