// Post-run critical-path analysis: decompose the makespan of a recorded
// trace into {fast-core compute, slow-core compute, queue wait,
// steal/migration overhead, recluster stall, park/wake latency}.
//
// Exact mode (virtual-time sim traces): a backward "last-arrival chain"
// walk from the last-completing task. Each step attributes a contiguous
// interval — execution slices to compute (fast or slow by the core's
// group), [dispatched, start) windows to steal/migration, [ready,
// first-dispatch) to queue wait — then jumps to the spawning task at
// `ready` and continues, terminating at t = 0. The intervals telescope,
// so the components sum to the makespan BY CONSTRUCTION (asserted in
// tests to 1e-9 relative).
//
// Best-effort mode (TSC-stamped runtime traces): no task identity
// survives the rings, so the decomposition is per-worker — slice time is
// compute, park->unpark intervals are park/wake, and the unattributed
// idle remainder is binned into queue wait — averaged across workers so
// the components still sum to the wall span. `exact` is false.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace wats::obs {

enum class CostComponent : std::size_t {
  kFastCompute = 0,   ///< execution on the fastest c-group
  kSlowCompute,       ///< execution on any slower c-group
  kQueueWait,         ///< ready but not yet being acquired
  kStealMigration,    ///< steal / snatch acquisition latency
  kReclusterStall,    ///< blocked on a recluster (0: publication is RCU)
  kParkWake,          ///< parked worker on the chain (0 in virtual time)
};

inline constexpr std::size_t kCostComponentCount = 6;

const char* to_string(CostComponent component);

/// Order statistics of the per-task ready -> first-dispatch delay,
/// computed exactly from the sorted samples (not bucketed).
struct QueueDelayStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

struct ClassReport {
  std::uint32_t cls = 0;
  std::string name;
  std::uint64_t tasks = 0;        ///< spans of this class in the trace
  double critical_compute = 0.0;  ///< compute this class puts on the chain
  QueueDelayStats queue_delay;    ///< over ALL spans of the class
};

struct GroupReport {
  std::uint32_t group = 0;
  double speed = 1.0;
  std::size_t cores = 0;
  double critical_compute = 0.0;  ///< chain compute executed on this group
  double busy = 0.0;              ///< total slice time across the group
};

struct CriticalPathReport {
  bool exact = false;
  double makespan = 0.0;  ///< virtual us (sim) / wall us (runtime)
  std::array<double, kCostComponentCount> components{};
  std::vector<GroupReport> groups;
  std::vector<ClassReport> classes;  ///< ordered by class id
  QueueDelayStats queue_delay;       ///< over all spans
  std::size_t critical_tasks = 0;    ///< tasks on the chain (exact mode)
  std::uint64_t total_tasks = 0;

  double components_sum() const {
    double s = 0.0;
    for (const double c : components) s += c;
    return s;
  }
  double component(CostComponent c) const {
    return components[static_cast<std::size_t>(c)];
  }
};

/// Exact decomposition of a span graph (see file comment). Works on any
/// graph; `report.exact` mirrors `graph.exact`.
CriticalPathReport analyze_spans(const SpanGraph& graph);

/// Analyze a Chrome/Perfetto trace-event JSON document from either
/// producer (detected via the process_name metadata). Sim traces rebuild
/// the exact span graph from the slice args (task/cls/ready/dispatched/
/// parent); runtime traces get the best-effort per-worker decomposition.
struct AnalyzeResult {
  CriticalPathReport report;
  std::string error;  ///< empty on success
  bool ok() const { return error.empty(); }
};
AnalyzeResult analyze_trace_json(const std::string& json_text);

/// Rebuild a SpanGraph from an exact (simulator-produced) trace JSON.
/// Returns false and fills `error` when the document is not parseable.
bool span_graph_from_trace_json(const std::string& json_text,
                                SpanGraph* graph, std::string* error);

/// Human-readable report (the `wats_trace analyze` output).
std::string render_report(const CriticalPathReport& report);

}  // namespace wats::obs
