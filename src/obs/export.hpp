// Chrome/Perfetto trace-event JSON export — ONE format, TWO producers: the
// runtime's per-worker event rings (tick timestamps mapped through a
// TscCalibration) and the simulator's TraceRecorder (virtual time used as
// microseconds directly; see sim/trace_export.hpp). Open the output in
// https://ui.perfetto.dev or chrome://tracing.
//
// Schema (the subset we write; validated by tests/obs_test.cpp):
//   { "traceEvents": [ ... ], "displayTimeUnit": "ms" }
// with events of:
//   ph "X"  complete slice   — name, cat, ts, dur, pid, tid [, args]
//   ph "i"  instant          — name, cat, ts, pid, tid, s:"t" [, args]
//   ph "M"  metadata         — process_name / thread_name labels
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"
#include "obs/decision.hpp"
#include "obs/trace_event.hpp"

namespace wats::obs {

class PerfettoWriter {
 public:
  void process_name(int pid, std::string_view name);
  void thread_name(int pid, int tid, std::string_view name);
  /// A complete slice. `args_json` is a pre-rendered JSON object ("{...}")
  /// or empty.
  void complete(int pid, int tid, std::string_view name,
                std::string_view category, double ts_us, double dur_us,
                std::string_view args_json = {});
  void instant(int pid, int tid, std::string_view name,
               std::string_view category, double ts_us,
               std::string_view args_json = {});

  std::size_t event_count() const { return events_.size(); }

  /// The final JSON document.
  std::string finish() const;

  static std::string escape(std::string_view text);

 private:
  std::vector<std::string> events_;  // one rendered JSON object each
};

/// Overwrite loss of one event ring, surfaced into the export so trace
/// consumers can tell a lossy trace from a complete one (`wats_trace
/// summarize` warns on any ring with dropped > 0).
struct RingLoss {
  std::uint32_t worker = 0;
  std::uint64_t emitted = 0;
  std::uint64_t dropped = 0;
};

/// Convert a merged ring snapshot to a Perfetto trace. `track_names[w]`
/// labels worker w's thread track (an out-of-range worker id gets a
/// generated label); `class_name` maps class ids for slice names (may be
/// null: slices get "class <id>"). kTaskEnd events become complete slices
/// (their arg is the duration in ticks); all other kinds become instants.
/// Decision records, when given, land on their deciding core's track (the
/// spawn path goes to a dedicated "policy" track). Rings that overwrote
/// events (`losses` with dropped > 0) emit an "events_dropped" instant on
/// their track so the loss survives into the file.
std::string perfetto_from_events(
    const std::vector<TraceEvent>& events, const TscCalibration& calibration,
    const std::vector<std::string>& track_names,
    const std::function<std::string(std::uint32_t)>& class_name = nullptr,
    const std::vector<DecisionRecord>& decisions = {},
    const std::vector<RingLoss>& losses = {});

}  // namespace wats::obs
