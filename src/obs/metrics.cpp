#include "obs/metrics.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace wats::obs {

void Histogram::record(std::uint64_t value) noexcept {
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  buckets_[bucket < kBuckets ? bucket : kBuckets - 1].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t lo = min_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0 : lo;
  s.max = max_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return s;
}

std::uint64_t Histogram::Snapshot::quantile_bound(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= target && buckets[b] > 0) {
      // Bucket b holds values with bit_width b: upper bound 2^b - 1.
      return b == 0 ? 0 : (b >= 64 ? ~std::uint64_t{0} : (1ull << b) - 1);
    }
  }
  return max;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return *c;
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return *counters_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return *h;
  }
  histograms_.emplace_back(name, std::make_unique<Histogram>());
  return *histograms_.back().second;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard lock(mu_);
  for (auto& [n, g] : gauges_) {
    if (n == name) {
      g = value;
      return;
    }
  }
  gauges_.emplace_back(name, value);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  std::lock_guard lock(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [n, c] : counters_) s.counters.emplace_back(n, c->value());
  s.gauges = gauges_;
  s.histograms.reserve(histograms_.size());
  for (const auto& [n, h] : histograms_) {
    s.histograms.emplace_back(n, h->snapshot());
  }
  return s;
}

std::string render_text(const MetricsRegistry::Snapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-32s %" PRIu64 "\n", name.c_str(),
                  value);
    out << line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-32s %.4f\n", name.c_str(), value);
    out << line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    char line[224];
    std::snprintf(line, sizeof(line),
                  "%-32s count=%" PRIu64 " mean=%.1f min=%" PRIu64
                  " p50<=%" PRIu64 " p99<=%" PRIu64 " p999<=%" PRIu64
                  " max=%" PRIu64 "\n",
                  name.c_str(), h.count, h.mean(), h.min,
                  h.quantile_bound(0.50), h.quantile_bound(0.99),
                  h.quantile_bound(0.999), h.max);
    out << line;
  }
  return out.str();
}

std::string render_json(const MetricsRegistry::Snapshot& snapshot) {
  std::ostringstream out;
  const auto escape = [](const std::string& s) {
    std::string e;
    for (const char c : s) {
      if (c == '"' || c == '\\') e += '\\';
      e += c;
    }
    return e;
  };
  out << "{\n  \"schema\": \"wats_metrics/1\",\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& [name, value] = snapshot.counters[i];
    out << (i > 0 ? ",\n    " : "\n    ") << '"' << escape(name)
        << "\": " << value;
  }
  out << "\n  },\n  \"gauges\": {";
  char num[48];
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& [name, value] = snapshot.gauges[i];
    std::snprintf(num, sizeof(num), "%.6f", value);
    out << (i > 0 ? ",\n    " : "\n    ") << '"' << escape(name)
        << "\": " << num;
  }
  out << "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    std::snprintf(num, sizeof(num), "%.3f", h.mean());
    out << (i > 0 ? ",\n    " : "\n    ") << '"' << escape(name)
        << "\": {\"count\": " << h.count << ", \"mean\": " << num
        << ", \"min\": " << h.min
        << ", \"p50\": " << h.quantile_bound(0.50)
        << ", \"p99\": " << h.quantile_bound(0.99)
        << ", \"p999\": " << h.quantile_bound(0.999)
        << ", \"max\": " << h.max << "}";
  }
  out << "\n  }\n}\n";
  return out.str();
}

}  // namespace wats::obs
