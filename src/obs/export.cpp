#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace wats::obs {

namespace {

std::string fmt_us(double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

std::string PerfettoWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void PerfettoWriter::process_name(int pid, std::string_view name) {
  std::ostringstream e;
  e << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
    << ",\"tid\":0,\"args\":{\"name\":\"" << escape(name) << "\"}}";
  events_.push_back(e.str());
}

void PerfettoWriter::thread_name(int pid, int tid, std::string_view name) {
  std::ostringstream e;
  e << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
    << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << escape(name)
    << "\"}}";
  events_.push_back(e.str());
}

void PerfettoWriter::complete(int pid, int tid, std::string_view name,
                              std::string_view category, double ts_us,
                              double dur_us, std::string_view args_json) {
  std::ostringstream e;
  e << "{\"ph\":\"X\",\"name\":\"" << escape(name) << "\",\"cat\":\""
    << escape(category) << "\",\"ts\":" << fmt_us(ts_us)
    << ",\"dur\":" << fmt_us(dur_us) << ",\"pid\":" << pid
    << ",\"tid\":" << tid;
  if (!args_json.empty()) e << ",\"args\":" << args_json;
  e << "}";
  events_.push_back(e.str());
}

void PerfettoWriter::instant(int pid, int tid, std::string_view name,
                             std::string_view category, double ts_us,
                             std::string_view args_json) {
  std::ostringstream e;
  e << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << escape(name)
    << "\",\"cat\":\"" << escape(category) << "\",\"ts\":" << fmt_us(ts_us)
    << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (!args_json.empty()) e << ",\"args\":" << args_json;
  e << "}";
  events_.push_back(e.str());
}

std::string PerfettoWriter::finish() const {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out += ",\n";
    out += events_[i];
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string perfetto_from_events(
    const std::vector<TraceEvent>& events, const TscCalibration& calibration,
    const std::vector<std::string>& track_names,
    const std::function<std::string(std::uint32_t)>& class_name,
    const std::vector<DecisionRecord>& decisions,
    const std::vector<RingLoss>& losses) {
  PerfettoWriter w;
  constexpr int kPid = 0;
  const int policy_tid = static_cast<int>(track_names.size()) + 1;

  w.process_name(kPid, "wats runtime");
  for (std::size_t t = 0; t < track_names.size(); ++t) {
    w.thread_name(kPid, static_cast<int>(t), track_names[t]);
  }
  if (!decisions.empty()) w.thread_name(kPid, policy_tid, "policy (spawn)");

  // Shift the whole trace so it starts at ts = 0 (Perfetto handles epoch
  // offsets, but small numbers keep the JSON compact and diffable).
  double min_us = std::numeric_limits<double>::max();
  for (const auto& e : events) {
    double ts = calibration.to_us(e.tsc);
    if (e.kind == EventKind::kTaskEnd) ts -= calibration.delta_ns(e.arg) / 1000.0;
    min_us = std::min(min_us, ts);
  }
  for (const auto& d : decisions) {
    min_us = std::min(min_us, calibration.to_us(d.tsc));
  }
  if (min_us == std::numeric_limits<double>::max()) min_us = 0.0;

  const auto name_of = [&](std::uint32_t cls) -> std::string {
    if (cls == kObsNoClass) return "unclassified";
    if (class_name) return class_name(cls);
    return "class " + std::to_string(cls);
  };

  for (const auto& e : events) {
    const int tid = static_cast<int>(e.worker);
    const double ts = calibration.to_us(e.tsc) - min_us;
    std::ostringstream args;
    switch (e.kind) {
      case EventKind::kTaskEnd: {
        const double dur = calibration.delta_ns(e.arg) / 1000.0;
        args << "{\"cls\":" << e.cls << ",\"lane\":" << +e.lane << "}";
        w.complete(kPid, tid, name_of(e.cls), "task", ts - dur, dur,
                   args.str());
        break;
      }
      case EventKind::kTaskBegin:
        // The matching kTaskEnd carries the whole slice; the begin event
        // doubles as the dispatch-latency sample.
        args << "{\"dispatch_latency_us\":"
             << fmt_us(calibration.delta_ns(e.arg) / 1000.0)
             << ",\"cls\":" << e.cls << "}";
        w.instant(kPid, tid, "dispatch", "sched", ts, args.str());
        break;
      case EventKind::kTaskDispatch:
        // Lifecycle queue-delay edge: ready (enqueue) -> dispatch (the
        // worker took the task). The analyzer's queueing histograms read
        // these.
        args << "{\"queue_delay_us\":"
             << fmt_us(calibration.delta_ns(e.arg) / 1000.0)
             << ",\"cls\":" << e.cls << "}";
        w.instant(kPid, tid, to_string(e.kind), "sched", ts, args.str());
        break;
      case EventKind::kStealAttempt:
      case EventKind::kStealSuccess:
      case EventKind::kSnatch:
        args << "{\"victim\":" << e.arg << ",\"lane\":" << +e.lane << "}";
        w.instant(kPid, tid, to_string(e.kind), "sched", ts, args.str());
        break;
      case EventKind::kCrossCluster:
      case EventKind::kRecluster:
      case EventKind::kIdleSpin:
      case EventKind::kHistoryMerge:
        args << "{\"count\":" << e.arg << ",\"lane\":" << +e.lane << "}";
        w.instant(kPid, tid, to_string(e.kind), "sched", ts, args.str());
        break;
      case EventKind::kPlanPublish:
        // Plan pipeline: cls carries the plan epoch, arg the classes the
        // published plan moved relative to its predecessor.
        args << "{\"epoch\":" << e.cls << ",\"moved\":" << e.arg << "}";
        w.instant(kPid, tid, to_string(e.kind), "sched", ts, args.str());
        break;
      case EventKind::kPlanSkip:
        args << "{\"epoch\":" << e.cls << ",\"reason\":\""
             << (e.arg == 2 ? "churn" : "identical") << "\"}";
        w.instant(kPid, tid, to_string(e.kind), "sched", ts, args.str());
        break;
      case EventKind::kPlanRepair:
        // Incremental repair tick: the candidate came from the repairer's
        // maintained order instead of a full rebuild (bit-identical plan,
        // cheaper tick); arg is the classes it moved.
        args << "{\"epoch\":" << e.cls << ",\"moved\":" << e.arg << "}";
        w.instant(kPid, tid, to_string(e.kind), "sched", ts, args.str());
        break;
      case EventKind::kSpeedSwap:
        // Governor DVFS step: cls carries the SpeedPlan epoch, arg the new
        // group frequency in MHz, lane the c-group swung.
        args << "{\"epoch\":" << e.cls << ",\"mhz\":" << e.arg
             << ",\"group\":" << +e.lane << "}";
        w.instant(kPid, tid, to_string(e.kind), "sched", ts, args.str());
        break;
      case EventKind::kHistoryReset:
        // Change-point decay: cls is the decayed class, arg the running
        // reset total at emission.
        args << "{\"cls\":" << e.cls << ",\"resets\":" << e.arg << "}";
        w.instant(kPid, tid, to_string(e.kind), "sched", ts, args.str());
        break;
      case EventKind::kPark:
      case EventKind::kUnpark:
      case EventKind::kWake:
        // Sleep/wake protocol: park carries the eventcount ticket, unpark
        // whether a wake (vs a snatch-poll timeout) ended the sleep, wake
        // the c-group whose sleeper the spawner chose.
        args << "{\"arg\":" << e.arg << ",\"lane\":" << +e.lane << "}";
        w.instant(kPid, tid, to_string(e.kind), "sched", ts, args.str());
        break;
    }
  }

  // Ring-overwrite loss markers: one instant per lossy ring, at t = 0 so
  // they head the track. summarize warns when any are present.
  for (const auto& loss : losses) {
    if (loss.dropped == 0) continue;
    std::ostringstream args;
    args << "{\"dropped\":" << loss.dropped
         << ",\"emitted\":" << loss.emitted << "}";
    w.instant(kPid, static_cast<int>(loss.worker), "events_dropped", "meta",
              0.0, args.str());
  }

  for (const auto& d : decisions) {
    const int tid = d.self == 0xFFFF ? policy_tid : static_cast<int>(d.self);
    std::ostringstream args;
    args << "{\"reason\":\"" << to_string(d.reason) << "\",\"cls\":" << d.cls
         << ",\"chosen\":" << d.chosen << ",\"victim\":" << d.victim;
    if (d.group_count > 0) {
      args << ",\"group_load\":[";
      for (std::uint8_t g = 0; g < d.group_count; ++g) {
        if (g > 0) args << ",";
        args << d.group_load[g];
      }
      args << "]";
    }
    args << "}";
    w.instant(kPid, tid, to_string(d.kind), "policy",
              calibration.to_us(d.tsc) - min_us, args.str());
  }

  return w.finish();
}

}  // namespace wats::obs
