#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace wats::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type() == Type::kNumber) ? v->as_number()
                                                      : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type() == Type::kString) ? v->as_string()
                                                      : fallback;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::unique_ptr<JsonValue> parse(std::string* error) {
    auto value = std::make_unique<JsonValue>();
    if (!parse_value(*value)) {
      if (error != nullptr) {
        *error = "JSON parse error at byte " + std::to_string(pos_) + ": " +
                 message_;
      }
      return nullptr;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing data at byte " + std::to_string(pos_);
      }
      return nullptr;
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool fail(const char* message) {
    message_ = message;
    return false;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.type_ = JsonValue::Type::kString;
        return parse_string(out.string_);
      case 't':
        return parse_literal("true", out, JsonValue::Type::kBool, true);
      case 'f':
        return parse_literal("false", out, JsonValue::Type::kBool, false);
      case 'n':
        return parse_literal("null", out, JsonValue::Type::kNull, false);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(const char* word, JsonValue& out, JsonValue::Type type,
                     bool value) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return fail("bad literal");
      }
    }
    out.type_ = type;
    out.bool_ = value;
    return true;
  }

  bool parse_number(JsonValue& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out.number_ = std::strtod(start, &end);
    if (end == start) return fail("bad number");
    pos_ += static_cast<std::size_t>(end - start);
    out.type_ = JsonValue::Type::kNumber;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          // The exporters only escape control characters; decode the BMP
          // code point to UTF-8 and move on (no surrogate-pair support).
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    out.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array_.push_back(std::move(element));
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    out.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object_.emplace_back(std::move(key), std::move(value));
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  const char* message_ = "";
};

std::unique_ptr<JsonValue> parse_json(const std::string& text,
                                      std::string* error) {
  return JsonParser(text).parse(error);
}

}  // namespace wats::obs
