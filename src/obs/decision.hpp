// Policy-decision tracing: a structured record for every scheduling
// decision the policy kernel makes (placement, Algorithm-3 acquisition
// scan, steal-victim choice, snatch scan, DNC-fallback flips, recluster).
// Shared by the simulator and the real-thread runtime because the kernel
// in src/core/policy is the single decision point for both.
//
// Header-only on purpose: src/core/policy stamps and emits records without
// linking wats_obs. Identifiers are plain integers (class ids, group and
// core indices) so obs stays independent of wats_core.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/clock.hpp"
#include "obs/trace_event.hpp"

namespace wats::obs {

enum class DecisionKind : std::uint8_t {
  kPlacement = 0,  ///< where a spawned task was sent
  kAcquire,        ///< what an idle core was told to do
  kSnatchScan,     ///< snatch-victim selection for an idle faster core
  kDncFlip,        ///< §IV-E divide-and-conquer fallback engaged/released
  kRecluster,      ///< Algorithm 1 rebuilt the class->cluster map
};

/// Why the kernel chose what it chose. One flat namespace across decision
/// kinds — a record is (kind, reason, operands).
enum class ReasonCode : std::uint8_t {
  // Placement.
  kHistoryCluster = 0,  ///< class's Algorithm-1 cluster from history
  kUnknownClass,        ///< no history: §III-A sends it to the fastest group
  kMemoryBoundPin,      ///< WATS-M pinned a memory-bound class to the slowest
  kCentralSpawn,        ///< central-queue policy (Cilk family / LPT)
  kDncFallback,         ///< DNC fallback active: lane 0, plain stealing
  // Acquire.
  kLocalPool,           ///< pop own deque for the chosen lane
  kCentralTake,         ///< take from the central lane
  kStealPreferred,      ///< steal within Algorithm 3's preference order
  kRobFasterAccepted,   ///< §II gate passed: rob a faster cluster's lightest
  kRobFasterVetoed,     ///< §II gate failed: owners would drain it sooner
  kNoWork,              ///< scan found nothing reachable
  // Snatch.
  kSnatchLargestRemaining,  ///< WATS-TS: slower core, largest remaining
  kSnatchRandomSlower,      ///< RTS: random busy slower core
  kNoVictim,                ///< no busy slower core to preempt
  // DNC flip / recluster.
  kDncEngaged,
  kDncReleased,
  kHistoryRefresh,  ///< recluster: new plan published from fresh history
  kPlanIdentical,   ///< recluster skipped: candidate assignment-identical
  kPlanChurnSuppressed,  ///< recluster skipped: churn hysteresis vetoed it
};

inline const char* to_string(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kPlacement:
      return "placement";
    case DecisionKind::kAcquire:
      return "acquire";
    case DecisionKind::kSnatchScan:
      return "snatch_scan";
    case DecisionKind::kDncFlip:
      return "dnc_flip";
    case DecisionKind::kRecluster:
      return "recluster";
  }
  return "?";
}

inline const char* to_string(ReasonCode reason) {
  switch (reason) {
    case ReasonCode::kHistoryCluster:
      return "history_cluster";
    case ReasonCode::kUnknownClass:
      return "unknown_class";
    case ReasonCode::kMemoryBoundPin:
      return "memory_bound_pin";
    case ReasonCode::kCentralSpawn:
      return "central_spawn";
    case ReasonCode::kDncFallback:
      return "dnc_fallback";
    case ReasonCode::kLocalPool:
      return "local_pool";
    case ReasonCode::kCentralTake:
      return "central_take";
    case ReasonCode::kStealPreferred:
      return "steal_preferred";
    case ReasonCode::kRobFasterAccepted:
      return "rob_faster_accepted";
    case ReasonCode::kRobFasterVetoed:
      return "rob_faster_vetoed";
    case ReasonCode::kNoWork:
      return "no_work";
    case ReasonCode::kSnatchLargestRemaining:
      return "snatch_largest_remaining";
    case ReasonCode::kSnatchRandomSlower:
      return "snatch_random_slower";
    case ReasonCode::kNoVictim:
      return "no_victim";
    case ReasonCode::kDncEngaged:
      return "dnc_engaged";
    case ReasonCode::kDncReleased:
      return "dnc_released";
    case ReasonCode::kHistoryRefresh:
      return "history_refresh";
    case ReasonCode::kPlanIdentical:
      return "plan_identical";
    case ReasonCode::kPlanChurnSuppressed:
      return "plan_churn_suppressed";
  }
  return "?";
}

/// Groups captured in a load snapshot. Table II machines have at most 4
/// c-groups; 8 leaves headroom without growing the record past a line.
inline constexpr std::size_t kMaxDecisionGroups = 8;

struct DecisionRecord {
  DecisionKind kind = DecisionKind::kPlacement;
  ReasonCode reason = ReasonCode::kHistoryCluster;
  std::uint8_t group_count = 0;  ///< valid prefix of group_load
  std::uint16_t self = 0xFFFF;   ///< deciding core; 0xFFFF = spawn path
  std::uint32_t cls = kObsNoClass;
  std::int32_t chosen = -1;  ///< chosen group/lane (placement, acquire)
  std::int32_t victim = -1;  ///< steal/snatch victim core, when any
  /// Queued tasks per task-cluster lane at decision time (pool sizes plus
  /// the central lane) — the "load snapshot" a placement-quality post-
  /// mortem needs. Only filled on acquire/snatch records.
  std::array<std::uint32_t, kMaxDecisionGroups> group_load{};
  std::uint64_t tsc = 0;
};

/// Where decision records go. Implementations must be thread-safe when
/// attached to the real-thread runtime (every worker emits).
class DecisionSink {
 public:
  virtual ~DecisionSink() = default;
  virtual void on_decision(const DecisionRecord& record) = 0;
};

/// Mutex-guarded accumulator — fine for the single-threaded simulator and
/// for opt-in runtime diagnostics (tracing decisions serializes briefly on
/// the sink; it is a debugging mode, not a production default).
class CollectingDecisionSink final : public DecisionSink {
 public:
  void on_decision(const DecisionRecord& record) override {
    std::lock_guard lock(mu_);
    records_.push_back(record);
  }

  std::vector<DecisionRecord> records() const {
    std::lock_guard lock(mu_);
    return records_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return records_.size();
  }

  void clear() {
    std::lock_guard lock(mu_);
    records_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<DecisionRecord> records_;
};

}  // namespace wats::obs
