// Per-worker event ring: fixed capacity, single producer, lock-free
// writes, readable by any thread while the producer keeps writing.
//
// Each slot is a tiny seqlock: the producer marks the slot odd, stores the
// payload as relaxed atomics, then publishes an even sequence carrying the
// event's absolute index. A snapshot accepts a slot only when the sequence
// it read before and after the payload matches the index it expected, so a
// slot overwritten mid-copy is dropped instead of returned torn. Every
// access is an atomic load/store — the ring is TSan-clean by construction.
//
// The ring never blocks the producer: when full it overwrites the oldest
// event (dropped() counts how many are gone). Capacity is rounded up to a
// power of two.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/clock.hpp"
#include "obs/trace_event.hpp"

namespace wats::obs {

class EventRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit EventRing(std::size_t capacity = kDefaultCapacity);

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Producer-only. Stamps tsc_now() and publishes the event.
  void emit(EventKind kind, std::uint16_t worker, std::uint8_t lane,
            std::uint32_t cls, std::uint64_t arg) noexcept;

  /// The last min(emitted, capacity) events, oldest first. Safe to call
  /// from any thread while the producer is writing; events overwritten or
  /// in flight during the copy are skipped, never returned torn.
  std::vector<TraceEvent> snapshot() const;

  std::uint64_t emitted() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Events lost to wraparound so far.
  std::uint64_t dropped() const {
    const std::uint64_t n = emitted();
    return n > slots_.size() ? n - slots_.size() : 0;
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    /// 2*(index+1) when slot holds event `index`; odd while being written.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> tsc{0};
    std::atomic<std::uint64_t> meta{0};  ///< kind|worker|lane|cls packed
    std::atomic<std::uint64_t> arg{0};
  };

  static std::uint64_t pack_meta(EventKind kind, std::uint16_t worker,
                                 std::uint8_t lane, std::uint32_t cls) {
    return (static_cast<std::uint64_t>(kind) << 56) |
           (static_cast<std::uint64_t>(worker) << 40) |
           (static_cast<std::uint64_t>(lane) << 32) |
           static_cast<std::uint64_t>(cls);
  }

  static void unpack_meta(std::uint64_t meta, TraceEvent& e) {
    e.kind = static_cast<EventKind>((meta >> 56) & 0xFF);
    e.worker = static_cast<std::uint16_t>((meta >> 40) & 0xFFFF);
    e.lane = static_cast<std::uint8_t>((meta >> 32) & 0xFF);
    e.cls = static_cast<std::uint32_t>(meta & 0xFFFFFFFFu);
  }

  /// Producer cursor on its own cache line: the producer's stores must not
  /// false-share with snapshot readers walking the slots.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
};

}  // namespace wats::obs
