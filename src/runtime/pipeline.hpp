// High-level pipeline API on top of TaskRuntime: the paper's
// pipeline-based benchmark pattern (Dedup, Ferret) as a reusable
// construct.
//
// A Pipeline is an ordered list of stages; each item flows through all
// stages, every stage execution is one classified task (so WATS learns
// per-stage workloads and clusters heavy stages onto fast cores), and a
// bounded window limits the number of in-flight items (backpressure).
//
//   runtime::Pipeline<Chunk> pipe(rt, {
//       {"chunk",    [](Chunk c) { ... return c; }},
//       {"compress", [](Chunk c) { ... return c; }},
//   });
//   pipe.set_window(32);
//   for (auto& c : chunks) pipe.push(std::move(c));
//   pipe.drain();
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"
#include "util/check.hpp"

namespace wats::runtime {

template <typename Item>
class Pipeline {
 public:
  struct Stage {
    std::string name;
    std::function<Item(Item)> fn;
  };

  Pipeline(TaskRuntime& rt, std::vector<Stage> stages)
      : rt_(rt), stages_(std::move(stages)) {
    WATS_CHECK_MSG(!stages_.empty(), "pipeline needs at least one stage");
    class_ids_.reserve(stages_.size());
    for (const auto& stage : stages_) {
      class_ids_.push_back(rt_.register_class(stage.name));
    }
  }

  ~Pipeline() { drain(); }

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Maximum in-flight items; push() blocks when the window is full.
  /// 0 (default) = unbounded.
  void set_window(std::size_t window) { window_ = window; }

  /// Admit an item (blocks on backpressure). Must be called from a
  /// non-worker thread — a worker blocking on admission could deadlock
  /// the pool that must retire items to make room.
  void push(Item item) {
    WATS_CHECK_MSG(!rt_.on_worker_thread(),
                   "Pipeline::push must not run on a worker thread");
    {
      std::unique_lock lock(mu_);
      admit_cv_.wait(lock, [this] {
        return window_ == 0 || in_flight_ < window_;
      });
      ++in_flight_;
      ++pushed_;
    }
    run_stage(std::move(item), 0);
  }

  /// Wait until every pushed item retired from the last stage.
  void drain() {
    std::unique_lock lock(mu_);
    drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }

  std::uint64_t items_completed() const {
    std::lock_guard lock(mu_);
    return completed_;
  }

 private:
  void run_stage(Item item, std::size_t stage) {
    // Boxed in a shared_ptr: std::function requires copyable callables,
    // but pipeline items may be move-only.
    auto boxed = std::make_shared<Item>(std::move(item));
    rt_.spawn(class_ids_[stage], [this, stage, boxed] {
      // Retire the item even when a stage throws (the runtime captures
      // the exception for wait_all; drain()/push() must not hang).
      bool advanced = false;
      struct Retirer {
        Pipeline* pipe;
        const bool* advanced;
        ~Retirer() {
          if (*advanced) return;
          std::lock_guard lock(pipe->mu_);
          --pipe->in_flight_;
          ++pipe->completed_;
          pipe->admit_cv_.notify_all();
          if (pipe->in_flight_ == 0) pipe->drain_cv_.notify_all();
        }
      } retirer{this, &advanced};
      Item out = stages_[stage].fn(std::move(*boxed));
      if (stage + 1 < stages_.size()) {
        advanced = true;  // the successor stage owns retirement now
        run_stage(std::move(out), stage + 1);
      }
    });
  }

  TaskRuntime& rt_;
  std::vector<Stage> stages_;
  std::vector<core::TaskClassId> class_ids_;
  std::size_t window_ = 0;

  mutable std::mutex mu_;
  std::condition_variable admit_cv_;
  std::condition_variable drain_cv_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace wats::runtime
