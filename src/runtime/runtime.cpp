#include "runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include "util/check.hpp"

namespace wats::runtime {

// obs restates the no-class sentinel so it need not depend on wats_core;
// the ring stores class ids raw, so the two must agree.
static_assert(obs::kObsNoClass == core::kNoTaskClass,
              "obs::kObsNoClass out of sync with core::kNoTaskClass");

namespace {

/// Identity of the current worker within its runtime (so nested spawns are
/// parent-first: they land in the spawning worker's own pools) and the
/// class of the task it is executing (for divide-and-conquer detection).
struct WorkerContext {
  const TaskRuntime* runtime = nullptr;
  std::size_t index = 0;
  core::TaskClassId running_class = core::kNoTaskClass;
};
thread_local WorkerContext t_ctx;

using Clock = std::chrono::steady_clock;

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Duty-cycle throttle owed for `dur_us` of execution at relative speed
/// `scale`: a core at speed s sleeps (1/s - 1) x the time it computed, so
/// wall clock behaves like s x F1. Speeds >= 1 owe nothing (the host
/// cannot be made faster). Never negative — each piecewise segment can
/// only ADD debt, which is what makes the accumulated throttle monotone
/// under mid-task speed swaps.
double throttle_penalty_us(double dur_us, double scale) {
  if (scale >= 1.0 || dur_us <= 0.0) return 0.0;
  return dur_us * (1.0 / scale - 1.0);
}

core::policy::PolicyKind to_policy_kind(Policy policy) {
  switch (policy) {
    case Policy::kCilk:
      return core::policy::PolicyKind::kCilk;
    case Policy::kPft:
      return core::policy::PolicyKind::kPft;
    case Policy::kWats:
      return core::policy::PolicyKind::kWats;
    case Policy::kWatsNp:
      return core::policy::PolicyKind::kWatsNp;
    case Policy::kWatsTs:
      return core::policy::PolicyKind::kWatsTs;
    case Policy::kRtsSwap:
      return core::policy::PolicyKind::kRts;
  }
  WATS_CHECK_MSG(false, "unknown runtime policy");
  __builtin_unreachable();
}

}  // namespace

/// MachineView over the live runtime. All observations are racy-but-safe
/// approximations: deque sizes via size_approx(), queued work as task
/// counts (a Chase–Lev deque cannot be traversed by observers), remaining
/// work estimated from the class's mean workload and the task's elapsed
/// wall time. The kernel's decisions are revalidated at execution time.
class TaskRuntime::View final : public core::policy::MachineView {
 public:
  View(const TaskRuntime& rt, Worker& self) : rt_(rt), self_(self) {}

  const core::AmcTopology& topology() const override {
    return rt_.config_.topology;
  }

  std::size_t pool_size(core::CoreIndex core,
                        core::GroupIndex lane) const override {
    return rt_.workers_[core]->pools[lane]->size_approx();
  }

  double pool_queued_work(core::CoreIndex core,
                          core::GroupIndex lane) const override {
    // Unit task weights: the runtime does not know per-task work upfront.
    return static_cast<double>(pool_size(core, lane));
  }

  double pool_lightest_work(core::CoreIndex core,
                            core::GroupIndex lane) const override {
    return pool_size(core, lane) > 0 ? 1.0 : 0.0;
  }

  std::size_t central_size(core::GroupIndex lane) const override {
    return rt_.central_[lane]->size.load(std::memory_order_relaxed);
  }

  bool core_busy(core::CoreIndex core) const override {
    return rt_.workers_[core]->executing.load(std::memory_order_acquire);
  }

  double core_speed(core::CoreIndex core) const override {
    return rt_.workers_[core]->speed_scale.load(std::memory_order_relaxed);
  }

  double running_remaining(core::CoreIndex core) const override {
    // Estimate: the class's mean workload (in F1-normalized microseconds)
    // minus what the worker already executed. Classes without history
    // rank lowest — a snatch cannot justify itself on an unknown task.
    const Worker& w = *rt_.workers_[core];
    const auto cls = w.running_cls.load(std::memory_order_acquire);
    if (cls == core::kNoTaskClass || !rt_.registry_.has_history(cls)) {
      return 0.0;
    }
    const double mean = rt_.registry_.info(cls).mean_workload;
    const double elapsed =
        static_cast<double>(now_us() -
                            w.run_started_us.load(std::memory_order_relaxed));
    const double speed = w.speed_scale.load(std::memory_order_relaxed);
    return std::max(0.0, mean - elapsed * speed);
  }

  std::uint64_t random_below(std::uint64_t bound) override {
    // The calling worker's own RNG: no cross-thread contention.
    return self_.rng.bounded(bound);
  }

 private:
  const TaskRuntime& rt_;
  Worker& self_;
};

TaskRuntime::TaskRuntime(RuntimeConfig config)
    : config_(std::move(config)), lot_(config_.topology.group_count()) {
  if (config_.change_point.enabled) {
    registry_.configure_change_point(config_.change_point);
  }
  kernel_ = core::policy::make_policy(to_policy_kind(config_.policy),
                                      registry_);
  core::policy::PolicyOptions opts;
  opts.dnc_fallback = config_.dnc_fallback;
  opts.dnc_threshold = config_.dnc_threshold;
  opts.dnc_min_spawns = config_.dnc_min_spawns;
  opts.plan_gate = config_.plan_gate;
  opts.plan_repair = config_.plan_repair;
  kernel_->bind(config_.topology, opts);

  const std::size_t n = config_.topology.total_cores();
  const std::size_t lanes = kernel_->lane_count();

  // Wake preference per lane, frozen from the kernel before any spawn:
  // the enqueue hot path indexes this instead of re-deriving the order.
  wake_orders_.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    wake_orders_.push_back(kernel_->wake_order(lane));
  }
  wakeups_issued_ = &metrics_.counter("wakeups_issued");
  spurious_wakeups_ = &metrics_.counter("spurious_wakeups");
  throttle_sleep_us_ = &metrics_.counter("throttle_sleep_us");
  shard_flushes_ = &metrics_.counter("shard_flushes");
  classes_discovered_ = &metrics_.counter("classes_discovered");
  history_resets_counter_ = &metrics_.counter("history_resets");
  history_merge_ns_ = &metrics_.histogram("history_merge_ns");
  plans_published_ = &metrics_.counter("plans_published");
  plans_skipped_counter_ = &metrics_.counter("plans_skipped");
  partition_latency_ns_ = &metrics_.histogram("partition_latency_ns");
  plan_repairs_ = &metrics_.counter("plan_repairs");
  repair_fallbacks_ = &metrics_.counter("repair_fallbacks");
  repair_latency_ns_ = &metrics_.histogram("repair_latency_ns");
  governor_ticks_counter_ = &metrics_.counter("governor_ticks");

  if (config_.governor.active()) {
    governor_ =
        std::make_unique<core::Governor>(config_.governor, config_.topology);
    for (core::GroupIndex g = 0; g < config_.topology.group_count(); ++g) {
      metrics_.set_gauge("group_frequency_ghz_g" + std::to_string(g),
                         config_.topology.group(g).frequency_ghz);
    }
  }

  if constexpr (obs::kTraceCompiledIn) {
    if (config_.trace.enabled) {
      calib_ = obs::calibrate_tsc();
      helper_ring_ = std::make_unique<obs::EventRing>(
          config_.trace.ring_capacity);
      if (config_.trace.record_decisions) {
        // Attached before any worker starts; detaching mid-run is not
        // supported (see PolicyKernel::set_decision_sink).
        decision_sink_ = std::make_unique<obs::CollectingDecisionSink>();
        kernel_->set_decision_sink(decision_sink_.get());
      }
    }
  }

  central_.reserve(lanes);
  for (std::size_t c = 0; c < lanes; ++c) {
    central_.push_back(std::make_unique<CentralLane>());
  }

  util::SplitMix64 seeder(config_.seed);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->group = config_.topology.group_of_core(i);
    w->speed_scale.store(config_.topology.relative_speed(w->group));
    w->rng = util::Xoshiro256(seeder.next());
    if constexpr (obs::kTraceCompiledIn) {
      if (config_.trace.enabled) {
        w->ring = std::make_unique<obs::EventRing>(
            config_.trace.ring_capacity);
      }
    }
    w->pools.reserve(lanes);
    for (std::size_t c = 0; c < lanes; ++c) {
      w->pools.push_back(std::make_unique<WorkStealingDeque<TaskNode>>());
    }
    workers_.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
  helper_ = std::thread([this] { helper_loop(); });
}

TaskRuntime::~TaskRuntime() {
  // Drain WITHOUT rethrowing: wait_all() would rethrow a captured task
  // exception out of a destructor and std::terminate the process. An
  // exception still pending here is dropped — the caller chose not to
  // call wait_all().
  drain_quiet();
  stopping_.store(true, std::memory_order_release);
  lot_.unpark_all();
  if (config_.legacy_idle_poll.count() > 0) lot_.legacy_notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  {
    // Taking the mutex orders the notify against a helper that read
    // stopping_ as false but has not yet parked on helper_cv_.
    std::lock_guard lock(helper_mu_);
  }
  helper_cv_.notify_all();
  if (helper_.joinable()) helper_.join();
}

void TaskRuntime::drain_quiet() {
  std::unique_lock lock(done_mu_);
  done_cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

core::TaskClassId TaskRuntime::register_class(std::string_view name) {
  return registry_.intern(name);
}

void TaskRuntime::enqueue(TaskNode* node) {
  const auto placement = kernel_->place(node->cls);
  if (placement.where == core::policy::Placement::Where::kLocalPool &&
      t_ctx.runtime == this) {
    // Parent-first: the spawner continues; the child waits in the
    // spawner's own pool for this lane.
    workers_[t_ctx.index]->pools[placement.lane]->push_bottom(node);
  } else {
    // Central placement (the Cilk family), or a spawn from outside the
    // worker threads, which cannot touch the single-owner deques.
    auto& lane = *central_[placement.lane];
    std::lock_guard lock(lane.mu);
    lane.q.push_back(node);
    lane.size.store(lane.q.size(), std::memory_order_relaxed);
  }
  if (config_.legacy_idle_poll.count() > 0) {
    // Pre-eventcount behaviour (benchmark escape hatch): notify with no
    // sleeper accounting — a worker between its failed scan and its timed
    // wait misses this and sleeps the full poll period.
    lot_.legacy_notify_all();
    return;
  }
  // Eventcount publish: bump the epoch (so a worker that re-scanned
  // before we pushed refuses to park) and wake ONE sleeper, preferring
  // the groups Algorithm 3 sends to this lane first.
  const std::size_t woken = lot_.unpark_one(wake_orders_[placement.lane]);
  if (woken != ParkingLot::kNone) {
    wakeups_issued_->add(1);
    if constexpr (obs::kTraceCompiledIn) {
      // Ring emission requires being the ring's single producer, so only
      // worker-thread spawns trace kWake; external-thread wakes are still
      // counted in wakeups_issued.
      if (t_ctx.runtime == this) {
        if (auto& ring = workers_[t_ctx.index]->ring) {
          ring->emit(obs::EventKind::kWake,
                     static_cast<std::uint16_t>(t_ctx.index),
                     static_cast<std::uint8_t>(placement.lane),
                     obs::kObsNoClass, static_cast<std::uint64_t>(woken));
        }
      }
    }
  }
}

void TaskRuntime::spawn(core::TaskClassId cls, std::function<void()> fn) {
  WATS_CHECK(!stopping_.load(std::memory_order_acquire));
  const bool on_worker = t_ctx.runtime == this;
  auto* node = new TaskNode{std::move(fn), cls,
                            on_worker ? t_ctx.index : kExternalSpawner};
  if constexpr (obs::kTraceCompiledIn) {
    if (config_.trace.enabled) node->enqueue_tsc = obs::tsc_now();
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (on_worker) {
    kernel_->record_spawn_edge(t_ctx.running_class, cls);
  }
  enqueue(node);
}

void TaskRuntime::spawn(std::function<void()> fn) {
  spawn(core::kNoTaskClass, std::move(fn));
}

bool TaskRuntime::wait_all_for(std::chrono::milliseconds timeout) {
  {
    std::unique_lock lock(done_mu_);
    const bool drained = done_cv_.wait_for(lock, timeout, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
    if (!drained) return false;
  }
  std::exception_ptr pending;
  {
    std::lock_guard lock(exception_mu_);
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
  return true;
}

void TaskRuntime::wait_all() {
  drain_quiet();
  std::exception_ptr pending;
  {
    std::lock_guard lock(exception_mu_);
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
}

TaskRuntime::TaskNode* TaskRuntime::try_acquire(std::size_t index,
                                                bool* saw_work) {
  if (saw_work != nullptr) *saw_work = false;
  Worker& me = *workers_[index];
  View view(*this, me);
  // Steal latency = from entering the acquire scan to a successful steal
  // (the paper's "cost of preference stealing" is exactly this scan).
  std::uint64_t scan_start = 0;
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring) scan_start = obs::tsc_now();
  }
  const auto note_cross = [&](core::GroupIndex lane) {
    me.cross_cluster.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kTraceCompiledIn) {
      if (me.ring) {
        me.ring->emit(obs::EventKind::kCrossCluster,
                      static_cast<std::uint16_t>(index),
                      static_cast<std::uint8_t>(lane), obs::kObsNoClass,
                      static_cast<std::uint64_t>(lane));
      }
    }
  };
  const auto note_steal = [&](core::GroupIndex lane, core::CoreIndex victim) {
    me.steals.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kTraceCompiledIn) {
      if (me.ring) {
        me.ring->emit(obs::EventKind::kStealSuccess,
                      static_cast<std::uint16_t>(index),
                      static_cast<std::uint8_t>(lane), obs::kObsNoClass,
                      static_cast<std::uint64_t>(victim));
        metrics_.histogram("steal_latency_ns")
            .record(static_cast<std::uint64_t>(
                calib_.delta_ns(obs::tsc_now() - scan_start)));
      }
    }
  };
  // Kernel decisions are computed against racy queue sizes, so the chosen
  // source may have drained before we reach it; ask again a bounded number
  // of times (the worker loop sleeps and retries on total failure anyway).
  const std::size_t attempts = 2 * kernel_->lane_count() + 8;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    const auto decision = kernel_->acquire(view, index);
    if (!decision.has_value()) return nullptr;
    if (saw_work != nullptr) *saw_work = true;
    switch (decision->action) {
      case core::policy::AcquireDecision::Action::kPopLocal:
        if (TaskNode* t = me.pools[decision->lane]->pop_bottom()) {
          if (decision->lane != me.group) note_cross(decision->lane);
          return t;
        }
        break;
      case core::policy::AcquireDecision::Action::kTakeCentral: {
        TaskNode* t = nullptr;
        auto& lane = *central_[decision->lane];
        {
          std::lock_guard lock(lane.mu);
          if (!lane.q.empty()) {
            t = lane.q.front();
            lane.q.pop_front();
            lane.size.store(lane.q.size(), std::memory_order_relaxed);
          }
        }
        if (t != nullptr) {
          if (kernel_->uses_central_queue() && t->spawner != index) {
            // Cilk: a continuation handoff to another core is a steal
            // (the "victim" is the spawner whose continuation we took).
            note_steal(decision->lane,
                       t->spawner < workers_.size() ? t->spawner : index);
          }
          if (decision->lane != me.group) note_cross(decision->lane);
          return t;
        }
        break;
      }
      case core::policy::AcquireDecision::Action::kSteal:
        if constexpr (obs::kTraceCompiledIn) {
          if (me.ring) {
            me.ring->emit(obs::EventKind::kStealAttempt,
                          static_cast<std::uint16_t>(index),
                          static_cast<std::uint8_t>(decision->lane),
                          obs::kObsNoClass,
                          static_cast<std::uint64_t>(decision->victim));
          }
        }
        if (TaskNode* t =
                workers_[decision->victim]->pools[decision->lane]
                    ->steal_top()) {
          note_steal(decision->lane, decision->victim);
          if (decision->lane != me.group) note_cross(decision->lane);
          return t;
        }
        break;
    }
  }
  return nullptr;
}

void TaskRuntime::execute(std::size_t index, TaskNode* node) {
  Worker& me = *workers_[index];
  const auto prev_class = t_ctx.running_class;
  t_ctx.running_class = node->cls;
  me.running_cls.store(node->cls, std::memory_order_relaxed);
  me.run_started_us.store(now_us(), std::memory_order_relaxed);
  // Under snatch-capable policies our speed_scale can change mid-task
  // (try_speed_swap on another thread), so the duty-cycle throttle must
  // be priced per constant-speed segment. Open the first segment before
  // publishing `executing` — the release store orders it for the swapper.
  // An active governor can also change speed_scale mid-task (the helper
  // thread's governor_tick), so it forces piecewise pricing too.
  const bool piecewise_throttle =
      config_.emulate_speeds &&
      (kernel_->may_snatch() || governor_ != nullptr);
  if (piecewise_throttle) {
    std::lock_guard lock(swap_mu_);
    me.throttle_debt_us = 0.0;
    me.segment_start_us = now_us();
  }
  me.executing.store(true, std::memory_order_release);

  std::uint64_t begin_tsc = 0;
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring) {
      if (me.idle_streak > 0) {
        // Flush the coalesced idle-spin streak now that work arrived.
        me.ring->emit(obs::EventKind::kIdleSpin,
                      static_cast<std::uint16_t>(index), 0, obs::kObsNoClass,
                      me.idle_streak);
        me.idle_streak = 0;
      }
      begin_tsc = obs::tsc_now();
      const std::uint64_t dispatch_ticks =
          node->enqueue_tsc != 0 && begin_tsc > node->enqueue_tsc
              ? begin_tsc - node->enqueue_tsc
              : 0;
      me.ring->emit(obs::EventKind::kTaskBegin,
                    static_cast<std::uint16_t>(index),
                    static_cast<std::uint8_t>(me.group), node->cls,
                    dispatch_ticks);
      // Lifecycle span edge ready -> dispatch: the time the task sat in a
      // queue between spawn (enqueue_tsc) and this worker taking it. The
      // analyzer's queueing-delay histograms key off this event.
      me.ring->emit(obs::EventKind::kTaskDispatch,
                    static_cast<std::uint16_t>(index),
                    static_cast<std::uint8_t>(me.group), node->cls,
                    dispatch_ticks);
      const auto delay_ns =
          static_cast<std::uint64_t>(calib_.delta_ns(dispatch_ticks));
      metrics_.histogram("dispatch_latency_ns").record(delay_ns);
      metrics_.histogram("queue_delay_ns").record(delay_ns);
    }
  }

  const auto start = Clock::now();
  try {
    node->fn();
  } catch (...) {
    std::lock_guard lock(exception_mu_);
    if (!first_exception_) first_exception_ = std::current_exception();
  }
  const auto end = Clock::now();
  t_ctx.running_class = prev_class;

  const std::chrono::duration<double, std::micro> exec_us = end - start;

  if (config_.emulate_speeds) {
    double extra_us;
    if (piecewise_throttle) {
      // Close the final segment at the speed it ACTUALLY ran at and
      // collect the debt the swap path accumulated. Pricing each segment
      // at its contemporaneous scale means an RTS/WATS-TS speed swap
      // mid-task can never retroactively re-price execution that already
      // happened (the old code loaded speed_scale once, after the task
      // ran, and throttled the whole execution at the final speed).
      std::lock_guard lock(swap_mu_);
      const double scale = me.speed_scale.load(std::memory_order_relaxed);
      me.throttle_debt_us += throttle_penalty_us(
          static_cast<double>(now_us() - me.segment_start_us), scale);
      extra_us = me.throttle_debt_us;
      me.throttle_debt_us = 0.0;
    } else {
      // Speed can only change between tasks here — one segment.
      const double scale = me.speed_scale.load(std::memory_order_relaxed);
      extra_us = throttle_penalty_us(exec_us.count(), scale);
    }
    if (extra_us > 0.0) {
      // Duty-cycle throttle: stretch wall time to work / speed.
      throttle_sleep_us_->add(static_cast<std::uint64_t>(extra_us));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(extra_us));
    }
  }

  // Algorithm 2 / Eq. 2: measured time on this core, normalized by
  // Fi / F1, is the F1-equivalent workload. With the duty-cycle throttle
  // the total wall time is exec/speed, so wall * speed == exec.
  if (node->cls != core::kNoTaskClass) {
    if (config_.locked_history) {
      // Pre-shard design (A/B escape hatch): one shared-mutex acquisition
      // per completion.
      registry_.record_completion(node->cls, exec_us.count());
    } else {
      // Wait-free: accumulate into this worker's private shard; the
      // helper thread folds it into the registry at the next tick.
      me.shard.record(node->cls, exec_us.count());
    }
  }

  me.executing.store(false, std::memory_order_release);
  me.running_cls.store(core::kNoTaskClass, std::memory_order_relaxed);
  me.executed.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring) {
      // Duration includes the duty-cycle throttle: the slice spans the
      // emulated occupancy of the core, matching what the paper's wall
      // clock would see on real asymmetric silicon.
      const std::uint64_t end_tsc = obs::tsc_now();
      me.ring->emit(obs::EventKind::kTaskEnd,
                    static_cast<std::uint16_t>(index),
                    static_cast<std::uint8_t>(me.group), node->cls,
                    end_tsc > begin_tsc ? end_tsc - begin_tsc : 0);
    }
  }
  if (node->cls != core::kNoTaskClass) {
    std::lock_guard lock(me.stats_mu);
    if (me.class_counts.size() <= node->cls) {
      me.class_counts.resize(node->cls + 1, 0);
    }
    ++me.class_counts[node->cls];
  }
  delete node;
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(done_mu_);
    done_cv_.notify_all();
  }
}

bool TaskRuntime::try_speed_swap(std::size_t thief) {
  Worker& me = *workers_[thief];
  View view(*this, me);
  // The kernel picks the victim: random busy-slower for RTS, the slower
  // worker with the largest estimated remaining work for WATS-TS.
  const auto choice = kernel_->snatch_victim(view, thief);
  if (!choice.has_value()) return false;
  Worker& victim = *workers_[*choice];
  // Revalidate under the swap lock: the view is racy and the victim may
  // have finished (or been swapped faster) meanwhile.
  std::lock_guard lock(swap_mu_);
  const double my_scale = me.speed_scale.load(std::memory_order_relaxed);
  const double victim_scale =
      victim.speed_scale.load(std::memory_order_relaxed);
  if (!victim.executing.load(std::memory_order_acquire)) return false;
  if (victim_scale >= my_scale) return false;
  // Fold the victim's open constant-speed segment into its throttle debt
  // at the speed it ran so far, then start a fresh segment at the swapped
  // speed: the throttle is accumulated piecewise, never re-priced.
  const std::int64_t swap_at_us = now_us();
  victim.throttle_debt_us += throttle_penalty_us(
      static_cast<double>(swap_at_us - victim.segment_start_us),
      victim_scale);
  victim.segment_start_us = swap_at_us;
  // Swap the emulated speeds: the victim's running task continues at our
  // (faster) rate; we inherit the slow slot — the paper's thread swap.
  victim.speed_scale.store(my_scale, std::memory_order_relaxed);
  me.speed_scale.store(victim_scale, std::memory_order_relaxed);
  speed_swaps_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring) {
      me.ring->emit(obs::EventKind::kSnatch,
                    static_cast<std::uint16_t>(thief),
                    static_cast<std::uint8_t>(me.group),
                    victim.running_cls.load(std::memory_order_relaxed),
                    static_cast<std::uint64_t>(*choice));
    }
  }
  return true;
}

void TaskRuntime::governor_tick() {
  if (governor_ == nullptr) return;
  const std::size_t k = config_.topology.group_count();
  core::GovernorInputs in;
  in.group_busy.assign(k, 0);
  for (const auto& w : workers_) {
    if (w->executing.load(std::memory_order_acquire)) {
      in.group_busy[w->group] = 1;
    }
  }
  // The real-thread runtime collects no CMPI signal (no simulated cache
  // counters), so kCmpiAware sees "unknown" and holds base frequencies.
  in.group_scalable.assign(k, -1.0);
  // Real tasks' remaining work is unknown, so the runtime cannot price a
  // live backlog the way the sim's governor tick does; pace falls back to
  // the published plan's predictions (coarse, but the same target check).
  in.plan = kernel_->current_plan();
  governor_ticks_counter_->add(1);
  const std::vector<double> before =
      governor_->current()->group_frequency_ghz;
  if (!governor_->tick(in)) return;
  const std::vector<double>& after =
      governor_->current()->group_frequency_ghz;
  const double f1 = config_.topology.fastest_frequency();
  {
    // Map the SpeedPlan onto the duty-cycle throttle: fold each running
    // worker's open segment at the speed it actually ran, then swing its
    // scale — the same piecewise pricing as try_speed_swap. This also
    // resets any RTS/WATS-TS swapped scales to the governed group speed.
    std::lock_guard lock(swap_mu_);
    const std::int64_t swap_at_us = now_us();
    for (auto& w : workers_) {
      const core::GroupIndex g = w->group;
      if (after[g] == before[g]) continue;
      if (w->executing.load(std::memory_order_acquire)) {
        const double scale = w->speed_scale.load(std::memory_order_relaxed);
        w->throttle_debt_us += throttle_penalty_us(
            static_cast<double>(swap_at_us - w->segment_start_us), scale);
        w->segment_start_us = swap_at_us;
      }
      w->speed_scale.store(after[g] / f1, std::memory_order_relaxed);
    }
  }
  for (core::GroupIndex g = 0; g < k; ++g) {
    if (after[g] == before[g]) continue;
    speed_swaps_.fetch_add(1, std::memory_order_relaxed);
    metrics_.set_gauge("group_frequency_ghz_g" + std::to_string(g),
                       after[g]);
    if constexpr (obs::kTraceCompiledIn) {
      if (helper_ring_) {
        // cls = SpeedPlan epoch, arg = new frequency in MHz.
        helper_ring_->emit(
            obs::EventKind::kSpeedSwap,
            static_cast<std::uint16_t>(workers_.size()),
            static_cast<std::uint8_t>(g),
            static_cast<std::uint32_t>(governor_->current()->epoch),
            static_cast<std::uint64_t>(after[g] * 1000.0));
      }
    }
  }
}

void TaskRuntime::worker_loop(std::size_t index) {
  t_ctx.runtime = this;
  t_ctx.index = index;
#ifdef __linux__
  if (config_.pin_threads) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(index % static_cast<std::size_t>(
                        std::max(1L, sysconf(_SC_NPROCESSORS_ONLN))),
            &set);
    // Best effort: pinning failure (cgroup limits, permissions) is not an
    // error — the scheduler still works, just without affinity.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  Worker& me = *workers_[index];
  const std::size_t my_group = me.group;
  // Spin-then-park backoff: after a failed scan, spin (with `pause`) for
  // a bounded, exponentially growing number of rounds before registering
  // in the parking lot — steals stay hot when work arrives within a few
  // microseconds, but a truly idle core reaches a real sleep instead of
  // burning its power budget (or a 200 µs poll) forever.
  constexpr std::uint32_t kSpinRounds = 6;
  // Snatch-capable policies cannot park unboundedly while tasks run
  // elsewhere: no enqueue ever announces a snatch opportunity, so they
  // sleep in bounded slices and re-scan for busy slower victims.
  constexpr std::chrono::microseconds kSnatchPoll{100};
  std::uint32_t spins = 0;
  bool just_woken = false;
  while (true) {
    if (TaskNode* node = try_acquire(index)) {
      spins = 0;
      just_woken = false;
      execute(index, node);
      continue;
    }
    failed_rounds_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kTraceCompiledIn) {
      if (me.ring) ++me.idle_streak;  // coalesced; flushed in execute()
    }
    if (just_woken) {
      // Woken from a park but the scan came up dry: someone else got to
      // the work first (or the wake raced a steal).
      spurious_wakeups_->add(1);
      just_woken = false;
    }
    const bool snatchable =
        kernel_->may_snatch() && config_.emulate_speeds &&
        outstanding_.load(std::memory_order_acquire) > 0;
    if (snatchable) try_speed_swap(index);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (config_.legacy_idle_poll.count() > 0) {
      // Benchmark escape hatch: the pre-eventcount timed poll, lost
      // wakeups and all (see RuntimeConfig::legacy_idle_poll).
      lot_.legacy_poll(my_group, config_.legacy_idle_poll);
      continue;
    }
    if (spins < kSpinRounds) {
      for (std::uint32_t i = 0; i < (8u << spins); ++i) cpu_relax();
      ++spins;
      continue;
    }
    // Park: announce intent, RE-VALIDATE, then sleep. The re-scan between
    // prepare_park and park closes the lost-wakeup window — an enqueue
    // that raced our first scan either becomes visible to this scan or
    // bumps the lot's epoch past our ticket, so park() refuses to block.
    const std::uint64_t ticket = lot_.prepare_park(my_group);
    if (stopping_.load(std::memory_order_acquire)) {
      lot_.cancel_park(my_group);
      break;
    }
    bool saw_work = false;
    if (TaskNode* node = try_acquire(index, &saw_work)) {
      lot_.cancel_park(my_group);
      spins = 0;
      execute(index, node);
      continue;
    }
    if (saw_work) {
      // The kernel proposed sources but every acquisition lost a race
      // (e.g. a transiently contended steal). Work is still reachable and
      // nobody will wake us for it — retry instead of sleeping.
      lot_.cancel_park(my_group);
      continue;
    }
    if constexpr (obs::kTraceCompiledIn) {
      if (me.ring) {
        me.ring->emit(obs::EventKind::kPark,
                      static_cast<std::uint16_t>(index),
                      static_cast<std::uint8_t>(my_group), obs::kObsNoClass,
                      ticket);
      }
    }
    bool woken = true;
    if (snatchable) {
      woken = lot_.park_for(my_group, ticket, kSnatchPoll);
    } else {
      lot_.park(my_group, ticket);
    }
    if constexpr (obs::kTraceCompiledIn) {
      if (me.ring) {
        me.ring->emit(obs::EventKind::kUnpark,
                      static_cast<std::uint16_t>(index),
                      static_cast<std::uint8_t>(my_group), obs::kObsNoClass,
                      woken ? 1 : 0);
      }
    }
    just_woken = woken;
    if (woken) spins = 0;  // a wake means work: earn the spin budget back
  }
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring && me.idle_streak > 0) {
      me.ring->emit(obs::EventKind::kIdleSpin,
                    static_cast<std::uint16_t>(index), 0, obs::kObsNoClass,
                    me.idle_streak);
      me.idle_streak = 0;
    }
  }
  t_ctx.runtime = nullptr;
}

void TaskRuntime::helper_loop() {
  // Algorithm 1 re-run: the kernel builds a candidate PartitionPlan iff
  // new completions arrived and RCU-publishes it iff the plan gate
  // allows. The shard fold runs FIRST so the history Algorithm 1
  // partitions — and the completion count maybe_recluster() uses for
  // change detection — include everything the workers recorded up to
  // this tick.
  const auto recluster_tick = [this] {
    fold_history_shards(/*from_helper=*/true);
    const auto t0 = std::chrono::steady_clock::now();
    const core::policy::ReclusterOutcome outcome = kernel_->maybe_recluster();
    if (!outcome.attempted) return;
    const auto attempt_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    partition_latency_ns_->record(attempt_ns);
    if (outcome.repaired) {
      plan_repairs_->add(1);
      repair_latency_ns_->record(attempt_ns);
      if constexpr (obs::kTraceCompiledIn) {
        if (helper_ring_) {
          helper_ring_->emit(
              obs::EventKind::kPlanRepair,
              static_cast<std::uint16_t>(workers_.size()), 0,
              static_cast<std::uint32_t>(outcome.epoch),
              outcome.classes_moved);
        }
      }
    }
    if (outcome.repair_fallback) repair_fallbacks_->add(1);
    if (outcome.published) {
      const auto total = reclusters_.fetch_add(1, std::memory_order_relaxed);
      plans_published_->add(1);
      metrics_.set_gauge("plan_ratio_to_tl", outcome.ratio_to_tl);
      if constexpr (obs::kTraceCompiledIn) {
        if (helper_ring_) {
          // The helper owns its own ring (worker id = total_cores).
          helper_ring_->emit(
              obs::EventKind::kRecluster,
              static_cast<std::uint16_t>(workers_.size()), 0,
              obs::kObsNoClass, total + 1);
          helper_ring_->emit(
              obs::EventKind::kPlanPublish,
              static_cast<std::uint16_t>(workers_.size()), 0,
              static_cast<std::uint32_t>(outcome.epoch),
              outcome.classes_moved);
        }
      }
    } else {
      plans_skipped_.fetch_add(1, std::memory_order_relaxed);
      plans_skipped_counter_->add(1);
      if constexpr (obs::kTraceCompiledIn) {
        if (helper_ring_) {
          helper_ring_->emit(
              obs::EventKind::kPlanSkip,
              static_cast<std::uint16_t>(workers_.size()), 0,
              static_cast<std::uint32_t>(outcome.epoch),
              outcome.skip == core::policy::ReclusterOutcome::Skip::kChurn
                  ? 2
                  : 1);
        }
      }
    }
  };
  // Park on the condvar instead of a blind sleep: the destructor's
  // stopping_ + notify ends the wait immediately, so shutdown no longer
  // stalls up to a full helper_period.
  std::unique_lock lock(helper_mu_);
  while (!helper_cv_.wait_for(lock, config_.helper_period, [this] {
    return stopping_.load(std::memory_order_acquire);
  })) {
    lock.unlock();
    recluster_tick();
    // Governor ticks ride the same cadence, AFTER the recluster so
    // kPaceToDeadline prices against the freshest PartitionPlan.
    governor_tick();
    lock.lock();
  }
  lock.unlock();
  // Final sweep: completions that landed after the last tick (e.g. the
  // run's tail finishing right before destruction) still reach the class
  // history and the published map — class_history() after shutdown is
  // complete.
  recluster_tick();
}

RuntimeStats TaskRuntime::stats() const {
  RuntimeStats s;
  s.per_group_class_tasks.assign(config_.topology.group_count(), {});
  for (const auto& w : workers_) {
    const std::uint64_t executed =
        w->executed.load(std::memory_order_relaxed);
    s.tasks_executed += executed;
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.cross_cluster_acquires +=
        w->cross_cluster.load(std::memory_order_relaxed);
    s.per_worker_tasks.push_back(executed);
    std::vector<std::uint64_t> counts;
    {
      std::lock_guard lock(w->stats_mu);
      counts = w->class_counts;
    }
    auto& group_counts = s.per_group_class_tasks[w->group];
    if (group_counts.size() < counts.size()) {
      group_counts.resize(counts.size(), 0);
    }
    for (std::size_t c = 0; c < counts.size(); ++c) {
      group_counts[c] += counts[c];
    }
  }
  // Workers grow their class_counts lazily (resize on first execution of a
  // class), so the per-group vectors come out ragged: a group whose
  // workers never ran the newest classes — interned, say, by a recluster
  // that grew the class table mid-run — would be shorter than its
  // siblings. Pad every group to the longest so readers can index any
  // group by any recorded class id (resize-on-read; see the field's doc).
  std::size_t max_classes = 0;
  for (const auto& g : s.per_group_class_tasks) {
    max_classes = std::max(max_classes, g.size());
  }
  for (auto& g : s.per_group_class_tasks) {
    g.resize(max_classes, 0);
  }
  s.reclusters = reclusters_.load(std::memory_order_relaxed);
  s.plans_skipped = plans_skipped_.load(std::memory_order_relaxed);
  if (const core::PartitionPlan* plan = kernel_->current_plan()) {
    s.plan_epoch = plan->epoch;
  }
  s.speed_swaps = speed_swaps_.load(std::memory_order_relaxed);
  if (governor_ != nullptr) {
    s.governor_ticks = governor_->ticks();
    s.speed_plan_epoch = governor_->current()->epoch;
  }
  s.failed_acquire_rounds = failed_rounds_.load(std::memory_order_relaxed);
  s.dnc_fallback_active = kernel_->dnc_active();
  return s;
}

double RuntimeStats::fraction_on_group(core::TaskClassId cls,
                                       core::GroupIndex group) const {
  std::uint64_t total = 0;
  std::uint64_t on_group = 0;
  for (std::size_t g = 0; g < per_group_class_tasks.size(); ++g) {
    const auto& counts = per_group_class_tasks[g];
    if (cls < counts.size()) {
      total += counts[cls];
      if (g == group) on_group = counts[cls];
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(on_group) /
                          static_cast<double>(total);
}

void TaskRuntime::fold_history_shards(bool from_helper) const {
  if (config_.locked_history) {
    // Completions went straight into the registry — but the detector may
    // still have fired there; keep the metric honest.
    const auto resets = registry_.drain_history_resets();
    if (!resets.empty()) history_resets_counter_->add(resets.size());
    return;
  }
  std::lock_guard lock(fold_mu_);
  if (fold_cursors_.size() < workers_.size()) {
    fold_cursors_.resize(workers_.size());
  }
  const auto start = Clock::now();
  core::HistoryShard::FoldStats total;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const auto folded =
        workers_[i]->shard.fold_into(registry_, fold_cursors_[i]);
    if (folded.completions > 0) shard_flushes_->add(1);
    total.completions += folded.completions;
    total.classes_discovered += folded.classes_discovered;
  }
  if (total.completions == 0) return;
  classes_discovered_->add(total.classes_discovered);
  const auto dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - start)
                          .count();
  history_merge_ns_->record(static_cast<std::uint64_t>(dur_ns));
  // The fold may have tripped the change-point detector; surface each
  // decay as a metric bump plus (helper-only) a ring event. Draining on
  // the fold path keeps detection and its observability on the same
  // thread, just like the shard fold itself.
  const std::vector<core::HistoryReset> resets =
      registry_.drain_history_resets();
  if (!resets.empty()) {
    history_resets_counter_->add(resets.size());
  }
  if constexpr (obs::kTraceCompiledIn) {
    // Rings are single-producer: only the helper thread may emit to its
    // own ring, so on-demand folds (class_history from an external
    // thread) are counted in the metrics but not ring-traced.
    if (from_helper && helper_ring_) {
      helper_ring_->emit(obs::EventKind::kHistoryMerge,
                         static_cast<std::uint16_t>(workers_.size()), 0,
                         obs::kObsNoClass, total.completions);
      const std::uint64_t base = registry_.history_resets() - resets.size();
      for (std::size_t i = 0; i < resets.size(); ++i) {
        helper_ring_->emit(obs::EventKind::kHistoryReset,
                           static_cast<std::uint16_t>(workers_.size()), 0,
                           resets[i].id, base + i + 1);
      }
    }
  }
}

std::vector<core::TaskClassInfo> TaskRuntime::class_history() const {
  // Fold pending shard deltas first so external readers (persistence,
  // tests, the observability summary) see everything recorded so far, not
  // just what the helper's last tick published.
  fold_history_shards(/*from_helper=*/false);
  return registry_.snapshot();
}

void TaskRuntime::preload_history(
    const std::vector<core::TaskClassInfo>& classes) {
  for (const auto& cls : classes) {
    const auto id = registry_.intern(cls.name);
    // Merge, don't overwrite: the persisted run combines with any live
    // history through the same order-insensitive combine as shard folding
    // (treating it as `completed` samples of the persisted mean), so a
    // class that already completed tasks in THIS run keeps that weight
    // instead of having it clobbered — and preloading before, during or
    // after live folds yields the same table.
    registry_.merge_history(id, cls.completed, cls.mean_workload,
                            cls.mean_scalable);
  }
}

bool TaskRuntime::on_worker_thread() const { return t_ctx.runtime == this; }

void TaskGroup::spawn(core::TaskClassId cls, std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  rt_.spawn(cls, [this, fn = std::move(fn)] {
    // The decrement must happen even when fn throws (the runtime captures
    // the exception for wait_all; the group must still drain).
    struct Finisher {
      TaskGroup* group;
      ~Finisher() {
        if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard lock(group->mu_);
          group->cv_.notify_all();
        }
      }
    } finisher{this};
    fn();
  });
}

void TaskGroup::wait() {
  WATS_CHECK_MSG(!rt_.on_worker_thread(),
                 "TaskGroup::wait must not run on a worker thread");
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

core::GroupIndex TaskRuntime::cluster_of(core::TaskClassId cls) const {
  return kernel_->cluster_of(cls);
}

}  // namespace wats::runtime
