#include "runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/check.hpp"

namespace wats::runtime {

namespace {

/// Identity of the current worker within its runtime (so nested spawns are
/// parent-first: they land in the spawning worker's own pools) and the
/// class of the task it is executing (for divide-and-conquer detection).
struct WorkerContext {
  const TaskRuntime* runtime = nullptr;
  std::size_t index = 0;
  core::TaskClassId running_class = core::kNoTaskClass;
};
thread_local WorkerContext t_ctx;

using Clock = std::chrono::steady_clock;

}  // namespace

TaskRuntime::TaskRuntime(RuntimeConfig config) : config_(std::move(config)) {
  const std::size_t n = config_.topology.total_cores();
  const std::size_t k = config_.topology.group_count();
  prefs_ = core::all_preference_lists(k);
  cluster_map_ = std::make_shared<core::ClusterMap>(0, k);

  external_.resize(k);

  util::SplitMix64 seeder(config_.seed);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->group = config_.topology.group_of_core(i);
    w->speed_scale.store(config_.topology.relative_speed(w->group));
    w->rng = util::Xoshiro256(seeder.next());
    w->pools.reserve(k);
    for (std::size_t c = 0; c < k; ++c) {
      w->pools.push_back(std::make_unique<WorkStealingDeque<TaskNode>>());
    }
    workers_.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
  helper_ = std::thread([this] { helper_loop(); });
}

TaskRuntime::~TaskRuntime() {
  wait_all();
  stopping_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  if (helper_.joinable()) helper_.join();
}

core::TaskClassId TaskRuntime::register_class(std::string_view name) {
  return registry_.intern(name);
}

bool TaskRuntime::dnc_active() const {
  if (!config_.dnc_fallback) return false;
  if (dnc_.observed_spawns() < config_.dnc_min_spawns) return false;
  return dnc_.self_recursive_fraction() > config_.dnc_threshold;
}

void TaskRuntime::enqueue(TaskNode* node) {
  core::GroupIndex cluster = 0;
  const bool plain_policy =
      config_.policy == Policy::kPft || config_.policy == Policy::kRtsSwap;
  if (!plain_policy && !dnc_active()) {
    cluster = cluster_of(node->cls);
  }
  if (t_ctx.runtime == this) {
    // Parent-first: the spawner continues; the child waits in the
    // spawner's own pool for this cluster.
    workers_[t_ctx.index]->pools[cluster]->push_bottom(node);
  } else {
    std::lock_guard lock(external_mu_);
    external_[cluster].push_back(node);
  }
  idle_cv_.notify_all();
}

void TaskRuntime::spawn(core::TaskClassId cls, std::function<void()> fn) {
  WATS_CHECK(!stopping_.load(std::memory_order_acquire));
  auto* node = new TaskNode{std::move(fn), cls};
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (t_ctx.runtime == this) {
    dnc_.record_spawn(t_ctx.running_class, cls);
  }
  enqueue(node);
}

void TaskRuntime::spawn(std::function<void()> fn) {
  spawn(core::kNoTaskClass, std::move(fn));
}

bool TaskRuntime::wait_all_for(std::chrono::milliseconds timeout) {
  {
    std::unique_lock lock(idle_mu_);
    const bool drained = done_cv_.wait_for(lock, timeout, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
    if (!drained) return false;
  }
  std::exception_ptr pending;
  {
    std::lock_guard lock(exception_mu_);
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
  return true;
}

void TaskRuntime::wait_all() {
  {
    std::unique_lock lock(idle_mu_);
    done_cv_.wait(lock, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr pending;
  {
    std::lock_guard lock(exception_mu_);
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
}

TaskRuntime::TaskNode* TaskRuntime::try_steal_cluster(
    std::size_t thief, core::GroupIndex cluster) {
  Worker& me = *workers_[thief];
  // A few random probes, then one full sweep — bounded work per call, and
  // the worker loop retries anyway.
  const std::size_t n = workers_.size();
  for (int probe = 0; probe < 4; ++probe) {
    const std::size_t victim = static_cast<std::size_t>(me.rng.bounded(n));
    if (victim == thief) continue;
    if (TaskNode* t = workers_[victim]->pools[cluster]->steal_top()) {
      ++me.steals;
      return t;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (v == thief) continue;
    if (TaskNode* t = workers_[v]->pools[cluster]->steal_top()) {
      ++me.steals;
      return t;
    }
  }
  return nullptr;
}

TaskRuntime::TaskNode* TaskRuntime::try_acquire(std::size_t index) {
  Worker& me = *workers_[index];
  const std::size_t k = config_.topology.group_count();
  const bool plain = config_.policy == Policy::kPft ||
                     config_.policy == Policy::kRtsSwap || dnc_active();
  const bool cross_cluster = config_.policy != Policy::kWatsNp;

  // Cluster scan order: Algorithm 3's preference list for WATS; for plain
  // stealing all tasks live in cluster 0 but stale pools from before a
  // divide-and-conquer fallback still need draining, so scan everything.
  for (std::size_t step = 0; step < k; ++step) {
    const core::GroupIndex cluster =
        plain ? static_cast<core::GroupIndex>(step) : prefs_[me.group][step];
    if (!plain && !cross_cluster && cluster != me.group) continue;

    // 1. Own pool for this cluster.
    if (TaskNode* t = me.pools[cluster]->pop_bottom()) {
      if (cluster != me.group) ++me.cross_cluster;
      return t;
    }
    // 2. External spawns for this cluster.
    {
      std::lock_guard lock(external_mu_);
      if (!external_[cluster].empty()) {
        TaskNode* t = external_[cluster].front();
        external_[cluster].pop_front();
        if (cluster != me.group) ++me.cross_cluster;
        return t;
      }
    }
    // 3. Steal from other workers' pools for this cluster.
    if (TaskNode* t = try_steal_cluster(index, cluster)) {
      if (cluster != me.group) ++me.cross_cluster;
      return t;
    }
  }
  return nullptr;
}

void TaskRuntime::execute(std::size_t index, TaskNode* node) {
  Worker& me = *workers_[index];
  const auto prev_class = t_ctx.running_class;
  t_ctx.running_class = node->cls;
  me.executing.store(true, std::memory_order_release);

  const auto start = Clock::now();
  try {
    node->fn();
  } catch (...) {
    std::lock_guard lock(exception_mu_);
    if (!first_exception_) first_exception_ = std::current_exception();
  }
  const auto end = Clock::now();
  t_ctx.running_class = prev_class;

  const std::chrono::duration<double, std::micro> exec_us = end - start;

  const double scale = me.speed_scale.load(std::memory_order_relaxed);
  if (config_.emulate_speeds && scale < 1.0) {
    // Duty-cycle throttle: stretch wall time to work / speed.
    const double extra = exec_us.count() * (1.0 / scale - 1.0);
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(extra));
  }

  // Algorithm 2 / Eq. 2: measured time on this core, normalized by
  // Fi / F1, is the F1-equivalent workload. With the duty-cycle throttle
  // the total wall time is exec/speed, so wall * speed == exec.
  if (node->cls != core::kNoTaskClass) {
    registry_.record_completion(node->cls, exec_us.count());
  }

  me.executing.store(false, std::memory_order_release);
  ++me.executed;
  if (node->cls != core::kNoTaskClass) {
    if (me.class_counts.size() <= node->cls) {
      me.class_counts.resize(node->cls + 1, 0);
    }
    ++me.class_counts[node->cls];
  }
  delete node;
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(idle_mu_);
    done_cv_.notify_all();
  }
}

bool TaskRuntime::try_speed_swap(std::size_t thief) {
  Worker& me = *workers_[thief];
  std::lock_guard lock(swap_mu_);
  const double my_scale = me.speed_scale.load(std::memory_order_relaxed);
  // Find the busy worker with the lowest speed below ours.
  Worker* victim = nullptr;
  double victim_scale = my_scale;
  for (auto& w : workers_) {
    if (w.get() == &me) continue;
    if (!w->executing.load(std::memory_order_acquire)) continue;
    const double s = w->speed_scale.load(std::memory_order_relaxed);
    if (s < victim_scale) {
      victim_scale = s;
      victim = w.get();
    }
  }
  if (victim == nullptr) return false;
  // Swap the emulated speeds: the victim's running task continues at our
  // (faster) rate; we inherit the slow slot — the paper's thread swap.
  victim->speed_scale.store(my_scale, std::memory_order_relaxed);
  me.speed_scale.store(victim_scale, std::memory_order_relaxed);
  speed_swaps_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TaskRuntime::worker_loop(std::size_t index) {
  t_ctx.runtime = this;
  t_ctx.index = index;
#ifdef __linux__
  if (config_.pin_threads) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(index % static_cast<std::size_t>(
                        std::max(1L, sysconf(_SC_NPROCESSORS_ONLN))),
            &set);
    // Best effort: pinning failure (cgroup limits, permissions) is not an
    // error — the scheduler still works, just without affinity.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  while (true) {
    if (TaskNode* node = try_acquire(index)) {
      execute(index, node);
      continue;
    }
    failed_rounds_.fetch_add(1, std::memory_order_relaxed);
    if (config_.policy == Policy::kRtsSwap && config_.emulate_speeds &&
        outstanding_.load(std::memory_order_acquire) > 0) {
      try_speed_swap(index);
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    std::unique_lock lock(idle_mu_);
    idle_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
  t_ctx.runtime = nullptr;
}

void TaskRuntime::helper_loop() {
  std::uint64_t last_completions = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(config_.helper_period);
    const std::uint64_t completions = registry_.total_completions();
    if (completions == last_completions) continue;
    last_completions = completions;
    auto fresh = std::make_shared<core::ClusterMap>(
        core::ClusterMap::build(registry_.snapshot(), config_.topology));
    {
      std::lock_guard lock(map_mu_);
      cluster_map_ = std::move(fresh);
    }
    reclusters_.fetch_add(1, std::memory_order_relaxed);
  }
}

RuntimeStats TaskRuntime::stats() const {
  RuntimeStats s;
  s.per_group_class_tasks.assign(config_.topology.group_count(), {});
  for (const auto& w : workers_) {
    s.tasks_executed += w->executed;
    s.steals += w->steals;
    s.cross_cluster_acquires += w->cross_cluster;
    s.per_worker_tasks.push_back(w->executed);
    auto& group_counts = s.per_group_class_tasks[w->group];
    if (group_counts.size() < w->class_counts.size()) {
      group_counts.resize(w->class_counts.size(), 0);
    }
    for (std::size_t c = 0; c < w->class_counts.size(); ++c) {
      group_counts[c] += w->class_counts[c];
    }
  }
  s.reclusters = reclusters_.load(std::memory_order_relaxed);
  s.speed_swaps = speed_swaps_.load(std::memory_order_relaxed);
  s.failed_acquire_rounds = failed_rounds_.load(std::memory_order_relaxed);
  s.dnc_fallback_active = dnc_active();
  return s;
}

double RuntimeStats::fraction_on_group(core::TaskClassId cls,
                                       core::GroupIndex group) const {
  std::uint64_t total = 0;
  std::uint64_t on_group = 0;
  for (std::size_t g = 0; g < per_group_class_tasks.size(); ++g) {
    const auto& counts = per_group_class_tasks[g];
    if (cls < counts.size()) {
      total += counts[cls];
      if (g == group) on_group = counts[cls];
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(on_group) /
                          static_cast<double>(total);
}

std::vector<core::TaskClassInfo> TaskRuntime::class_history() const {
  return registry_.snapshot();
}

void TaskRuntime::preload_history(
    const std::vector<core::TaskClassInfo>& classes) {
  for (const auto& cls : classes) {
    const auto id = registry_.intern(cls.name);
    registry_.restore(id, cls.completed, cls.mean_workload);
  }
}

bool TaskRuntime::on_worker_thread() const { return t_ctx.runtime == this; }

void TaskGroup::spawn(core::TaskClassId cls, std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  rt_.spawn(cls, [this, fn = std::move(fn)] {
    // The decrement must happen even when fn throws (the runtime captures
    // the exception for wait_all; the group must still drain).
    struct Finisher {
      TaskGroup* group;
      ~Finisher() {
        if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard lock(group->mu_);
          group->cv_.notify_all();
        }
      }
    } finisher{this};
    fn();
  });
}

void TaskGroup::wait() {
  WATS_CHECK_MSG(!rt_.on_worker_thread(),
                 "TaskGroup::wait must not run on a worker thread");
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

core::GroupIndex TaskRuntime::cluster_of(core::TaskClassId cls) const {
  std::shared_ptr<const core::ClusterMap> map;
  {
    std::lock_guard lock(map_mu_);
    map = cluster_map_;
  }
  return map->cluster_of(cls);
}

}  // namespace wats::runtime
