#include "runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include "util/check.hpp"

namespace wats::runtime {

// obs restates the no-class sentinel so it need not depend on wats_core;
// the ring stores class ids raw, so the two must agree.
static_assert(obs::kObsNoClass == core::kNoTaskClass,
              "obs::kObsNoClass out of sync with core::kNoTaskClass");

namespace {

/// Identity of the current worker within its runtime (so nested spawns are
/// parent-first: they land in the spawning worker's own pools) and the
/// class of the task it is executing (for divide-and-conquer detection).
struct WorkerContext {
  const TaskRuntime* runtime = nullptr;
  std::size_t index = 0;
  core::TaskClassId running_class = core::kNoTaskClass;
};
thread_local WorkerContext t_ctx;

using Clock = std::chrono::steady_clock;

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

core::policy::PolicyKind to_policy_kind(Policy policy) {
  switch (policy) {
    case Policy::kCilk:
      return core::policy::PolicyKind::kCilk;
    case Policy::kPft:
      return core::policy::PolicyKind::kPft;
    case Policy::kWats:
      return core::policy::PolicyKind::kWats;
    case Policy::kWatsNp:
      return core::policy::PolicyKind::kWatsNp;
    case Policy::kWatsTs:
      return core::policy::PolicyKind::kWatsTs;
    case Policy::kRtsSwap:
      return core::policy::PolicyKind::kRts;
  }
  WATS_CHECK_MSG(false, "unknown runtime policy");
  __builtin_unreachable();
}

}  // namespace

/// MachineView over the live runtime. All observations are racy-but-safe
/// approximations: deque sizes via size_approx(), queued work as task
/// counts (a Chase–Lev deque cannot be traversed by observers), remaining
/// work estimated from the class's mean workload and the task's elapsed
/// wall time. The kernel's decisions are revalidated at execution time.
class TaskRuntime::View final : public core::policy::MachineView {
 public:
  View(const TaskRuntime& rt, Worker& self) : rt_(rt), self_(self) {}

  const core::AmcTopology& topology() const override {
    return rt_.config_.topology;
  }

  std::size_t pool_size(core::CoreIndex core,
                        core::GroupIndex lane) const override {
    return rt_.workers_[core]->pools[lane]->size_approx();
  }

  double pool_queued_work(core::CoreIndex core,
                          core::GroupIndex lane) const override {
    // Unit task weights: the runtime does not know per-task work upfront.
    return static_cast<double>(pool_size(core, lane));
  }

  double pool_lightest_work(core::CoreIndex core,
                            core::GroupIndex lane) const override {
    return pool_size(core, lane) > 0 ? 1.0 : 0.0;
  }

  std::size_t central_size(core::GroupIndex lane) const override {
    return rt_.central_[lane]->size.load(std::memory_order_relaxed);
  }

  bool core_busy(core::CoreIndex core) const override {
    return rt_.workers_[core]->executing.load(std::memory_order_acquire);
  }

  double core_speed(core::CoreIndex core) const override {
    return rt_.workers_[core]->speed_scale.load(std::memory_order_relaxed);
  }

  double running_remaining(core::CoreIndex core) const override {
    // Estimate: the class's mean workload (in F1-normalized microseconds)
    // minus what the worker already executed. Classes without history
    // rank lowest — a snatch cannot justify itself on an unknown task.
    const Worker& w = *rt_.workers_[core];
    const auto cls = w.running_cls.load(std::memory_order_acquire);
    if (cls == core::kNoTaskClass || !rt_.registry_.has_history(cls)) {
      return 0.0;
    }
    const double mean = rt_.registry_.info(cls).mean_workload;
    const double elapsed =
        static_cast<double>(now_us() -
                            w.run_started_us.load(std::memory_order_relaxed));
    const double speed = w.speed_scale.load(std::memory_order_relaxed);
    return std::max(0.0, mean - elapsed * speed);
  }

  std::uint64_t random_below(std::uint64_t bound) override {
    // The calling worker's own RNG: no cross-thread contention.
    return self_.rng.bounded(bound);
  }

 private:
  const TaskRuntime& rt_;
  Worker& self_;
};

TaskRuntime::TaskRuntime(RuntimeConfig config) : config_(std::move(config)) {
  kernel_ = core::policy::make_policy(to_policy_kind(config_.policy),
                                      registry_);
  core::policy::PolicyOptions opts;
  opts.dnc_fallback = config_.dnc_fallback;
  opts.dnc_threshold = config_.dnc_threshold;
  opts.dnc_min_spawns = config_.dnc_min_spawns;
  kernel_->bind(config_.topology, opts);

  const std::size_t n = config_.topology.total_cores();
  const std::size_t lanes = kernel_->lane_count();

  if constexpr (obs::kTraceCompiledIn) {
    if (config_.trace.enabled) {
      calib_ = obs::calibrate_tsc();
      helper_ring_ = std::make_unique<obs::EventRing>(
          config_.trace.ring_capacity);
      if (config_.trace.record_decisions) {
        // Attached before any worker starts; detaching mid-run is not
        // supported (see PolicyKernel::set_decision_sink).
        decision_sink_ = std::make_unique<obs::CollectingDecisionSink>();
        kernel_->set_decision_sink(decision_sink_.get());
      }
    }
  }

  central_.reserve(lanes);
  for (std::size_t c = 0; c < lanes; ++c) {
    central_.push_back(std::make_unique<CentralLane>());
  }

  util::SplitMix64 seeder(config_.seed);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->group = config_.topology.group_of_core(i);
    w->speed_scale.store(config_.topology.relative_speed(w->group));
    w->rng = util::Xoshiro256(seeder.next());
    if constexpr (obs::kTraceCompiledIn) {
      if (config_.trace.enabled) {
        w->ring = std::make_unique<obs::EventRing>(
            config_.trace.ring_capacity);
      }
    }
    w->pools.reserve(lanes);
    for (std::size_t c = 0; c < lanes; ++c) {
      w->pools.push_back(std::make_unique<WorkStealingDeque<TaskNode>>());
    }
    workers_.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
  helper_ = std::thread([this] { helper_loop(); });
}

TaskRuntime::~TaskRuntime() {
  wait_all();
  stopping_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  if (helper_.joinable()) helper_.join();
}

core::TaskClassId TaskRuntime::register_class(std::string_view name) {
  return registry_.intern(name);
}

void TaskRuntime::enqueue(TaskNode* node) {
  const auto placement = kernel_->place(node->cls);
  if (placement.where == core::policy::Placement::Where::kLocalPool &&
      t_ctx.runtime == this) {
    // Parent-first: the spawner continues; the child waits in the
    // spawner's own pool for this lane.
    workers_[t_ctx.index]->pools[placement.lane]->push_bottom(node);
  } else {
    // Central placement (the Cilk family), or a spawn from outside the
    // worker threads, which cannot touch the single-owner deques.
    auto& lane = *central_[placement.lane];
    std::lock_guard lock(lane.mu);
    lane.q.push_back(node);
    lane.size.store(lane.q.size(), std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
}

void TaskRuntime::spawn(core::TaskClassId cls, std::function<void()> fn) {
  WATS_CHECK(!stopping_.load(std::memory_order_acquire));
  const bool on_worker = t_ctx.runtime == this;
  auto* node = new TaskNode{std::move(fn), cls,
                            on_worker ? t_ctx.index : kExternalSpawner};
  if constexpr (obs::kTraceCompiledIn) {
    if (config_.trace.enabled) node->enqueue_tsc = obs::tsc_now();
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (on_worker) {
    kernel_->record_spawn_edge(t_ctx.running_class, cls);
  }
  enqueue(node);
}

void TaskRuntime::spawn(std::function<void()> fn) {
  spawn(core::kNoTaskClass, std::move(fn));
}

bool TaskRuntime::wait_all_for(std::chrono::milliseconds timeout) {
  {
    std::unique_lock lock(idle_mu_);
    const bool drained = done_cv_.wait_for(lock, timeout, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
    if (!drained) return false;
  }
  std::exception_ptr pending;
  {
    std::lock_guard lock(exception_mu_);
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
  return true;
}

void TaskRuntime::wait_all() {
  {
    std::unique_lock lock(idle_mu_);
    done_cv_.wait(lock, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr pending;
  {
    std::lock_guard lock(exception_mu_);
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
}

TaskRuntime::TaskNode* TaskRuntime::try_acquire(std::size_t index) {
  Worker& me = *workers_[index];
  View view(*this, me);
  // Steal latency = from entering the acquire scan to a successful steal
  // (the paper's "cost of preference stealing" is exactly this scan).
  std::uint64_t scan_start = 0;
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring) scan_start = obs::tsc_now();
  }
  const auto note_cross = [&](core::GroupIndex lane) {
    me.cross_cluster.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kTraceCompiledIn) {
      if (me.ring) {
        me.ring->emit(obs::EventKind::kCrossCluster,
                      static_cast<std::uint16_t>(index),
                      static_cast<std::uint8_t>(lane), obs::kObsNoClass,
                      static_cast<std::uint64_t>(lane));
      }
    }
  };
  const auto note_steal = [&](core::GroupIndex lane, core::CoreIndex victim) {
    me.steals.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kTraceCompiledIn) {
      if (me.ring) {
        me.ring->emit(obs::EventKind::kStealSuccess,
                      static_cast<std::uint16_t>(index),
                      static_cast<std::uint8_t>(lane), obs::kObsNoClass,
                      static_cast<std::uint64_t>(victim));
        metrics_.histogram("steal_latency_ns")
            .record(static_cast<std::uint64_t>(
                calib_.delta_ns(obs::tsc_now() - scan_start)));
      }
    }
  };
  // Kernel decisions are computed against racy queue sizes, so the chosen
  // source may have drained before we reach it; ask again a bounded number
  // of times (the worker loop sleeps and retries on total failure anyway).
  const std::size_t attempts = 2 * kernel_->lane_count() + 8;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    const auto decision = kernel_->acquire(view, index);
    if (!decision.has_value()) return nullptr;
    switch (decision->action) {
      case core::policy::AcquireDecision::Action::kPopLocal:
        if (TaskNode* t = me.pools[decision->lane]->pop_bottom()) {
          if (decision->lane != me.group) note_cross(decision->lane);
          return t;
        }
        break;
      case core::policy::AcquireDecision::Action::kTakeCentral: {
        TaskNode* t = nullptr;
        auto& lane = *central_[decision->lane];
        {
          std::lock_guard lock(lane.mu);
          if (!lane.q.empty()) {
            t = lane.q.front();
            lane.q.pop_front();
            lane.size.store(lane.q.size(), std::memory_order_relaxed);
          }
        }
        if (t != nullptr) {
          if (kernel_->uses_central_queue() && t->spawner != index) {
            // Cilk: a continuation handoff to another core is a steal
            // (the "victim" is the spawner whose continuation we took).
            note_steal(decision->lane,
                       t->spawner < workers_.size() ? t->spawner : index);
          }
          if (decision->lane != me.group) note_cross(decision->lane);
          return t;
        }
        break;
      }
      case core::policy::AcquireDecision::Action::kSteal:
        if constexpr (obs::kTraceCompiledIn) {
          if (me.ring) {
            me.ring->emit(obs::EventKind::kStealAttempt,
                          static_cast<std::uint16_t>(index),
                          static_cast<std::uint8_t>(decision->lane),
                          obs::kObsNoClass,
                          static_cast<std::uint64_t>(decision->victim));
          }
        }
        if (TaskNode* t =
                workers_[decision->victim]->pools[decision->lane]
                    ->steal_top()) {
          note_steal(decision->lane, decision->victim);
          if (decision->lane != me.group) note_cross(decision->lane);
          return t;
        }
        break;
    }
  }
  return nullptr;
}

void TaskRuntime::execute(std::size_t index, TaskNode* node) {
  Worker& me = *workers_[index];
  const auto prev_class = t_ctx.running_class;
  t_ctx.running_class = node->cls;
  me.running_cls.store(node->cls, std::memory_order_relaxed);
  me.run_started_us.store(now_us(), std::memory_order_relaxed);
  me.executing.store(true, std::memory_order_release);

  std::uint64_t begin_tsc = 0;
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring) {
      if (me.idle_streak > 0) {
        // Flush the coalesced idle-spin streak now that work arrived.
        me.ring->emit(obs::EventKind::kIdleSpin,
                      static_cast<std::uint16_t>(index), 0, obs::kObsNoClass,
                      me.idle_streak);
        me.idle_streak = 0;
      }
      begin_tsc = obs::tsc_now();
      const std::uint64_t dispatch_ticks =
          node->enqueue_tsc != 0 && begin_tsc > node->enqueue_tsc
              ? begin_tsc - node->enqueue_tsc
              : 0;
      me.ring->emit(obs::EventKind::kTaskBegin,
                    static_cast<std::uint16_t>(index),
                    static_cast<std::uint8_t>(me.group), node->cls,
                    dispatch_ticks);
      metrics_.histogram("dispatch_latency_ns")
          .record(
              static_cast<std::uint64_t>(calib_.delta_ns(dispatch_ticks)));
    }
  }

  const auto start = Clock::now();
  try {
    node->fn();
  } catch (...) {
    std::lock_guard lock(exception_mu_);
    if (!first_exception_) first_exception_ = std::current_exception();
  }
  const auto end = Clock::now();
  t_ctx.running_class = prev_class;

  const std::chrono::duration<double, std::micro> exec_us = end - start;

  const double scale = me.speed_scale.load(std::memory_order_relaxed);
  if (config_.emulate_speeds && scale < 1.0) {
    // Duty-cycle throttle: stretch wall time to work / speed.
    const double extra = exec_us.count() * (1.0 / scale - 1.0);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(extra));
  }

  // Algorithm 2 / Eq. 2: measured time on this core, normalized by
  // Fi / F1, is the F1-equivalent workload. With the duty-cycle throttle
  // the total wall time is exec/speed, so wall * speed == exec.
  if (node->cls != core::kNoTaskClass) {
    registry_.record_completion(node->cls, exec_us.count());
  }

  me.executing.store(false, std::memory_order_release);
  me.running_cls.store(core::kNoTaskClass, std::memory_order_relaxed);
  me.executed.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring) {
      // Duration includes the duty-cycle throttle: the slice spans the
      // emulated occupancy of the core, matching what the paper's wall
      // clock would see on real asymmetric silicon.
      const std::uint64_t end_tsc = obs::tsc_now();
      me.ring->emit(obs::EventKind::kTaskEnd,
                    static_cast<std::uint16_t>(index),
                    static_cast<std::uint8_t>(me.group), node->cls,
                    end_tsc > begin_tsc ? end_tsc - begin_tsc : 0);
    }
  }
  if (node->cls != core::kNoTaskClass) {
    std::lock_guard lock(me.stats_mu);
    if (me.class_counts.size() <= node->cls) {
      me.class_counts.resize(node->cls + 1, 0);
    }
    ++me.class_counts[node->cls];
  }
  delete node;
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(idle_mu_);
    done_cv_.notify_all();
  }
}

bool TaskRuntime::try_speed_swap(std::size_t thief) {
  Worker& me = *workers_[thief];
  View view(*this, me);
  // The kernel picks the victim: random busy-slower for RTS, the slower
  // worker with the largest estimated remaining work for WATS-TS.
  const auto choice = kernel_->snatch_victim(view, thief);
  if (!choice.has_value()) return false;
  Worker& victim = *workers_[*choice];
  // Revalidate under the swap lock: the view is racy and the victim may
  // have finished (or been swapped faster) meanwhile.
  std::lock_guard lock(swap_mu_);
  const double my_scale = me.speed_scale.load(std::memory_order_relaxed);
  const double victim_scale =
      victim.speed_scale.load(std::memory_order_relaxed);
  if (!victim.executing.load(std::memory_order_acquire)) return false;
  if (victim_scale >= my_scale) return false;
  // Swap the emulated speeds: the victim's running task continues at our
  // (faster) rate; we inherit the slow slot — the paper's thread swap.
  victim.speed_scale.store(my_scale, std::memory_order_relaxed);
  me.speed_scale.store(victim_scale, std::memory_order_relaxed);
  speed_swaps_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring) {
      me.ring->emit(obs::EventKind::kSnatch,
                    static_cast<std::uint16_t>(thief),
                    static_cast<std::uint8_t>(me.group),
                    victim.running_cls.load(std::memory_order_relaxed),
                    static_cast<std::uint64_t>(*choice));
    }
  }
  return true;
}

void TaskRuntime::worker_loop(std::size_t index) {
  t_ctx.runtime = this;
  t_ctx.index = index;
#ifdef __linux__
  if (config_.pin_threads) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(index % static_cast<std::size_t>(
                        std::max(1L, sysconf(_SC_NPROCESSORS_ONLN))),
            &set);
    // Best effort: pinning failure (cgroup limits, permissions) is not an
    // error — the scheduler still works, just without affinity.
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  Worker& me = *workers_[index];
  while (true) {
    if (TaskNode* node = try_acquire(index)) {
      execute(index, node);
      continue;
    }
    failed_rounds_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (obs::kTraceCompiledIn) {
      if (me.ring) ++me.idle_streak;  // coalesced; flushed in execute()
    }
    if (kernel_->may_snatch() && config_.emulate_speeds &&
        outstanding_.load(std::memory_order_acquire) > 0) {
      try_speed_swap(index);
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    std::unique_lock lock(idle_mu_);
    idle_cv_.wait_for(lock, std::chrono::microseconds(200));
  }
  if constexpr (obs::kTraceCompiledIn) {
    if (me.ring && me.idle_streak > 0) {
      me.ring->emit(obs::EventKind::kIdleSpin,
                    static_cast<std::uint16_t>(index), 0, obs::kObsNoClass,
                    me.idle_streak);
      me.idle_streak = 0;
    }
  }
  t_ctx.runtime = nullptr;
}

void TaskRuntime::helper_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(config_.helper_period);
    // Algorithm 1 re-run: the kernel rebuilds and RCU-publishes the
    // class->cluster map iff new completions arrived.
    if (kernel_->maybe_recluster()) {
      const auto total = reclusters_.fetch_add(1, std::memory_order_relaxed);
      if constexpr (obs::kTraceCompiledIn) {
        if (helper_ring_) {
          // The helper owns its own ring (worker id = total_cores).
          helper_ring_->emit(
              obs::EventKind::kRecluster,
              static_cast<std::uint16_t>(workers_.size()), 0,
              obs::kObsNoClass, total + 1);
        }
      }
    }
  }
}

RuntimeStats TaskRuntime::stats() const {
  RuntimeStats s;
  s.per_group_class_tasks.assign(config_.topology.group_count(), {});
  for (const auto& w : workers_) {
    const std::uint64_t executed =
        w->executed.load(std::memory_order_relaxed);
    s.tasks_executed += executed;
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.cross_cluster_acquires +=
        w->cross_cluster.load(std::memory_order_relaxed);
    s.per_worker_tasks.push_back(executed);
    std::vector<std::uint64_t> counts;
    {
      std::lock_guard lock(w->stats_mu);
      counts = w->class_counts;
    }
    auto& group_counts = s.per_group_class_tasks[w->group];
    if (group_counts.size() < counts.size()) {
      group_counts.resize(counts.size(), 0);
    }
    for (std::size_t c = 0; c < counts.size(); ++c) {
      group_counts[c] += counts[c];
    }
  }
  // Workers grow their class_counts lazily (resize on first execution of a
  // class), so the per-group vectors come out ragged: a group whose
  // workers never ran the newest classes — interned, say, by a recluster
  // that grew the class table mid-run — would be shorter than its
  // siblings. Pad every group to the longest so readers can index any
  // group by any recorded class id (resize-on-read; see the field's doc).
  std::size_t max_classes = 0;
  for (const auto& g : s.per_group_class_tasks) {
    max_classes = std::max(max_classes, g.size());
  }
  for (auto& g : s.per_group_class_tasks) {
    g.resize(max_classes, 0);
  }
  s.reclusters = reclusters_.load(std::memory_order_relaxed);
  s.speed_swaps = speed_swaps_.load(std::memory_order_relaxed);
  s.failed_acquire_rounds = failed_rounds_.load(std::memory_order_relaxed);
  s.dnc_fallback_active = kernel_->dnc_active();
  return s;
}

double RuntimeStats::fraction_on_group(core::TaskClassId cls,
                                       core::GroupIndex group) const {
  std::uint64_t total = 0;
  std::uint64_t on_group = 0;
  for (std::size_t g = 0; g < per_group_class_tasks.size(); ++g) {
    const auto& counts = per_group_class_tasks[g];
    if (cls < counts.size()) {
      total += counts[cls];
      if (g == group) on_group = counts[cls];
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(on_group) /
                          static_cast<double>(total);
}

std::vector<core::TaskClassInfo> TaskRuntime::class_history() const {
  return registry_.snapshot();
}

void TaskRuntime::preload_history(
    const std::vector<core::TaskClassInfo>& classes) {
  for (const auto& cls : classes) {
    const auto id = registry_.intern(cls.name);
    registry_.restore(id, cls.completed, cls.mean_workload);
  }
}

bool TaskRuntime::on_worker_thread() const { return t_ctx.runtime == this; }

void TaskGroup::spawn(core::TaskClassId cls, std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  rt_.spawn(cls, [this, fn = std::move(fn)] {
    // The decrement must happen even when fn throws (the runtime captures
    // the exception for wait_all; the group must still drain).
    struct Finisher {
      TaskGroup* group;
      ~Finisher() {
        if (group->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard lock(group->mu_);
          group->cv_.notify_all();
        }
      }
    } finisher{this};
    fn();
  });
}

void TaskGroup::wait() {
  WATS_CHECK_MSG(!rt_.on_worker_thread(),
                 "TaskGroup::wait must not run on a worker thread");
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

core::GroupIndex TaskRuntime::cluster_of(core::TaskClassId cls) const {
  return kernel_->cluster_of(cls);
}

}  // namespace wats::runtime
