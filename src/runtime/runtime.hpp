// The real-thread WATS task runtime — the paper's modified-MIT-Cilk
// scheduler rebuilt as a standalone C++ library.
//
// One worker thread per emulated core; each worker owns one Chase–Lev
// deque per task-cluster lane (Fig. 5). All scheduling DECISIONS —
// placement, Algorithm 3's preference order, steal-victim and snatch
// selection, the recluster trigger, the §IV-E divide-and-conquer fallback
// — come from the shared policy kernel in src/core/policy; this runtime
// only executes them with real threads: deques, mutexes, wall-clock
// measurement, duty-cycle speed emulation. The same kernel drives the
// virtual-time simulator, so every policy here is also simulatable.
//
// Spawns are parent-first (§III-C: WATS spawns parent-first so per-task
// workload measurement is not polluted by children). A helper thread
// periodically folds completed-task statistics into task clusters
// (Algorithms 1+2), exactly like the paper's 1 ms helper; the resulting
// class->cluster map is published RCU-style inside the kernel, so the
// spawn hot path never takes a lock to read it.
//
// Core-speed asymmetry is emulated by duty-cycle throttling: a worker with
// relative speed s sleeps (1/s - 1) x the measured execution time after
// each task, so wall-clock behaves like a core running at s x F1. On real
// asymmetric silicon the throttle is disabled and workers are pinned
// instead (see RuntimeConfig::emulate_speeds).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "core/governor.hpp"
#include "core/partition_plan.hpp"
#include "core/policy/policy.hpp"
#include "core/repair.hpp"
#include "core/task_class.hpp"
#include "core/topology.hpp"
#include "obs/clock.hpp"
#include "obs/decision.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "obs/trace_event.hpp"
#include "runtime/parking_lot.hpp"
#include "runtime/wsdeque.hpp"
#include "util/rng.hpp"

namespace wats::runtime {

enum class Policy {
  kCilk,     ///< child-first spawning, random continuation stealing
  kPft,      ///< parent-first + plain random stealing (baseline)
  kWats,     ///< history-based allocation + preference stealing
  kWatsNp,   ///< WATS without cross-cluster stealing (ablation)
  kWatsTs,   ///< WATS + workload-aware snatch-as-speed-swap (§IV-D)
  /// RTS emulated the way the paper implemented it — by swapping threads
  /// between a fast and a slow core. Under duty-cycle emulation that is a
  /// speed-scale swap: an idle fast worker that finds no work exchanges
  /// its emulated speed with a busy slower worker, so the running task
  /// continues at the fast rate while the thief inherits the slow slot.
  kRtsSwap,
};

/// Runtime tracing knobs (src/obs). Off by default: the hot path then
/// pays one null-pointer check per instrumentation site, and nothing at
/// all when the tree was configured with -DWATS_TRACE=OFF.
struct TraceOptions {
  bool enabled = false;
  /// Per-worker ring capacity in events (rounded up to a power of two).
  /// When a ring wraps, the oldest events are overwritten — size it to
  /// the run when exact per-class placement accounting matters.
  std::size_t ring_capacity = 1u << 12;
  /// Also collect structured policy-decision records (placement /
  /// acquisition / snatch scans; see obs/decision.hpp). Costlier than the
  /// rings: every decision takes one mutex on the collecting sink.
  bool record_decisions = false;
};

struct RuntimeConfig {
  core::AmcTopology topology = core::amc_fig5_example();
  Policy policy = Policy::kWats;
  /// Duty-cycle throttling to emulate the topology's core speeds on
  /// symmetric hardware. Disable on genuinely asymmetric machines.
  bool emulate_speeds = true;
  /// Pin worker i to OS CPU i (Linux). On real asymmetric silicon, order
  /// the topology so that group 0's cores are the OS's fast CPUs. No-op
  /// when the host has fewer CPUs than workers or pinning fails.
  bool pin_threads = false;
  /// Helper-thread recluster period (the paper uses 1 ms).
  std::chrono::microseconds helper_period{1000};
  /// PartitionPlan publication gate for the WATS family (see
  /// core/partition_plan.hpp). The default skips only assignment-
  /// identical candidates — behavior-neutral, since readers resolve to
  /// the same c-group either way. Set plan_gate.always_republish = true
  /// for the pre-gate behavior (every attempt publishes — the honest
  /// "before" column of an A/B churn comparison), or bound
  /// max_classes_moved / min_rel_improvement to add churn hysteresis
  /// under live history drift.
  core::PlanGate plan_gate;
  /// Incremental PartitionPlan repair for the helper thread's recluster
  /// ticks (see core/repair.hpp). Bit-exact with a full rebuild, so it
  /// defaults on; disable to measure full-rebuild latency baselines.
  core::PlanRepairConfig plan_repair;
  /// Automatic fallback to plain stealing for divide-and-conquer programs
  /// (§IV-E): enabled when the observed self-recursive spawn fraction
  /// exceeds dnc_threshold after dnc_min_spawns spawns.
  bool dnc_fallback = true;
  double dnc_threshold = 0.5;
  std::uint64_t dnc_min_spawns = 64;
  std::uint64_t seed = 0x5EEDu;
  /// A/B benchmarking escape hatch: when nonzero, idle workers use the
  /// PRE-eventcount protocol (a plain timed poll at this period, spawns
  /// notify without sleeper accounting), which exhibits the lost-wakeup
  /// dispatch-latency floor the parking lot removes. bench_latency sets
  /// this to 200 µs for its "before" column; leave at zero otherwise.
  std::chrono::microseconds legacy_idle_poll{0};
  /// A/B benchmarking escape hatch for the completion-history path: when
  /// true, workers fold completed-task statistics straight into the shared
  /// registry under its mutex (the PRE-shard design — one lock acquisition
  /// per completion, contention grows with core count). Default false:
  /// each worker accumulates into its private core::HistoryShard with
  /// wait-free stores and the helper thread folds all shards into the
  /// registry at each recluster tick. bench_micro's History benchmarks
  /// compare the two; leave at false otherwise.
  bool locked_history = false;
  /// Change-point history decay (core/task_class.hpp): when enabled, the
  /// registry runs a per-class CUSUM — fed per completion on the
  /// locked_history path, per folded delta on the sharded path — and
  /// decays a class's history when its workload drifts. Resets surface as
  /// the `history_resets` metric and kHistoryReset helper-ring events.
  core::ChangePointConfig change_point;
  /// DVFS governor (core/governor.hpp): the helper thread re-evaluates
  /// the policy each tick and maps published SpeedPlans onto the
  /// duty-cycle throttle (a worker's speed_scale becomes f_g / F1). The
  /// kStatic default constructs no governor at all — the pre-governor
  /// runtime, bit for bit. Note kCmpiAware degrades to base frequencies
  /// here: the real-thread runtime collects no CMPI signal.
  core::GovernorConfig governor;
  TraceOptions trace;
};

struct RuntimeStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t cross_cluster_acquires = 0;
  std::uint64_t reclusters = 0;  ///< plans PUBLISHED by the helper loop
  /// Recluster attempts the plan gate declined to publish (identical or
  /// churn-suppressed candidates). reclusters + plans_skipped = attempts
  /// that saw new completions.
  std::uint64_t plans_skipped = 0;
  /// Epoch of the currently published PartitionPlan (0 = the initial
  /// all-unknown plan; +1 per publish).
  std::uint64_t plan_epoch = 0;
  /// kRtsSwap / kWatsTs thread swaps plus per-group frequency changes
  /// applied by an active DVFS governor.
  std::uint64_t speed_swaps = 0;
  /// Governor policy evaluations and the epoch of the current SpeedPlan
  /// (both zero when RuntimeConfig::governor is kStatic).
  std::uint64_t governor_ticks = 0;
  std::uint64_t speed_plan_epoch = 0;
  std::uint64_t failed_acquire_rounds = 0;  ///< idle loops finding nothing
  bool dnc_fallback_active = false;
  std::vector<std::uint64_t> per_worker_tasks;
  /// per_group_class_tasks[g][cls] = tasks of class `cls` executed by
  /// workers of c-group g — the direct measure of placement quality
  /// (a warmed-up WATS runs heavy classes mostly on the fast group).
  ///
  /// Every group's vector has the same length: the maximum class id any
  /// worker has recorded, plus one. Classes interned after the snapshot
  /// (or recorded by a recluster that grew the class table mid-run) may
  /// therefore be absent from ALL groups rather than from some — readers
  /// must treat an out-of-range id as "zero executions", which
  /// fraction_on_group does.
  std::vector<std::vector<std::uint64_t>> per_group_class_tasks;

  /// Fraction of class `cls` executions that ran on c-group `group`
  /// (0 when the class never ran). Tolerates ids beyond the snapshot's
  /// class table (see per_group_class_tasks).
  double fraction_on_group(core::TaskClassId cls,
                           core::GroupIndex group) const;
};

class TaskRuntime {
 public:
  explicit TaskRuntime(RuntimeConfig config);
  ~TaskRuntime();

  TaskRuntime(const TaskRuntime&) = delete;
  TaskRuntime& operator=(const TaskRuntime&) = delete;

  /// Intern a task class ("function name"). Cheap; idempotent.
  core::TaskClassId register_class(std::string_view name);

  /// Spawn a classified task. Callable from the external thread or from
  /// inside a running task (parent-first: the spawner keeps running).
  void spawn(core::TaskClassId cls, std::function<void()> fn);

  /// Spawn an unclassified task (goes to the fastest c-group, §III-A).
  void spawn(std::function<void()> fn);

  /// Block until every spawned task (including nested spawns) completed.
  /// If any task threw, the FIRST captured exception is rethrown here
  /// (subsequent ones are dropped); the runtime itself stays usable.
  void wait_all();

  /// wait_all with a deadline: returns false if tasks were still pending
  /// when the timeout expired (no exception is consumed in that case).
  bool wait_all_for(std::chrono::milliseconds timeout);

  /// Snapshot of the scheduler statistics. Safe to call while workers are
  /// running: counters are atomics and per-class tallies are copied under
  /// their per-worker lock (the totals are a consistent-enough racy
  /// snapshot, not a quiescent one).
  RuntimeStats stats() const;

  /// The task-class history collected so far (Algorithm 2 state).
  std::vector<core::TaskClassInfo> class_history() const;

  /// Warm start: merge persisted statistics (see core/history_io.hpp) so
  /// the first recluster already places known classes well. Classes are
  /// interned as needed; the helper thread picks the change up on its
  /// next tick.
  void preload_history(const std::vector<core::TaskClassInfo>& classes);

  /// Current class -> cluster map (rebuilt by the helper thread).
  core::GroupIndex cluster_of(core::TaskClassId cls) const;

  const core::AmcTopology& topology() const { return config_.topology; }
  const RuntimeConfig& config() const { return config_; }

  /// The decision kernel driving this runtime (diagnostics/tests).
  const core::policy::PolicyKernel& kernel() const { return *kernel_; }

  /// True when called from one of this runtime's worker threads.
  bool on_worker_thread() const;

  // ---- observability (src/obs) ----

  /// True when tracing was both compiled in (WATS_TRACE=ON) and enabled
  /// via RuntimeConfig::trace.
  bool tracing_enabled() const;

  /// The tick->ns calibration measured at construction (identity when
  /// tracing is disabled).
  const obs::TscCalibration& trace_calibration() const { return calib_; }

  /// Merged snapshot of every worker ring plus the helper ring, sorted by
  /// timestamp. Callable while workers run (racy slots are dropped, see
  /// obs::EventRing::snapshot); call after wait_all() for a complete view.
  std::vector<obs::TraceEvent> trace_events() const;

  /// Structured policy-decision records (empty unless
  /// RuntimeConfig::trace.record_decisions was set).
  std::vector<obs::DecisionRecord> decision_records() const;

  /// Chrome/Perfetto trace-event JSON from the rings (and decision
  /// records, when collected). Empty string when tracing is disabled.
  std::string perfetto_trace_json() const;

  /// Latency histograms and counters recorded alongside the rings.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Text report: scheduler counters, latency histograms, per-class
  /// placement (fraction on the class's Algorithm-1 cluster), ring
  /// utilization, and — when `wall_seconds` > 0 — the achieved-makespan /
  /// lower-bound ratio against Lemma 1's TL from the collected history.
  std::string observability_summary(double wall_seconds = 0.0) const;

  /// The same counters/gauges/histograms as observability_summary, as a
  /// wats_metrics/1 JSON document (obs::render_json) for machine readers.
  std::string observability_summary_json(double wall_seconds = 0.0) const;

 private:
  /// Mirrors scheduler counters, ring loss, placement accuracy and the
  /// Lemma-1 bound into metrics_ (shared by the text and JSON summaries).
  void mirror_metrics(double wall_seconds) const;

  /// Sentinel spawner index for spawns from non-worker threads.
  static constexpr std::size_t kExternalSpawner =
      static_cast<std::size_t>(-1);

  struct TaskNode {
    std::function<void()> fn;
    core::TaskClassId cls = core::kNoTaskClass;
    /// Worker that spawned the task (kExternalSpawner otherwise); lets the
    /// Cilk central queue charge no steal when the spawner takes it back.
    std::size_t spawner = kExternalSpawner;
    /// tsc_now() at spawn (0 when tracing is off) — the dispatch-to-start
    /// latency baseline for kTaskBegin.
    std::uint64_t enqueue_tsc = 0;
  };

  /// Per-worker state, cache-line-aligned so one worker's hot writes do
  /// not false-share with its neighbours' (workers are individually
  /// heap-allocated; the alignas also separates the internal groups).
  struct alignas(64) Worker {
    std::vector<std::unique_ptr<WorkStealingDeque<TaskNode>>> pools;
    core::GroupIndex group = 0;
    util::Xoshiro256 rng{0};
    std::thread thread;

    /// Execution state read by snatch-victim scans on other threads;
    /// kept on its own cache line away from the owner's counters.
    alignas(64) std::atomic<double> speed_scale{1.0};  // Fi / F1; swapped
    std::atomic<bool> executing{false};
    std::atomic<core::TaskClassId> running_cls{core::kNoTaskClass};
    std::atomic<std::int64_t> run_started_us{0};

    /// Piecewise duty-cycle throttle accounting (guarded by swap_mu_;
    /// only written while `executing` under a snatch-capable policy): the
    /// throttle debt accumulated by the RUNNING task's finished
    /// constant-speed segments, and the wall-clock start of the current
    /// segment. A speed swap folds the victim's open segment in at the
    /// speed it actually ran at, so a mid-task swap never re-prices the
    /// part of the execution that already happened.
    double throttle_debt_us = 0.0;
    std::int64_t segment_start_us = 0;

    /// Statistics, owner-written / stats()-read.
    alignas(64) std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> cross_cluster{0};
    mutable std::mutex stats_mu;              // guards class_counts
    std::vector<std::uint64_t> class_counts;  // indexed by class id

    /// Event ring (null when tracing is off) and the owner-only counter
    /// of consecutive empty acquire rounds, flushed as ONE coalesced
    /// kIdleSpin event when work next arrives (an idle worker polling at
    /// 5 kHz must not flood its ring).
    std::unique_ptr<obs::EventRing> ring;
    std::uint64_t idle_streak = 0;

    /// Private completion-history shard (sharded path, the default): the
    /// worker records each classified completion here with wait-free
    /// stores; the helper thread folds it into the shared registry at
    /// each recluster tick. Unused when RuntimeConfig::locked_history.
    core::HistoryShard shard;
  };

  /// One central-queue lane per task cluster. Serves double duty: the
  /// shared FIFO of the Cilk-family policies, and the side queue for
  /// spawns from non-worker threads (which cannot touch the single-owner
  /// deques) under the pool-based policies.
  struct alignas(64) CentralLane {
    std::mutex mu;
    std::deque<TaskNode*> q;           // guarded by mu
    std::atomic<std::size_t> size{0};  // racy mirror for the machine view
  };

  class View;  // MachineView over this runtime (defined in runtime.cpp)

  void worker_loop(std::size_t index);
  void helper_loop();
  bool try_speed_swap(std::size_t thief);
  /// One governor evaluation (helper thread only): tick the policy and,
  /// on publish, map the new per-group frequencies onto worker
  /// speed_scales under swap_mu_, folding each running worker's open
  /// throttle segment at the speed it actually ran (the try_speed_swap
  /// idiom — never re-price past execution). No-op without a governor.
  void governor_tick();
  /// One full kernel-driven acquire scan. When `saw_work` is non-null it
  /// is set to true iff the kernel proposed at least one source this scan
  /// (so a nullptr return with *saw_work == true means every proposal was
  /// lost to a race, not that the machine is out of reachable work) —
  /// the pre-park re-validation uses this to spin instead of sleeping on
  /// transiently contended queues.
  TaskNode* try_acquire(std::size_t index, bool* saw_work = nullptr);
  void execute(std::size_t index, TaskNode* node);
  void enqueue(TaskNode* node);
  /// Drain to outstanding_ == 0 without consuming the captured exception
  /// (the destructor's wait — rethrowing there would std::terminate).
  void drain_quiet();
  /// Fold every worker's history shard into the shared registry (no-op
  /// under locked_history). Called by the helper thread before each
  /// recluster tick, and on demand by class_history() so external readers
  /// see up-to-date statistics. Concurrent folders are serialized behind
  /// fold_mu_; `from_helper` gates the kHistoryMerge ring event (only the
  /// helper may write to its single-producer ring).
  void fold_history_shards(bool from_helper) const;

  RuntimeConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<CentralLane>> central_;

  /// mutable: const observers (class_history, stats paths) fold pending
  /// shard deltas in before reading — logically read-only.
  mutable core::TaskClassRegistry registry_;
  /// Folder state for fold_history_shards: one cursor per worker shard
  /// (what has already been folded), all guarded by fold_mu_.
  mutable std::mutex fold_mu_;
  mutable std::vector<core::HistoryShard::FoldCursor> fold_cursors_;
  std::unique_ptr<core::policy::PolicyKernel> kernel_;
  /// DVFS governor (null when RuntimeConfig::governor is kStatic — the
  /// hot paths then carry zero governor overhead).
  std::unique_ptr<core::Governor> governor_;

  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> reclusters_{0};
  std::atomic<std::uint64_t> plans_skipped_{0};
  std::atomic<std::uint64_t> speed_swaps_{0};
  std::atomic<std::uint64_t> failed_rounds_{0};
  std::mutex swap_mu_;  // serializes speed-scale swaps

  // Observability (see runtime_obs.cpp for the exporters). The helper
  // thread gets its own ring (worker id = total_cores) for recluster
  // events; the calibration is measured once in the constructor.
  obs::TscCalibration calib_;
  std::unique_ptr<obs::EventRing> helper_ring_;
  std::unique_ptr<obs::CollectingDecisionSink> decision_sink_;
  mutable obs::MetricsRegistry metrics_;

  // First exception thrown by any task, rethrown from wait_all().
  std::mutex exception_mu_;
  std::exception_ptr first_exception_;

  // Sleep/wake protocol: idle workers park in the lot's per-c-group
  // sleeper registries; enqueue() bumps the lot's epoch and wakes ONE
  // sleeper following the kernel's wake-preference order for the lane the
  // task landed on (wake_orders_[lane], precomputed at construction).
  ParkingLot lot_;
  std::vector<std::vector<std::size_t>> wake_orders_;

  // Hot-path wakeup accounting (always on — one relaxed add per event).
  obs::Counter* wakeups_issued_ = nullptr;
  obs::Counter* spurious_wakeups_ = nullptr;
  obs::Counter* throttle_sleep_us_ = nullptr;

  // Sharded-history accounting (always on): shards folded with pending
  // completions, classes whose first completion arrived via a fold, and
  // the latency of each non-empty fold pass.
  obs::Counter* shard_flushes_ = nullptr;
  obs::Counter* classes_discovered_ = nullptr;
  obs::Counter* history_resets_counter_ = nullptr;
  obs::Histogram* history_merge_ns_ = nullptr;

  // Plan-pipeline accounting (always on; helper-thread writes only):
  // publishes and gate skips, plus the wall latency of each recluster
  // attempt that saw new completions (build + gate + publish).
  obs::Counter* plans_published_ = nullptr;
  obs::Counter* plans_skipped_counter_ = nullptr;
  obs::Histogram* partition_latency_ns_ = nullptr;
  // Incremental repair accounting (see core/repair.hpp): candidates built
  // by the repair path, the full rebuilds its drift bound forced, and the
  // wall latency of repair-path attempts alone.
  obs::Counter* plan_repairs_ = nullptr;
  obs::Counter* repair_fallbacks_ = nullptr;
  obs::Histogram* repair_latency_ns_ = nullptr;
  // Governor accounting (helper-thread writes only).
  obs::Counter* governor_ticks_counter_ = nullptr;

  // wait_all / wait_all_for completion signal.
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  // Helper-thread pacing: parked on helper_cv_ for helper_period per
  // tick, woken immediately by the destructor via stopping_ so shutdown
  // never blocks a full period.
  std::mutex helper_mu_;
  std::condition_variable helper_cv_;

  std::thread helper_;
};

/// A structured join scope: tasks spawned through a TaskGroup can be
/// waited on independently of everything else in the runtime (the
/// counterpart of a Cilk `sync` for one spawn set). The destructor waits.
///
/// wait() must be called from a non-worker thread: blocking a worker
/// inside a task would idle a core (and can deadlock a small pool).
class TaskGroup {
 public:
  explicit TaskGroup(TaskRuntime& rt) : rt_(rt) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void spawn(core::TaskClassId cls, std::function<void()> fn);
  void spawn(std::function<void()> fn) {
    spawn(core::kNoTaskClass, std::move(fn));
  }

  /// Block until every task spawned through this group completed.
  void wait();

  std::uint64_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  TaskRuntime& rt_;
  std::atomic<std::uint64_t> pending_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace wats::runtime
