// Observability endpoints of TaskRuntime: merged ring snapshots, the
// Perfetto exporter and the text summary. Split out of runtime.cpp so the
// scheduling mechanics stay readable; everything here is cold path
// (called after — or at worst during — a run, never per task).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "core/lower_bound.hpp"
#include "obs/export.hpp"
#include "runtime/runtime.hpp"

namespace wats::runtime {

bool TaskRuntime::tracing_enabled() const {
  return obs::kTraceCompiledIn && config_.trace.enabled;
}

std::vector<obs::TraceEvent> TaskRuntime::trace_events() const {
  std::vector<obs::TraceEvent> events;
  if (!tracing_enabled()) return events;
  for (const auto& w : workers_) {
    if (!w->ring) continue;
    const auto part = w->ring->snapshot();
    events.insert(events.end(), part.begin(), part.end());
  }
  if (helper_ring_) {
    const auto part = helper_ring_->snapshot();
    events.insert(events.end(), part.begin(), part.end());
  }
  std::sort(events.begin(), events.end(),
            [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
              return a.tsc < b.tsc;
            });
  return events;
}

std::vector<obs::DecisionRecord> TaskRuntime::decision_records() const {
  return decision_sink_ ? decision_sink_->records()
                        : std::vector<obs::DecisionRecord>{};
}

std::string TaskRuntime::perfetto_trace_json() const {
  if (!tracing_enabled()) return {};
  std::vector<std::string> tracks;
  tracks.reserve(workers_.size() + 1);
  char label[64];
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const core::GroupIndex g = workers_[i]->group;
    // Initial speed: kRtsSwap / WATS-TS swap scales mid-run, the label
    // keeps the topology's assignment.
    std::snprintf(label, sizeof(label), "worker %zu (group %zu, %.2fx)", i,
                  g, config_.topology.relative_speed(g));
    tracks.emplace_back(label);
  }
  tracks.emplace_back("helper");
  const auto classes = class_history();
  const auto class_name = [classes](std::uint32_t cls) -> std::string {
    if (cls < classes.size() && !classes[cls].name.empty()) {
      return classes[cls].name;
    }
    return "class " + std::to_string(cls);
  };
  // Per-ring overwrite loss → events_dropped markers in the export, so a
  // lossy trace is diagnosable from the file alone (wats_trace summarize
  // warns on them).
  std::vector<obs::RingLoss> losses;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i]->ring) continue;
    losses.push_back({static_cast<std::uint32_t>(i),
                      workers_[i]->ring->emitted(),
                      workers_[i]->ring->dropped()});
  }
  if (helper_ring_) {
    losses.push_back({static_cast<std::uint32_t>(workers_.size()),
                      helper_ring_->emitted(), helper_ring_->dropped()});
  }
  return obs::perfetto_from_events(trace_events(), calib_, tracks,
                                   class_name, decision_records(), losses);
}

void TaskRuntime::mirror_metrics(double wall_seconds) const {
  const RuntimeStats s = stats();

  // Mirror the scheduler counters into the registry so one renderer
  // handles both them and the latency histograms.
  metrics_.counter("tasks_executed").set(s.tasks_executed);
  metrics_.counter("steals").set(s.steals);
  metrics_.counter("cross_cluster_acquires").set(s.cross_cluster_acquires);
  metrics_.counter("reclusters").set(s.reclusters);
  metrics_.counter("plans_published").set(s.reclusters);
  metrics_.counter("plans_skipped").set(s.plans_skipped);
  metrics_.set_gauge("plan_epoch", static_cast<double>(s.plan_epoch));
  if (const core::PartitionPlan* plan = kernel_->current_plan()) {
    if (plan->epoch > 0) {
      metrics_.set_gauge("plan_ratio_to_tl", plan->ratio_to_tl);
    }
  }
  metrics_.counter("speed_swaps").set(s.speed_swaps);
  metrics_.counter("governor_ticks").set(s.governor_ticks);
  metrics_.counter("failed_acquire_rounds").set(s.failed_acquire_rounds);
  if (tracing_enabled()) {
    std::uint64_t emitted = 0;
    std::uint64_t dropped = 0;
    for (const auto& w : workers_) {
      if (!w->ring) continue;
      emitted += w->ring->emitted();
      dropped += w->ring->dropped();
    }
    if (helper_ring_) {
      emitted += helper_ring_->emitted();
      dropped += helper_ring_->dropped();
    }
    metrics_.counter("trace_events_emitted").set(emitted);
    metrics_.counter("trace_events_dropped").set(dropped);
    // The short alias the loss satellite standardizes on; kept alongside
    // the legacy trace_events_dropped name so existing readers still work.
    metrics_.counter("events_dropped").set(dropped);
  }

  // Placement accuracy: the fraction of classified executions that ran on
  // the group Algorithm 1 currently assigns their class to, weighted by
  // how often each class ran.
  const auto classes = class_history();
  double on_assigned = 0.0;
  double classified = 0.0;
  for (const auto& cls : classes) {
    std::uint64_t runs = 0;
    for (const auto& group_counts : s.per_group_class_tasks) {
      if (cls.id < group_counts.size()) runs += group_counts[cls.id];
    }
    if (runs == 0) continue;
    const double frac = s.fraction_on_group(cls.id, kernel_->cluster_of(cls.id));
    on_assigned += frac * static_cast<double>(runs);
    classified += static_cast<double>(runs);
  }
  if (classified > 0.0) {
    metrics_.set_gauge("placement_accuracy", on_assigned / classified);
  }

  // Lemma 1: TL from the collected history. mean_workload is in
  // F1-normalized microseconds (Eq. 2), so scaling the bound back by F1
  // yields microseconds on this machine.
  if (wall_seconds > 0.0 && !classes.empty()) {
    double total_workload_us = 0.0;
    for (const auto& cls : classes) total_workload_us += cls.total_workload();
    if (total_workload_us > 0.0) {
      const double tl_s = core::makespan_lower_bound(total_workload_us,
                                                     config_.topology) *
                          config_.topology.fastest_frequency() * 1e-6;
      metrics_.set_gauge("makespan_lower_bound_s", tl_s);
      metrics_.set_gauge("lower_bound_ratio",
                         tl_s > 0.0 ? wall_seconds / tl_s : 0.0);
    }
  }
}

std::string TaskRuntime::observability_summary_json(
    double wall_seconds) const {
  mirror_metrics(wall_seconds);
  return obs::render_json(metrics_.snapshot());
}

std::string TaskRuntime::observability_summary(double wall_seconds) const {
  mirror_metrics(wall_seconds);

  const RuntimeStats s = stats();
  const auto classes = class_history();
  double classified = 0.0;
  for (const auto& cls : classes) {
    std::uint64_t runs = 0;
    for (const auto& group_counts : s.per_group_class_tasks) {
      if (cls.id < group_counts.size()) runs += group_counts[cls.id];
    }
    classified += static_cast<double>(runs);
  }

  std::string out = obs::render_text(metrics_.snapshot());

  // Per-class placement: where each class actually ran vs its cluster.
  if (classified > 0.0) {
    out += "per-class placement (fraction on assigned cluster):\n";
    char line[160];
    for (const auto& cls : classes) {
      std::uint64_t runs = 0;
      for (const auto& group_counts : s.per_group_class_tasks) {
        if (cls.id < group_counts.size()) runs += group_counts[cls.id];
      }
      if (runs == 0) continue;
      const core::GroupIndex assigned = kernel_->cluster_of(cls.id);
      std::snprintf(line, sizeof(line),
                    "  %-24s cluster %zu  on-cluster %.3f  runs %" PRIu64
                    "\n",
                    cls.name.c_str(), assigned,
                    s.fraction_on_group(cls.id, assigned), runs);
      out += line;
    }
  }
  return out;
}

}  // namespace wats::runtime
