// Eventcount-style sleeper protocol for the real-thread runtime.
//
// The old idle loop hid a family of lost-wakeup bugs behind a global
// 200 µs `wait_for` poll: enqueue() notified a condition variable with no
// sleeper accounting, so a task posted between a worker's failed acquire
// scan and its wait was simply missed until the timeout fired — dispatch
// latency floored at the poll period and every spawn paid a
// thundering-herd notify_all. The ParkingLot replaces that with a
// per-c-group sleeper registry ("cell") and an explicit handshake:
//
//   sleeper                                waker (enqueue)
//   -------                                ---------------
//   1. acquire scan fails                  1. push task
//   2. prepare_park(): lock own cell,      2. unpark_one(order): for each
//      waiters++, unlock; ticket =            cell in the policy's wake-
//      cell epoch                             preference order: lock it,
//   3. RE-SCAN for work                       epoch++; if it has an
//      found  -> cancel_park(), run it        unclaimed sleeper
//      none   -> park(ticket): block          (waiters > signals) then
//      until signalled or the cell             signals++, notify ONE,
//      epoch moves past ticket                 stop — else next cell
//
// Two bugs this shape closes:
//
// * Lost wakeup. The sleeper registers (waiters++) BEFORE its re-scan,
//   and the waker pushes BEFORE it walks the cells, with every step under
//   the cell mutex. For any cell the waker visits, the mutex gives a
//   total order against that cell's sleepers: if the waker's visit came
//   first, the sleeper's later re-scan happens-after the push and finds
//   the task (or try_acquire reports `saw_work` and the park is
//   cancelled); if the sleeper registered first, the waker sees
//   waiters > signals and wakes it. If the waker instead stopped early
//   because an earlier cell in the order had a sleeper, that sleeper was
//   woken and its own re-scan covers the task. Either the work is seen
//   or a worker is woken — never neither.
//
// * Absorbed notify. Waking is accounted on the WAKER side: unpark_one
//   claims a sleeper slot (signals++) under the lock, so a burst of N
//   spawns wakes N DISTINCT sleepers — it never keeps notifying a cell
//   whose sleepers were already claimed but have not yet been scheduled
//   by the OS (those notifies would be silently absorbed and other
//   groups' sleepers would be left asleep).
//
// The epoch is per cell, not global: it only advances when a waker
// actually visited that cell, so a parked worker whose lane sees no
// traffic is not spuriously churned by unrelated spawns (WATS-NP wakes
// only the task's own group — its workers must not busy-wake on other
// lanes' activity). A stale ticket makes park() refuse to block, closing
// the window between the re-scan and the wait.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace wats::runtime {

/// One PAUSE/YIELD hint to the core's pipeline — the body of the bounded
/// exponential spin a worker runs before it commits to parking.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class ParkingLot {
 public:
  /// Returned by unpark_one when no group had a sleeper to wake.
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  explicit ParkingLot(std::size_t group_count);

  ParkingLot(const ParkingLot&) = delete;
  ParkingLot& operator=(const ParkingLot&) = delete;

  // ---- sleeper side (the worker threads) ----

  /// Announce intent to sleep in `group`'s registry and capture the cell's
  /// epoch ticket. MUST be followed by a full re-scan for work and then
  /// exactly one of cancel_park() (work found / shutting down) or park()/
  /// park_for() with the returned ticket.
  std::uint64_t prepare_park(std::size_t group);

  /// Withdraw a prepare_park() announcement without sleeping.
  void cancel_park(std::size_t group);

  /// Block until a waker claims this sleeper (signal) or the cell's epoch
  /// moves past `ticket`. Consumes the announcement.
  void park(std::size_t group, std::uint64_t ticket);

  /// park() with a deadline: returns true when woken, false on timeout.
  /// Consumes the announcement either way. Used by snatch-capable
  /// policies, which must keep scanning for busy slower victims even when
  /// no queue ever fills.
  bool park_for(std::size_t group, std::uint64_t ticket,
                std::chrono::microseconds timeout);

  // ---- waker side (enqueue / shutdown) ----

  /// Wake ONE sleeper, visiting the per-group registries in `order` (the
  /// policy's wake preference for the lane the new task landed on): bump
  /// each visited cell's epoch, claim and notify the first unclaimed
  /// sleeper found. Returns the group whose sleeper was woken, or kNone
  /// when every visited registry was empty (all candidate workers awake —
  /// the task will be found by their scans).
  std::size_t unpark_one(const std::vector<std::size_t>& order);

  /// Wake every sleeper in every group (shutdown).
  void unpark_all();

  // ---- legacy polling emulation (benchmark escape hatch) ----

  /// The PRE-eventcount idle protocol, kept so bench_latency can measure
  /// the lost-wakeup latency floor this class removes: a plain timed wait
  /// with no sleeper accounting and no epoch recheck...
  void legacy_poll(std::size_t group, std::chrono::microseconds timeout);

  /// ...paired with a plain notify_all that a not-yet-waiting poller
  /// misses — the original bug, reproduced on purpose.
  void legacy_notify_all();

  // ---- introspection (tests / diagnostics) ----

  /// Wakes routed through `group`'s registry so far.
  std::uint64_t epoch(std::size_t group) const;
  /// Workers currently announced (parked or about to park) in `group`.
  std::uint64_t sleepers(std::size_t group) const;
  std::size_t group_count() const { return cells_.size(); }

 private:
  /// Per-c-group sleeper registry. Cache-line aligned and individually
  /// heap-allocated so one group's wake traffic does not false-share with
  /// its neighbours'. All counters are guarded by `mu` — parking is by
  /// definition off the hot path, and the mutex is what makes the
  /// waker/sleeper handshake a total order per cell.
  struct alignas(64) Cell {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::uint64_t epoch = 0;    ///< bumped on every waker visit
    std::uint64_t waiters = 0;  ///< announced sleepers (prepare_park)
    std::uint64_t signals = 0;  ///< claimed-but-not-yet-woken sleepers
  };

  std::vector<std::unique_ptr<Cell>> cells_;
};

}  // namespace wats::runtime
