// parallel_for: the classic blocked-range convenience on top of
// TaskRuntime, with an explicit task class so WATS can learn the loop
// body's workload like any other function.
//
//   runtime::parallel_for(rt, "hash_blocks", 0, blocks.size(),
//                         [&](std::size_t i) { hash(blocks[i]); });
//
// The range is split into chunks of `grain` iterations; each chunk is one
// task. Blocks the calling (non-worker) thread until the loop completes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "runtime/runtime.hpp"
#include "util/check.hpp"

namespace wats::runtime {

struct ParallelForOptions {
  /// Iterations per task; 0 = pick automatically (~4 tasks per worker).
  std::size_t grain = 0;
};

template <typename Body>
void parallel_for(TaskRuntime& rt, std::string_view class_name,
                  std::size_t begin, std::size_t end, Body body,
                  ParallelForOptions options = {}) {
  WATS_CHECK(begin <= end);
  WATS_CHECK_MSG(!rt.on_worker_thread(),
                 "parallel_for blocks; call it from a non-worker thread");
  if (begin == end) return;

  const std::size_t n = end - begin;
  std::size_t grain = options.grain;
  if (grain == 0) {
    const std::size_t target_tasks = 4 * rt.topology().total_cores();
    grain = std::max<std::size_t>(1, n / target_tasks);
  }

  const auto cls = rt.register_class(std::string(class_name));
  TaskGroup group(rt);
  for (std::size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += grain) {
    const std::size_t chunk_end = std::min(end, chunk_begin + grain);
    group.spawn(cls, [body, chunk_begin, chunk_end] {
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
        body(i);
      }
    });
  }
  group.wait();
}

/// Map-reduce convenience: applies `map` to every index and combines the
/// per-chunk results with `reduce` (which must be associative and
/// commutative; chunks complete in arbitrary order). `identity` seeds
/// each chunk's accumulator.
template <typename T, typename Map, typename Reduce>
T parallel_reduce(TaskRuntime& rt, std::string_view class_name,
                  std::size_t begin, std::size_t end, T identity, Map map,
                  Reduce reduce, ParallelForOptions options = {}) {
  WATS_CHECK(begin <= end);
  WATS_CHECK_MSG(!rt.on_worker_thread(),
                 "parallel_reduce blocks; call it from a non-worker thread");
  if (begin == end) return identity;

  const std::size_t n = end - begin;
  std::size_t grain = options.grain;
  if (grain == 0) {
    const std::size_t target_tasks = 4 * rt.topology().total_cores();
    grain = std::max<std::size_t>(1, n / target_tasks);
  }

  const auto cls = rt.register_class(std::string(class_name));
  std::mutex mu;
  T total = identity;
  TaskGroup group(rt);
  for (std::size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += grain) {
    const std::size_t chunk_end = std::min(end, chunk_begin + grain);
    group.spawn(cls, [&, chunk_begin, chunk_end] {
      T partial = identity;
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
        partial = reduce(std::move(partial), map(i));
      }
      std::lock_guard lock(mu);
      total = reduce(std::move(total), std::move(partial));
    });
  }
  group.wait();
  return total;
}

}  // namespace wats::runtime
