#include "runtime/parking_lot.hpp"

namespace wats::runtime {

ParkingLot::ParkingLot(std::size_t group_count) {
  cells_.reserve(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    cells_.push_back(std::make_unique<Cell>());
  }
}

std::uint64_t ParkingLot::prepare_park(std::size_t group) {
  Cell& cell = *cells_[group];
  std::lock_guard lock(cell.mu);
  ++cell.waiters;
  return cell.epoch;
}

void ParkingLot::cancel_park(std::size_t group) {
  Cell& cell = *cells_[group];
  std::lock_guard lock(cell.mu);
  --cell.waiters;
  // A wake already claimed for us stays claimable by the next parker
  // (it will wake spuriously and re-scan), but signals must never exceed
  // waiters or unpark_one would skip a registry with a live sleeper.
  if (cell.signals > cell.waiters) cell.signals = cell.waiters;
}

void ParkingLot::park(std::size_t group, std::uint64_t ticket) {
  Cell& cell = *cells_[group];
  std::unique_lock lock(cell.mu);
  cell.cv.wait(lock, [&] {
    return cell.signals > 0 || cell.epoch != ticket;
  });
  if (cell.signals > 0) --cell.signals;
  --cell.waiters;
}

bool ParkingLot::park_for(std::size_t group, std::uint64_t ticket,
                          std::chrono::microseconds timeout) {
  Cell& cell = *cells_[group];
  std::unique_lock lock(cell.mu);
  const bool woken = cell.cv.wait_for(lock, timeout, [&] {
    return cell.signals > 0 || cell.epoch != ticket;
  });
  if (cell.signals > 0) --cell.signals;
  --cell.waiters;
  return woken;
}

std::size_t ParkingLot::unpark_one(const std::vector<std::size_t>& order) {
  for (const std::size_t g : order) {
    Cell& cell = *cells_[g];
    bool claimed = false;
    {
      std::lock_guard lock(cell.mu);
      ++cell.epoch;
      // Claim a sleeper slot on the waker side: once every announced
      // sleeper of this cell has a pending signal, further notifies here
      // would be absorbed — move on and wake the next group instead.
      if (cell.waiters > cell.signals) {
        ++cell.signals;
        claimed = true;
      }
    }
    if (claimed) {
      cell.cv.notify_one();
      return g;
    }
  }
  return kNone;
}

void ParkingLot::unpark_all() {
  for (const auto& cell : cells_) {
    {
      std::lock_guard lock(cell->mu);
      ++cell->epoch;
      cell->signals = cell->waiters;
    }
    cell->cv.notify_all();
  }
}

void ParkingLot::legacy_poll(std::size_t group,
                             std::chrono::microseconds timeout) {
  Cell& cell = *cells_[group];
  std::unique_lock lock(cell.mu);
  cell.cv.wait_for(lock, timeout);
}

void ParkingLot::legacy_notify_all() {
  for (const auto& cell : cells_) {
    cell->cv.notify_all();
  }
}

std::uint64_t ParkingLot::epoch(std::size_t group) const {
  const Cell& cell = *cells_[group];
  std::lock_guard lock(cell.mu);
  return cell.epoch;
}

std::uint64_t ParkingLot::sleepers(std::size_t group) const {
  const Cell& cell = *cells_[group];
  std::lock_guard lock(cell.mu);
  return cell.waiters;
}

}  // namespace wats::runtime
