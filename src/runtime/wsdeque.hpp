// Chase–Lev work-stealing deque (dynamic circular array variant, after
// Chase & Lev 2005 / Lê et al. 2013 C11 formulation).
//
// Single owner pushes/pops at the bottom without contention; any number of
// thieves steal from the top with a CAS. Used as the per-(worker, cluster)
// task pool of the real-thread runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace wats::runtime {

template <typename T>
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 64)
      : buffer_(new Buffer(round_up(initial_capacity))) {}

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  ~WorkStealingDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    // retired_ buffers are deleted by unique_ptr.
  }

  /// Owner only.
  void push_bottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    // Release STORE, not Lê et al.'s release fence + relaxed store: the
    // only consumer of this edge is steal_top's acquire load of bottom_,
    // for which the two are equivalent (and identical codegen on x86) —
    // but TSan does not model fences, so the fence form reports the
    // slot handoff to a thief as a race on the item's contents.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Returns nullptr when empty.
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = buf->get(b);
    if (t == b) {
      // Last element: race with thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thieves (and, harmlessly, the owner). Returns nullptr when empty or
  /// when the steal lost a race.
  T* steal_top() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_consume);
    T* item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return item;
  }

  /// Approximate size (racy; used for victim selection heuristics only).
  std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap) : capacity(cap), slots(cap) {}
    std::size_t capacity;
    std::vector<std::atomic<T*>> slots;

    T* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & (capacity - 1)].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* item) {
      slots[static_cast<std::size_t>(i) & (capacity - 1)].store(
          item, std::memory_order_relaxed);
    }
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto fresh = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      fresh->put(i, old->get(i));
    }
    Buffer* raw = fresh.get();
    buffer_.store(raw, std::memory_order_release);
    // Old buffer may still be read by in-flight thieves; retire it until
    // the deque is destroyed (bounded growth makes this acceptable).
    retired_.emplace_back(old);
    fresh.release();
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;
};

}  // namespace wats::runtime
