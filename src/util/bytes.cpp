#include "util/bytes.hpp"

#include "util/check.hpp"

namespace wats::util {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  WATS_CHECK_MSG(false, "invalid hex digit");
  return -1;
}

}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  WATS_CHECK(hex.size() % 2 == 0);
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((hex_digit(hex[i]) << 4) |
                                            hex_digit(hex[i + 1])));
  }
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string string_of(std::span<const std::uint8_t> data) {
  return std::string(data.begin(), data.end());
}

void put_u32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64le(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32le(std::span<const std::uint8_t> in, std::size_t offset) {
  WATS_DCHECK(offset + 4 <= in.size());
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | in[offset + static_cast<std::size_t>(i)];
  }
  return v;
}

void put_u32be(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64be(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32be(std::span<const std::uint8_t> in, std::size_t offset) {
  WATS_DCHECK(offset + 4 <= in.size());
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | in[offset + static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint64_t fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace wats::util
