#include "util/args.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace wats::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_.push_back({body.substr(0, eq), body.substr(eq + 1)});
      continue;
    }
    // "--key value" form: consume the next token if it is not a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_.push_back({body, std::string(argv[i + 1])});
      ++i;
    } else {
      flags_.push_back({body, std::nullopt});
    }
  }
}

std::optional<std::string> Args::value(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return f.value;
  }
  return std::nullopt;
}

std::string Args::value_or(const std::string& name,
                           const std::string& fallback) const {
  const auto v = value(name);
  return v.has_value() && v->size() > 0 ? *v : fallback;
}

std::int64_t Args::int_or(const std::string& name,
                          std::int64_t fallback) const {
  const auto v = value(name);
  if (!v.has_value() || v->empty()) return fallback;
  char* end = nullptr;
  const std::int64_t parsed = std::strtoll(v->c_str(), &end, 10);
  WATS_CHECK_MSG(end != nullptr && *end == '\0', "non-numeric flag value");
  return parsed;
}

double Args::double_or(const std::string& name, double fallback) const {
  const auto v = value(name);
  if (!v.has_value() || v->empty()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  WATS_CHECK_MSG(end != nullptr && *end == '\0', "non-numeric flag value");
  return parsed;
}

bool Args::flag(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name != name) continue;
    if (!f.value.has_value()) return true;
    return *f.value == "true" || *f.value == "1";
  }
  return false;
}

std::vector<std::string> Args::list_or(
    const std::string& name, const std::vector<std::string>& fallback) const {
  const auto v = value(name);
  if (!v.has_value() || v->empty()) return fallback;
  return split_csv(*v);
}

std::vector<std::string> Args::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& f : flags_) {
    if (std::find(known.begin(), known.end(), f.name) == known.end()) {
      out.push_back(f.name);
    }
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    if (comma > pos) out.push_back(text.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace wats::util
