#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace wats::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  WATS_CHECK(hi > lo);
  WATS_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      std::floor(frac * static_cast<double>(counts_.size())));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

double Histogram::quantile(double q) const {
  WATS_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target) {
      const double within = c == 0.0 ? 0.0 : (target - cum) / c;
      return bucket_lo(i) + within * (bucket_hi(i) - bucket_lo(i));
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak == 0 ? std::size_t{0}
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[i]) /
                        static_cast<double>(peak) * static_cast<double>(width));
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

double percentile(std::vector<double> samples, double q) {
  WATS_CHECK(!samples.empty());
  WATS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double geomean(const std::vector<double>& xs) {
  WATS_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    WATS_CHECK_MSG(x > 0.0, "geomean requires positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace wats::util
