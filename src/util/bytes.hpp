// Byte-buffer helpers shared by the compression / hashing workload kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wats::util {

using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex encoding ("ab03ff...").
std::string to_hex(std::span<const std::uint8_t> data);

/// Inverse of to_hex; aborts on malformed input (test-vector use only).
Bytes from_hex(std::string_view hex);

/// Copy a string's bytes.
Bytes bytes_of(std::string_view s);

/// View a byte buffer as a string (for round-trip tests).
std::string string_of(std::span<const std::uint8_t> data);

/// Little-endian scalar packing, used by MD5.
void put_u32le(Bytes& out, std::uint32_t v);
void put_u64le(Bytes& out, std::uint64_t v);
std::uint32_t get_u32le(std::span<const std::uint8_t> in, std::size_t offset);

/// Big-endian scalar packing, used by SHA-1.
void put_u32be(Bytes& out, std::uint32_t v);
void put_u64be(Bytes& out, std::uint64_t v);
std::uint32_t get_u32be(std::span<const std::uint8_t> in, std::size_t offset);

/// FNV-1a 64-bit, for cheap content fingerprints in tests.
std::uint64_t fnv1a(std::span<const std::uint8_t> data);

}  // namespace wats::util
