// Streaming statistics and histograms used by the experiment harnesses and
// by the task-class registry (which tracks per-class mean workload).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wats::util {

/// Numerically stable running mean/variance (Welford). All moments are
/// computed in one pass so the simulator can keep one per task class without
/// storing samples.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket linear histogram over [lo, hi); out-of-range samples are
/// clamped into the first/last bucket so totals always match.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// containing bucket.
  double quantile(double q) const;

  /// Multi-line ASCII rendering, for experiment logs.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact percentile of a sample vector (copies and sorts; use for small
/// result sets like per-run makespans).
double percentile(std::vector<double> samples, double q);

/// Geometric mean; ignores non-positive entries (callers assert none exist).
double geomean(const std::vector<double>& xs);

}  // namespace wats::util
