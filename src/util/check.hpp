// Lightweight runtime-check macros used across the WATS libraries.
//
// WATS_CHECK is always on (it guards invariants whose violation would make
// results meaningless, e.g. a negative workload); WATS_DCHECK compiles away
// in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace wats::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "WATS_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace wats::util

#define WATS_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::wats::util::check_failed(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                 \
  } while (false)

#define WATS_CHECK_MSG(expr, msg)                                 \
  do {                                                            \
    if (!(expr)) {                                                \
      ::wats::util::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                             \
  } while (false)

#ifdef NDEBUG
#define WATS_DCHECK(expr) \
  do {                    \
  } while (false)
#define WATS_DCHECK_MSG(expr, msg) \
  do {                             \
  } while (false)
#else
#define WATS_DCHECK(expr) WATS_CHECK(expr)
#define WATS_DCHECK_MSG(expr, msg) WATS_CHECK_MSG(expr, msg)
#endif
