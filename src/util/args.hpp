// Minimal command-line flag parsing for the tools and examples:
// --key=value and --key value forms, plus boolean switches.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace wats::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Value of --name; empty when absent.
  std::optional<std::string> value(const std::string& name) const;

  /// Value with a default.
  std::string value_or(const std::string& name,
                       const std::string& fallback) const;

  /// Numeric values with defaults; aborts on non-numeric input.
  std::int64_t int_or(const std::string& name, std::int64_t fallback) const;
  double double_or(const std::string& name, double fallback) const;

  /// Boolean switch: present (with no value or "true"/"1") => true.
  bool flag(const std::string& name) const;

  /// Comma-separated list value.
  std::vector<std::string> list_or(
      const std::string& name, const std::vector<std::string>& fallback) const;

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never queried — typo detection for
  /// tools that opt in.
  std::vector<std::string> unknown(
      const std::vector<std::string>& known) const;

 private:
  struct Flag {
    std::string name;
    std::optional<std::string> value;
  };
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

/// Split "a,b,c" into {"a","b","c"} (empty string -> empty vector).
std::vector<std::string> split_csv(const std::string& text);

}  // namespace wats::util
