#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace wats::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  WATS_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  WATS_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string TextTable::render_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
          << row[c];
    }
    out << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
    }
    out << "-|\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ",";
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty()) rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace wats::util
