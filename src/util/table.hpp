// Minimal table renderer for the benchmark harnesses: every bench binary
// prints the rows/series of the paper table or figure it regenerates, both
// as an aligned ASCII table (for humans) and as CSV (for plotting).
#pragma once

#include <string>
#include <vector>

namespace wats::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 3);

  std::string render_ascii() const;
  std::string render_csv() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parse one CSV line (RFC-4180-ish: quoted cells, doubled quotes).
std::vector<std::string> parse_csv_line(const std::string& line);

/// Parse a whole CSV document into rows of cells (skips empty lines).
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace wats::util
