// Deterministic, seedable random number generation.
//
// Every stochastic decision in the simulator and the workload generators
// draws from these engines so that experiment results are bit-reproducible
// across runs for a fixed seed. We deliberately avoid std::mt19937 +
// std::uniform_int_distribution because their outputs are not specified to
// be identical across standard library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace wats::util {

/// SplitMix64: used for seeding and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse engine (Blackman & Vigna). Fast, high quality,
/// and trivially reproducible.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    // A zero state would be a fixed point; SplitMix64 cannot produce four
    // zero outputs from any seed, so no further check is needed.
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction
  /// with rejection to avoid modulo bias.
  std::uint64_t bounded(std::uint64_t bound) {
    WATS_CHECK(bound > 0);
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    WATS_CHECK(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63 in our uses
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (one sample per call; the paired
  /// sample is discarded for simplicity).
  double gaussian() {
    const double u1 = std::max(uniform(), 1e-12);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = bounded(i + 1);
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename Container>
  std::size_t pick_index(const Container& c) {
    WATS_CHECK(!c.empty());
    return static_cast<std::size_t>(bounded(c.size()));
  }

  /// State equality: lets callers prove a code region drew nothing (the
  /// simulator's dispatch batching hinges on this).
  friend bool operator==(const Xoshiro256&, const Xoshiro256&) = default;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s, n) sampler over {0, .., n-1} via inverse-CDF on a precomputed
/// table. Used by the synthetic-corpus generators (natural text has zipfian
/// symbol/word frequencies, which matters for the compression workloads).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    WATS_CHECK(n > 0);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / pow_s(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  std::size_t sample(Xoshiro256& rng) const {
    const double u = rng.uniform();
    // Binary search for first cdf >= u.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  static double pow_s(double base, double s) { return std::pow(base, s); }

  std::vector<double> cdf_;
};

}  // namespace wats::util
