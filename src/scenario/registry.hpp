// Compiled-in scenario registry: every experiment the repo's bench
// drivers print — fig6..fig10, the Table III x Table II full grid, the
// scenario catalog, the design ablations, the multiprogram co-runs — plus
// the nonstationary step-drift demo, each as a declarative ScenarioSpec.
// The bench binaries fetch their spec here and render tables from the
// runner's cells; wats_run executes any entry by name.
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace wats::scenario {

/// All registry entries (stable order; names are unique).
const std::vector<ScenarioSpec>& builtin_scenarios();

/// Lookup by name; nullptr when unknown.
const ScenarioSpec* find_scenario(const std::string& name);

/// The nonstationary acceptance workload: a class whose workload steps up
/// 16x mid-run while another stays put, so a frozen running mean keeps
/// mis-placing the now-heavy class for the rest of the run. Used by the
/// "step-drift" registry entry and the change-point tests.
workloads::BenchmarkSpec step_drift_workload();

/// The plan-repair scale workload: `classes` single-task classes with
/// deterministic heterogeneous means (one batch). Used by the "at-scale"
/// registry entry and wats_perf's at-scale sim throughput probe.
workloads::BenchmarkSpec at_scale_workload(std::size_t classes);

/// The DVFS acceptance workload: six equal zero-variance classes sized so
/// Algorithm 1 leaves the slow c-group of a "2x2.5+6x2.0" machine with
/// real slack under the fast group's finish — the headroom the
/// pace-to-deadline governor converts into energy savings at (nearly) no
/// makespan cost. Used by the "dvfs-sweep"/"dvfs-smoke" registry entries,
/// wats_perf's dvfs probe and the governor tests.
workloads::BenchmarkSpec dvfs_workload();

}  // namespace wats::scenario
