#include "scenario/parse.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace wats::scenario {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    const std::string piece = trim(s.substr(pos, next - pos));
    if (!piece.empty()) out.push_back(piece);
    pos = next + 1;
  }
  return out;
}

bool parse_double(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_uint(const std::string& text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

/// Split "k1=v1 k2=v2 ..." into assignments; returns false on a token
/// without '='.
bool parse_assignments(const std::string& text,
                       std::vector<KnobAssignment>* out) {
  for (const auto& token : split(text, ' ')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    out->push_back({token.substr(0, eq), token.substr(eq + 1)});
  }
  return true;
}

const std::string* assignment(const std::vector<KnobAssignment>& kvs,
                              const std::string& key) {
  for (const auto& kv : kvs) {
    if (kv.key == key) return &kv.value;
  }
  return nullptr;
}

struct Parser {
  ScenarioParse result;
  workloads::BenchmarkSpec* current = nullptr;  ///< open inline workload
  std::size_t line_no = 0;

  void error(const std::string& msg) {
    result.errors.push_back("line " + std::to_string(line_no) + ": " + msg);
  }

  workloads::BenchmarkSpec* need_workload(const std::string& key) {
    if (current == nullptr) {
      error("'" + key + "' before any workload.name");
    }
    return current;
  }

  void handle(const std::string& key, const std::string& value);
  void handle_class(const std::string& value);
  void handle_phase(const std::string& value);
  void handle_task(const std::string& value);
  void handle_variant(const std::string& value);
};

void Parser::handle_class(const std::string& value) {
  auto* wl = need_workload("class");
  if (wl == nullptr) return;
  std::vector<KnobAssignment> kvs;
  const auto space = value.find(' ');
  const std::string name = trim(value.substr(0, space));
  if (name.empty()) {
    error("class needs a name");
    return;
  }
  if (space != std::string::npos &&
      !parse_assignments(value.substr(space + 1), &kvs)) {
    error("malformed class attributes (want k=v pairs)");
    return;
  }
  workloads::TaskClassSpec cls;
  cls.name = name;
  bool ok = true;
  for (const auto& kv : kvs) {
    std::uint64_t u = 0;
    if (kv.key == "mean_work") {
      ok &= parse_double(kv.value, &cls.mean_work) && cls.mean_work > 0.0;
    } else if (kv.key == "cv") {
      ok &= parse_double(kv.value, &cls.cv) && cls.cv >= 0.0;
    } else if (kv.key == "tasks") {
      ok &= parse_uint(kv.value, &u);
      cls.tasks_per_batch = static_cast<std::size_t>(u);
    } else if (kv.key == "scalable") {
      ok &= parse_double(kv.value, &cls.scalable) && cls.scalable >= 0.0 &&
            cls.scalable <= 1.0;
    } else {
      error("unknown class attribute '" + kv.key + "'");
      return;
    }
  }
  if (!ok) {
    error("bad class attribute value");
    return;
  }
  wl->classes.push_back(std::move(cls));
}

void Parser::handle_phase(const std::string& value) {
  auto* wl = need_workload("phase");
  if (wl == nullptr) return;
  std::vector<KnobAssignment> kvs;
  if (!parse_assignments(value, &kvs)) {
    error("malformed phase (want batch=N scale=a,b,...)");
    return;
  }
  const std::string* batch = assignment(kvs, "batch");
  const std::string* scale = assignment(kvs, "scale");
  std::uint64_t b = 0;
  if (batch == nullptr || scale == nullptr || !parse_uint(*batch, &b)) {
    error("phase needs batch=N and scale=a,b,...");
    return;
  }
  workloads::PhaseSpec phase;
  phase.start_batch = static_cast<std::size_t>(b);
  for (const auto& piece : split(*scale, ',')) {
    double d = 0.0;
    if (!parse_double(piece, &d) || d < 0.0) {
      error("bad phase scale '" + piece + "'");
      return;
    }
    phase.class_scale.push_back(d);
  }
  wl->phases.push_back(std::move(phase));
}

void Parser::handle_task(const std::string& value) {
  auto* wl = need_workload("task");
  if (wl == nullptr) return;
  std::vector<KnobAssignment> kvs;
  if (!parse_assignments(value, &kvs)) {
    error("malformed task (want arrival=T class=NAME work=W)");
    return;
  }
  const std::string* arrival = assignment(kvs, "arrival");
  const std::string* cls = assignment(kvs, "class");
  const std::string* work = assignment(kvs, "work");
  workloads::ReplayTaskSpec rec;
  if (arrival == nullptr || cls == nullptr || work == nullptr ||
      !parse_double(*arrival, &rec.arrival) || rec.arrival < 0.0 ||
      !parse_double(*work, &rec.work) || rec.work < 0.0) {
    error("task needs arrival=T class=NAME work=W (non-negative)");
    return;
  }
  // Classes must be declared before the tasks that reference them.
  rec.class_index = wl->classes.size();
  for (std::size_t i = 0; i < wl->classes.size(); ++i) {
    if (wl->classes[i].name == *cls) rec.class_index = i;
  }
  if (rec.class_index == wl->classes.size()) {
    error("task references undeclared class '" + *cls + "'");
    return;
  }
  wl->replay_tasks.push_back(rec);
}

void Parser::handle_variant(const std::string& value) {
  const std::size_t colon = value.find(':');
  if (colon == std::string::npos || colon == 0) {
    error("variant wants 'label: k=v k=v ...'");
    return;
  }
  ScenarioVariant variant;
  variant.label = trim(value.substr(0, colon));
  if (!parse_assignments(trim(value.substr(colon + 1)), &variant.knobs)) {
    error("malformed variant knobs (want k=v pairs)");
    return;
  }
  result.spec.variants.push_back(std::move(variant));
}

void Parser::handle(const std::string& key, const std::string& value) {
  ScenarioSpec& s = result.spec;
  double d = 0.0;
  std::uint64_t u = 0;
  const auto want_double = [&](double lo) {
    if (parse_double(value, &d) && d >= lo) return true;
    error("'" + key + "': bad value '" + value + "'");
    return false;
  };
  const auto want_uint = [&] {
    if (parse_uint(value, &u)) return true;
    error("'" + key + "': bad value '" + value + "'");
    return false;
  };
  const auto want_bool = [&](bool* out) {
    if (value == "on" || value == "true" || value == "1") {
      *out = true;
      return true;
    }
    if (value == "off" || value == "false" || value == "0") {
      *out = false;
      return true;
    }
    error("'" + key + "': bad value '" + value + "'");
    return false;
  };

  if (key == "name") {
    s.name = value;
  } else if (key == "description") {
    s.description = value;
  } else if (key == "machine" || key == "machines") {
    for (auto& m : split(value, ',')) s.machines.push_back(std::move(m));
  } else if (key == "workload" || key == "workloads") {
    for (auto& w : split(value, ',')) s.workloads.push_back(std::move(w));
  } else if (key == "scheduler" || key == "schedulers") {
    for (const auto& name : split(value, ',')) {
      sim::SchedulerKind kind;
      if (scheduler_from_string(name, &kind)) {
        s.schedulers.push_back(kind);
      } else {
        error("unknown scheduler '" + name + "'");
      }
    }
  } else if (key == "repeats") {
    if (want_uint() && u > 0) s.repeats = static_cast<std::size_t>(u);
  } else if (key == "seed") {
    if (want_uint()) s.base_seed = u;
  } else if (key == "estimator") {
    if (value == "running_mean") {
      s.estimator = core::WorkloadEstimator::kRunningMean;
    } else if (value == "ewma") {
      s.estimator = core::WorkloadEstimator::kEwma;
    } else {
      error("estimator wants running_mean or ewma");
    }
  } else if (key == "ewma_alpha") {
    if (want_double(0.0)) s.ewma_alpha = d;
  } else if (key == "change_point") {
    want_bool(&s.change_point.enabled);
  } else if (key == "cp_slack") {
    if (want_double(0.0)) s.change_point.slack = d;
  } else if (key == "cp_threshold") {
    if (want_double(0.0)) s.change_point.threshold = d;
  } else if (key == "cp_min_samples") {
    if (want_uint()) s.change_point.min_samples = u;
  } else if (key == "cp_decay_to") {
    if (want_uint()) s.change_point.decay_to = u;
  } else if (key == "steal_cost") {
    if (want_double(0.0)) s.sim.steal_cost = d;
  } else if (key == "snatch_cost") {
    if (want_double(0.0)) s.sim.snatch_cost = d;
  } else if (key == "snatch_redo_fraction") {
    if (want_double(0.0)) s.sim.snatch_redo_fraction = d;
  } else if (key == "spawn_cost") {
    if (want_double(0.0)) s.sim.spawn_cost = d;
  } else if (key == "recluster_period") {
    if (want_double(0.0)) s.sim.recluster_period = d;
  } else if (key == "main_on_fastest") {
    want_bool(&s.sim.main_on_fastest);
  } else if (key == "cluster_algorithm") {
    if (value == "algorithm1") {
      s.sim.cluster_algorithm = core::ClusterAlgorithm::kAlgorithm1;
    } else if (value == "dual") {
      s.sim.cluster_algorithm = core::ClusterAlgorithm::kDualApprox;
    } else {
      error("cluster_algorithm wants algorithm1 or dual");
    }
  } else if (key == "plan_repair") {
    want_bool(&s.sim.plan_repair.enabled);
  } else if (key == "repair_drift_threshold") {
    if (want_double(0.0)) s.sim.plan_repair.drift_threshold = d;
  } else if (key == "steal_victim") {
    if (value == "random") {
      s.sim.steal_victim = sim::SimConfig::StealVictim::kRandom;
    } else if (value == "richest") {
      s.sim.steal_victim = sim::SimConfig::StealVictim::kRichest;
    } else {
      error("steal_victim wants random or richest");
    }
  } else if (key == "variant") {
    handle_variant(value);
  } else if (key == "workload.name") {
    s.inline_workloads.emplace_back();
    current = &s.inline_workloads.back();
    current->name = value;
  } else if (key == "workload.kind") {
    if (auto* wl = need_workload(key)) {
      if (value == "batch") {
        wl->kind = workloads::BenchKind::kBatch;
      } else if (value == "pipeline") {
        wl->kind = workloads::BenchKind::kPipeline;
      } else if (value == "replay") {
        wl->kind = workloads::BenchKind::kReplay;
      } else {
        error("workload.kind wants batch, pipeline or replay");
      }
    }
  } else if (key == "workload.batches") {
    if (auto* wl = need_workload(key); wl != nullptr && want_uint()) {
      wl->batches = static_cast<std::size_t>(u);
    }
  } else if (key == "workload.pipeline_items") {
    if (auto* wl = need_workload(key); wl != nullptr && want_uint()) {
      wl->pipeline_items = static_cast<std::size_t>(u);
    }
  } else if (key == "workload.pipeline_window") {
    if (auto* wl = need_workload(key); wl != nullptr && want_uint()) {
      wl->pipeline_window = static_cast<std::size_t>(u);
    }
  } else if (key == "class") {
    handle_class(value);
  } else if (key == "phase") {
    handle_phase(value);
  } else if (key == "task") {
    handle_task(value);
  } else {
    error("unknown key '" + key + "'");
  }
}

std::string fmt_double(double v) {
  // Shortest representation that round-trips the exact double.
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

ScenarioParse parse_scenario(const std::string& text) {
  Parser p;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++p.line_no;
    // CRLF files: getline keeps the '\r'; drop it before any substring
    // lands in a value (trim() catches leading/trailing ones, but being
    // explicit here keeps comment stripping and key/value splits from
    // ever seeing it).
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      p.error("expected 'key = value'");
      continue;
    }
    p.handle(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return p.result;
}

ScenarioParse parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    ScenarioParse result;
    result.errors.push_back("cannot read scenario file '" + path + "'");
    return result;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_scenario(text.str());
}

std::string serialize_scenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  const auto join = [](const std::vector<std::string>& items) {
    std::string joined;
    for (const auto& item : items) {
      if (!joined.empty()) joined += ", ";
      joined += item;
    }
    return joined;
  };
  out << "# WATS scenario file (docs/SCENARIOS.md)\n";
  out << "name = " << spec.name << "\n";
  if (!spec.description.empty()) {
    out << "description = " << spec.description << "\n";
  }
  if (!spec.machines.empty()) {
    out << "machines = " << join(spec.machines) << "\n";
  }
  if (!spec.workloads.empty()) {
    out << "workloads = " << join(spec.workloads) << "\n";
  }
  std::vector<std::string> scheds;
  for (const auto kind : spec.schedulers) {
    scheds.push_back(core::policy::to_string(kind));
  }
  if (!scheds.empty()) out << "schedulers = " << join(scheds) << "\n";
  out << "repeats = " << spec.repeats << "\n";
  out << "seed = " << spec.base_seed << "\n";
  if (spec.estimator == core::WorkloadEstimator::kEwma) {
    out << "estimator = ewma\n";
    out << "ewma_alpha = " << fmt_double(spec.ewma_alpha) << "\n";
  }
  if (spec.change_point.enabled) {
    out << "change_point = on\n";
    out << "cp_slack = " << fmt_double(spec.change_point.slack) << "\n";
    out << "cp_threshold = " << fmt_double(spec.change_point.threshold)
        << "\n";
    out << "cp_min_samples = " << spec.change_point.min_samples << "\n";
    out << "cp_decay_to = " << spec.change_point.decay_to << "\n";
  }
  const sim::SimConfig defaults;
  const auto sim_knob = [&](const char* key, double v, double dflt) {
    if (v != dflt) out << key << " = " << fmt_double(v) << "\n";
  };
  sim_knob("steal_cost", spec.sim.steal_cost, defaults.steal_cost);
  sim_knob("snatch_cost", spec.sim.snatch_cost, defaults.snatch_cost);
  sim_knob("snatch_redo_fraction", spec.sim.snatch_redo_fraction,
           defaults.snatch_redo_fraction);
  sim_knob("spawn_cost", spec.sim.spawn_cost, defaults.spawn_cost);
  sim_knob("recluster_period", spec.sim.recluster_period,
           defaults.recluster_period);
  if (spec.sim.main_on_fastest != defaults.main_on_fastest) {
    out << "main_on_fastest = " << (spec.sim.main_on_fastest ? "on" : "off")
        << "\n";
  }
  if (spec.sim.cluster_algorithm == core::ClusterAlgorithm::kDualApprox) {
    out << "cluster_algorithm = dual\n";
  }
  if (spec.sim.plan_repair.enabled != defaults.plan_repair.enabled) {
    out << "plan_repair = " << (spec.sim.plan_repair.enabled ? "on" : "off")
        << "\n";
  }
  sim_knob("repair_drift_threshold", spec.sim.plan_repair.drift_threshold,
           defaults.plan_repair.drift_threshold);
  if (spec.sim.steal_victim == sim::SimConfig::StealVictim::kRichest) {
    out << "steal_victim = richest\n";
  }
  for (const auto& variant : spec.variants) {
    out << "variant = " << variant.label << ":";
    for (const auto& knob : variant.knobs) {
      out << " " << knob.key << "=" << knob.value;
    }
    out << "\n";
  }
  for (const auto& wl : spec.inline_workloads) {
    out << "\nworkload.name = " << wl.name << "\n";
    switch (wl.kind) {
      case workloads::BenchKind::kBatch:
        out << "workload.kind = batch\n";
        out << "workload.batches = " << wl.batches << "\n";
        break;
      case workloads::BenchKind::kPipeline:
        out << "workload.kind = pipeline\n";
        out << "workload.pipeline_items = " << wl.pipeline_items << "\n";
        out << "workload.pipeline_window = " << wl.pipeline_window << "\n";
        break;
      case workloads::BenchKind::kReplay:
        out << "workload.kind = replay\n";
        break;
    }
    for (const auto& cls : wl.classes) {
      out << "class = " << cls.name << " mean_work=" << fmt_double(cls.mean_work)
          << " cv=" << fmt_double(cls.cv) << " tasks=" << cls.tasks_per_batch
          << " scalable=" << fmt_double(cls.scalable) << "\n";
    }
    for (const auto& phase : wl.phases) {
      out << "phase = batch=" << phase.start_batch << " scale=";
      for (std::size_t i = 0; i < phase.class_scale.size(); ++i) {
        if (i > 0) out << ",";
        out << fmt_double(phase.class_scale[i]);
      }
      out << "\n";
    }
    for (const auto& rec : wl.replay_tasks) {
      out << "task = arrival=" << fmt_double(rec.arrival)
          << " class=" << wl.classes[rec.class_index].name
          << " work=" << fmt_double(rec.work) << "\n";
    }
  }
  return out.str();
}

}  // namespace wats::scenario
