// Perfetto trace -> replay workload: re-ingest a recorded run (simulator
// or runtime export, obs/export.hpp schema) as a kReplay BenchmarkSpec,
// so `wats_trace replay-export` can turn any trace into a scenario file
// and `wats_run` can re-execute it under a different machine/scheduler.
//
// Conversion (inverts sim/trace_export.cpp):
//   - thread_name metadata carries each track's relative speed — labels
//     like "core 3 (group 1, 1.80x)" / "worker 5 (group 2, 0.52x)";
//     tracks without a speed suffix (e.g. "policy") replay at 1.0x.
//   - every ph "X" slice is one executed task segment: `name` is the task
//     class, `ts` the virtual start time, and work = dur x track speed
//     (Eq. 2 normalization back to F1 units). Segments sharing an
//     args.task id (snatch-migrated tasks) merge into one task whose work
//     is the segment sum and whose arrival is the earliest start.
//   - arrivals are shifted so the earliest task arrives at 0.
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "workloads/workload_model.hpp"

namespace wats::scenario {

/// Build a kReplay workload from trace-event JSON. `name` becomes the
/// workload name. On malformed input, appends to `errors` and returns a
/// spec with empty replay_tasks (validate_scenario would reject it).
workloads::BenchmarkSpec replay_workload_from_trace(
    const std::string& trace_json, const std::string& name,
    std::vector<std::string>* errors = nullptr);

/// Wrap the replayed workload in a runnable single-cell scenario:
/// machine `machine` (defaults to the Table II big.LITTLE flagship AMC5),
/// schedulers Cilk + WATS, one repeat (the stream is fixed; only
/// scheduling decisions vary).
ScenarioSpec replay_scenario_from_trace(
    const std::string& trace_json, const std::string& name,
    const std::string& machine = "AMC5",
    std::vector<std::string>* errors = nullptr);

}  // namespace wats::scenario
