// Scenario file format: the text form of ScenarioSpec (docs/SCENARIOS.md).
//
// Line-based `key = value`, '#' comments, blank lines ignored:
//
//   name        = step-drift-demo
//   machines    = AMC5, 8x2.5+8x0.8       # Table II names or NxF specs
//   workloads   = GA, DiurnalPhases       # named; "A+B" = co-run
//   schedulers  = Cilk, WATS
//   repeats     = 5
//   seed        = 42
//   estimator   = running_mean            # or: ewma (+ ewma_alpha = 0.3)
//   change_point = on                     # + cp_slack / cp_threshold /
//                                         #   cp_min_samples / cp_decay_to
//   steal_cost  = 0.05                    # any sim knob; see docs
//   variant     = frozen: change_point=off
//   variant     = adaptive: change_point=on cp_threshold=4
//
// Inline workloads: `workload.name = X` starts one; following workload.*,
// class, phase and task lines belong to it until the next workload.name.
//
//   workload.name    = StepDrift
//   workload.kind    = batch              # batch | pipeline | replay
//   workload.batches = 40
//   class = shifty_worker mean_work=10 cv=0.05 tasks=24 scalable=1
//   class = steady_worker mean_work=120 cv=0.05 tasks=8
//   phase = batch=10 scale=16,1           # per-class multipliers
//   task  = arrival=3.5 class=shifty_worker work=12.5   # replay records
//
// parse_scenario never aborts: every malformed line lands in `errors`
// with its line number. serialize_scenario writes the same format back
// (round-trip: parse(serialize(s)) == s), which is how `wats_trace
// replay-export` emits recorded runs as scenario files.
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace wats::scenario {

struct ScenarioParse {
  ScenarioSpec spec;
  std::vector<std::string> errors;  ///< "line N: message"
  bool ok() const { return errors.empty(); }
};

/// Parse scenario text (the contents of a .scenario file).
ScenarioParse parse_scenario(const std::string& text);

/// Read and parse a scenario file; unreadable paths report one error.
ScenarioParse parse_scenario_file(const std::string& path);

/// Serialize a spec to the file format above.
std::string serialize_scenario(const ScenarioSpec& spec);

}  // namespace wats::scenario
