#include "scenario/runner.hpp"

#include <chrono>

#include "core/topology.hpp"
#include "sim/multiprogram.hpp"
#include "util/check.hpp"

namespace wats::scenario {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

CellResult run_single(const workloads::BenchmarkSpec& spec,
                      const core::AmcTopology& topo, sim::SchedulerKind kind,
                      const sim::ExperimentConfig& config) {
  CellResult cell;
  const auto start = Clock::now();
  cell.result = sim::run_experiment(spec, topo, kind, config);
  cell.wall_seconds = seconds_since(start);
  cell.mean_makespan = cell.result.mean_makespan;
  cell.history_resets = cell.result.history_resets;
  for (const auto& run : cell.result.runs) {
    cell.sim_events += run.sim_events;
    cell.tasks_completed += run.tasks_completed;
    cell.mean_energy += run.energy_joules;
    cell.mean_edp += run.edp;
    cell.governor_ticks += run.governor_ticks;
    cell.speed_swaps += run.speed_swaps;
  }
  if (!cell.result.runs.empty()) {
    const auto n = static_cast<double>(cell.result.runs.size());
    cell.mean_energy /= n;
    cell.mean_edp /= n;
  }
  return cell;
}

CellResult run_multi(const std::vector<workloads::BenchmarkSpec>& specs,
                     const core::AmcTopology& topo, sim::SchedulerKind kind,
                     const sim::ExperimentConfig& config) {
  // Mirrors bench_multiprogram's original loop exactly: one
  // run_multiprogram per repeat with seed base_seed + r, everything else
  // from the base SimConfig, results averaged.
  CellResult cell;
  const auto start = Clock::now();
  cell.per_app_finish.assign(specs.size(), 0.0);
  for (std::size_t r = 0; r < config.repeats; ++r) {
    sim::SimConfig sim = config.sim;
    sim.seed = config.base_seed + r;
    const auto result = sim::run_multiprogram(specs, topo, kind, sim);
    cell.mean_makespan += result.makespan;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      cell.per_app_finish[i] += result.per_app_finish[i];
    }
    cell.sim_events += result.stats.sim_events;
    cell.tasks_completed += result.stats.tasks_completed;
    cell.mean_energy += result.stats.energy_joules;
    cell.mean_edp += result.stats.edp;
    cell.governor_ticks += result.stats.governor_ticks;
    cell.speed_swaps += result.stats.speed_swaps;
  }
  const auto n = static_cast<double>(config.repeats);
  cell.mean_makespan /= n;
  cell.mean_energy /= n;
  cell.mean_edp /= n;
  for (auto& f : cell.per_app_finish) f /= n;
  cell.result.mean_makespan = cell.mean_makespan;
  cell.wall_seconds = seconds_since(start);
  return cell;
}

}  // namespace

const CellResult& ScenarioResult::cell(const std::string& workload,
                                       const std::string& machine,
                                       sim::SchedulerKind scheduler,
                                       const std::string& variant) const {
  for (const auto& c : cells) {
    if (c.workload == workload && c.machine == machine &&
        c.scheduler == scheduler && c.variant == variant) {
      return c;
    }
  }
  WATS_CHECK_MSG(false, "scenario cell not found");
  __builtin_unreachable();
}

double ScenarioResult::makespan(const std::string& workload,
                                const std::string& machine,
                                sim::SchedulerKind scheduler,
                                const std::string& variant) const {
  return cell(workload, machine, scheduler, variant).mean_makespan;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  {
    const auto errors = validate_scenario(spec);
    WATS_CHECK_MSG(errors.empty(), "scenario failed validation");
  }
  ScenarioResult out;
  out.name = spec.name;
  const auto start = Clock::now();

  const auto workloads = resolve_workloads(spec);
  // One unlabeled base variant when the spec declares none.
  std::vector<ScenarioVariant> variants = spec.variants;
  if (variants.empty()) variants.push_back({"", {}});

  for (const auto& machine : spec.machines) {
    const core::AmcTopology topo = core::amc_by_name_or_spec(machine);
    for (const auto& workload : workloads) {
      for (const auto& variant : variants) {
        // Knobs may rewrite the workload (e.g. batches), so each variant
        // works on its own copy of the resolved specs.
        std::vector<workloads::BenchmarkSpec> specs = workload.specs;
        const sim::ExperimentConfig config =
            experiment_config(spec, variant, specs);
        for (const sim::SchedulerKind kind : spec.schedulers) {
          CellResult cell = workload.multiprogram()
                                ? run_multi(specs, topo, kind, config)
                                : run_single(specs[0], topo, kind, config);
          cell.workload = workload.label;
          cell.machine = machine;
          cell.variant = variant.label;
          cell.scheduler = kind;
          out.cells.push_back(std::move(cell));
        }
      }
    }
  }
  out.wall_seconds = seconds_since(start);
  return out;
}

}  // namespace wats::scenario
