// Declarative scenario specs: the one structure every bench, tool and CI
// leg runs through (ROADMAP item 5).
//
// A ScenarioSpec is struct-as-data — machines, workloads, schedulers,
// variants and all run knobs as plain values — so an experiment is (a) a
// compiled-in registry entry (registry.hpp), (b) a parsed scenario file
// (parse.hpp), or (c) a literal in a test, and all three execute through
// the same runner (runner.hpp). The bench binaries are thin renderers
// over registry entries; bit-identical figures fall out of the runner
// constructing the exact ExperimentConfig the benches used to build
// inline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/task_class.hpp"
#include "sim/experiment.hpp"
#include "workloads/workload_model.hpp"

namespace wats::scenario {

/// One `key=value` override a variant applies on top of the spec's base
/// configuration. Keys (value syntax in parens):
///   steal_cost, snatch_cost, snatch_redo_fraction, spawn_cost,
///   recluster_period, ewma_alpha, cp_slack, cp_threshold   (double)
///   pace_epsilon, cmpi_slowdown_cap, governor_tick,
///   idle_factor                                            (double)
///   main_on_fastest                                        (bool)
///   cluster_algorithm       (algorithm1 | dual)
///   steal_victim            (random | richest)
///   estimator               (running_mean | ewma)
///   change_point            (on | off)
///   governor                (static | race-to-idle | pace-to-deadline |
///                            cmpi-aware)
///   cp_min_samples, cp_decay_to, batches, repeats, seed,
///   dvfs_levels                                            (integer)
/// `batches` rewrites the workload spec itself (history warm-up
/// ablations); everything else lands on the ExperimentConfig.
struct KnobAssignment {
  std::string key;
  std::string value;
};

/// A labeled knob bundle: the scenario runs every (machine, workload,
/// variant, scheduler) cell. No variants = one unlabeled base variant.
struct ScenarioVariant {
  std::string label;
  std::vector<KnobAssignment> knobs;
};

struct ScenarioSpec {
  std::string name;
  std::string description;

  /// Machines by Table II name ("AMC5") or inline "NxF+NxF" spec string
  /// (core::amc_by_name_or_spec).
  std::vector<std::string> machines;

  /// Workloads by name: a Table III benchmark ("GA"), a catalog scenario
  /// ("DiurnalPhases"), "GAmix:<alpha>" (the Fig. 8 mixes),
  /// "MemboundMix", or "A+B" — a multiprogrammed co-run of two named
  /// applications through sim::run_multiprogram.
  std::vector<std::string> workloads;

  /// Inline workload specs (scenario files and tests); run in addition
  /// to the named ones, identified by their BenchmarkSpec::name.
  std::vector<workloads::BenchmarkSpec> inline_workloads;

  std::vector<sim::SchedulerKind> schedulers;

  std::size_t repeats = 3;
  std::uint64_t base_seed = 42;
  core::WorkloadEstimator estimator = core::WorkloadEstimator::kRunningMean;
  double ewma_alpha = 0.2;
  core::ChangePointConfig change_point;
  sim::SimConfig sim;  ///< seed is overridden per repeat by the runner

  std::vector<ScenarioVariant> variants;
};

/// One workload cell after name resolution: a single application, or two
/// or more co-scheduled ones (multiprogram).
struct ResolvedWorkload {
  std::string label;  ///< the name as given ("GA", "GA+Ferret", ...)
  std::vector<workloads::BenchmarkSpec> specs;
  bool multiprogram() const { return specs.size() > 1; }
};

/// Resolve every workload name (and inline spec) of `spec`, appending a
/// message per unresolvable name to `errors`. Resolution order: inline
/// workloads first, then paper benchmarks / catalog scenarios / GAmix /
/// MemboundMix.
std::vector<ResolvedWorkload> resolve_workloads(
    const ScenarioSpec& spec, std::vector<std::string>* errors = nullptr);

/// Full validation: machines parse, workloads resolve, schedulers and
/// repeats present, variant knobs well-formed, inline workloads
/// internally consistent (phase vectors aligned, replay indices in
/// range). Returns all problems found; empty = runnable.
std::vector<std::string> validate_scenario(const ScenarioSpec& spec);

/// Apply one knob to (config, workload specs). Returns false (and appends
/// to `errors`) on an unknown key or unparsable value.
bool apply_knob(const KnobAssignment& knob, sim::ExperimentConfig& config,
                std::vector<workloads::BenchmarkSpec>& specs,
                std::vector<std::string>* errors = nullptr);

/// The ExperimentConfig the runner executes a variant's cells with: the
/// spec's base knobs plus the variant's assignments, in order.
sim::ExperimentConfig experiment_config(
    const ScenarioSpec& spec, const ScenarioVariant& variant,
    std::vector<workloads::BenchmarkSpec>& specs,
    std::vector<std::string>* errors = nullptr);

/// Scheduler-kind name round-trip ("WATS-TS" etc., matching
/// core::policy::to_string). Returns false on unknown names.
bool scheduler_from_string(const std::string& name, sim::SchedulerKind* out);

}  // namespace wats::scenario
