// Executes a ScenarioSpec: every (machine, workload, variant, scheduler)
// cell through sim::run_experiment (or sim::run_multiprogram for "A+B"
// co-runs), collecting per-cell results the bench renderers and wats_run
// read back by key. The runner is a pure function of the spec — cells are
// independent, each repeat builds a fresh registry, and the seeds are the
// spec's — which is what keeps the registry-driven benches bit-identical
// to their former inline loops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "sim/experiment.hpp"

namespace wats::scenario {

struct CellResult {
  std::string workload;  ///< ResolvedWorkload label ("GA", "GA+Ferret")
  std::string machine;
  std::string variant;   ///< variant label; "" when the spec has none
  sim::SchedulerKind scheduler = sim::SchedulerKind::kCilk;

  /// Single-application cells: the full experiment result. Multiprogram
  /// cells fill mean_makespan/per_app_finish below instead (runs empty).
  sim::ExperimentResult result;
  double mean_makespan = 0.0;
  std::vector<double> per_app_finish;  ///< seed-averaged; multiprogram only

  double wall_seconds = 0.0;        ///< host time spent on this cell
  std::uint64_t sim_events = 0;     ///< engine events across all repeats
  std::uint64_t tasks_completed = 0;
  std::uint64_t history_resets = 0;

  /// Energy section (first-class RunStats, averaged over repeats). Under
  /// the default static governor these carry the base-frequency energy
  /// bill; active governors change them (and bump the counters below).
  double mean_energy = 0.0;          ///< joules (EnergyModel units)
  double mean_edp = 0.0;             ///< energy * makespan
  std::uint64_t governor_ticks = 0;  ///< across all repeats
  std::uint64_t speed_swaps = 0;     ///< per-group changes, all repeats
};

struct ScenarioResult {
  std::string name;
  std::vector<CellResult> cells;
  double wall_seconds = 0.0;

  /// Cell lookup by key; aborts if absent (a bench asking for a cell its
  /// own spec does not produce is a programming error).
  const CellResult& cell(const std::string& workload,
                         const std::string& machine,
                         sim::SchedulerKind scheduler,
                         const std::string& variant = "") const;
  /// Shorthand for cell(...).mean_makespan.
  double makespan(const std::string& workload, const std::string& machine,
                  sim::SchedulerKind scheduler,
                  const std::string& variant = "") const;
};

/// Run every cell of the scenario. Aborts (WATS_CHECK) when the spec does
/// not validate — callers wanting graceful errors run validate_scenario
/// first.
ScenarioResult run_scenario(const ScenarioSpec& spec);

}  // namespace wats::scenario
