#include "scenario/replay.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>

#include "obs/json.hpp"

namespace wats::scenario {

namespace {

void add_error(std::vector<std::string>* errors, const std::string& msg) {
  if (errors != nullptr) errors->push_back(msg);
}

/// Relative speed from a track label like "core 3 (group 1, 1.80x)";
/// false when the label carries no speed suffix ("policy", "helper").
bool speed_from_label(const std::string& label, double* out) {
  const std::size_t x = label.rfind("x)");
  const std::size_t comma = label.rfind(", ");
  if (x == std::string::npos || comma == std::string::npos || comma + 2 >= x ||
      x + 2 != label.size()) {
    return false;
  }
  const std::string digits = label.substr(comma + 2, x - comma - 2);
  char* end = nullptr;
  const double v = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0' || v <= 0.0) return false;
  *out = v;
  return true;
}

struct ReplayedTask {
  double arrival = 0.0;
  std::size_t class_index = 0;
  double work = 0.0;
};

}  // namespace

workloads::BenchmarkSpec replay_workload_from_trace(
    const std::string& trace_json, const std::string& name,
    std::vector<std::string>* errors) {
  workloads::BenchmarkSpec spec;
  spec.name = name;
  spec.kind = workloads::BenchKind::kReplay;

  std::string parse_error;
  const auto root = obs::parse_json(trace_json, &parse_error);
  if (!root) {
    add_error(errors, "trace is not valid JSON: " + parse_error);
    return spec;
  }
  const obs::JsonValue* events = root->find("traceEvents");
  if (events == nullptr ||
      events->type() != obs::JsonValue::Type::kArray) {
    add_error(errors, "trace has no traceEvents array");
    return spec;
  }

  // Pass 1: track speeds from thread_name metadata.
  std::map<int, double> speed_by_tid;
  for (const auto& e : events->as_array()) {
    if (e.string_or("ph", "") != "M" ||
        e.string_or("name", "") != "thread_name") {
      continue;
    }
    const obs::JsonValue* args = e.find("args");
    if (args == nullptr) continue;
    double speed = 0.0;
    if (speed_from_label(args->string_or("name", ""), &speed)) {
      speed_by_tid[static_cast<int>(e.number_or("tid", -1.0))] = speed;
    }
  }

  // Pass 2: task slices. Segments sharing an args.task id merge (snatch
  // re-execution splits one task across cores); slices without an id —
  // the runtime export — are one task each.
  std::vector<ReplayedTask> tasks;
  std::map<double, std::size_t> task_by_id;
  std::map<std::string, std::size_t> class_by_name;
  std::size_t slices = 0;
  for (const auto& e : events->as_array()) {
    if (e.string_or("ph", "") != "X" || e.string_or("cat", "") != "task") {
      continue;
    }
    ++slices;
    const std::string cls = e.string_or("name", "");
    const double ts = e.number_or("ts", 0.0);
    const double dur = e.number_or("dur", 0.0);
    const int tid = static_cast<int>(e.number_or("tid", -1.0));
    const auto speed_it = speed_by_tid.find(tid);
    const double speed =
        speed_it != speed_by_tid.end() ? speed_it->second : 1.0;

    const auto cls_it = class_by_name.find(cls);
    std::size_t class_index;
    if (cls_it != class_by_name.end()) {
      class_index = cls_it->second;
    } else {
      class_index = spec.classes.size();
      class_by_name.emplace(cls, class_index);
      workloads::TaskClassSpec c;
      c.name = cls;
      spec.classes.push_back(c);
    }

    const obs::JsonValue* args = e.find("args");
    const obs::JsonValue* task_id =
        args != nullptr ? args->find("task") : nullptr;
    if (task_id != nullptr) {
      const auto it = task_by_id.find(task_id->as_number());
      if (it != task_by_id.end()) {
        auto& t = tasks[it->second];
        t.arrival = std::min(t.arrival, ts);
        t.work += dur * speed;
        continue;
      }
      task_by_id.emplace(task_id->as_number(), tasks.size());
    }
    tasks.push_back({ts, class_index, dur * speed});
  }
  if (tasks.empty()) {
    add_error(errors, "trace has no task slices (ph \"X\", cat \"task\")");
    return spec;
  }

  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const ReplayedTask& a, const ReplayedTask& b) {
                     return a.arrival < b.arrival;
                   });
  const double t0 = tasks.front().arrival;
  spec.replay_tasks.reserve(tasks.size());
  for (const auto& t : tasks) {
    spec.replay_tasks.push_back({t.arrival - t0, t.class_index, t.work});
  }

  // Back-fill per-class statistics (informational: replay tasks carry
  // their own work, but the class means keep tables and serialized
  // scenario files readable).
  std::vector<double> sum(spec.classes.size(), 0.0);
  std::vector<double> sum_sq(spec.classes.size(), 0.0);
  std::vector<std::size_t> count(spec.classes.size(), 0);
  for (const auto& t : spec.replay_tasks) {
    sum[t.class_index] += t.work;
    sum_sq[t.class_index] += t.work * t.work;
    ++count[t.class_index];
  }
  for (std::size_t c = 0; c < spec.classes.size(); ++c) {
    if (count[c] == 0) continue;
    const double n = static_cast<double>(count[c]);
    const double mean = sum[c] / n;
    const double var = std::max(0.0, sum_sq[c] / n - mean * mean);
    spec.classes[c].mean_work = mean;
    spec.classes[c].cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;
    spec.classes[c].tasks_per_batch = count[c];
  }
  (void)slices;
  return spec;
}

ScenarioSpec replay_scenario_from_trace(const std::string& trace_json,
                                        const std::string& name,
                                        const std::string& machine,
                                        std::vector<std::string>* errors) {
  ScenarioSpec scenario;
  scenario.name = name;
  scenario.description = "replayed from a recorded trace";
  scenario.machines = {machine};
  scenario.schedulers = {sim::SchedulerKind::kCilk, sim::SchedulerKind::kWats};
  scenario.repeats = 1;
  scenario.inline_workloads = {
      replay_workload_from_trace(trace_json, name, errors)};
  return scenario;
}

}  // namespace wats::scenario
