#include "scenario/registry.hpp"

#include "core/topology.hpp"
#include "workloads/scenarios.hpp"

namespace wats::scenario {

namespace {

using K = sim::SchedulerKind;

std::vector<std::string> table2_names() {
  std::vector<std::string> names;
  for (const auto& t : core::amc_table2()) names.push_back(t.name());
  return names;
}

std::vector<std::string> paper_names() {
  std::vector<std::string> names;
  for (const auto& s : workloads::paper_benchmarks()) names.push_back(s.name);
  return names;
}

std::vector<std::string> catalog_names() {
  std::vector<std::string> names;
  for (const auto& s : workloads::scenario_catalog()) names.push_back(s.name);
  return names;
}

ScenarioSpec fig6() {
  ScenarioSpec s;
  s.name = "fig6";
  s.description =
      "Fig. 6: all Table III benchmarks under Cilk/PFT/RTS/WATS on "
      "AMC1/AMC2/AMC5, normalized to Cilk";
  s.machines = {"AMC1", "AMC2", "AMC5"};
  s.workloads = paper_names();
  s.schedulers = {K::kCilk, K::kPft, K::kRts, K::kWats};
  s.repeats = 15;
  return s;
}

ScenarioSpec fig7() {
  ScenarioSpec s;
  s.name = "fig7";
  s.description =
      "Fig. 7: GA under Cilk/PFT/RTS/WATS on all seven Table II machines";
  s.machines = table2_names();
  s.workloads = {"GA"};
  s.schedulers = {K::kCilk, K::kPft, K::kRts, K::kWats};
  s.repeats = 15;
  return s;
}

ScenarioSpec fig8() {
  ScenarioSpec s;
  s.name = "fig8";
  s.description =
      "Fig. 8: GA workload mixes (alpha sweep) under Cilk/PFT/RTS/WATS on "
      "AMC5";
  s.machines = {"AMC5"};
  for (std::size_t alpha :
       {0u, 4u, 8u, 12u, 16u, 20u, 24u, 28u, 32u, 36u, 40u, 42u}) {
    s.workloads.push_back("GAmix:" + std::to_string(alpha));
  }
  s.schedulers = {K::kCilk, K::kPft, K::kRts, K::kWats};
  s.repeats = 15;
  return s;
}

ScenarioSpec fig9() {
  ScenarioSpec s;
  s.name = "fig9";
  s.description =
      "Fig. 9: GA under Cilk/PFT/WATS-NP/WATS on all Table II machines";
  s.machines = table2_names();
  s.workloads = {"GA"};
  s.schedulers = {K::kCilk, K::kPft, K::kWatsNp, K::kWats};
  s.repeats = 15;
  return s;
}

ScenarioSpec fig10() {
  ScenarioSpec s;
  s.name = "fig10";
  s.description =
      "Fig. 10: WATS vs WATS-TS over all Table III benchmarks on AMC2";
  s.machines = {"AMC2"};
  s.workloads = paper_names();
  s.schedulers = {K::kWats, K::kWatsTs};
  s.repeats = 15;
  return s;
}

ScenarioSpec full_grid() {
  ScenarioSpec s;
  s.name = "full-grid";
  s.description =
      "WATS gain over Cilk for every Table III benchmark on every Table II "
      "machine";
  s.machines = table2_names();
  s.workloads = paper_names();
  s.schedulers = {K::kCilk, K::kWats};
  s.repeats = 7;
  return s;
}

ScenarioSpec scenario_catalog() {
  ScenarioSpec s;
  s.name = "scenario-catalog";
  s.description =
      "Extension catalog (bursty/diurnal/fanout/criticality) under "
      "Cilk/RTS/WATS on AMC5";
  s.machines = {"AMC5"};
  s.workloads = catalog_names();
  s.schedulers = {K::kCilk, K::kRts, K::kWats};
  s.repeats = 10;
  return s;
}

ScenarioSpec diurnal_estimator() {
  ScenarioSpec s;
  s.name = "diurnal-estimator";
  s.description =
      "DiurnalPhases under WATS: running-mean vs EWMA history estimator";
  s.machines = {"AMC5"};
  s.workloads = {"DiurnalPhases"};
  s.schedulers = {K::kWats};
  s.repeats = 10;
  s.variants = {
      {"running_mean", {{"estimator", "running_mean"}}},
      {"ewma", {{"estimator", "ewma"}, {"ewma_alpha", "0.3"}}},
  };
  return s;
}

ScenarioSpec mixed_criticality() {
  ScenarioSpec s;
  s.name = "mixed-criticality";
  s.description =
      "MixedCriticality: critical-class wait time under Cilk/WATS/WATS-M";
  s.machines = {"AMC5"};
  s.workloads = {"MixedCriticality"};
  s.schedulers = {K::kCilk, K::kWats, K::kWatsM};
  s.repeats = 1;
  return s;
}

ScenarioSpec multiprogram() {
  ScenarioSpec s;
  s.name = "multiprogram";
  s.description =
      "Two applications co-scheduled on one machine under Cilk vs WATS";
  s.machines = {"AMC2", "AMC5"};
  s.workloads = {"GA+Ferret", "SHA-1+Ferret", "GA+SHA-1"};
  s.schedulers = {K::kCilk, K::kWats};
  s.repeats = 7;
  return s;
}

ScenarioSpec ablation_steal_cost() {
  ScenarioSpec s;
  s.name = "ablation-steal-cost";
  s.description = "Ablation 1: steal-cost sweep (GA, AMC5)";
  s.machines = {"AMC5"};
  s.workloads = {"GA"};
  s.schedulers = {K::kCilk, K::kPft, K::kWats};
  s.repeats = 5;
  for (const char* c : {"0", "0.05", "0.5", "2", "8"}) {
    s.variants.push_back({c, {{"steal_cost", c}}});
  }
  return s;
}

ScenarioSpec ablation_snatch() {
  ScenarioSpec s;
  s.name = "ablation-snatch";
  s.description =
      "Ablation 2: snatch cost x cold-migration redo (GA, AMC5). WATS "
      "never snatches, so its column is the constant base";
  s.machines = {"AMC5"};
  s.workloads = {"GA"};
  s.schedulers = {K::kRts, K::kWatsTs, K::kWats};
  s.repeats = 5;
  for (const char* cost : {"0", "8", "25", "100"}) {
    for (const char* redo : {"0", "0.5", "1"}) {
      s.variants.push_back(
          {std::string(cost) + "/" + redo,
           {{"snatch_cost", cost}, {"snatch_redo_fraction", redo}}});
    }
  }
  return s;
}

ScenarioSpec ablation_recluster() {
  ScenarioSpec s;
  s.name = "ablation-recluster";
  s.description = "Ablation 3: helper-thread recluster cadence (GA, AMC5)";
  s.machines = {"AMC5"};
  s.workloads = {"GA"};
  s.schedulers = {K::kWats};
  s.repeats = 5;
  for (const char* period : {"0", "10", "100", "1000"}) {
    s.variants.push_back({period, {{"recluster_period", period}}});
  }
  return s;
}

ScenarioSpec ablation_batches() {
  ScenarioSpec s;
  s.name = "ablation-batches";
  s.description = "Ablation 4: history warm-up — batches per run (GA, AMC5)";
  s.machines = {"AMC5"};
  s.workloads = {"GA"};
  s.schedulers = {K::kCilk, K::kWats};
  s.repeats = 5;
  for (const char* batches : {"1", "2", "4", "8", "16", "32"}) {
    s.variants.push_back({batches, {{"batches", batches}}});
  }
  return s;
}

ScenarioSpec ablation_main_placement() {
  ScenarioSpec s;
  s.name = "ablation-main-placement";
  s.description =
      "Ablation 5: main task on the fastest vs a random core (GA, AMC5)";
  s.machines = {"AMC5"};
  s.workloads = {"GA"};
  s.schedulers = {K::kCilk, K::kPft, K::kWats};
  s.repeats = 5;
  s.sim.spawn_cost = 0.05;  // placement only matters with serial spawns
  s.variants = {
      {"fastest", {{"main_on_fastest", "true"}}},
      {"random", {{"main_on_fastest", "false"}}},
  };
  return s;
}

ScenarioSpec ablation_allocator() {
  ScenarioSpec s;
  s.name = "ablation-allocator";
  s.description =
      "Ablation 6: recluster allocator — Algorithm 1 vs dual approximation "
      "(GA)";
  s.machines = {"AMC1", "AMC2", "AMC5"};
  s.workloads = {"GA"};
  s.schedulers = {K::kWats};
  s.repeats = 5;
  s.variants = {
      {"algorithm1", {{"cluster_algorithm", "algorithm1"}}},
      {"dual", {{"cluster_algorithm", "dual"}}},
  };
  return s;
}

ScenarioSpec ablation_steal_victim() {
  ScenarioSpec s;
  s.name = "ablation-steal-victim";
  s.description =
      "Ablation 7: steal-victim selection — random vs richest (Dedup, AMC5)";
  s.machines = {"AMC5"};
  s.workloads = {"Dedup"};
  s.schedulers = {K::kPft, K::kWats};
  s.repeats = 5;
  s.variants = {
      {"random", {{"steal_victim", "random"}}},
      {"richest", {{"steal_victim", "richest"}}},
  };
  return s;
}

ScenarioSpec at_scale() {
  ScenarioSpec s;
  s.name = "at-scale";
  s.description =
      "Plan-repair scale probe: 10k task classes on 256/512/1024-core "
      "four-speed machines under WATS, incremental repair vs full rebuild";
  s.machines = {"64x3.0+64x2.2+64x1.5+64x0.8",
                "128x3.0+128x2.2+128x1.5+128x0.8",
                "256x3.0+256x2.2+256x1.5+256x0.8"};
  s.inline_workloads = {at_scale_workload(10000)};
  s.schedulers = {K::kWats};
  s.repeats = 1;
  s.variants = {
      {"repair", {{"plan_repair", "on"}}},
      {"rebuild", {{"plan_repair", "off"}}},
  };
  return s;
}

ScenarioSpec dvfs_sweep() {
  ScenarioSpec s;
  s.name = "dvfs-sweep";
  s.description =
      "DVFS governor sweep: static vs race-to-idle / pace-to-deadline / "
      "cmpi-aware on a 2-fast+6-slow machine whose slow c-group has real "
      "slack (plus MemboundMix for the CMPI-aware cells)";
  s.machines = {"2x2.5+6x2.0"};
  s.inline_workloads = {dvfs_workload()};
  s.workloads = {"MemboundMix"};
  // WATS-NP keeps groups partitioned (no cross-group stealing), so the
  // slack the pace governor prices away is real; WATS shows how stealing
  // interacts with down-clocked groups.
  s.schedulers = {K::kWatsNp, K::kWats};
  s.repeats = 3;
  // Idle cores burn a quarter of dynamic power across ALL variants, so
  // the energy columns are comparable and race-to-idle has a signal.
  s.sim.governor.energy.idle_factor = 0.25;
  s.variants = {
      {"static", {}},
      {"race-to-idle",
       {{"governor", "race-to-idle"}, {"dvfs_levels", "8"}}},
      {"pace-to-deadline",
       {{"governor", "pace-to-deadline"}, {"dvfs_levels", "8"}}},
      {"cmpi-aware",
       {{"governor", "cmpi-aware"}, {"dvfs_levels", "8"}}},
  };
  return s;
}

ScenarioSpec dvfs_smoke() {
  ScenarioSpec s;
  s.name = "dvfs-smoke";
  s.description =
      "DVFS smoke cell: static vs pace-to-deadline on the dvfs workload, "
      "one repeat — the deterministic cell wats_perf's dvfs probe and the "
      "CI artifact step run";
  s.machines = {"2x2.5+6x2.0"};
  s.inline_workloads = {dvfs_workload()};
  s.schedulers = {K::kWatsNp};
  s.repeats = 1;
  s.sim.governor.energy.idle_factor = 0.25;
  s.variants = {
      {"static", {}},
      {"pace-to-deadline",
       {{"governor", "pace-to-deadline"}, {"dvfs_levels", "8"}}},
  };
  return s;
}

ScenarioSpec step_drift() {
  ScenarioSpec s;
  s.name = "step-drift";
  s.description =
      "Nonstationary demo: a class's workload steps 16x mid-run. Frozen "
      "running-mean WATS keeps mis-placing it; change-point history decay "
      "re-places it within a few batches";
  s.machines = {"AMC5"};
  s.inline_workloads = {step_drift_workload()};
  s.schedulers = {K::kWats};
  s.repeats = 5;
  s.variants = {
      {"frozen", {{"change_point", "off"}}},
      {"adaptive", {{"change_point", "on"}}},
  };
  return s;
}

}  // namespace

workloads::BenchmarkSpec step_drift_workload() {
  workloads::BenchmarkSpec s;
  s.name = "StepDrift";
  s.kind = workloads::BenchKind::kBatch;
  // Before the drift, shifty_worker's tasks are light (10) next to
  // steady_worker (100); from batch 10 onwards they step to 160 — now THE
  // heaviest class. The frozen running mean needs 15 more batches
  // ((400 + 640k) / (40 + 4k) > 100 <=> k > 15) before its estimate even
  // crosses steady_worker's, so Algorithm 1 keeps the four drifted tasks
  // on the slow c-group — whose cores start them immediately, leaving
  // nothing for idle fast cores to steal — for half the post-drift run.
  // The detector decays the stale history within one batch of the step.
  s.classes = {
      {"shifty_worker", 10.0, 0.05, 4, 1.0},
      {"steady_worker", 100.0, 0.05, 24, 1.0},
  };
  s.batches = 40;
  s.phases = {{10, {16.0, 1.0}}};
  return s;
}

workloads::BenchmarkSpec dvfs_workload() {
  workloads::BenchmarkSpec s;
  s.name = "DvfsSlack";
  s.kind = workloads::BenchKind::kBatch;
  // Six equal classes on "2x2.5+6x2.0" (capacities 5 and 12, TL ~= 21176
  // per batch): Algorithm 1's TL-walk puts two classes on the fast group
  // (finish 24000 — the batch makespan) and four on the slow one (finish
  // 20000), leaving the slow group ~17% of slack under the critical
  // group. Zero variance makes the learned means exact after one batch,
  // so the plan — and the slack the governor prices — is stable.
  s.classes.reserve(6);
  for (int i = 0; i < 6; ++i) {
    s.classes.push_back({"dvfs_c" + std::to_string(i), 2400.0, 0.0, 25, 1.0});
  }
  s.batches = 4;
  return s;
}

workloads::BenchmarkSpec at_scale_workload(std::size_t classes) {
  workloads::BenchmarkSpec s;
  s.name = "AtScale" + std::to_string(classes);
  s.kind = workloads::BenchKind::kBatch;
  s.classes.reserve(classes);
  for (std::size_t i = 0; i < classes; ++i) {
    // Deterministic heterogeneous means: two interleaved residue patterns
    // spread the classes over ~two decades of workload, so Algorithm 1
    // faces real placement decisions at every class count (an all-equal
    // weight vector would make the partition trivial).
    const double mean = 1.0 + static_cast<double>(i % 97) +
                        7.5 * static_cast<double>(i % 13);
    s.classes.push_back({"c" + std::to_string(i), mean, 0.1, 1, 1.0});
  }
  s.batches = 1;
  return s;
}

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> all{
      fig6(),
      fig7(),
      fig8(),
      fig9(),
      fig10(),
      full_grid(),
      scenario_catalog(),
      diurnal_estimator(),
      mixed_criticality(),
      multiprogram(),
      ablation_steal_cost(),
      ablation_snatch(),
      ablation_recluster(),
      ablation_batches(),
      ablation_main_placement(),
      ablation_allocator(),
      ablation_steal_victim(),
      step_drift(),
      at_scale(),
      dvfs_sweep(),
      dvfs_smoke(),
  };
  return all;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const auto& s : builtin_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace wats::scenario
