#include "scenario/spec.hpp"

#include <cstdlib>
#include <sstream>

#include "core/topology.hpp"
#include "workloads/scenarios.hpp"

namespace wats::scenario {

namespace {

void add_error(std::vector<std::string>* errors, const std::string& msg) {
  if (errors != nullptr) errors->push_back(msg);
}

bool parse_double(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_uint(const std::string& text, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_bool(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "on" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "off" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

/// Resolve one workload name to specs; empty vector = unknown.
std::vector<workloads::BenchmarkSpec> resolve_one(
    const ScenarioSpec& scenario, const std::string& name) {
  for (const auto& inl : scenario.inline_workloads) {
    if (inl.name == name) return {inl};
  }
  if (const auto* named = workloads::find_spec(name)) return {*named};
  if (name == "MemboundMix") return {workloads::membound_mix()};
  if (name.rfind("GAmix:", 0) == 0) {
    std::uint64_t alpha = 0;
    if (!parse_uint(name.substr(6), &alpha) || 3 * alpha > 128) return {};
    return {workloads::ga_mix(static_cast<std::size_t>(alpha))};
  }
  // "A+B": a multiprogrammed co-run (members must themselves resolve to
  // single applications).
  const auto plus = name.find('+');
  if (plus != std::string::npos && plus > 0 && plus + 1 < name.size()) {
    auto left = resolve_one(scenario, name.substr(0, plus));
    auto right = resolve_one(scenario, name.substr(plus + 1));
    if (left.size() == 1 && right.size() == 1) {
      return {std::move(left[0]), std::move(right[0])};
    }
  }
  return {};
}

}  // namespace

bool scheduler_from_string(const std::string& name, sim::SchedulerKind* out) {
  using K = sim::SchedulerKind;
  for (K k : {K::kCilk, K::kPft, K::kRts, K::kWats, K::kWatsNp, K::kWatsTs,
              K::kWatsM, K::kLptOracle}) {
    if (core::policy::to_string(k) == name) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::vector<ResolvedWorkload> resolve_workloads(
    const ScenarioSpec& spec, std::vector<std::string>* errors) {
  std::vector<ResolvedWorkload> resolved;
  for (const auto& inl : spec.inline_workloads) {
    resolved.push_back({inl.name, {inl}});
  }
  for (const auto& name : spec.workloads) {
    // Inline specs double as named entries; skip duplicates.
    bool is_inline = false;
    for (const auto& inl : spec.inline_workloads) {
      is_inline |= inl.name == name;
    }
    if (is_inline) continue;
    auto specs = resolve_one(spec, name);
    if (specs.empty()) {
      add_error(errors, "unknown workload '" + name + "'");
      continue;
    }
    resolved.push_back({name, std::move(specs)});
  }
  return resolved;
}

bool apply_knob(const KnobAssignment& knob, sim::ExperimentConfig& config,
                std::vector<workloads::BenchmarkSpec>& specs,
                std::vector<std::string>* errors) {
  const auto bad_value = [&] {
    add_error(errors, "knob '" + knob.key + "': bad value '" + knob.value +
                          "'");
    return false;
  };
  double d = 0.0;
  std::uint64_t u = 0;
  bool b = false;
  if (knob.key == "steal_cost") {
    if (!parse_double(knob.value, &d)) return bad_value();
    config.sim.steal_cost = d;
  } else if (knob.key == "snatch_cost") {
    if (!parse_double(knob.value, &d)) return bad_value();
    config.sim.snatch_cost = d;
  } else if (knob.key == "snatch_redo_fraction") {
    if (!parse_double(knob.value, &d)) return bad_value();
    config.sim.snatch_redo_fraction = d;
  } else if (knob.key == "spawn_cost") {
    if (!parse_double(knob.value, &d)) return bad_value();
    config.sim.spawn_cost = d;
  } else if (knob.key == "recluster_period") {
    if (!parse_double(knob.value, &d)) return bad_value();
    config.sim.recluster_period = d;
  } else if (knob.key == "main_on_fastest") {
    if (!parse_bool(knob.value, &b)) return bad_value();
    config.sim.main_on_fastest = b;
  } else if (knob.key == "cluster_algorithm") {
    if (knob.value == "algorithm1") {
      config.sim.cluster_algorithm = core::ClusterAlgorithm::kAlgorithm1;
    } else if (knob.value == "dual") {
      config.sim.cluster_algorithm = core::ClusterAlgorithm::kDualApprox;
    } else {
      return bad_value();
    }
  } else if (knob.key == "plan_repair") {
    if (!parse_bool(knob.value, &b)) return bad_value();
    config.sim.plan_repair.enabled = b;
  } else if (knob.key == "repair_drift_threshold") {
    if (!parse_double(knob.value, &d) || d < 0.0) return bad_value();
    config.sim.plan_repair.drift_threshold = d;
  } else if (knob.key == "steal_victim") {
    if (knob.value == "random") {
      config.sim.steal_victim = sim::SimConfig::StealVictim::kRandom;
    } else if (knob.value == "richest") {
      config.sim.steal_victim = sim::SimConfig::StealVictim::kRichest;
    } else {
      return bad_value();
    }
  } else if (knob.key == "estimator") {
    if (knob.value == "running_mean") {
      config.estimator = core::WorkloadEstimator::kRunningMean;
    } else if (knob.value == "ewma") {
      config.estimator = core::WorkloadEstimator::kEwma;
    } else {
      return bad_value();
    }
  } else if (knob.key == "ewma_alpha") {
    if (!parse_double(knob.value, &d) || d <= 0.0 || d > 1.0) {
      return bad_value();
    }
    config.ewma_alpha = d;
  } else if (knob.key == "change_point") {
    if (!parse_bool(knob.value, &b)) return bad_value();
    config.change_point.enabled = b;
  } else if (knob.key == "cp_slack") {
    if (!parse_double(knob.value, &d) || d < 0.0) return bad_value();
    config.change_point.slack = d;
  } else if (knob.key == "cp_threshold") {
    if (!parse_double(knob.value, &d) || d <= 0.0) return bad_value();
    config.change_point.threshold = d;
  } else if (knob.key == "cp_min_samples") {
    if (!parse_uint(knob.value, &u)) return bad_value();
    config.change_point.min_samples = u;
  } else if (knob.key == "cp_decay_to") {
    if (!parse_uint(knob.value, &u)) return bad_value();
    config.change_point.decay_to = u;
  } else if (knob.key == "governor") {
    core::GovernorPolicy policy = core::GovernorPolicy::kStatic;
    if (!core::governor_policy_from_string(knob.value, &policy)) {
      return bad_value();
    }
    config.sim.governor.policy = policy;
  } else if (knob.key == "dvfs_levels") {
    if (!parse_uint(knob.value, &u)) return bad_value();
    config.sim.governor.dvfs_levels = static_cast<std::size_t>(u);
  } else if (knob.key == "pace_epsilon") {
    if (!parse_double(knob.value, &d) || d < 0.0) return bad_value();
    config.sim.governor.pace_epsilon = d;
  } else if (knob.key == "cmpi_slowdown_cap") {
    if (!parse_double(knob.value, &d) || d < 1.0) return bad_value();
    config.sim.governor.cmpi_slowdown_cap = d;
  } else if (knob.key == "governor_tick") {
    if (!parse_double(knob.value, &d) || d <= 0.0) return bad_value();
    config.sim.governor.tick_period = d;
  } else if (knob.key == "idle_factor") {
    if (!parse_double(knob.value, &d) || d < 0.0 || d > 1.0) {
      return bad_value();
    }
    config.sim.governor.energy.idle_factor = d;
  } else if (knob.key == "batches") {
    if (!parse_uint(knob.value, &u) || u == 0) return bad_value();
    for (auto& s : specs) s.batches = static_cast<std::size_t>(u);
  } else if (knob.key == "repeats") {
    if (!parse_uint(knob.value, &u) || u == 0) return bad_value();
    config.repeats = static_cast<std::size_t>(u);
  } else if (knob.key == "seed") {
    if (!parse_uint(knob.value, &u)) return bad_value();
    config.base_seed = u;
  } else {
    add_error(errors, "unknown knob '" + knob.key + "'");
    return false;
  }
  return true;
}

sim::ExperimentConfig experiment_config(
    const ScenarioSpec& spec, const ScenarioVariant& variant,
    std::vector<workloads::BenchmarkSpec>& specs,
    std::vector<std::string>* errors) {
  sim::ExperimentConfig config;
  config.sim = spec.sim;
  config.repeats = spec.repeats;
  config.base_seed = spec.base_seed;
  config.estimator = spec.estimator;
  config.ewma_alpha = spec.ewma_alpha;
  config.change_point = spec.change_point;
  for (const auto& knob : variant.knobs) {
    apply_knob(knob, config, specs, errors);
  }
  return config;
}

std::vector<std::string> validate_scenario(const ScenarioSpec& spec) {
  std::vector<std::string> errors;
  if (spec.name.empty()) errors.push_back("scenario has no name");
  if (spec.machines.empty()) errors.push_back("no machines");
  if (spec.schedulers.empty()) errors.push_back("no schedulers");
  if (spec.repeats == 0) errors.push_back("repeats must be >= 1");
  if (spec.workloads.empty() && spec.inline_workloads.empty()) {
    errors.push_back("no workloads");
  }
  for (const auto& m : spec.machines) {
    // amc_by_name_or_spec aborts on bad input, so pre-check here: either
    // a Table II name, or an inline "NxF+NxF" spec whose every group
    // parses as <count>x<frequency>.
    bool known = false;
    for (const auto& t : core::amc_table2()) known |= t.name() == m;
    if (!known && m.find('x') != std::string::npos) {
      known = true;
      std::size_t pos = 0;
      while (pos <= m.size()) {
        std::size_t plus = m.find('+', pos);
        if (plus == std::string::npos) plus = m.size();
        const std::string group = m.substr(pos, plus - pos);
        const std::size_t x = group.find('x');
        std::uint64_t count = 0;
        double freq = 0.0;
        known &= x != std::string::npos && x > 0 && x + 1 < group.size() &&
                 parse_uint(group.substr(0, x), &count) &&
                 parse_double(group.substr(x + 1), &freq) && freq > 0.0;
        pos = plus + 1;
      }
    }
    if (!known) errors.push_back("unknown machine '" + m + "'");
  }
  resolve_workloads(spec, &errors);
  for (const auto& inl : spec.inline_workloads) {
    if (inl.name.empty()) errors.push_back("inline workload has no name");
    const std::string where = "inline workload '" + inl.name + "': ";
    if (inl.classes.empty()) errors.push_back(where + "no classes");
    switch (inl.kind) {
      case workloads::BenchKind::kBatch:
        if (inl.batches == 0) errors.push_back(where + "batches must be >= 1");
        if (inl.tasks_per_batch() == 0) {
          errors.push_back(where + "no class has tasks_per_batch > 0");
        }
        break;
      case workloads::BenchKind::kPipeline:
        if (inl.pipeline_items == 0) {
          errors.push_back(where + "pipeline_items must be >= 1");
        }
        break;
      case workloads::BenchKind::kReplay:
        if (inl.replay_tasks.empty()) {
          errors.push_back(where + "replay workload has no tasks");
        }
        for (const auto& rec : inl.replay_tasks) {
          if (rec.class_index >= inl.classes.size()) {
            errors.push_back(where + "replay task class index out of range");
            break;
          }
        }
        break;
    }
    for (const auto& phase : inl.phases) {
      if (phase.class_scale.size() != inl.classes.size()) {
        errors.push_back(where + "phase at batch " +
                         std::to_string(phase.start_batch) + " has " +
                         std::to_string(phase.class_scale.size()) +
                         " scales for " + std::to_string(inl.classes.size()) +
                         " classes");
      }
    }
  }
  // Variant knobs must at least parse (applied against a scratch config).
  for (const auto& variant : spec.variants) {
    if (variant.label.empty()) errors.push_back("variant has no label");
    sim::ExperimentConfig scratch;
    std::vector<workloads::BenchmarkSpec> scratch_specs;
    for (const auto& knob : variant.knobs) {
      apply_knob(knob, scratch, scratch_specs, &errors);
    }
  }
  return errors;
}

}  // namespace wats::scenario
