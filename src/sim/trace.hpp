// Execution trace recording for the simulator: per-core execution
// segments (including partial segments ended by a snatch), plus a text
// Gantt renderer used by the examples and the trace tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/task_class.hpp"
#include "core/topology.hpp"
#include "sim/task.hpp"

namespace wats::sim {

struct TraceSegment {
  double start = 0.0;
  double end = 0.0;
  core::CoreIndex core = 0;
  TaskId task = 0;
  core::TaskClassId cls = core::kNoTaskClass;
  bool preempted = false;  ///< segment ended by a snatch, not completion
  /// When the executing core began acquiring the task (<= start; the
  /// [dispatched, start) window is the steal/snatch latency). Filled by
  /// the engine; hand-built segments may leave it 0 (clamped on use).
  double dispatched = 0.0;
};

/// Task-lifecycle record, one per spawn: when the task became ready and
/// which task spawned it (0 = external / the workload's root). Together
/// with the segments this is the exact span graph the critical-path
/// analyzer (obs/analyze.hpp) walks.
struct TaskLifecycle {
  TaskId id = 0;
  core::TaskClassId cls = core::kNoTaskClass;
  TaskId parent = 0;
  double ready = 0.0;  ///< spawn event time (virtual)
};

class TraceRecorder {
 public:
  void record(TraceSegment segment) { segments_.push_back(segment); }
  void record_spawn(TaskLifecycle lifecycle) {
    lifecycles_.push_back(lifecycle);
  }

  const std::vector<TraceSegment>& segments() const { return segments_; }
  const std::vector<TaskLifecycle>& lifecycles() const {
    return lifecycles_;
  }

  /// Segments of one core, in time order (as recorded).
  std::vector<TraceSegment> core_segments(core::CoreIndex core) const;

  /// Total executed time per core.
  std::vector<double> busy_time(std::size_t core_count) const;

  /// A character-per-time-slot Gantt chart: one row per core, '#' for
  /// busy, '.' for idle, '!' marking a segment that ended in preemption.
  std::string render_gantt(const core::AmcTopology& topo, double makespan,
                           std::size_t width = 80) const;

  /// Sanity invariant used by tests: no two segments on one core overlap.
  bool no_overlaps() const;

 private:
  std::vector<TraceSegment> segments_;
  std::vector<TaskLifecycle> lifecycles_;
};

}  // namespace wats::sim
