// The deterministic virtual-time AMC simulator.
//
// Cores with per-group speeds execute tasks whose durations are
// remaining_work / speed; steals, snatches and spawns cost configurable
// virtual overheads. All randomness draws from one seeded RNG, so a run is
// a pure function of (topology, workload, scheduler, config) — which is
// what lets the benches regenerate the paper's figures bit-reproducibly.
//
// See DESIGN.md §5 for why virtual time replaces the paper's DVFS testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/cluster.hpp"
#include "core/cmpi.hpp"
#include "core/governor.hpp"
#include "core/topology.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace wats::sim {

class Workload;
class TraceRecorder;

struct SimConfig {
  std::uint64_t seed = 1;
  /// Virtual-time cost of a successful steal (lock + deque transfer).
  double steal_cost = 0.05;
  /// Virtual-time cost of a snatch = the paper's Delta_s: the full thread
  /// swap (two context switches, cold caches on both cores) — two to three
  /// orders of magnitude above a steal.
  double snatch_cost = 25.0;
  /// Fraction of the victim's completed work the snatched task must redo
  /// on the thief (cold caches / lost architectural state after the thread
  /// swap). This is what makes snatching a nearly-finished task a net loss
  /// — the effect behind Fig. 10 and the heavy-workload RTS collapse in
  /// Fig. 8.
  double snatch_redo_fraction = 0.75;
  /// Serial per-task spawn cost at the spawning core (staggers task
  /// availability within a batch).
  double spawn_cost = 0.0;
  /// Helper-thread recluster period in virtual time; 0 disables periodic
  /// ticks (the WATS schedulers also recluster on completion by default).
  double recluster_period = 0.0;
  /// §IV-E: "WATS schedules the main task of a parallel program on the
  /// fastest core ... we make all other schedulers launch the main task
  /// on the fastest core" — when false, each batch's spawner is a random
  /// core instead (the ablation the paper alludes to: "if the chosen core
  /// is slow, their performance will be even worse").
  bool main_on_fastest = true;
  /// Static allocator used by the WATS family's recluster step.
  core::ClusterAlgorithm cluster_algorithm =
      core::ClusterAlgorithm::kAlgorithm1;
  /// PartitionPlan publication gate for the WATS family (see
  /// core/partition_plan.hpp). The default skips assignment-identical
  /// candidates only — placement-neutral, so fig6-10 stay bit-identical;
  /// always_republish restores the pre-gate behavior for A/B runs.
  core::PlanGate plan_gate;
  /// Incremental plan repair for the WATS family's recluster ticks
  /// (core/repair.hpp). Bit-exact — fig6-10 stay bit-identical — so it
  /// defaults on; disable for full-rebuild latency baselines.
  core::PlanRepairConfig plan_repair;
  /// Steal-victim selection for the deque-based schedulers (PFT, WATS
  /// family): uniformly random victim (the paper's policy) or the victim
  /// with the most queued work ("steal from the richest" variant).
  enum class StealVictim { kRandom, kRichest } steal_victim =
      StealVictim::kRandom;
  /// §IV-E divide-and-conquer fallback for the WATS family: when the
  /// observed self-recursive spawn fraction exceeds dnc_threshold after
  /// dnc_min_spawns spawns, degrade to plain random stealing. Only
  /// workloads that tag SimTask::parent feed the detector, so runs that
  /// never set it are unaffected.
  bool dnc_fallback = true;
  double dnc_threshold = 0.5;
  std::uint64_t dnc_min_spawns = 64;
  /// DVFS governor (core/governor.hpp). The kStatic default publishes
  /// no SpeedPlans, schedules no events and draws no randomness, so it
  /// is bit-identical to the pre-governor engine; active policies tick
  /// every governor.tick_period of virtual time and re-price in-flight
  /// work at each published swap.
  core::GovernorConfig governor;
};

struct RunStats {
  double makespan = 0.0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t steals = 0;    ///< successful cross-core steals
  std::uint64_t snatches = 0;  ///< successful snatches (RTS / WATS-TS)
  /// Plan pipeline (WATS family; zero for kernels without one): plans
  /// readers were swung to vs candidates the gate declined, and the epoch
  /// of the final published plan.
  std::uint64_t plans_published = 0;
  std::uint64_t plans_skipped = 0;
  std::uint64_t plan_epoch = 0;
  /// Candidates built by the incremental repair path, and full rebuilds
  /// its drift bound forced (see core/repair.hpp).
  std::uint64_t plan_repairs = 0;
  std::uint64_t repair_fallbacks = 0;
  std::uint64_t failed_acquires = 0;  ///< idle offers that found nothing
  /// History decays performed by the change-point detector (zero unless
  /// ExperimentConfig::change_point is enabled).
  std::uint64_t history_resets = 0;
  /// Discrete events processed by the engine's loop (spawns, finishes,
  /// recluster ticks) — the denominator of the sim events/sec throughput
  /// metric in wats_run's JSON artifact.
  std::uint64_t sim_events = 0;
  double total_work = 0.0;     ///< F1-normalized work units completed
  std::vector<double> busy_time;      ///< per-core time spent executing
  std::vector<double> overhead_time;  ///< per-core steal/snatch latency
  std::uint64_t spawned = 0;
  /// Per-task scheduling delay (spawn -> first execution start); snatched
  /// tasks contribute only their first wait.
  util::RunningStat wait_time;
  /// Same, broken out per task class (indexed by TaskClassId; classes the
  /// run never executed have empty stats).
  std::vector<util::RunningStat> wait_time_by_class;

  /// First-class energy accounting (SimConfig::governor.energy model):
  /// dynamic power integrated piecewise over every busy segment at the
  /// frequency in effect during that segment, plus idle draw (see
  /// EnergyModel::idle_factor) and the static floor across the makespan.
  /// With a kStatic governor this agrees with the legacy energy() method
  /// below (up to floating-point association).
  double energy_joules = 0.0;
  /// Energy-delay product: energy_joules * makespan.
  double edp = 0.0;
  /// Governor activity (all zero under kStatic): policy evaluations,
  /// per-group frequency changes applied, and the epoch of the final
  /// published SpeedPlan.
  std::uint64_t governor_ticks = 0;
  std::uint64_t speed_swaps = 0;
  std::uint64_t speed_plan_epoch = 0;

  /// Machine utilization: busy time weighted by capacity vs elapsed time.
  double utilization(const core::AmcTopology& topo) const;

  /// Total energy of the run under the given model: dynamic power during
  /// busy time at each core's frequency plus static power for the whole
  /// makespan on every core.
  double energy(const core::AmcTopology& topo,
                const core::EnergyModel& model) const;
};

class Engine {
 public:
  Engine(const core::AmcTopology& topo, const SimConfig& config,
         Scheduler& scheduler, Workload& workload);

  /// Run to completion and return the statistics. Single-shot.
  RunStats run();

  // ---- Services for Scheduler / Workload implementations ----

  const core::AmcTopology& topology() const { return topo_; }
  const SimConfig& config() const { return config_; }
  util::Xoshiro256& rng() { return rng_; }
  double now() const { return now_; }

  /// Live per-group speed reader (base frequencies under kStatic). The
  /// view borrows the engine's governor; it is valid for the engine's
  /// lifetime and is what the serving layer prices capacity through.
  core::SpeedView speed_view() const {
    return core::SpeedView(&topo_, &governor_);
  }

  /// CURRENT speed (GHz) of a core — the governed group frequency, not
  /// the topology constant.
  double core_speed(core::CoreIndex core) const;

  /// Effective execution speed of a task on a core, accounting for the
  /// task's frequency-scalable fraction (§IV-E): memory-stall time does
  /// not speed up with frequency.
  double effective_speed(const SimTask& task, core::CoreIndex core) const;

  /// Attach a trace recorder (owned by the caller; may be null).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Spawn a task now (placed via the scheduler, idle cores re-dispatch).
  void spawn(SimTask task, core::CoreIndex spawner);

  /// Spawn at a future virtual time (used for spawn_cost staggering).
  void spawn_at(SimTask task, core::CoreIndex spawner, double when);

  /// Invoke `fn` at virtual time `when` (>= now). Timer callbacks run in
  /// event order (FIFO among same-time events) and may spawn tasks or
  /// schedule further timers; an idle-core dispatch pass follows each one.
  /// Used by the serving layer for open-loop job arrivals and deadline
  /// checks — runs that never call this behave exactly as before.
  void call_at(double when, std::function<void(Engine&)> fn);

  /// Fresh task id.
  TaskId next_task_id() { return next_task_id_++; }

  /// Is the core currently executing a task?
  bool core_busy(core::CoreIndex core) const;

  /// Remaining F1-normalized work of the task running on `core` as of
  /// now() (only valid when core_busy(core)).
  double running_remaining(core::CoreIndex core) const;

  /// Class of the task running on `core` (only valid when busy).
  const SimTask& running_task(core::CoreIndex core) const;

  /// Count of successful steals / snatches (exposed for policies that want
  /// to rate-limit; also folded into RunStats).
  void count_steal() { ++stats_.steals; }

 private:
  enum class EventKind { kSpawn, kFinish, kRecluster, kTimer, kGovernor };

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // tie-break: FIFO among same-time events
    EventKind kind = EventKind::kSpawn;
    core::CoreIndex core = 0;       // kFinish
    std::uint64_t version = 0;      // kFinish: guards stale completions
    SimTask task;                   // kSpawn
    core::CoreIndex spawner = 0;    // kSpawn
    std::function<void(Engine&)> timer;  // kTimer

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct CoreState {
    bool busy = false;
    SimTask task;
    double task_started = 0.0;   // when execution (post-latency) begins
    double dispatched_at = 0.0;  // when the acquisition started
    double eff_speed = 1.0;      // effective speed of the running task
    std::uint64_t version = 0;   // bumped on every dispatch/preempt
    // Last task that COMPLETED here and when: completion hooks run after
    // the core is marked idle, so a spawn issued from on_complete links
    // its lifecycle parent through these instead of the running task.
    TaskId last_finished = 0;
    double last_finish_time = -1.0;
  };

  void push_event(Event e);
  void handle_finish(const Event& e);
  void dispatch_idle_cores();
  bool dispatch(core::CoreIndex core);
  /// Preempt the task on `victim` (updates its remaining work) and hand it
  /// to `thief` with snatch latency. Returns false if victim went idle
  /// meanwhile.
  bool snatch(core::CoreIndex thief, core::CoreIndex victim);

  /// Charge the busy segment [cores_[core].task_started, now_] to the
  /// busy-time and dynamic-energy (dt * f^3) accumulators. The segment's
  /// frequency is the CURRENT group frequency: every frequency change
  /// re-prices in-flight work, so no open segment ever spans a swap.
  void charge_busy_segment(core::CoreIndex core);
  /// One governor evaluation: tick, and on publish fold the per-group
  /// f^3 time-integrals and re-price every in-flight task on a changed
  /// group (the snatch() idiom: charge the executed part at the old
  /// speed, restart the remainder at the new one, invalidate the old
  /// finish event).
  void governor_tick();
  /// Fold group g's f^3 time-integral up to now_ at frequency f.
  void fold_group_f3(core::GroupIndex g, double f);

  const core::AmcTopology& topo_;
  SimConfig config_;
  Scheduler& scheduler_;
  Workload& workload_;
  util::Xoshiro256 rng_;
  core::Governor governor_;

  // ---- Energy accounting (piecewise per constant-frequency segment) ----
  /// Per-core integral of f^3 over busy time.
  std::vector<double> busy_f3_;
  /// Per-group integral of f^3 over ALL time (for idle draw) and the
  /// time each group's integral was last folded.
  std::vector<double> group_f3_int_;
  std::vector<double> group_f3_since_;
  /// Per-group work-weighted scalable-fraction sums from completed
  /// tasks — the kCmpiAware governor's input signal.
  std::vector<double> group_scalable_work_;
  std::vector<double> group_work_;

  /// Maintain idle_ (ascending core indices of non-busy cores) on every
  /// busy-flag flip; dispatch passes walk it instead of scanning all
  /// cores.
  void mark_idle(core::CoreIndex core);
  void mark_busy(core::CoreIndex core);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
  std::vector<CoreState> cores_;
  std::vector<core::CoreIndex> idle_;  ///< sorted indices of idle cores
  /// Set when an event changed work availability or idleness (spawn,
  /// non-stale finish, recluster tick); cleared by dispatch_idle_cores().
  /// Runs of events that change nothing (stale finishes) drain without
  /// paying a dispatch pass.
  bool dispatch_dirty_ = false;
  /// True when the last dispatch sweep made no progress AND drew no
  /// randomness: re-running it against unchanged state would repeat the
  /// exact same failed offers (and consume no RNG), so it is skippable
  /// without perturbing the deterministic event/RNG streams.
  bool quiescent_ = false;
  double now_ = 0.0;
  TaskId next_task_id_ = 1;
  RunStats stats_;
  TraceRecorder* trace_ = nullptr;
  bool ran_ = false;
};

/// Workload driver interface: spawns the initial tasks and reacts to
/// completions (next pipeline stage, next batch, ...).
class Workload {
 public:
  virtual ~Workload() = default;
  virtual void start(Engine& engine) = 0;
  /// `core` is the core that completed the task (pipeline stages spawn
  /// their successor from the completing core).
  virtual void on_complete(Engine& engine, const SimTask& task,
                           core::CoreIndex core) = 0;
  virtual bool done() const = 0;
};

}  // namespace wats::sim
