// Per-core task pools for the simulator.
//
// WATS gives every core k pools, one per task cluster (Fig. 5); the owner
// pops its own pools LIFO (deque bottom, like Cilk) and thieves steal FIFO
// (deque top). The single-pool schedulers use the same structure with k=1.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/topology.hpp"
#include "sim/task.hpp"
#include "util/check.hpp"

namespace wats::sim {

class PoolSet {
 public:
  explicit PoolSet(std::size_t clusters) : pools_(clusters) {
    WATS_CHECK(clusters > 0);
  }

  void push(core::GroupIndex cluster, SimTask task) {
    pools_.at(cluster).push_back(std::move(task));
  }

  /// Owner side: newest task first (work-first order).
  std::optional<SimTask> pop_lifo(core::GroupIndex cluster) {
    auto& p = pools_.at(cluster);
    if (p.empty()) return std::nullopt;
    SimTask t = std::move(p.back());
    p.pop_back();
    return t;
  }

  /// Thief side: oldest task first.
  std::optional<SimTask> steal_fifo(core::GroupIndex cluster) {
    auto& p = pools_.at(cluster);
    if (p.empty()) return std::nullopt;
    SimTask t = std::move(p.front());
    p.pop_front();
    return t;
  }

  /// Thief side, workload-aware: the lightest queued task. Used when a
  /// core robs a cluster FASTER than its own — taking a heavy task onto a
  /// slower core at the tail of a batch is exactly the §II failure mode,
  /// so the rob takes the task it can finish soonest.
  std::optional<SimTask> steal_lightest(core::GroupIndex cluster) {
    auto& p = pools_.at(cluster);
    if (p.empty()) return std::nullopt;
    auto it = p.begin();
    for (auto cand = p.begin(); cand != p.end(); ++cand) {
      if (cand->remaining < it->remaining) it = cand;
    }
    SimTask t = std::move(*it);
    p.erase(it);
    return t;
  }

  /// Remaining work of the lightest task queued for `cluster`, or nothing.
  std::optional<double> lightest_work(core::GroupIndex cluster) const {
    const auto& p = pools_.at(cluster);
    if (p.empty()) return std::nullopt;
    double w = p.front().remaining;
    for (const auto& t : p) w = std::min(w, t.remaining);
    return w;
  }

  /// Total queued work for `cluster`.
  double queued_work(core::GroupIndex cluster) const {
    double w = 0.0;
    for (const auto& t : pools_.at(cluster)) w += t.remaining;
    return w;
  }

  bool empty(core::GroupIndex cluster) const {
    return pools_.at(cluster).empty();
  }

  std::size_t size(core::GroupIndex cluster) const {
    return pools_.at(cluster).size();
  }

  std::size_t total_size() const {
    std::size_t n = 0;
    for (const auto& p : pools_) n += p.size();
    return n;
  }

  std::size_t cluster_count() const { return pools_.size(); }

 private:
  std::vector<std::deque<SimTask>> pools_;
};

}  // namespace wats::sim
