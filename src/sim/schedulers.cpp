// The simulator-side driver for the policy kernel.
//
// All policy DECISIONS (placement, preference order, victim/snatch
// selection, the rob-faster gate, DNC fallback) live in src/core/policy
// and are shared with the real-thread runtime. This file only executes
// those decisions against the simulator's mechanics: PoolSet deques, the
// central queue with spawner-aware steal costs, virtual-time latencies,
// and the engine's seeded RNG.
#include <deque>
#include <memory>
#include <vector>

#include "core/policy/policy.hpp"
#include "core/policy/view.hpp"
#include "core/task_class.hpp"
#include "sim/engine.hpp"
#include "sim/pools.hpp"
#include "sim/scheduler.hpp"
#include "util/check.hpp"

namespace wats::sim {

namespace {

namespace policy = core::policy;

/// A task waiting in the central queue remembers its spawner: Cilk charges
/// no steal cost when the spawner itself picks the task back up.
struct CentralEntry {
  SimTask task;
  core::CoreIndex spawner;
};

/// Exact MachineView over the simulator state: pool contents are precise,
/// randomness draws from the engine's single seeded RNG (preserving the
/// bit-reproducibility of a run for a fixed seed).
class SimView final : public policy::MachineView {
 public:
  SimView(Engine& engine, const std::vector<PoolSet>& pools,
          const std::deque<CentralEntry>& central)
      : engine_(engine), pools_(pools), central_(central) {}

  const core::AmcTopology& topology() const override {
    return engine_.topology();
  }

  std::size_t pool_size(core::CoreIndex core,
                        core::GroupIndex lane) const override {
    return pools_[core].size(lane);
  }

  double pool_queued_work(core::CoreIndex core,
                          core::GroupIndex lane) const override {
    return pools_[core].queued_work(lane);
  }

  double pool_lightest_work(core::CoreIndex core,
                            core::GroupIndex lane) const override {
    const auto w = pools_[core].lightest_work(lane);
    WATS_CHECK(w.has_value());
    return *w;
  }

  std::size_t central_size(core::GroupIndex lane) const override {
    // The simulator keeps one central queue; policies with per-cluster
    // lanes never place centrally here, so only lane 0 can be non-empty.
    return lane == 0 ? central_.size() : 0;
  }

  bool core_busy(core::CoreIndex core) const override {
    return engine_.core_busy(core);
  }

  double core_speed(core::CoreIndex core) const override {
    return engine_.core_speed(core);
  }

  double running_remaining(core::CoreIndex core) const override {
    return engine_.running_remaining(core);
  }

  std::uint64_t random_below(std::uint64_t bound) override {
    return engine_.rng().bounded(bound);
  }

 private:
  Engine& engine_;
  const std::vector<PoolSet>& pools_;
  const std::deque<CentralEntry>& central_;
};

class KernelScheduler final : public Scheduler {
 public:
  KernelScheduler(SchedulerKind kind, core::TaskClassRegistry& registry)
      : registry_(registry), kernel_(policy::make_policy(kind, registry)) {}

  void bind(Engine& engine) override {
    policy::PolicyOptions opts;
    opts.steal_victim =
        engine.config().steal_victim == SimConfig::StealVictim::kRandom
            ? policy::StealVictimRule::kRandom
            : policy::StealVictimRule::kRichest;
    opts.cluster_algorithm = engine.config().cluster_algorithm;
    opts.plan_gate = engine.config().plan_gate;
    opts.plan_repair = engine.config().plan_repair;
    opts.dnc_fallback = engine.config().dnc_fallback;
    opts.dnc_threshold = engine.config().dnc_threshold;
    opts.dnc_min_spawns = engine.config().dnc_min_spawns;
    kernel_->bind(engine.topology(), opts);
    pools_.assign(engine.topology().total_cores(),
                  PoolSet(kernel_->lane_count()));
  }

  void on_spawn(Engine&, SimTask task, core::CoreIndex spawner) override {
    kernel_->record_spawn_edge(task.parent, task.cls);
    const auto placement = kernel_->place(task.cls);
    if (placement.where == policy::Placement::Where::kCentral) {
      central_.push_back({std::move(task), spawner});
    } else {
      pools_[spawner].push(placement.lane, std::move(task));
    }
  }

  std::optional<Acquired> acquire(Engine& engine,
                                  core::CoreIndex core) override {
    SimView view(engine, pools_, central_);
    const auto decision = kernel_->acquire(view, core);
    if (!decision.has_value()) return std::nullopt;
    switch (decision->action) {
      case policy::AcquireDecision::Action::kPopLocal: {
        auto t = pools_[core].pop_lifo(decision->lane);
        WATS_CHECK(t.has_value());
        return Acquired{std::move(*t), 0.0};
      }
      case policy::AcquireDecision::Action::kTakeCentral:
        return take_central(engine, core);
      case policy::AcquireDecision::Action::kSteal: {
        auto t = decision->take_lightest
                     ? pools_[decision->victim].steal_lightest(decision->lane)
                     : pools_[decision->victim].steal_fifo(decision->lane);
        WATS_CHECK(t.has_value());
        engine.count_steal();
        return Acquired{std::move(*t), engine.config().steal_cost};
      }
    }
    WATS_CHECK_MSG(false, "unknown acquire action");
    __builtin_unreachable();
  }

  std::optional<core::CoreIndex> maybe_snatch(Engine& engine,
                                              core::CoreIndex thief) override {
    SimView view(engine, pools_, central_);
    return kernel_->snatch_victim(view, thief);
  }

  void on_complete(Engine&, const SimTask& task, core::CoreIndex) override {
    if (task.cls == core::kNoTaskClass || !kernel_->wants_history()) return;
    // Algorithm 2 (Eq. 2): the measured cycles on a core of speed Fi,
    // normalized by Fi/F1, recover exactly the F1-normalized work. The
    // scalable fraction stands in for the CMPI counters a real system
    // reads at completion (§IV-E).
    registry_.record_completion(task.cls, task.work, task.scalable);
    // The paper's helper thread re-runs Algorithm 1 as completions arrive
    // (1 ms polling); at simulation scale we refresh immediately.
    kernel_->maybe_recluster();
  }

  void on_recluster_tick(Engine&) override { kernel_->maybe_recluster(); }

  bool has_pending() const override {
    if (!central_.empty()) return true;
    for (const auto& p : pools_) {
      if (p.total_size() > 0) return true;
    }
    return false;
  }

  std::vector<double> queued_group_work(
      const core::AmcTopology& topo) const override {
    std::vector<double> work(topo.group_count(), 0.0);
    for (const auto& p : pools_) {
      for (std::size_t lane = 0; lane < p.cluster_count(); ++lane) {
        work[lane < work.size() ? lane : 0] += p.queued_work(lane);
      }
    }
    // Central spawns resolve to the fastest group (§III-A unknown rule).
    for (const auto& e : central_) work[0] += e.task.remaining;
    return work;
  }

  const core::policy::PolicyKernel* kernel() const override {
    return kernel_.get();
  }

  void set_decision_sink(obs::DecisionSink* sink) override {
    kernel_->set_decision_sink(sink);
  }

 private:
  /// Take from the central queue honoring the kernel's ordering and cost
  /// rules: Cilk hands out FIFO and charges a steal unless the taker is
  /// the spawner; the LPT oracle hands out the longest task for free.
  Acquired take_central(Engine& engine, core::CoreIndex core) {
    WATS_CHECK(!central_.empty());
    auto it = central_.begin();
    if (kernel_->central_order() == policy::CentralOrder::kLongestFirst) {
      for (auto cand = central_.begin(); cand != central_.end(); ++cand) {
        if (cand->task.remaining > it->task.remaining) it = cand;
      }
    }
    CentralEntry e = std::move(*it);
    central_.erase(it);
    if (kernel_->central_is_free()) {
      return Acquired{std::move(e.task), 0.0};
    }
    const bool local = e.spawner == core;
    if (!local) engine.count_steal();
    return Acquired{std::move(e.task),
                    local ? 0.0 : engine.config().steal_cost};
  }

  core::TaskClassRegistry& registry_;
  std::unique_ptr<policy::PolicyKernel> kernel_;
  std::vector<PoolSet> pools_;
  std::deque<CentralEntry> central_;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          core::TaskClassRegistry& registry) {
  return std::make_unique<KernelScheduler>(kind, registry);
}

}  // namespace wats::sim
