// The six evaluated scheduler policies (§IV-A): Cilk, PFT, RTS and the
// WATS family (WATS, WATS-NP, WATS-TS).
#include <deque>
#include <memory>

#include "core/cluster.hpp"
#include "core/preference.hpp"
#include "core/task_class.hpp"
#include "sim/engine.hpp"
#include "sim/pools.hpp"
#include "sim/scheduler.hpp"
#include "util/check.hpp"

namespace wats::sim {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kCilk:
      return "Cilk";
    case SchedulerKind::kPft:
      return "PFT";
    case SchedulerKind::kRts:
      return "RTS";
    case SchedulerKind::kWats:
      return "WATS";
    case SchedulerKind::kWatsNp:
      return "WATS-NP";
    case SchedulerKind::kWatsTs:
      return "WATS-TS";
    case SchedulerKind::kWatsM:
      return "WATS-M";
    case SchedulerKind::kLptOracle:
      return "LPT-oracle";
  }
  WATS_CHECK_MSG(false, "unknown scheduler kind");
  __builtin_unreachable();
}

namespace {

/// Pick a victim uniformly at random among cores satisfying `pred`
/// (excluding `self`). Returns nullopt when none qualifies.
template <typename Pred>
std::optional<core::CoreIndex> random_core(Engine& engine,
                                           core::CoreIndex self, Pred pred) {
  std::vector<core::CoreIndex> candidates;
  const std::size_t n = engine.topology().total_cores();
  candidates.reserve(n);
  for (core::CoreIndex c = 0; c < n; ++c) {
    if (c != self && pred(c)) candidates.push_back(c);
  }
  if (candidates.empty()) return std::nullopt;
  return candidates[engine.rng().pick_index(candidates)];
}

/// Steal-victim selection honoring SimConfig::steal_victim: uniformly
/// random among qualifying cores (the paper's policy) or the core whose
/// pool holds the most queued work ("steal from the richest").
template <typename QueuedWork, typename Pred>
std::optional<core::CoreIndex> pick_victim(Engine& engine,
                                           core::CoreIndex self, Pred pred,
                                           QueuedWork queued_work) {
  if (engine.config().steal_victim == SimConfig::StealVictim::kRandom) {
    return random_core(engine, self, pred);
  }
  std::optional<core::CoreIndex> best;
  double best_work = 0.0;
  for (core::CoreIndex c = 0; c < engine.topology().total_cores(); ++c) {
    if (c == self || !pred(c)) continue;
    const double w = queued_work(c);
    if (!best.has_value() || w > best_work) {
      best = c;
      best_work = w;
    }
  }
  return best;
}

// ---------------------------------------------------------------------
// Cilk: child-first spawning with random continuation stealing.
//
// For the flat spawn loops of the batch/pipeline drivers, child-first
// work-stealing means the spawner executes each child immediately while
// the continuation (which spawns the rest) is stolen by whichever core
// goes idle next. The net effect — tasks handed out in spawn order to
// cores in idle order, each handoff costing one steal — is modelled by a
// central FIFO whose entries remember their spawner (the spawner itself
// pays no steal cost for the task it picks up directly).
// ---------------------------------------------------------------------
class CilkScheduler : public Scheduler {
 public:
  void bind(Engine&) override {}

  void on_spawn(Engine&, SimTask task, core::CoreIndex spawner) override {
    queue_.push_back({std::move(task), spawner});
  }

  std::optional<Acquired> acquire(Engine& engine,
                                  core::CoreIndex core) override {
    if (queue_.empty()) return std::nullopt;
    Entry e = std::move(queue_.front());
    queue_.pop_front();
    const bool local = e.spawner == core;
    if (!local) engine.count_steal();
    return Acquired{std::move(e.task),
                    local ? 0.0 : engine.config().steal_cost};
  }

  bool has_pending() const override { return !queue_.empty(); }

 protected:
  struct Entry {
    SimTask task;
    core::CoreIndex spawner;
  };
  std::deque<Entry> queue_;
};

// ---------------------------------------------------------------------
// PFT: parent-first spawning + traditional random task stealing.
// Spawned tasks pile up in the spawner's deque; idle cores pop their own
// deque LIFO or steal FIFO from a random non-empty victim.
// ---------------------------------------------------------------------
class PftScheduler : public Scheduler {
 public:
  void bind(Engine& engine) override {
    pools_.assign(engine.topology().total_cores(), PoolSet(1));
  }

  void on_spawn(Engine&, SimTask task, core::CoreIndex spawner) override {
    pools_[spawner].push(0, std::move(task));
  }

  std::optional<Acquired> acquire(Engine& engine,
                                  core::CoreIndex core) override {
    if (auto t = pools_[core].pop_lifo(0)) {
      return Acquired{std::move(*t), 0.0};
    }
    const auto victim = pick_victim(
        engine, core,
        [&](core::CoreIndex c) { return !pools_[c].empty(0); },
        [&](core::CoreIndex c) { return pools_[c].queued_work(0); });
    if (!victim.has_value()) return std::nullopt;
    auto t = pools_[*victim].steal_fifo(0);
    WATS_CHECK(t.has_value());
    engine.count_steal();
    return Acquired{std::move(*t), engine.config().steal_cost};
  }

  bool has_pending() const override {
    for (const auto& p : pools_) {
      if (p.total_size() > 0) return true;
    }
    return false;
  }

 private:
  std::vector<PoolSet> pools_;
};

// ---------------------------------------------------------------------
// RTS (Bender & Rabin style random task snatching): Cilk spawning and
// stealing, plus: an idle faster core preempts the task of a RANDOMLY
// chosen busy slower core (thread swap, cost Delta_s).
// ---------------------------------------------------------------------
class RtsScheduler : public CilkScheduler {
 public:
  std::optional<core::CoreIndex> maybe_snatch(Engine& engine,
                                              core::CoreIndex thief) override {
    const double my_speed = engine.core_speed(thief);
    return random_core(engine, thief, [&](core::CoreIndex c) {
      return engine.core_busy(c) && engine.core_speed(c) < my_speed;
    });
  }
};

// ---------------------------------------------------------------------
// LPT oracle: global pool, longest task first, free acquisition. Not a
// realizable scheduler (it knows exact workloads and pays no overheads);
// used as the achievable-upper-bound baseline in benches and tests.
// ---------------------------------------------------------------------
class LptOracleScheduler : public Scheduler {
 public:
  void bind(Engine&) override {}

  void on_spawn(Engine&, SimTask task, core::CoreIndex) override {
    pool_.push_back(std::move(task));
  }

  std::optional<Acquired> acquire(Engine&, core::CoreIndex) override {
    if (pool_.empty()) return std::nullopt;
    auto longest = pool_.begin();
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
      if (it->remaining > longest->remaining) longest = it;
    }
    SimTask task = std::move(*longest);
    pool_.erase(longest);
    return Acquired{std::move(task), 0.0};
  }

  bool has_pending() const override { return !pool_.empty(); }

 private:
  std::vector<SimTask> pool_;
};

// ---------------------------------------------------------------------
// The WATS family: history-based allocation + preference-based stealing.
//   - WATS:    full Algorithm 3 (cross-cluster stealing allowed)
//   - WATS-NP: stealing restricted to the core's own cluster (§IV-C)
//   - WATS-TS: WATS + workload-aware snatching (§IV-D): the victim is the
//              slower core running the LARGEST remaining task
// ---------------------------------------------------------------------
class WatsScheduler : public Scheduler {
 public:
  WatsScheduler(core::TaskClassRegistry& registry, bool cross_cluster,
                bool snatching, bool memory_aware = false)
      : registry_(registry),
        cross_cluster_(cross_cluster),
        snatching_(snatching),
        memory_aware_(memory_aware) {}

  void bind(Engine& engine) override {
    const auto& topo = engine.topology();
    k_ = topo.group_count();
    pools_.assign(topo.total_cores(), PoolSet(k_));
    prefs_ = core::all_preference_lists(k_);
    if (registry_.total_completions() > 0) {
      // Warm start: the registry carries persisted history — allocate
      // from it immediately instead of treating every class as unknown.
      rebuild(engine);
    } else {
      cluster_map_ =
          std::make_unique<core::ClusterMap>(registry_.size(), k_);
    }
  }

  void on_spawn(Engine&, SimTask task, core::CoreIndex spawner) override {
    core::GroupIndex cluster = cluster_map_->cluster_of(task.cls);
    // WATS-M (§IV-E): classes OBSERVED to be memory-bound (mean scalable
    // fraction from counter history, not per-task oracle knowledge) gain
    // almost nothing from fast cores — pin them to the slowest c-group.
    if (memory_aware_ && k_ > 1 && registry_.has_history(task.cls) &&
        registry_.info(task.cls).mean_scalable < 0.5) {
      cluster = static_cast<core::GroupIndex>(k_ - 1);
    }
    pools_[spawner].push(cluster, std::move(task));
  }

  std::optional<Acquired> acquire(Engine& engine,
                                  core::CoreIndex core) override {
    const core::GroupIndex own =
        engine.topology().group_of_core(core);
    // Algorithm 3: walk the preference list; per cluster, local pool first,
    // then steal from a random victim whose pool for that cluster is
    // non-empty. WATS-NP only ever looks at its own cluster.
    for (const core::GroupIndex cluster : prefs_[own]) {
      if (!cross_cluster_ && cluster != own) continue;
      if (auto t = pools_[core].pop_lifo(cluster)) {
        return Acquired{std::move(*t), 0.0};
      }
      const auto victim = pick_victim(
          engine, core,
          [&](core::CoreIndex c) { return !pools_[c].empty(cluster); },
          [&](core::CoreIndex c) { return pools_[c].queued_work(cluster); });
      if (!victim.has_value()) continue;
      if (cluster < own) {
        // Robbing a cluster FASTER than our own: per the §II makespan
        // analysis this only helps when the cluster's owners are
        // backlogged — otherwise a slower core holding one of their tasks
        // past the point the owners would have reached it PROLONGS the
        // makespan. Rob only when the owners' drain time exceeds our
        // execution time for the lightest available task, and take that
        // lightest task.
        double backlog = 0.0;
        for (core::CoreIndex c = 0; c < pools_.size(); ++c) {
          backlog += pools_[c].queued_work(cluster);
        }
        // The owners also have to finish what they are running right now.
        const auto& topo = engine.topology();
        for (core::CoreIndex c = topo.first_core_of_group(cluster);
             c < topo.first_core_of_group(cluster) + topo.group(cluster).core_count;
             ++c) {
          if (engine.core_busy(c)) backlog += engine.running_remaining(c);
        }
        const double owner_drain =
            backlog / topo.group_capacity(cluster);
        const auto lightest = pools_[*victim].lightest_work(cluster);
        WATS_CHECK(lightest.has_value());
        const double my_time = *lightest / engine.core_speed(core);
        if (owner_drain <= my_time) continue;
        auto t = pools_[*victim].steal_lightest(cluster);
        WATS_CHECK(t.has_value());
        engine.count_steal();
        return Acquired{std::move(*t), engine.config().steal_cost};
      }
      auto t = pools_[*victim].steal_fifo(cluster);
      WATS_CHECK(t.has_value());
      engine.count_steal();
      return Acquired{std::move(*t), engine.config().steal_cost};
    }
    return std::nullopt;
  }

  std::optional<core::CoreIndex> maybe_snatch(Engine& engine,
                                              core::CoreIndex thief) override {
    if (!snatching_) return std::nullopt;
    // Workload-aware snatch: among busy strictly slower cores, pick the one
    // with the largest remaining work (§IV-D).
    const double my_speed = engine.core_speed(thief);
    std::optional<core::CoreIndex> best;
    double best_remaining = 0.0;
    for (core::CoreIndex c = 0; c < engine.topology().total_cores(); ++c) {
      if (c == thief || !engine.core_busy(c)) continue;
      if (engine.core_speed(c) >= my_speed) continue;
      const double rem = engine.running_remaining(c);
      if (rem > best_remaining) {
        best_remaining = rem;
        best = c;
      }
    }
    return best;
  }

  void on_complete(Engine& engine, const SimTask& task,
                   core::CoreIndex core) override {
    if (task.cls == core::kNoTaskClass) return;
    // Algorithm 2 (Eq. 2): the measured cycles on a core of speed Fi,
    // normalized by Fi/F1, recover exactly the F1-normalized work. The
    // scalable fraction stands in for the CMPI counters a real system
    // reads at completion (§IV-E).
    registry_.record_completion(task.cls, task.work, task.scalable);
    (void)core;
    // The paper's helper thread re-runs Algorithm 1 as completions arrive
    // (1 ms polling); at simulation scale we refresh immediately.
    rebuild(engine);
  }

  void on_recluster_tick(Engine& engine) override { rebuild(engine); }

  bool has_pending() const override {
    for (const auto& p : pools_) {
      if (p.total_size() > 0) return true;
    }
    return false;
  }

  /// Test/diagnostic access.
  const core::ClusterMap& cluster_map() const { return *cluster_map_; }

 private:
  void rebuild(Engine& engine) {
    cluster_map_ = std::make_unique<core::ClusterMap>(core::ClusterMap::build(
        registry_.snapshot(), engine.topology(),
        engine.config().cluster_algorithm));
  }

  core::TaskClassRegistry& registry_;
  bool cross_cluster_;
  bool snatching_;
  bool memory_aware_;

  std::size_t k_ = 1;
  std::vector<PoolSet> pools_;
  std::vector<std::vector<core::GroupIndex>> prefs_;
  std::unique_ptr<core::ClusterMap> cluster_map_;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          core::TaskClassRegistry& registry) {
  switch (kind) {
    case SchedulerKind::kCilk:
      return std::make_unique<CilkScheduler>();
    case SchedulerKind::kPft:
      return std::make_unique<PftScheduler>();
    case SchedulerKind::kRts:
      return std::make_unique<RtsScheduler>();
    case SchedulerKind::kWats:
      return std::make_unique<WatsScheduler>(registry, true, false);
    case SchedulerKind::kWatsNp:
      return std::make_unique<WatsScheduler>(registry, false, false);
    case SchedulerKind::kWatsTs:
      return std::make_unique<WatsScheduler>(registry, true, true);
    case SchedulerKind::kWatsM:
      return std::make_unique<WatsScheduler>(registry, true, false,
                                             /*memory_aware=*/true);
    case SchedulerKind::kLptOracle:
      return std::make_unique<LptOracleScheduler>();
  }
  WATS_CHECK_MSG(false, "unknown scheduler kind");
  __builtin_unreachable();
}

}  // namespace wats::sim
