// Scheduler policy interface for the simulator.
//
// Since the policy-kernel refactor all scheduling DECISIONS (placement,
// preference order, victim/snatch selection) live in src/core/policy; the
// single KernelScheduler in schedulers.cpp executes those decisions
// against the simulator's PoolSet/central-queue mechanics. This interface
// is what the Engine drives; SchedulerKind is the kernel's PolicyKind.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/policy/policy.hpp"
#include "core/task_class.hpp"
#include "core/topology.hpp"
#include "sim/task.hpp"

namespace wats::sim {

class Engine;

using SchedulerKind = core::policy::PolicyKind;
using core::policy::to_string;

/// Result of a successful work acquisition: the task plus the virtual-time
/// latency the acquisition itself cost (0 for a local pool hit,
/// steal_cost for a steal, snatch_cost for a snatch).
struct Acquired {
  SimTask task;
  double latency = 0.0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once before the run starts.
  virtual void bind(Engine& engine) = 0;

  /// Place a newly spawned task (spawned by `spawner`, or by the out-of-
  /// band driver when spawner is the main core).
  virtual void on_spawn(Engine& engine, SimTask task,
                        core::CoreIndex spawner) = 0;

  /// An idle core asks for work. Returns nothing when every reachable pool
  /// is empty (the engine will then consult maybe_snatch()).
  virtual std::optional<Acquired> acquire(Engine& engine,
                                          core::CoreIndex core) = 0;

  /// Snatch hook: called when acquire() failed. Returns the victim core to
  /// preempt, or nothing. Only RTS and WATS-TS use this.
  virtual std::optional<core::CoreIndex> maybe_snatch(Engine& engine,
                                                      core::CoreIndex thief) {
    (void)engine;
    (void)thief;
    return std::nullopt;
  }

  /// Completion hook (history update for the WATS family).
  virtual void on_complete(Engine& engine, const SimTask& task,
                           core::CoreIndex core) {
    (void)engine;
    (void)task;
    (void)core;
  }

  /// Periodic helper-thread tick (recluster for the WATS family).
  virtual void on_recluster_tick(Engine& engine) { (void)engine; }

  /// Any tasks queued in pools (used by the engine's deadlock check).
  virtual bool has_pending() const = 0;

  /// Queued work per c-group lane (F1-normalized remaining units), used
  /// by the pace-to-deadline governor to price the live backlog. Lane g's
  /// queued tasks are attributed to group g (exact under WATS-NP, the
  /// steal-free ablation; a close approximation under cross-group
  /// stealing); single-lane schedulers attribute everything to group 0.
  /// Default: no visibility (empty), which disables backlog pacing.
  virtual std::vector<double> queued_group_work(
      const core::AmcTopology& topo) const {
    (void)topo;
    return {};
  }

  /// The decision kernel this scheduler executes (diagnostics/tests).
  virtual const core::policy::PolicyKernel* kernel() const { return nullptr; }

  /// Forward a decision sink to the kernel (see PolicyKernel::
  /// set_decision_sink). Attach before the run starts.
  virtual void set_decision_sink(obs::DecisionSink* sink) { (void)sink; }
};

/// Factory for the evaluated policies. The registry is shared with the
/// workload driver (both sides must agree on task-class ids); only the
/// WATS family reads or writes it.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          core::TaskClassRegistry& registry);

}  // namespace wats::sim
