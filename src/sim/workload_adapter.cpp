#include "sim/workload_adapter.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wats::sim {

namespace {
constexpr core::CoreIndex kMainCore = 0;
}

BatchWorkload::BatchWorkload(const workloads::BenchmarkSpec& spec,
                             core::TaskClassRegistry& registry,
                             std::uint64_t seed)
    : spec_(spec), registry_(registry), rng_(seed) {
  WATS_CHECK(spec_.kind == workloads::BenchKind::kBatch);
  WATS_CHECK(spec_.batches > 0);
  WATS_CHECK(spec_.tasks_per_batch() > 0);
}

void BatchWorkload::start(Engine& engine) {
  class_ids_.clear();
  for (const auto& cls : spec_.classes) {
    class_ids_.push_back(registry_.intern(cls.name));
  }
  spawn_batch(engine);
}

void BatchWorkload::spawn_batch(Engine& engine) {
  WATS_CHECK(batches_launched_ < spec_.batches);
  ++batches_launched_;

  // The spawner ("main task") core: the fastest core by default (§IV-E),
  // or a random core under the ablation.
  const core::CoreIndex spawner =
      engine.config().main_on_fastest
          ? kMainCore
          : static_cast<core::CoreIndex>(
                engine.rng().bounded(engine.topology().total_cores()));

  // Build the batch's task list (class index per task), then shuffle: real
  // programs interleave spawns of different functions in arbitrary order.
  std::vector<std::size_t> mix;
  mix.reserve(spec_.tasks_per_batch());
  for (std::size_t c = 0; c < spec_.classes.size(); ++c) {
    for (std::size_t i = 0; i < spec_.classes[c].tasks_per_batch; ++i) {
      mix.push_back(c);
    }
  }
  rng_.shuffle(mix);

  const double spawn_cost = engine.config().spawn_cost;
  double offset = 0.0;
  for (std::size_t c : mix) {
    SimTask task;
    task.id = engine.next_task_id();
    task.cls = class_ids_[c];
    // Phase change: the spec's schedule decides the multiplier for this
    // batch (legacy single shift and the phases: list both resolve here).
    const double scale = spec_.phase_multiplier(batches_launched_, c);
    task.work = workloads::sample_work(spec_.classes[c], rng_) * scale;
    task.remaining = task.work;
    task.scalable = spec_.classes[c].scalable;
    if (spawn_cost > 0.0) {
      offset += spawn_cost;
      engine.spawn_at(std::move(task), spawner, engine.now() + offset);
    } else {
      engine.spawn(std::move(task), spawner);
    }
    ++outstanding_;
  }
}

void BatchWorkload::on_complete(Engine& engine, const SimTask& task,
                                core::CoreIndex core) {
  (void)task;
  (void)core;
  WATS_CHECK(outstanding_ > 0);
  if (--outstanding_ == 0 && batches_launched_ < spec_.batches) {
    spawn_batch(engine);
  }
}

bool BatchWorkload::done() const {
  return outstanding_ == 0 && batches_launched_ == spec_.batches;
}

PipelineWorkload::PipelineWorkload(const workloads::BenchmarkSpec& spec,
                                   core::TaskClassRegistry& registry,
                                   std::uint64_t seed)
    : spec_(spec), registry_(registry), rng_(seed) {
  WATS_CHECK(spec_.kind == workloads::BenchKind::kPipeline);
  WATS_CHECK(spec_.pipeline_items > 0);
  WATS_CHECK(!spec_.classes.empty());
}

SimTask PipelineWorkload::make_stage_task(Engine& engine, std::uint32_t item,
                                          std::uint32_t stage) {
  // Resolve the stage to a concrete class: either 1:1 (stage i = class i)
  // or by sampling the stage's class options (branching pipelines like
  // dedup's unique/duplicate compress paths).
  std::size_t cls_index = stage;
  if (!spec_.pipeline_stages.empty()) {
    const auto& st = spec_.pipeline_stages[stage];
    WATS_CHECK(!st.class_options.empty());
    cls_index = st.class_options.front();
    if (st.class_options.size() > 1) {
      const double u = rng_.uniform();
      double acc = 0.0;
      for (std::size_t i = 0; i < st.class_options.size(); ++i) {
        acc += st.probabilities[i];
        if (u < acc) {
          cls_index = st.class_options[i];
          break;
        }
      }
    }
  }
  SimTask task;
  task.id = engine.next_task_id();
  task.cls = stage_ids_[cls_index];
  task.work = workloads::sample_work(spec_.classes[cls_index], rng_);
  task.remaining = task.work;
  task.scalable = spec_.classes[cls_index].scalable;
  task.item = item;
  task.stage = stage;
  return task;
}

void PipelineWorkload::admit(Engine& engine, core::CoreIndex spawner) {
  if (next_item_ >= spec_.pipeline_items) return;
  const std::uint32_t item = next_item_++;
  engine.spawn(make_stage_task(engine, item, 0), spawner);
}

void PipelineWorkload::start(Engine& engine) {
  stage_ids_.clear();
  for (const auto& stage : spec_.classes) {
    stage_ids_.push_back(registry_.intern(stage.name));
  }
  const std::size_t window =
      spec_.pipeline_window == 0 ? spec_.pipeline_items : spec_.pipeline_window;
  for (std::size_t i = 0; i < window && next_item_ < spec_.pipeline_items;
       ++i) {
    admit(engine, kMainCore);
  }
}

void PipelineWorkload::on_complete(Engine& engine, const SimTask& task,
                                   core::CoreIndex core) {
  const std::uint32_t next_stage = task.stage + 1;
  if (next_stage < spec_.stage_count()) {
    // The completing core spawns the successor (its continuation), exactly
    // like a pipeline stage handing the item to the next stage's queue.
    engine.spawn(make_stage_task(engine, task.item, next_stage), core);
    return;
  }
  ++completed_items_;
  // Retiring an item frees a window slot; the new item enters from the
  // pipeline's input thread on the main core.
  admit(engine, kMainCore);
}

bool PipelineWorkload::done() const {
  return completed_items_ == spec_.pipeline_items;
}

ReplayWorkload::ReplayWorkload(const workloads::BenchmarkSpec& spec,
                               core::TaskClassRegistry& registry)
    : spec_(spec), registry_(registry) {
  WATS_CHECK(spec_.kind == workloads::BenchKind::kReplay);
  WATS_CHECK(!spec_.replay_tasks.empty());
  WATS_CHECK(!spec_.classes.empty());
}

void ReplayWorkload::start(Engine& engine) {
  class_ids_.clear();
  for (const auto& cls : spec_.classes) {
    class_ids_.push_back(registry_.intern(cls.name));
  }
  // The whole recorded stream is scheduled up front: arrivals are data,
  // not reactions, so a replay is an open-loop arrival process.
  for (const auto& rec : spec_.replay_tasks) {
    WATS_CHECK(rec.class_index < class_ids_.size());
    SimTask task;
    task.id = engine.next_task_id();
    task.cls = class_ids_[rec.class_index];
    task.work = rec.work;
    task.remaining = rec.work;
    task.scalable = spec_.classes[rec.class_index].scalable;
    engine.spawn_at(std::move(task), kMainCore, rec.arrival);
    ++outstanding_;
  }
}

void ReplayWorkload::on_complete(Engine& engine, const SimTask& task,
                                 core::CoreIndex core) {
  (void)engine;
  (void)task;
  (void)core;
  WATS_CHECK(outstanding_ > 0);
  --outstanding_;
}

bool ReplayWorkload::done() const { return outstanding_ == 0; }

std::unique_ptr<Workload> make_workload(const workloads::BenchmarkSpec& spec,
                                        core::TaskClassRegistry& registry,
                                        std::uint64_t seed) {
  if (spec.kind == workloads::BenchKind::kBatch) {
    return std::make_unique<BatchWorkload>(spec, registry, seed);
  }
  if (spec.kind == workloads::BenchKind::kReplay) {
    return std::make_unique<ReplayWorkload>(spec, registry);
  }
  return std::make_unique<PipelineWorkload>(spec, registry, seed);
}

}  // namespace wats::sim
