#include "sim/experiment.hpp"

#include <algorithm>

#include "core/history_io.hpp"
#include "sim/workload_adapter.hpp"
#include "util/check.hpp"

namespace wats::sim {

ExperimentResult run_experiment(const workloads::BenchmarkSpec& spec,
                                const core::AmcTopology& topo,
                                SchedulerKind kind,
                                const ExperimentConfig& config) {
  WATS_CHECK(config.repeats > 0);
  ExperimentResult result;
  result.min_makespan = 0.0;
  result.max_makespan = 0.0;

  for (std::size_t i = 0; i < config.repeats; ++i) {
    SimConfig sim = config.sim;
    sim.seed = config.base_seed + i;

    // Fresh history per run: the paper's statistics live for one program
    // execution.
    core::TaskClassRegistry registry(config.estimator, config.ewma_alpha);
    if (config.change_point.enabled) {
      registry.configure_change_point(config.change_point);
    }
    if (!config.warm_history.empty()) {
      core::load_history(registry, config.warm_history);
    }
    auto scheduler = make_scheduler(kind, registry);
    auto workload = make_workload(spec, registry, sim.seed ^ 0x9E3779B9u);

    Engine engine(topo, sim, *scheduler, *workload);
    scheduler->bind(engine);
    if (i == 0) {
      if (config.trace != nullptr) engine.set_trace(config.trace);
      if (config.decision_sink != nullptr) {
        scheduler->set_decision_sink(config.decision_sink);
      }
    }
    RunStats stats = engine.run();
    stats.history_resets = registry.history_resets();
    result.history_resets += stats.history_resets;

    result.mean_makespan += stats.makespan;
    result.mean_steals += static_cast<double>(stats.steals);
    result.mean_snatches += static_cast<double>(stats.snatches);
    result.mean_utilization += stats.utilization(topo);
    if (i == 0) {
      result.min_makespan = result.max_makespan = stats.makespan;
    } else {
      result.min_makespan = std::min(result.min_makespan, stats.makespan);
      result.max_makespan = std::max(result.max_makespan, stats.makespan);
    }
    result.runs.push_back(std::move(stats));
  }
  const auto n = static_cast<double>(config.repeats);
  result.mean_makespan /= n;
  result.mean_steals /= n;
  result.mean_snatches /= n;
  result.mean_utilization /= n;
  return result;
}

std::vector<ExperimentResult> run_schedulers(
    const workloads::BenchmarkSpec& spec, const core::AmcTopology& topo,
    const std::vector<SchedulerKind>& kinds, const ExperimentConfig& config) {
  std::vector<ExperimentResult> results;
  results.reserve(kinds.size());
  for (SchedulerKind kind : kinds) {
    results.push_back(run_experiment(spec, topo, kind, config));
  }
  return results;
}

}  // namespace wats::sim
