// Task representation inside the virtual-time AMC simulator.
#pragma once

#include <cstdint>

#include "core/task_class.hpp"

namespace wats::sim {

using TaskId = std::uint64_t;

struct SimTask {
  TaskId id = 0;
  core::TaskClassId cls = core::kNoTaskClass;
  /// Class of the task that spawned this one (kNoTaskClass for root/driver
  /// spawns). Feeds the §IV-E divide-and-conquer detector; workloads that
  /// never set it simply keep the detector silent.
  core::TaskClassId parent = core::kNoTaskClass;
  double work = 0.0;       ///< total F1-normalized work units
  double remaining = 0.0;  ///< work still to do (differs after preemption)
  /// Frequency-scalable fraction (§IV-E): 1.0 = pure compute (time scales
  /// as 1/F), 0.0 = pure memory stalls (time is frequency-invariant).
  double scalable = 1.0;
  /// Set by the engine when the task is spawned (for wait-time metrics).
  double spawned_at = 0.0;

  // Pipeline bookkeeping (unused by batch workloads).
  std::uint32_t item = 0;
  std::uint32_t stage = 0;
};

}  // namespace wats::sim
