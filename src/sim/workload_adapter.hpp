// Adapters that drive a BenchmarkSpec (workloads/workload_model.hpp)
// through the simulator: batch benchmarks spawn rounds of independent
// tasks with a barrier between rounds; pipeline benchmarks flow items
// through ordered stages with a bounded in-flight window.
#pragma once

#include <memory>
#include <vector>

#include "core/task_class.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workloads/workload_model.hpp"

namespace wats::sim {

/// Batch driver: every batch launches spec.tasks_per_batch() tasks (in a
/// shuffled class order, like a real program's arbitrary spawn order) from
/// the main core (core 0, the fastest — §IV-E: all schedulers launch the
/// main task on the fastest core); the next batch starts when the current
/// one has fully completed.
class BatchWorkload : public Workload {
 public:
  BatchWorkload(const workloads::BenchmarkSpec& spec,
                core::TaskClassRegistry& registry, std::uint64_t seed);

  void start(Engine& engine) override;
  void on_complete(Engine& engine, const SimTask& task,
                   core::CoreIndex core) override;
  bool done() const override;

 private:
  void spawn_batch(Engine& engine);

  // Owned copy: callers may pass temporaries (the spec is small).
  const workloads::BenchmarkSpec spec_;
  core::TaskClassRegistry& registry_;
  util::Xoshiro256 rng_;
  std::vector<core::TaskClassId> class_ids_;
  std::size_t batches_launched_ = 0;
  std::size_t outstanding_ = 0;
};

/// Pipeline driver: item i runs stages 0..S-1 in order; a completed stage
/// spawns the next stage from the completing core; at most
/// spec.pipeline_window items are in flight; new items are admitted from
/// the main core as items retire.
class PipelineWorkload : public Workload {
 public:
  PipelineWorkload(const workloads::BenchmarkSpec& spec,
                   core::TaskClassRegistry& registry, std::uint64_t seed);

  void start(Engine& engine) override;
  void on_complete(Engine& engine, const SimTask& task,
                   core::CoreIndex core) override;
  bool done() const override;

 private:
  void admit(Engine& engine, core::CoreIndex spawner);
  SimTask make_stage_task(Engine& engine, std::uint32_t item,
                          std::uint32_t stage);

  // Owned copy: callers may pass temporaries (the spec is small).
  const workloads::BenchmarkSpec spec_;
  core::TaskClassRegistry& registry_;
  util::Xoshiro256 rng_;
  std::vector<core::TaskClassId> stage_ids_;
  std::uint32_t next_item_ = 0;
  std::size_t completed_items_ = 0;
};

/// Replay driver (kReplay): spawns the spec's recorded task stream at its
/// recorded virtual-time arrivals from the main core — an open-loop
/// arrival process. No RNG: a replay is a pure function of the spec, so
/// any recorded run (e.g. a Perfetto trace converted by
/// `wats_trace replay-export`) becomes a reproducible scenario.
class ReplayWorkload : public Workload {
 public:
  ReplayWorkload(const workloads::BenchmarkSpec& spec,
                 core::TaskClassRegistry& registry);

  void start(Engine& engine) override;
  void on_complete(Engine& engine, const SimTask& task,
                   core::CoreIndex core) override;
  bool done() const override;

 private:
  // Owned copy: callers may pass temporaries (the spec is small).
  const workloads::BenchmarkSpec spec_;
  core::TaskClassRegistry& registry_;
  std::vector<core::TaskClassId> class_ids_;
  std::size_t outstanding_ = 0;
};

/// Factory dispatching on spec.kind.
std::unique_ptr<Workload> make_workload(const workloads::BenchmarkSpec& spec,
                                        core::TaskClassRegistry& registry,
                                        std::uint64_t seed);

}  // namespace wats::sim
