#include "sim/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wats::sim {

double RunStats::utilization(const core::AmcTopology& topo) const {
  if (makespan <= 0.0) return 0.0;
  double weighted_busy = 0.0;
  for (core::CoreIndex c = 0; c < busy_time.size(); ++c) {
    weighted_busy +=
        busy_time[c] * topo.group(topo.group_of_core(c)).frequency_ghz;
  }
  return weighted_busy / (topo.total_capacity() * makespan);
}

double RunStats::energy(const core::AmcTopology& topo,
                        const core::EnergyModel& model) const {
  double e = 0.0;
  for (core::CoreIndex c = 0; c < busy_time.size(); ++c) {
    const double f = topo.group(topo.group_of_core(c)).frequency_ghz;
    e += model.capacitance * f * f * f * busy_time[c];
    e += model.static_power * makespan;
  }
  return e;
}

Engine::Engine(const core::AmcTopology& topo, const SimConfig& config,
               Scheduler& scheduler, Workload& workload)
    : topo_(topo),
      config_(config),
      scheduler_(scheduler),
      workload_(workload),
      rng_(config.seed),
      governor_(config.governor, topo_) {
  cores_.resize(topo_.total_cores());
  stats_.busy_time.assign(topo_.total_cores(), 0.0);
  stats_.overhead_time.assign(topo_.total_cores(), 0.0);
  busy_f3_.assign(topo_.total_cores(), 0.0);
  group_f3_int_.assign(topo_.group_count(), 0.0);
  group_f3_since_.assign(topo_.group_count(), 0.0);
  group_scalable_work_.assign(topo_.group_count(), 0.0);
  group_work_.assign(topo_.group_count(), 0.0);
  idle_.reserve(topo_.total_cores());
  for (core::CoreIndex c = 0; c < topo_.total_cores(); ++c) {
    idle_.push_back(c);
  }
}

void Engine::mark_idle(core::CoreIndex core) {
  idle_.insert(std::lower_bound(idle_.begin(), idle_.end(), core), core);
}

void Engine::mark_busy(core::CoreIndex core) {
  idle_.erase(std::lower_bound(idle_.begin(), idle_.end(), core));
}

double Engine::core_speed(core::CoreIndex core) const {
  // Read through the governed SpeedPlan. kStatic's initial plan copies
  // the topology's base frequencies (the identical doubles), so static
  // runs are bit-identical to the pre-governor direct read.
  return governor_.current()->group_frequency_ghz[topo_.group_of_core(core)];
}

double Engine::effective_speed(const SimTask& task,
                               core::CoreIndex core) const {
  const double f = core_speed(core);
  // f1 is the BASE fastest frequency even when group 0 is clocked down:
  // work is F1-normalized and memory-stall time is frequency-invariant,
  // so the stall term stays pinned to the base F1.
  const double f1 = topo_.fastest_frequency();
  const double s = task.scalable;
  // time = s*w/f + (1-s)*w/f1  =>  eff = w/time.
  return 1.0 / (s / f + (1.0 - s) / f1);
}

void Engine::charge_busy_segment(core::CoreIndex core) {
  const CoreState& s = cores_[core];
  const double dt = std::max(0.0, now_ - s.task_started);
  stats_.busy_time[core] += dt;
  const double f = core_speed(core);
  busy_f3_[core] += dt * f * f * f;
}

void Engine::fold_group_f3(core::GroupIndex g, double f) {
  group_f3_int_[g] += (now_ - group_f3_since_[g]) * f * f * f;
  group_f3_since_[g] = now_;
}

void Engine::push_event(Event e) {
  e.seq = next_seq_++;
  events_.push(std::move(e));
}

void Engine::spawn(SimTask task, core::CoreIndex spawner) {
  ++stats_.spawned;
  task.spawned_at = now_;
  if (trace_ != nullptr) {
    // Lifecycle parent: the task running on the spawner, or — because
    // handle_finish marks the core idle before the completion hooks that
    // chain most spawns — the task that finished there at this instant.
    const CoreState& s = cores_[spawner];
    TaskId parent = 0;
    if (s.busy) {
      parent = s.task.id;
    } else if (s.last_finish_time == now_) {
      parent = s.last_finished;
    }
    trace_->record_spawn({task.id, task.cls, parent, now_});
  }
  scheduler_.on_spawn(*this, std::move(task), spawner);
  // Idle cores get a chance to pick the new work up at the current time.
  // (Dispatch happens in the main loop right after the triggering event,
  // via dispatch_idle_cores(); spawning from hooks is safe because every
  // event handler ends with a dispatch pass.)
  dispatch_dirty_ = true;
}

void Engine::spawn_at(SimTask task, core::CoreIndex spawner, double when) {
  WATS_CHECK(when >= now_);
  Event e;
  e.time = when;
  e.kind = EventKind::kSpawn;
  e.task = std::move(task);
  e.spawner = spawner;
  push_event(std::move(e));
}

void Engine::call_at(double when, std::function<void(Engine&)> fn) {
  WATS_CHECK(when >= now_);
  WATS_CHECK(fn != nullptr);
  Event e;
  e.time = when;
  e.kind = EventKind::kTimer;
  e.timer = std::move(fn);
  push_event(std::move(e));
}

bool Engine::core_busy(core::CoreIndex core) const {
  return cores_.at(core).busy;
}

double Engine::running_remaining(core::CoreIndex core) const {
  const CoreState& s = cores_.at(core);
  WATS_CHECK(s.busy);
  // Before task_started (acquisition latency window) nothing has executed.
  const double executed =
      std::max(0.0, (now_ - s.task_started)) * s.eff_speed;
  return std::max(0.0, s.task.remaining - executed);
}

const SimTask& Engine::running_task(core::CoreIndex core) const {
  const CoreState& s = cores_.at(core);
  WATS_CHECK(s.busy);
  return s.task;
}

bool Engine::dispatch(core::CoreIndex core) {
  CoreState& s = cores_[core];
  WATS_CHECK(!s.busy);
  std::optional<Acquired> acquired = scheduler_.acquire(*this, core);
  if (!acquired.has_value()) {
    ++stats_.failed_acquires;
    const std::optional<core::CoreIndex> victim =
        scheduler_.maybe_snatch(*this, core);
    if (victim.has_value()) {
      return snatch(core, *victim);
    }
    return false;
  }
  if (acquired->latency > 0.0) {
    stats_.overhead_time[core] += acquired->latency;
  }
  s.busy = true;
  mark_busy(core);
  s.task = std::move(acquired->task);
  s.dispatched_at = now_;
  s.task_started = now_ + acquired->latency;
  if (s.task.remaining == s.task.work) {  // first execution, not a resume
    const double wait = s.task_started - s.task.spawned_at;
    stats_.wait_time.add(wait);
    if (s.task.cls != core::kNoTaskClass) {
      if (stats_.wait_time_by_class.size() <= s.task.cls) {
        stats_.wait_time_by_class.resize(s.task.cls + 1);
      }
      stats_.wait_time_by_class[s.task.cls].add(wait);
    }
  }
  s.eff_speed = effective_speed(s.task, core);
  ++s.version;
  const double finish = s.task_started + s.task.remaining / s.eff_speed;
  Event e;
  e.time = finish;
  e.kind = EventKind::kFinish;
  e.core = core;
  e.version = s.version;
  push_event(std::move(e));
  return true;
}

bool Engine::snatch(core::CoreIndex thief, core::CoreIndex victim) {
  CoreState& v = cores_[victim];
  if (!v.busy) return false;
  WATS_CHECK(thief != victim);

  // Preempt: charge the victim for the work it actually did.
  const double executed =
      std::max(0.0, now_ - v.task_started) * v.eff_speed;
  SimTask task = v.task;
  // Cold-cache migration: part of the already-executed work is redone.
  const double redone =
      std::min(executed, task.remaining) * config_.snatch_redo_fraction;
  task.remaining = std::max(0.0, task.remaining - executed) + redone;
  charge_busy_segment(victim);
  if (trace_ != nullptr && now_ > v.task_started) {
    trace_->record({v.task_started, now_, victim, v.task.id, v.task.cls,
                    /*preempted=*/true, v.dispatched_at});
  }
  v.busy = false;
  mark_idle(victim);
  ++v.version;  // invalidates the victim's scheduled finish event

  ++stats_.snatches;

  // Thief starts the task after the snatch latency.
  CoreState& t = cores_[thief];
  WATS_CHECK(!t.busy);
  stats_.overhead_time[thief] += config_.snatch_cost;
  t.busy = true;
  mark_busy(thief);
  t.task = std::move(task);
  t.dispatched_at = now_;
  t.task_started = now_ + config_.snatch_cost;
  t.eff_speed = effective_speed(t.task, thief);
  ++t.version;
  const double finish = t.task_started + t.task.remaining / t.eff_speed;
  Event e;
  e.time = finish;
  e.kind = EventKind::kFinish;
  e.core = thief;
  e.version = t.version;
  push_event(std::move(e));
  return true;
}

void Engine::dispatch_idle_cores() {
  // Skippable pass: nothing changed since the last sweep settled, and
  // that sweep provably consumed no randomness — re-running it would
  // repeat the identical failed offers. Runs of such events (stale
  // finishes after snatches, ticks over a drained machine) batch into
  // bare heap pops.
  if (!dispatch_dirty_ && quiescent_) return;
  dispatch_dirty_ = false;
  // Keep offering work to idle cores until a full pass makes no progress.
  // Fast cores first: deterministic and mirrors the paper's bias of giving
  // the fastest cores first crack at new work (main task on the fastest).
  // Walking the sorted idle list visits exactly the cores the historical
  // all-core scan would have offered to, in the same order: a successful
  // dispatch resumes at the first idle core after `c` (a snatch victim
  // above `c` is seen this pass, one below on the next pass — both just
  // like the full scan).
  bool progress = true;
  while (progress) {
    progress = false;
    const util::Xoshiro256 rng_before = rng_;
    std::size_t i = 0;
    while (i < idle_.size()) {
      const core::CoreIndex c = idle_[i];
      if (dispatch(c)) {
        progress = true;
        i = static_cast<std::size_t>(
            std::lower_bound(idle_.begin(), idle_.end(), c) - idle_.begin());
      } else {
        ++i;
      }
    }
    if (!progress) quiescent_ = rng_ == rng_before;
  }
}

void Engine::handle_finish(const Event& e) {
  CoreState& s = cores_[e.core];
  if (!s.busy || s.version != e.version) return;  // stale (preempted)

  charge_busy_segment(e.core);
  if (trace_ != nullptr && now_ > s.task_started) {
    trace_->record({s.task_started, now_, e.core, s.task.id, s.task.cls,
                    /*preempted=*/false, s.dispatched_at});
  }
  const SimTask finished = s.task;
  s.busy = false;
  mark_idle(e.core);
  dispatch_dirty_ = true;
  ++s.version;
  s.last_finished = finished.id;
  s.last_finish_time = now_;

  ++stats_.tasks_completed;
  stats_.total_work += finished.work;
  if (config_.governor.active()) {
    // kCmpiAware signal: work-weighted scalable fraction per group.
    const core::GroupIndex g = topo_.group_of_core(e.core);
    group_scalable_work_[g] += finished.work * finished.scalable;
    group_work_[g] += finished.work;
  }

  scheduler_.on_complete(*this, finished, e.core);
  workload_.on_complete(*this, finished, e.core);
}

void Engine::governor_tick() {
  core::GovernorInputs in;
  in.group_busy.assign(topo_.group_count(), 0);
  for (core::CoreIndex c = 0; c < cores_.size(); ++c) {
    if (cores_[c].busy) in.group_busy[topo_.group_of_core(c)] = 1;
  }
  in.group_scalable.assign(topo_.group_count(), -1.0);
  for (core::GroupIndex g = 0; g < topo_.group_count(); ++g) {
    if (group_work_[g] > 0.0) {
      in.group_scalable[g] = group_scalable_work_[g] / group_work_[g];
    }
  }
  if (const core::policy::PolicyKernel* kernel = scheduler_.kernel()) {
    in.plan = kernel->current_plan();
  }
  // kPaceToDeadline prices the LIVE backlog: queued work per lane plus
  // the remaining work of in-flight tasks, drained at each group's base
  // capacity. (The published plan's group_finish is a cumulative-history
  // prediction: it goes stale behind the publication gate and is
  // self-referential under pacing — a slowed group accrues history
  // slower and would look ever lighter.)
  std::vector<double> backlog = scheduler_.queued_group_work(topo_);
  if (!backlog.empty()) {
    backlog.resize(topo_.group_count(), 0.0);
    for (core::CoreIndex c = 0; c < cores_.size(); ++c) {
      const CoreState& s = cores_[c];
      if (!s.busy) continue;
      double rem = s.task.remaining;
      if (now_ > s.task_started) rem -= (now_ - s.task_started) * s.eff_speed;
      backlog[topo_.group_of_core(c)] += std::max(0.0, rem);
    }
    in.group_finish.resize(topo_.group_count());
    for (core::GroupIndex g = 0; g < topo_.group_count(); ++g) {
      in.group_finish[g] =
          backlog[g] / (static_cast<double>(topo_.group(g).core_count) *
                        topo_.relative_speed(g));
    }
  }
  const std::vector<double> before = governor_.current()->group_frequency_ghz;
  if (!governor_.tick(in)) return;
  const std::vector<double>& after = governor_.current()->group_frequency_ghz;
  for (core::GroupIndex g = 0; g < topo_.group_count(); ++g) {
    if (after[g] == before[g]) continue;
    fold_group_f3(g, before[g]);
    ++stats_.speed_swaps;
    // Re-price in-flight work: the snatch() idiom minus the migration
    // costs — close the open segment at the old speed, restart the
    // remainder at the new one, invalidate the stale finish event.
    const core::CoreIndex first = topo_.first_core_of_group(g);
    const core::CoreIndex limit = first + topo_.group(g).core_count;
    for (core::CoreIndex c = first; c < limit; ++c) {
      CoreState& s = cores_[c];
      if (!s.busy) continue;
      if (now_ > s.task_started) {
        const double dt = now_ - s.task_started;
        const double executed = dt * s.eff_speed;
        stats_.busy_time[c] += dt;
        busy_f3_[c] += dt * before[g] * before[g] * before[g];
        if (trace_ != nullptr) {
          trace_->record({s.task_started, now_, c, s.task.id, s.task.cls,
                          /*preempted=*/true, s.dispatched_at});
        }
        s.task.remaining = std::max(0.0, s.task.remaining - executed);
        s.task_started = now_;
        s.dispatched_at = now_;
      }
      // else: still inside acquisition latency — nothing executed yet,
      // so keep the pending start and just re-price the remainder.
      s.eff_speed = effective_speed(s.task, c);
      ++s.version;
      Event e;
      e.time = std::max(now_, s.task_started) + s.task.remaining / s.eff_speed;
      e.kind = EventKind::kFinish;
      e.core = c;
      e.version = s.version;
      push_event(std::move(e));
    }
  }
  dispatch_dirty_ = true;
}

RunStats Engine::run() {
  WATS_CHECK_MSG(!ran_, "Engine::run is single-shot");
  ran_ = true;

  workload_.start(*this);
  if (config_.recluster_period > 0.0) {
    Event e;
    e.time = config_.recluster_period;
    e.kind = EventKind::kRecluster;
    push_event(std::move(e));
  }
  if (config_.governor.active()) {
    WATS_CHECK_MSG(config_.governor.tick_period > 0.0,
                   "active governor needs a positive tick_period");
    Event e;
    e.time = config_.governor.tick_period;
    e.kind = EventKind::kGovernor;
    push_event(std::move(e));
  }
  dispatch_dirty_ = true;
  dispatch_idle_cores();

  while (!events_.empty()) {
    const Event e = events_.top();
    events_.pop();
    WATS_CHECK(e.time >= now_);
    now_ = e.time;
    ++stats_.sim_events;
    switch (e.kind) {
      case EventKind::kSpawn:
        spawn(e.task, e.spawner);
        break;
      case EventKind::kFinish:
        handle_finish(e);
        break;
      case EventKind::kRecluster: {
        scheduler_.on_recluster_tick(*this);
        dispatch_dirty_ = true;
        // Keep ticking while there is still activity.
        bool any_busy = false;
        for (const auto& c : cores_) any_busy |= c.busy;
        if (any_busy || !events_.empty()) {
          Event next;
          next.time = now_ + config_.recluster_period;
          next.kind = EventKind::kRecluster;
          push_event(std::move(next));
        }
        break;
      }
      case EventKind::kTimer:
        e.timer(*this);
        // Callbacks may retire leases or spawn work; let idle cores react.
        dispatch_dirty_ = true;
        break;
      case EventKind::kGovernor: {
        governor_tick();
        // Keep ticking while there is still activity (like kRecluster).
        bool any_busy = false;
        for (const auto& c : cores_) any_busy |= c.busy;
        if (any_busy || !events_.empty()) {
          Event next;
          next.time = now_ + config_.governor.tick_period;
          next.kind = EventKind::kGovernor;
          push_event(std::move(next));
        }
        break;
      }
    }
    dispatch_idle_cores();
  }

  WATS_CHECK_MSG(workload_.done(), "simulation drained with workload unfinished");
  WATS_CHECK_MSG(!scheduler_.has_pending(),
                 "simulation drained with tasks still queued");
  stats_.makespan = now_;
  // First-class energy: fold the open per-group f^3 integrals to the
  // makespan, then integrate the configured model over the piecewise
  // accumulators.
  for (core::GroupIndex g = 0; g < topo_.group_count(); ++g) {
    fold_group_f3(g, governor_.current()->group_frequency_ghz[g]);
  }
  const core::EnergyModel& model = config_.governor.energy;
  double busy_f3_total = 0.0;
  for (double v : busy_f3_) busy_f3_total += v;
  double all_f3 = 0.0;
  for (core::GroupIndex g = 0; g < topo_.group_count(); ++g) {
    all_f3 +=
        static_cast<double>(topo_.group(g).core_count) * group_f3_int_[g];
  }
  const double idle_f3 = std::max(0.0, all_f3 - busy_f3_total);
  stats_.energy_joules =
      model.capacitance * (busy_f3_total + model.idle_factor * idle_f3) +
      model.static_power * static_cast<double>(topo_.total_cores()) *
          stats_.makespan;
  stats_.edp = stats_.energy_joules * stats_.makespan;
  stats_.governor_ticks = governor_.ticks();
  stats_.speed_plan_epoch = governor_.current()->epoch;
  if (const core::policy::PolicyKernel* kernel = scheduler_.kernel()) {
    const core::policy::PlanStats plan = kernel->plan_stats();
    stats_.plans_published = plan.published;
    stats_.plans_skipped = plan.skipped();
    stats_.plan_repairs = plan.repairs;
    stats_.repair_fallbacks = plan.repair_fallbacks;
    if (const core::PartitionPlan* current = kernel->current_plan()) {
      stats_.plan_epoch = current->epoch;
    }
  }
  return stats_;
}

}  // namespace wats::sim
