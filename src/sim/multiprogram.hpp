// Multiprogrammed simulation: several applications co-scheduled on one
// AMC machine through a single scheduler instance.
//
// The paper evaluates one application at a time; co-running applications
// is the natural next question for a shared machine (its related work on
// OS-level scheduling is about exactly this). CompositeWorkload
// multiplexes multiple BenchmarkSpec drivers over one engine and reports
// each application's own completion time alongside the global makespan,
// so interference between applications under different schedulers can be
// measured (bench_multiprogram).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/workload_adapter.hpp"
#include "workloads/workload_model.hpp"

namespace wats::sim {

class CompositeWorkload : public Workload {
 public:
  /// All member workloads share one registry (class names are prefixed
  /// with the application name to keep histories separate).
  CompositeWorkload(std::vector<workloads::BenchmarkSpec> specs,
                    core::TaskClassRegistry& registry, std::uint64_t seed);

  void start(Engine& engine) override;
  void on_complete(Engine& engine, const SimTask& task,
                   core::CoreIndex core) override;
  bool done() const override;

  /// Virtual time at which application `i` finished (0 until done()).
  double finish_time(std::size_t i) const;
  std::size_t application_count() const { return members_.size(); }
  const std::string& application_name(std::size_t i) const;

  /// Member index owning task class `cls`. Lookup goes through an explicit
  /// id→member map rather than assuming each member interns a contiguous
  /// id range, so later interns into the shared registry (change-point
  /// resets, serving jobs admitted mid-run) cannot mis-route completions.
  std::size_t application_of(core::TaskClassId cls) const;

 private:
  struct Member {
    // unique_ptr: the drivers hold references to their specs, so the
    // spec's address must survive vector reallocation.
    std::unique_ptr<workloads::BenchmarkSpec> spec;
    std::unique_ptr<Workload> driver;
    std::uint64_t outstanding_tasks = 0;
    double finish_time = 0.0;
  };

  core::TaskClassRegistry& registry_;
  std::vector<Member> members_;
  /// member_by_class_[cls] = owning member, kNoMember for classes interned
  /// by someone else (e.g. a scheduler) into the shared registry.
  static constexpr std::size_t kNoMember = static_cast<std::size_t>(-1);
  std::vector<std::size_t> member_by_class_;
};

/// Result row for one co-run experiment.
struct MultiprogramResult {
  double makespan = 0.0;
  std::vector<double> per_app_finish;  ///< finish time of each application
  RunStats stats;
};

/// Run several applications concurrently under one scheduler.
MultiprogramResult run_multiprogram(
    const std::vector<workloads::BenchmarkSpec>& specs,
    const core::AmcTopology& topo, SchedulerKind kind,
    const SimConfig& config);

}  // namespace wats::sim
