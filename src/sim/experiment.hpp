// One-call experiment harness: run (benchmark, machine, scheduler) in the
// simulator and report makespan + scheduler statistics, optionally
// averaged over several seeds. All bench binaries build on this.
#pragma once

#include <cstdint>
#include <vector>

#include "core/topology.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"
#include "workloads/workload_model.hpp"

namespace wats::sim {

struct ExperimentConfig {
  SimConfig sim;           ///< seed is overridden per repeat
  std::size_t repeats = 3; ///< averaged runs with seeds base_seed + i
  std::uint64_t base_seed = 42;
  /// Workload estimator for the WATS family's history (§III-A extension).
  core::WorkloadEstimator estimator = core::WorkloadEstimator::kRunningMean;
  double ewma_alpha = 0.2;
  /// Change-point history decay (core/task_class.hpp): disabled by default,
  /// in which case runs are bit-identical to a registry without a detector.
  core::ChangePointConfig change_point;
  /// Warm start: serialized history (core/history_io.hpp format) loaded
  /// into the registry before each run, so the first batch is already
  /// allocated from prior knowledge instead of all-unknown -> fastest.
  std::string warm_history;
  /// Observability taps, attached to the FIRST repeat only (repeats share
  /// one recorder; a merged multi-seed timeline would be meaningless).
  /// Caller-owned, may be null. Export with sim/trace_export.hpp.
  TraceRecorder* trace = nullptr;
  obs::DecisionSink* decision_sink = nullptr;
};

struct ExperimentResult {
  double mean_makespan = 0.0;
  double min_makespan = 0.0;
  double max_makespan = 0.0;
  double mean_steals = 0.0;
  double mean_snatches = 0.0;
  double mean_utilization = 0.0;
  /// Total change-point history decays across all repeats (0 when the
  /// detector is disabled).
  std::uint64_t history_resets = 0;
  std::vector<RunStats> runs;
};

/// Run one scheduler on one benchmark on one machine.
ExperimentResult run_experiment(const workloads::BenchmarkSpec& spec,
                                const core::AmcTopology& topo,
                                SchedulerKind kind,
                                const ExperimentConfig& config = {});

/// Makespans for several schedulers on the same benchmark/machine, in the
/// order given (convenience for the figure benches).
std::vector<ExperimentResult> run_schedulers(
    const workloads::BenchmarkSpec& spec, const core::AmcTopology& topo,
    const std::vector<SchedulerKind>& kinds,
    const ExperimentConfig& config = {});

}  // namespace wats::sim
