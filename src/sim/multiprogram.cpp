#include "sim/multiprogram.hpp"

#include "sim/scheduler.hpp"
#include "util/check.hpp"

namespace wats::sim {

CompositeWorkload::CompositeWorkload(
    std::vector<workloads::BenchmarkSpec> specs,
    core::TaskClassRegistry& registry, std::uint64_t seed)
    : registry_(registry) {
  WATS_CHECK(!specs.empty());
  std::uint64_t member_seed = seed;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Member m;
    // Prefix class names with the member index and application name so
    // co-running applications keep separate histories even when they
    // share kernel (or application) names.
    m.spec = std::make_unique<workloads::BenchmarkSpec>(std::move(specs[i]));
    for (auto& cls : m.spec->classes) {
      cls.name = "app" + std::to_string(i) + "/" + m.spec->name + "/" +
                 cls.name;
    }
    m.driver = make_workload(*m.spec, registry, member_seed++);
    members_.push_back(std::move(m));
  }
}

void CompositeWorkload::start(Engine& engine) {
  // Start members one at a time, recording the contiguous class-id range
  // each one interns — that range routes completions back to the member.
  for (auto& m : members_) {
    const auto before = static_cast<core::TaskClassId>(registry_.size());
    m.driver->start(engine);
    const auto after = static_cast<core::TaskClassId>(registry_.size());
    WATS_CHECK_MSG(after > before,
                   "member workload interned no task classes");
    m.first_class = before;
    m.last_class = after - 1;
    m.outstanding_tasks = m.spec->total_tasks();
  }
}

std::size_t CompositeWorkload::member_of(core::TaskClassId cls) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (cls >= members_[i].first_class && cls <= members_[i].last_class) {
      return i;
    }
  }
  WATS_CHECK_MSG(false, "task class belongs to no application");
  __builtin_unreachable();
}

void CompositeWorkload::on_complete(Engine& engine, const SimTask& task,
                                    core::CoreIndex core) {
  Member& m = members_[member_of(task.cls)];
  m.driver->on_complete(engine, task, core);
  WATS_CHECK(m.outstanding_tasks > 0);
  if (--m.outstanding_tasks == 0) {
    WATS_CHECK(m.driver->done());
    m.finish_time = engine.now();
  }
}

bool CompositeWorkload::done() const {
  for (const auto& m : members_) {
    if (!m.driver->done()) return false;
  }
  return true;
}

double CompositeWorkload::finish_time(std::size_t i) const {
  return members_.at(i).finish_time;
}

const std::string& CompositeWorkload::application_name(std::size_t i) const {
  return members_.at(i).spec->name;
}

MultiprogramResult run_multiprogram(
    const std::vector<workloads::BenchmarkSpec>& specs,
    const core::AmcTopology& topo, SchedulerKind kind,
    const SimConfig& config) {
  core::TaskClassRegistry registry;
  auto scheduler = make_scheduler(kind, registry);
  CompositeWorkload composite(specs, registry, config.seed ^ 0xC0FFEEu);
  Engine engine(topo, config, *scheduler, composite);
  scheduler->bind(engine);

  MultiprogramResult result;
  result.stats = engine.run();
  result.makespan = result.stats.makespan;
  for (std::size_t i = 0; i < composite.application_count(); ++i) {
    result.per_app_finish.push_back(composite.finish_time(i));
  }
  return result;
}

}  // namespace wats::sim
