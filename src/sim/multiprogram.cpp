#include "sim/multiprogram.hpp"

#include "sim/scheduler.hpp"
#include "util/check.hpp"

namespace wats::sim {

CompositeWorkload::CompositeWorkload(
    std::vector<workloads::BenchmarkSpec> specs,
    core::TaskClassRegistry& registry, std::uint64_t seed)
    : registry_(registry) {
  WATS_CHECK(!specs.empty());
  std::uint64_t member_seed = seed;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Member m;
    // Prefix class names with the member index and application name so
    // co-running applications keep separate histories even when they
    // share kernel (or application) names.
    m.spec = std::make_unique<workloads::BenchmarkSpec>(std::move(specs[i]));
    for (auto& cls : m.spec->classes) {
      cls.name = "app" + std::to_string(i) + "/" + m.spec->name + "/" +
                 cls.name;
    }
    m.driver = make_workload(*m.spec, registry, member_seed++);
    members_.push_back(std::move(m));
  }
}

void CompositeWorkload::start(Engine& engine) {
  // Start members one at a time, mapping every class id each one interned
  // to that member — an explicit map rather than a [first, last] range, so
  // interleaved interning into the shared registry (another driver, a
  // change-point reset, a serving job admitted later) cannot shift a
  // member's ids out of its recorded range and mis-route completions.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Member& m = members_[i];
    const std::size_t before = registry_.size();
    m.driver->start(engine);
    const std::size_t after = registry_.size();
    WATS_CHECK_MSG(after > before,
                   "member workload interned no task classes");
    member_by_class_.resize(after, kNoMember);
    for (std::size_t cls = before; cls < after; ++cls) {
      WATS_CHECK_MSG(member_by_class_[cls] == kNoMember,
                     "task class claimed by two applications");
      member_by_class_[cls] = i;
    }
    m.outstanding_tasks = m.spec->total_tasks();
  }
}

std::size_t CompositeWorkload::application_of(core::TaskClassId cls) const {
  WATS_CHECK_MSG(cls < member_by_class_.size() &&
                     member_by_class_[cls] != kNoMember,
                 "task class belongs to no application");
  return member_by_class_[cls];
}

void CompositeWorkload::on_complete(Engine& engine, const SimTask& task,
                                    core::CoreIndex core) {
  Member& m = members_[application_of(task.cls)];
  m.driver->on_complete(engine, task, core);
  WATS_CHECK(m.outstanding_tasks > 0);
  if (--m.outstanding_tasks == 0) {
    WATS_CHECK(m.driver->done());
    m.finish_time = engine.now();
  }
}

bool CompositeWorkload::done() const {
  for (const auto& m : members_) {
    if (!m.driver->done()) return false;
  }
  return true;
}

double CompositeWorkload::finish_time(std::size_t i) const {
  return members_.at(i).finish_time;
}

const std::string& CompositeWorkload::application_name(std::size_t i) const {
  return members_.at(i).spec->name;
}

MultiprogramResult run_multiprogram(
    const std::vector<workloads::BenchmarkSpec>& specs,
    const core::AmcTopology& topo, SchedulerKind kind,
    const SimConfig& config) {
  core::TaskClassRegistry registry;
  auto scheduler = make_scheduler(kind, registry);
  CompositeWorkload composite(specs, registry, config.seed ^ 0xC0FFEEu);
  Engine engine(topo, config, *scheduler, composite);
  scheduler->bind(engine);

  MultiprogramResult result;
  result.stats = engine.run();
  result.makespan = result.stats.makespan;
  for (std::size_t i = 0; i < composite.application_count(); ++i) {
    result.per_app_finish.push_back(composite.finish_time(i));
  }
  return result;
}

}  // namespace wats::sim
