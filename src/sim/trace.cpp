#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace wats::sim {

std::vector<TraceSegment> TraceRecorder::core_segments(
    core::CoreIndex core) const {
  std::vector<TraceSegment> out;
  for (const auto& s : segments_) {
    if (s.core == core) out.push_back(s);
  }
  return out;
}

std::vector<double> TraceRecorder::busy_time(std::size_t core_count) const {
  std::vector<double> busy(core_count, 0.0);
  for (const auto& s : segments_) {
    WATS_CHECK(s.core < core_count);
    busy[s.core] += s.end - s.start;
  }
  return busy;
}

std::string TraceRecorder::render_gantt(const core::AmcTopology& topo,
                                        double makespan,
                                        std::size_t width) const {
  WATS_CHECK(width > 0);
  std::ostringstream out;
  if (makespan <= 0.0) return "";
  for (core::CoreIndex c = 0; c < topo.total_cores(); ++c) {
    std::string row(width, '.');
    for (const auto& s : segments_) {
      if (s.core != c) continue;
      auto slot = [&](double t) {
        return std::min(
            width - 1, static_cast<std::size_t>(t / makespan *
                                                static_cast<double>(width)));
      };
      for (std::size_t i = slot(s.start); i <= slot(s.end - 1e-12) && i < width;
           ++i) {
        row[i] = '#';
      }
      if (s.preempted) row[slot(s.end - 1e-12)] = '!';
    }
    out << "core " << c << " (" << topo.group(topo.group_of_core(c)).frequency_ghz
        << " GHz) |" << row << "|\n";
  }
  return out.str();
}

bool TraceRecorder::no_overlaps() const {
  // Group by core, sort by start, check adjacency.
  std::vector<TraceSegment> sorted = segments_;
  std::sort(sorted.begin(), sorted.end(), [](const TraceSegment& a,
                                             const TraceSegment& b) {
    if (a.core != b.core) return a.core < b.core;
    return a.start < b.start;
  });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].core != sorted[i - 1].core) continue;
    if (sorted[i].start < sorted[i - 1].end - 1e-9) return false;
  }
  return true;
}

}  // namespace wats::sim
