// Perfetto export for the simulator's TraceRecorder — the second producer
// of the one trace format (the first is the runtime's event rings, see
// obs/export.hpp). Virtual time units map to microseconds 1:1, so a
// simulated makespan of 120.5 renders as a 120.5 µs timeline.
#pragma once

#include <string>
#include <vector>

#include "core/topology.hpp"
#include "obs/decision.hpp"
#include "obs/span.hpp"
#include "sim/trace.hpp"

namespace wats::sim {

/// Convert a recorded simulation trace to Chrome/Perfetto trace-event
/// JSON: one thread track per core (labelled with its c-group and
/// relative speed), one complete slice per execution segment (snatch-
/// preempted segments are marked in their args, lifecycle fields —
/// ready/dispatched/parent — ride along so `wats_trace analyze` can
/// rebuild the exact span graph), and — when decision records were
/// collected — instants on a dedicated policy track.
std::string perfetto_from_sim_trace(
    const TraceRecorder& trace, const core::AmcTopology& topo,
    const std::vector<std::string>& class_names = {},
    const std::vector<obs::DecisionRecord>& decisions = {});

/// The exact span graph of a recorded run, at full double precision (no
/// JSON round trip) — the input of obs::analyze_spans. Virtual time maps
/// to microseconds 1:1, matching the Perfetto export.
obs::SpanGraph span_graph_from_sim_trace(const TraceRecorder& trace,
                                         const core::AmcTopology& topo,
                                         const std::vector<std::string>&
                                             class_names = {});

}  // namespace wats::sim
