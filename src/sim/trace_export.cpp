#include "sim/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/export.hpp"

namespace wats::sim {

std::string perfetto_from_sim_trace(
    const TraceRecorder& trace, const core::AmcTopology& topo,
    const std::vector<std::string>& class_names,
    const std::vector<obs::DecisionRecord>& decisions) {
  obs::PerfettoWriter w;
  constexpr int kPid = 0;
  const int policy_tid = static_cast<int>(topo.total_cores()) + 1;

  w.process_name(kPid, "wats simulator (" + topo.name() + ")");
  char label[64];
  for (core::CoreIndex c = 0; c < topo.total_cores(); ++c) {
    const core::GroupIndex g = topo.group_of_core(c);
    std::snprintf(label, sizeof(label), "core %zu (group %zu, %.2fx)", c, g,
                  topo.relative_speed(g));
    w.thread_name(kPid, static_cast<int>(c), label);
  }
  if (!decisions.empty()) w.thread_name(kPid, policy_tid, "policy");

  const auto name_of = [&](core::TaskClassId cls, TaskId task) {
    if (cls != core::kNoTaskClass && cls < class_names.size() &&
        !class_names[cls].empty()) {
      return class_names[cls];
    }
    if (cls != core::kNoTaskClass) {
      return "class " + std::to_string(cls);
    }
    return "task " + std::to_string(task);
  };

  // Lifecycle lookup (task -> ready/parent) for the span-graph args.
  std::map<TaskId, const TaskLifecycle*> lifecycle;
  for (const auto& lc : trace.lifecycles()) lifecycle[lc.id] = &lc;
  char num[40];
  const auto fmt = [&](double v) {
    std::snprintf(num, sizeof(num), "%.3f", v);
    return std::string(num);
  };

  double makespan = 0.0;
  for (const auto& seg : trace.segments()) {
    makespan = std::max(makespan, seg.end);
    std::ostringstream args;
    args << "{\"task\":" << seg.task << ",\"cls\":";
    if (seg.cls == core::kNoTaskClass) {
      args << -1;
    } else {
      args << seg.cls;
    }
    args << ",\"preempted\":" << (seg.preempted ? "true" : "false")
         << ",\"dispatched\":" << fmt(std::min(seg.dispatched, seg.start));
    if (const auto it = lifecycle.find(seg.task); it != lifecycle.end()) {
      args << ",\"ready\":" << fmt(it->second->ready)
           << ",\"parent\":" << it->second->parent;
    }
    args << "}";
    w.complete(kPid, static_cast<int>(seg.core),
               name_of(seg.cls, seg.task), "task", seg.start,
               seg.end - seg.start, args.str());
  }

  // Decision records carry wall-clock tick stamps while segments live in
  // virtual time; rescale the tick range onto [0, makespan] so the
  // decisions land on the timeline in order, at proportional positions.
  if (!decisions.empty()) {
    std::uint64_t lo = decisions.front().tsc;
    std::uint64_t hi = decisions.front().tsc;
    for (const auto& d : decisions) {
      lo = std::min(lo, d.tsc);
      hi = std::max(hi, d.tsc);
    }
    const double span = hi > lo ? static_cast<double>(hi - lo) : 1.0;
    for (const auto& d : decisions) {
      const double ts =
          static_cast<double>(d.tsc - lo) / span * std::max(makespan, 1.0);
      std::ostringstream args;
      args << "{\"reason\":\"" << obs::to_string(d.reason)
           << "\",\"cls\":" << d.cls << ",\"chosen\":" << d.chosen
           << ",\"victim\":" << d.victim;
      if (d.group_count > 0) {
        args << ",\"group_load\":[";
        for (std::uint8_t g = 0; g < d.group_count; ++g) {
          if (g > 0) args << ",";
          args << d.group_load[g];
        }
        args << "]";
      }
      args << "}";
      const int tid =
          d.self == 0xFFFF ? policy_tid : static_cast<int>(d.self);
      w.instant(kPid, tid, obs::to_string(d.kind), "policy", ts,
                args.str());
    }
  }

  return w.finish();
}

obs::SpanGraph span_graph_from_sim_trace(
    const TraceRecorder& trace, const core::AmcTopology& topo,
    const std::vector<std::string>& class_names) {
  obs::SpanGraph graph;
  graph.exact = true;
  graph.class_names = class_names;
  graph.core_group.reserve(topo.total_cores());
  graph.core_speed.reserve(topo.total_cores());
  for (core::CoreIndex c = 0; c < topo.total_cores(); ++c) {
    const core::GroupIndex g = topo.group_of_core(c);
    graph.core_group.push_back(static_cast<std::uint32_t>(g));
    graph.core_speed.push_back(topo.relative_speed(g));
  }

  std::map<TaskId, obs::TaskSpan> spans;
  for (const auto& lc : trace.lifecycles()) {
    obs::TaskSpan& span = spans[lc.id];
    span.id = lc.id;
    span.cls = lc.cls == core::kNoTaskClass
                   ? obs::kObsNoClass
                   : static_cast<std::uint32_t>(lc.cls);
    span.parent = lc.parent;
    span.ready = lc.ready;
  }
  for (const auto& seg : trace.segments()) {
    obs::TaskSpan& span = spans[seg.task];
    if (span.id == 0) {  // segment without a lifecycle (hand-built trace)
      span.id = seg.task;
      span.cls = seg.cls == core::kNoTaskClass
                     ? obs::kObsNoClass
                     : static_cast<std::uint32_t>(seg.cls);
      span.ready = std::min(seg.dispatched, seg.start);
    }
    obs::SpanSlice slice;
    slice.dispatched = std::min(seg.dispatched, seg.start);
    slice.start = seg.start;
    slice.end = seg.end;
    slice.core = static_cast<std::uint32_t>(seg.core);
    slice.preempted = seg.preempted;
    span.slices.push_back(slice);
    graph.makespan = std::max(graph.makespan, seg.end);
  }
  for (auto& [id, span] : spans) {
    std::sort(span.slices.begin(), span.slices.end(),
              [](const obs::SpanSlice& a, const obs::SpanSlice& b) {
                return a.start < b.start;
              });
    graph.spans.push_back(std::move(span));
  }
  return graph;
}

}  // namespace wats::sim
