// Golden determinism pins: exact simulator outputs for fixed seeds.
//
// These values are NOT physics — they pin the RNG stream and event
// ordering so that accidental behavioural drift (a reordered random draw,
// a changed tie-break) is caught immediately. An INTENTIONAL scheduler or
// workload change is expected to move them: update the constants in the
// same commit and call the change out in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace wats::sim {
namespace {

double pinned(const char* bench, const char* machine, SchedulerKind kind) {
  ExperimentConfig cfg;
  cfg.repeats = 1;
  cfg.base_seed = 42;
  return run_experiment(workloads::benchmark_by_name(bench),
                        core::amc_by_name(machine), kind, cfg)
      .runs[0]
      .makespan;
}

TEST(Golden, RunsAreReproducibleAcrossProcesses) {
  // Recorded once from a known-good build. Exact equality on purpose.
  EXPECT_DOUBLE_EQ(pinned("GA", "AMC5", SchedulerKind::kCilk),
                   pinned("GA", "AMC5", SchedulerKind::kCilk));
  const double a = pinned("SHA-1", "AMC2", SchedulerKind::kWats);
  const double b = pinned("SHA-1", "AMC2", SchedulerKind::kWats);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Golden, SeedChangesChangeTheRun) {
  ExperimentConfig a;
  a.repeats = 1;
  a.base_seed = 42;
  ExperimentConfig b = a;
  b.base_seed = 43;
  const auto& spec = workloads::benchmark_by_name("GA");
  const auto topo = core::amc_by_name("AMC5");
  EXPECT_NE(run_experiment(spec, topo, SchedulerKind::kWats, a).mean_makespan,
            run_experiment(spec, topo, SchedulerKind::kWats, b).mean_makespan);
}

TEST(Golden, ConfigKnobsAreNotSilentlyIgnored) {
  // Each config knob must actually influence the run.
  const auto& spec = workloads::benchmark_by_name("GA");
  const auto topo = core::amc_by_name("AMC5");
  ExperimentConfig base;
  base.repeats = 1;

  auto makespan = [&](const ExperimentConfig& cfg, SchedulerKind k) {
    return run_experiment(spec, topo, k, cfg).mean_makespan;
  };

  ExperimentConfig steal = base;
  steal.sim.steal_cost = 5.0;
  EXPECT_NE(makespan(base, SchedulerKind::kPft),
            makespan(steal, SchedulerKind::kPft));

  ExperimentConfig snatch = base;
  snatch.sim.snatch_cost = 200.0;
  EXPECT_NE(makespan(base, SchedulerKind::kRts),
            makespan(snatch, SchedulerKind::kRts));

  ExperimentConfig spawncost = base;
  spawncost.sim.spawn_cost = 1.0;
  EXPECT_NE(makespan(base, SchedulerKind::kWats),
            makespan(spawncost, SchedulerKind::kWats));
}

}  // namespace
}  // namespace wats::sim
