#include <gtest/gtest.h>

#include "core/hetsched.hpp"

namespace wats::core {
namespace {

TEST(EffectiveRate, ComputeRoofline) {
  HetDevice d{"d", 10.0, 100.0, 1e9};
  // Pure serial: scalar rate.
  EXPECT_DOUBLE_EQ(effective_rate({"s", 1, 0.0, 0.0}, d), 10.0);
  // Pure data-parallel: SIMD rate.
  EXPECT_DOUBLE_EQ(effective_rate({"p", 1, 1.0, 0.0}, d), 100.0);
  // Half and half: harmonic combination 1/(0.5/100 + 0.5/10).
  EXPECT_NEAR(effective_rate({"h", 1, 0.5, 0.0}, d), 1.0 / 0.055, 1e-9);
}

TEST(EffectiveRate, BandwidthRoofline) {
  HetDevice d{"d", 10.0, 100.0, 50.0};
  // 10 bytes per work unit -> at most 5 work/s regardless of compute.
  EXPECT_DOUBLE_EQ(effective_rate({"m", 1, 1.0, 10.0}, d), 5.0);
  // Light traffic leaves compute-bound.
  EXPECT_DOUBLE_EQ(effective_rate({"c", 1, 1.0, 0.1}, d), 100.0);
}

TEST(Hetsched, DataParallelGoesToGpuSerialToCpu) {
  const auto devices = example_devices();
  // 99.9% data-parallel: with only 98% the GPU's weak scalar unit loses
  // to the DSP on the serial tail (Amdahl) — which the model correctly
  // predicts.
  const std::vector<HetTaskClass> classes{
      {"render_tiles", 1000.0, 0.999, 0.5},  // data-parallel, light traffic
      {"parse_config", 100.0, 0.05, 0.2},    // serial
  };
  const auto a = schedule_heterogeneous(classes, devices);
  EXPECT_EQ(devices[a.device_of_class[0]].name, "gpu");
  EXPECT_EQ(devices[a.device_of_class[1]].name, "cpu-bigcore");
}

TEST(Hetsched, MemoryBoundPrefersBandwidth) {
  // One device with fat memory, one with fat compute.
  const std::vector<HetDevice> devices{
      {"fatmem", 5.0, 20.0, 1000.0},
      {"fatcompute", 50.0, 500.0, 20.0},
  };
  const std::vector<HetTaskClass> classes{
      {"stream_filter", 500.0, 0.9, 40.0},  // 40 B/work: bandwidth-bound
  };
  const auto a = schedule_heterogeneous(classes, devices);
  EXPECT_EQ(devices[a.device_of_class[0]].name, "fatmem");
}

TEST(Hetsched, BalancesLoadAcrossEqualDevices) {
  const std::vector<HetDevice> devices{
      {"a", 10.0, 10.0, 1e9},
      {"b", 10.0, 10.0, 1e9},
  };
  std::vector<HetTaskClass> classes;
  for (int i = 0; i < 10; ++i) {
    classes.push_back({"c" + std::to_string(i), 10.0, 0.0, 0.0});
  }
  const auto a = schedule_heterogeneous(classes, devices);
  EXPECT_NEAR(a.device_finish[0], a.device_finish[1], 1.0 + 1e-9);
  EXPECT_NEAR(a.makespan, 5.0, 1.0 + 1e-9);  // 100 work / (2 x 10 rate)
}

TEST(Hetsched, NeverWorseThanBestSingleDevice) {
  const auto devices = example_devices();
  std::vector<HetTaskClass> classes{
      {"a", 300.0, 0.9, 1.0},  {"b", 200.0, 0.1, 0.1},
      {"c", 150.0, 0.5, 20.0}, {"d", 80.0, 1.0, 0.0},
      {"e", 50.0, 0.0, 5.0},
  };
  const auto multi = schedule_heterogeneous(classes, devices);
  for (const auto& device : devices) {
    double single = 0.0;
    for (const auto& cls : classes) {
      single += cls.total_work / effective_rate(cls, device);
    }
    EXPECT_LE(multi.makespan, single + 1e-9) << device.name;
  }
}

TEST(Hetsched, EmptyInputs) {
  const auto a = schedule_heterogeneous({}, example_devices());
  EXPECT_DOUBLE_EQ(a.makespan, 0.0);
  EXPECT_TRUE(a.device_of_class.empty());
}

TEST(Hetsched, AssignmentCoversEveryClass) {
  const auto devices = example_devices();
  std::vector<HetTaskClass> classes;
  for (int i = 0; i < 25; ++i) {
    classes.push_back({"c" + std::to_string(i),
                       10.0 + static_cast<double>(i * 7 % 50),
                       (i % 10) / 10.0, static_cast<double>(i % 4)});
  }
  const auto a = schedule_heterogeneous(classes, devices);
  ASSERT_EQ(a.device_of_class.size(), classes.size());
  for (auto d : a.device_of_class) EXPECT_LT(d, devices.size());
  // Finish times reconstruct from the assignment.
  std::vector<double> finish(devices.size(), 0.0);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    finish[a.device_of_class[i]] +=
        classes[i].total_work /
        effective_rate(classes[i], devices[a.device_of_class[i]]);
  }
  for (std::size_t d = 0; d < devices.size(); ++d) {
    EXPECT_NEAR(finish[d], a.device_finish[d], 1e-9);
  }
}

}  // namespace
}  // namespace wats::core
