#include <gtest/gtest.h>

#include "core/cluster.hpp"

namespace wats::core {
namespace {

TaskClassInfo make_class(TaskClassId id, std::string name, std::uint64_t n,
                         double w) {
  TaskClassInfo c;
  c.id = id;
  c.name = std::move(name);
  c.completed = n;
  c.mean_workload = w;
  return c;
}

TEST(ClusterMap, DefaultsEverythingToFastestCluster) {
  ClusterMap map(3, 4);
  EXPECT_EQ(map.cluster_of(0), 0u);
  EXPECT_EQ(map.cluster_of(2), 0u);
  EXPECT_EQ(map.cluster_of(kNoTaskClass), 0u);
  EXPECT_EQ(map.cluster_of(999), 0u);  // unseen id -> fastest (paper §III-A)
}

TEST(ClusterMap, BuildWithNoHistoryKeepsEverythingFast) {
  const std::vector<TaskClassInfo> classes{
      make_class(0, "a", 0, 0.0), make_class(1, "b", 0, 0.0)};
  const AmcTopology topo("2g", {{2.0, 1}, {1.0, 2}});
  const ClusterMap map = ClusterMap::build(classes, topo);
  EXPECT_EQ(map.cluster_of(0), 0u);
  EXPECT_EQ(map.cluster_of(1), 0u);
}

TEST(ClusterMap, HeavyClassesGoToFastGroups) {
  // Heavy class: mean 100 x 10 tasks = 1000; light: mean 1 x 10 = 10.
  const std::vector<TaskClassInfo> classes{
      make_class(0, "light", 10, 1.0), make_class(1, "heavy", 10, 100.0)};
  const AmcTopology topo("2g", {{2.0, 2}, {1.0, 2}});
  const ClusterMap map = ClusterMap::build(classes, topo);
  EXPECT_EQ(map.cluster_of(1), 0u);  // heavy -> fastest
  EXPECT_EQ(map.cluster_of(0), 1u);  // light -> slower
}

TEST(ClusterMap, SingleGroupMachineIsTrivial) {
  const std::vector<TaskClassInfo> classes{
      make_class(0, "a", 5, 3.0), make_class(1, "b", 5, 30.0)};
  const AmcTopology topo("sym", {{2.5, 16}});
  const ClusterMap map = ClusterMap::build(classes, topo);
  EXPECT_EQ(map.cluster_count(), 1u);
  EXPECT_EQ(map.cluster_of(0), 0u);
  EXPECT_EQ(map.cluster_of(1), 0u);
}

TEST(ClusterMap, SortsByMeanWorkloadNotTotal) {
  // Class "many_small" has the larger TOTAL workload but the smaller mean;
  // §III-A sorts by mean, so "few_big" leads the walk and lands in the
  // fastest cluster.
  const std::vector<TaskClassInfo> classes{
      make_class(0, "many_small", 1000, 1.0),  // total 1000
      make_class(1, "few_big", 2, 100.0),      // total 200
  };
  const AmcTopology topo("2g", {{2.0, 1}, {1.0, 8}});
  const ClusterMap map = ClusterMap::build(classes, topo);
  EXPECT_EQ(map.cluster_of(1), 0u);
}

TEST(ClusterMap, ClassesWithoutHistoryStayFastDuringBuild) {
  const std::vector<TaskClassInfo> classes{
      make_class(0, "seen", 10, 50.0), make_class(1, "unseen", 0, 0.0),
      make_class(2, "seen_light", 10, 1.0)};
  const AmcTopology topo("2g", {{2.0, 1}, {1.0, 4}});
  const ClusterMap map = ClusterMap::build(classes, topo);
  EXPECT_EQ(map.cluster_of(1), 0u);
}

TEST(ClusterMap, BalancesGroupFinishTimes) {
  // Eight equal classes over 2 groups with capacity ratio 3:1 -> the
  // cluster weights should split roughly 3:1.
  std::vector<TaskClassInfo> classes;
  for (TaskClassId i = 0; i < 8; ++i) {
    classes.push_back(make_class(i, "c" + std::to_string(i), 10,
                                 10.0 + static_cast<double>(i)));
  }
  const AmcTopology topo("2g", {{3.0, 1}, {1.0, 1}});
  const ClusterMap map = ClusterMap::build(classes, topo);

  double w_fast = 0, w_slow = 0;
  for (const auto& c : classes) {
    (map.cluster_of(c.id) == 0 ? w_fast : w_slow) += c.total_workload();
  }
  const double finish_fast = w_fast / 3.0;
  const double finish_slow = w_slow / 1.0;
  const double tl = (w_fast + w_slow) / 4.0;
  EXPECT_NEAR(finish_fast, tl, tl * 0.5);
  EXPECT_NEAR(finish_slow, tl, tl * 0.5);
}

}  // namespace
}  // namespace wats::core
