#include <gtest/gtest.h>

#include <set>

#include "util/stats.hpp"
#include "workloads/workload_model.hpp"

namespace wats::workloads {
namespace {

TEST(PaperBenchmarks, AllNinePresentInOrder) {
  const auto& specs = paper_benchmarks();
  ASSERT_EQ(specs.size(), 9u);
  const char* expected[] = {"BWT", "Bzip-2", "DMC",   "GA",    "LZW",
                            "MD5", "SHA-1",  "Dedup", "Ferret"};
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(specs[i].name, expected[i]);
  }
}

TEST(PaperBenchmarks, BatchBenchmarksLaunch128TasksPerBatch) {
  for (const auto& spec : paper_benchmarks()) {
    if (spec.kind != BenchKind::kBatch) continue;
    EXPECT_EQ(spec.tasks_per_batch(), 128u) << spec.name;
    EXPECT_GT(spec.batches, 0u) << spec.name;
  }
}

TEST(PaperBenchmarks, PipelinesAreDedupAndFerret) {
  std::set<std::string> pipelines;
  for (const auto& spec : paper_benchmarks()) {
    if (spec.kind == BenchKind::kPipeline) pipelines.insert(spec.name);
  }
  EXPECT_EQ(pipelines, (std::set<std::string>{"Dedup", "Ferret"}));
}

TEST(PaperBenchmarks, ClassNamesUniqueWithinBenchmark) {
  for (const auto& spec : paper_benchmarks()) {
    std::set<std::string> names;
    for (const auto& c : spec.classes) {
      EXPECT_TRUE(names.insert(c.name).second)
          << spec.name << ": duplicate class " << c.name;
      EXPECT_GT(c.mean_work, 0.0);
      EXPECT_GE(c.cv, 0.0);
    }
  }
}

TEST(PaperBenchmarks, PipelineStageStructureValid) {
  for (const auto& spec : paper_benchmarks()) {
    if (spec.kind != BenchKind::kPipeline) continue;
    EXPECT_GT(spec.pipeline_items, 0u);
    EXPECT_GT(spec.stage_count(), 1u);
    for (const auto& stage : spec.pipeline_stages) {
      ASSERT_EQ(stage.class_options.size(), stage.probabilities.size());
      double sum = 0;
      for (std::size_t i = 0; i < stage.class_options.size(); ++i) {
        EXPECT_LT(stage.class_options[i], spec.classes.size());
        sum += stage.probabilities[i];
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(PaperBenchmarks, FerretStagesNearUniform) {
  // The paper's observation — Ferret tasks have similar workloads — must
  // hold for the model: max/min stage work within 25%.
  const auto& ferret = benchmark_by_name("Ferret");
  double lo = 1e100, hi = 0;
  for (const auto& c : ferret.classes) {
    lo = std::min(lo, c.mean_work);
    hi = std::max(hi, c.mean_work);
  }
  EXPECT_LT(hi / lo, 1.25);
}

TEST(PaperBenchmarks, Sha1IsTheMostSkewedBatchMix) {
  double sha1_ratio = 0;
  for (const auto& spec : paper_benchmarks()) {
    if (spec.kind != BenchKind::kBatch) continue;
    double lo = 1e100, hi = 0;
    for (const auto& c : spec.classes) {
      lo = std::min(lo, c.mean_work);
      hi = std::max(hi, c.mean_work);
    }
    if (spec.name == "SHA-1") {
      sha1_ratio = hi / lo;
    }
  }
  for (const auto& spec : paper_benchmarks()) {
    if (spec.kind != BenchKind::kBatch || spec.name == "SHA-1") continue;
    double lo = 1e100, hi = 0;
    for (const auto& c : spec.classes) {
      lo = std::min(lo, c.mean_work);
      hi = std::max(hi, c.mean_work);
    }
    EXPECT_LE(hi / lo, sha1_ratio) << spec.name;
  }
}

class GaMixTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaMixTest, Fig8DistributionPattern) {
  const std::size_t alpha = GetParam();
  const BenchmarkSpec spec = ga_mix(alpha);
  ASSERT_EQ(spec.classes.size(), 4u);
  EXPECT_EQ(spec.classes[0].tasks_per_batch, alpha);
  EXPECT_EQ(spec.classes[1].tasks_per_batch, alpha);
  EXPECT_EQ(spec.classes[2].tasks_per_batch, alpha);
  EXPECT_EQ(spec.classes[3].tasks_per_batch, 128 - 3 * alpha);
  EXPECT_EQ(spec.tasks_per_batch(), 128u);
  // Workload proportions 8t : 4t : 2t : t.
  EXPECT_DOUBLE_EQ(spec.classes[0].mean_work / spec.classes[3].mean_work, 8.0);
  EXPECT_DOUBLE_EQ(spec.classes[1].mean_work / spec.classes[3].mean_work, 4.0);
  EXPECT_DOUBLE_EQ(spec.classes[2].mean_work / spec.classes[3].mean_work, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Alphas, GaMixTest,
                         ::testing::Values(0, 4, 8, 16, 32, 40, 42));

TEST(GaMix, RejectsOversizedAlpha) {
  EXPECT_DEATH(ga_mix(43), "alpha");
}

TEST(SampleWork, MatchesMeanAndSpread) {
  TaskClassSpec cls{"x", 100.0, 0.10, 0};
  util::Xoshiro256 rng(17);
  util::RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    const double w = sample_work(cls, rng);
    EXPECT_GT(w, 0.0);
    stat.add(w);
  }
  EXPECT_NEAR(stat.mean(), 100.0, 1.0);
  EXPECT_NEAR(stat.stddev() / stat.mean(), 0.10, 0.01);
}

TEST(SampleWork, ZeroCvIsDeterministic) {
  TaskClassSpec cls{"x", 42.0, 0.0, 0};
  util::Xoshiro256 rng(1);
  EXPECT_DOUBLE_EQ(sample_work(cls, rng), 42.0);
}

TEST(RealTasks, EveryBenchmarkClassRuns) {
  // Scaled far down so the whole sweep stays fast; checksums must be
  // deterministic for a fixed seed.
  for (const auto& spec : paper_benchmarks()) {
    const auto& cls = spec.classes.front();
    auto task = make_real_task(spec.name, cls.name, 0.01, 7);
    auto again = make_real_task(spec.name, cls.name, 0.01, 7);
    EXPECT_EQ(task(), again()) << spec.name << "/" << cls.name;
  }
}

}  // namespace
}  // namespace wats::workloads
