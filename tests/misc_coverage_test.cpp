// Coverage for the remaining corners: Theorem 1 constructive instances,
// failed-acquire accounting, wait_all_for, deque growth under theft, and
// more driver/kernel combinations.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/allocation.hpp"
#include "runtime/wsdeque.hpp"
#include "sim/experiment.hpp"
#include "workloads/drivers.hpp"

namespace wats {
namespace {

// ---- Theorem 1, constructively: task sets whose optimal split hits TL
// exactly must be FOUND by Algorithm 1.

TEST(Theorem1Constructive, ProportionalWeightsAchieveTheBound) {
  // Machine capacities 4 : 2 : 1. Build groups of tasks whose sums are
  // exactly proportional: {8, 8} | {4, 4} | {2, 2} with TL = 16/4 = 4...
  const core::AmcTopology topo("t", {{4.0, 1}, {2.0, 1}, {1.0, 1}});
  const std::vector<double> w{8, 8, 4, 4, 2, 2};  // sorted descending
  const auto p = core::allocate_sorted(w, topo);
  EXPECT_TRUE(core::achieves_lower_bound(w, p, topo));
  EXPECT_DOUBLE_EQ(core::partition_makespan(w, p, topo), 4.0);
}

TEST(Theorem1Constructive, ScaledInstancesStayOptimal) {
  const core::AmcTopology topo("t", {{3.0, 2}, {1.0, 2}});  // caps 6 : 2
  for (double scale : {0.5, 1.0, 7.25, 1000.0}) {
    // Group sums 12 : 4 (ratio 6:2), TL = 2, and — crucially for the
    // contiguous Algorithm 1 — the 12 is a PREFIX of the sorted list.
    std::vector<double> w{8, 4, 2, 1, 1};
    for (auto& x : w) x *= scale;
    const auto p = core::allocate_sorted(w, topo);
    EXPECT_TRUE(core::achieves_lower_bound(w, p, topo)) << scale;
  }
}

// ---- Simulator failed-acquire accounting.

TEST(FailedAcquires, CountedWheneverCoresIdle) {
  const auto& spec = workloads::benchmark_by_name("GA");
  const auto topo = core::amc_by_name("AMC5");
  sim::ExperimentConfig cfg;
  cfg.repeats = 1;
  const auto r =
      sim::run_experiment(spec, topo, sim::SchedulerKind::kWats, cfg);
  // Batch barriers leave tails where idle cores find nothing.
  EXPECT_GT(r.runs[0].failed_acquires, 0u);
}

// ---- wait_all_for.

TEST(WaitAllFor, TimesOutWhileBusyThenSucceeds) {
  runtime::RuntimeConfig cfg;
  cfg.topology = core::AmcTopology("t", {{2.0, 2}});
  cfg.emulate_speeds = false;
  runtime::TaskRuntime rt(cfg);
  std::atomic<bool> release{false};
  rt.spawn([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  EXPECT_FALSE(rt.wait_all_for(std::chrono::milliseconds(10)));
  release = true;
  EXPECT_TRUE(rt.wait_all_for(std::chrono::milliseconds(2000)));
}

TEST(WaitAllFor, ImmediateWhenIdle) {
  runtime::RuntimeConfig cfg;
  cfg.topology = core::AmcTopology("t", {{2.0, 1}});
  cfg.emulate_speeds = false;
  runtime::TaskRuntime rt(cfg);
  EXPECT_TRUE(rt.wait_all_for(std::chrono::milliseconds(1)));
}

// ---- Deque growth while thieves are active.

TEST(WorkStealingDeque, GrowsUnderConcurrentTheft) {
  runtime::WorkStealingDeque<int> dq(8);  // tiny initial capacity
  constexpr int kItems = 50000;
  std::vector<int> items(kItems);
  std::atomic<int> stolen{0};
  std::atomic<bool> done{false};
  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire) || dq.size_approx() > 0) {
      if (dq.steal_top() != nullptr) stolen.fetch_add(1);
    }
  });
  int popped = 0;
  for (int i = 0; i < kItems; ++i) {
    dq.push_bottom(&items[static_cast<std::size_t>(i)]);
    if ((i & 7) == 0 && dq.pop_bottom() != nullptr) ++popped;
  }
  while (dq.pop_bottom() != nullptr) ++popped;
  done.store(true, std::memory_order_release);
  thief.join();
  EXPECT_EQ(popped + stolen.load(), kItems);
}

// ---- Additional real-kernel drivers at tiny scale.

TEST(DriversMore, GaAndBwtBatchesComplete) {
  runtime::RuntimeConfig cfg;
  cfg.topology = core::AmcTopology("t", {{2.0, 1}, {1.0, 3}});
  cfg.emulate_speeds = false;
  for (const char* bench : {"GA", "BWT"}) {
    runtime::TaskRuntime rt(cfg);
    const auto& spec = workloads::benchmark_by_name(bench);
    const auto r = workloads::run_batch_on_runtime(rt, spec, 0.004, 3, 1);
    EXPECT_EQ(r.tasks_run, spec.tasks_per_batch()) << bench;
  }
}

}  // namespace
}  // namespace wats
