// Merge-equivalence suite for the sharded completion history
// (core::HistoryShard + TaskClassRegistry::apply_history_delta /
// merge_history) — the proof obligation behind taking the per-completion
// mutex off the hot path.
//
// The combine is built to be ORDER-INSENSITIVE: counts and fixed-point
// integer workload sums add exactly (u64/128-bit integer addition is
// commutative and associative; double addition is not, which is why the
// sums are integers), min/max are idempotent lattice joins, and the mean
// is re-derived from the exact sums. So folding ANY partition of a
// completion stream through ANY number of shards in ANY order must yield
// a bit-identical table — which is exactly what these tests assert, for
// 100+ random seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/task_class.hpp"
#include "runtime/runtime.hpp"
#include "util/rng.hpp"

namespace wats::core {
namespace {

struct Sample {
  TaskClassId cls;
  double workload;
  double scalable;
};

/// A randomized completion stream over `num_classes` classes. Workloads
/// span five orders of magnitude so the fixed-point sums exercise both
/// tiny and large magnitudes; some classes are made rare so "seen by only
/// one worker" happens naturally.
std::vector<Sample> make_stream(util::Xoshiro256& rng,
                                std::size_t num_classes,
                                std::size_t length) {
  std::vector<Sample> stream;
  stream.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    Sample s;
    // Bias towards low class ids: high ids become rare/singleton classes.
    const auto a = rng.bounded(num_classes);
    const auto b = rng.bounded(num_classes);
    s.cls = static_cast<TaskClassId>(std::min(a, b));
    s.workload = rng.uniform(0.01, 50000.0);
    s.scalable = rng.uniform(0.0, 1.0);
    stream.push_back(s);
  }
  return stream;
}

/// Intern `n` classes as "cls0".."clsN" into `reg`, returning the ids
/// (dense, so id == index).
std::vector<TaskClassId> intern_classes(TaskClassRegistry& reg,
                                        std::size_t n) {
  std::vector<TaskClassId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(reg.intern("cls" + std::to_string(i)));
  }
  return ids;
}

/// The reference: the SAME combine applied serially, one delta per
/// completion, in stream order (a partition into singletons). Any other
/// partition/order must reproduce this table bit for bit. (Fills a
/// caller-owned registry: TaskClassRegistry owns mutexes, so it cannot be
/// returned by value.)
void serial_reference(const std::vector<Sample>& stream,
                      std::size_t num_classes, TaskClassRegistry& reg) {
  intern_classes(reg, num_classes);
  for (const auto& s : stream) {
    FixedSum dw;
    dw.add(quantize_history(s.workload));
    FixedSum ds;
    ds.add(quantize_history(s.scalable));
    reg.apply_history_delta(s.cls, 1, dw, ds, s.workload, s.workload);
  }
}

void expect_bit_identical(const TaskClassRegistry& got,
                          const TaskClassRegistry& want) {
  const auto g = got.snapshot();
  const auto w = want.snapshot();
  ASSERT_EQ(g.size(), w.size());
  EXPECT_EQ(got.total_completions(), want.total_completions());
  for (std::size_t i = 0; i < g.size(); ++i) {
    SCOPED_TRACE("class " + std::to_string(i));
    EXPECT_EQ(g[i].completed, w[i].completed);
    // Bit-identical, not approximately equal: the exact integer sums make
    // the derived doubles deterministic across fold orders.
    EXPECT_EQ(g[i].mean_workload, w[i].mean_workload);
    EXPECT_EQ(g[i].mean_scalable, w[i].mean_scalable);
    EXPECT_EQ(g[i].min_workload, w[i].min_workload);
    EXPECT_EQ(g[i].max_workload, w[i].max_workload);
  }
}

// ---------------------------------------------------------------------------
// FixedSum unit coverage (the primitive everything else leans on).
// ---------------------------------------------------------------------------

TEST(FixedSum, CarriesAcrossTheLowWord) {
  FixedSum s;
  s.add(std::numeric_limits<std::uint64_t>::max());
  s.add(1);
  EXPECT_EQ(s.lo, 0u);
  EXPECT_EQ(s.hi, 1u);
  FixedSum t;
  t.add(std::numeric_limits<std::uint64_t>::max());
  t.add(t);  // self-add: doubles the value
  EXPECT_EQ(t.lo, std::numeric_limits<std::uint64_t>::max() - 1);
  EXPECT_EQ(t.hi, 1u);
}

TEST(FixedSum, ProductMatchesRepeatedAddition) {
  util::Xoshiro256 rng(42);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t a = rng.next() >> (rng.bounded(32));
    const std::uint64_t n = rng.bounded(1000);
    FixedSum by_product;
    by_product.add_product(a, n);
    FixedSum by_addition;
    for (std::uint64_t i = 0; i < n; ++i) by_addition.add(a);
    EXPECT_EQ(by_product, by_addition) << "a=" << a << " n=" << n;
  }
}

TEST(FixedSum, ProductCoversFullWidth) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1 -> lo = 1, hi = 2^64 - 2.
  FixedSum s;
  const std::uint64_t m = std::numeric_limits<std::uint64_t>::max();
  s.add_product(m, m);
  EXPECT_EQ(s.lo, 1u);
  EXPECT_EQ(s.hi, m - 1);
}

// ---------------------------------------------------------------------------
// The property: any partition, any order == serial accumulation.
// ---------------------------------------------------------------------------

TEST(HistoryMerge, AnyPartitionAnyOrderMatchesSerial) {
  constexpr std::size_t kSeeds = 120;  // acceptance asks for 100+
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    util::Xoshiro256 rng(seed);
    const std::size_t num_classes = 1 + rng.bounded(24);
    const std::size_t length = rng.bounded(2000);
    const auto stream = make_stream(rng, num_classes, length);
    TaskClassRegistry want;
    serial_reference(stream, num_classes, want);

    // Partition the stream across a random number of shards. Shards are
    // assigned per-sample at random, so empty shards and classes seen by
    // a single shard both occur (and are asserted below to occur at least
    // once across the seed sweep via the tallies).
    const std::size_t num_shards = 1 + rng.bounded(9);
    std::vector<HistoryShard> shards(num_shards);
    for (const auto& s : stream) {
      shards[rng.bounded(num_shards)].record(s.cls, s.workload, s.scalable);
    }

    // Fold the shards in a random order, interleaving a second fold pass
    // of an already-folded shard (idempotence: a fold with no new data
    // must change nothing).
    TaskClassRegistry got;
    intern_classes(got, num_classes);
    std::vector<std::size_t> order(num_shards);
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);
    std::vector<HistoryShard::FoldCursor> cursors(num_shards);
    for (const auto i : order) {
      shards[i].fold_into(got, cursors[i]);
      // Re-fold the same shard immediately: the cursor remembers what was
      // already pushed, so this must be a no-op.
      const auto again = shards[i].fold_into(got, cursors[i]);
      EXPECT_EQ(again.completions, 0u);
    }
    expect_bit_identical(got, want);
  }
}

TEST(HistoryMerge, FoldOrderCommutes) {
  // Small and explicit: three shards folded under all six permutations
  // land on identical bits (commutativity + associativity of the merge).
  util::Xoshiro256 rng(7);
  constexpr std::size_t kClasses = 5;
  const auto stream = make_stream(rng, kClasses, 300);
  TaskClassRegistry want;
  serial_reference(stream, kClasses, want);

  std::vector<std::size_t> perm = {0, 1, 2};
  do {
    std::vector<HistoryShard> shards(3);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      shards[i % 3].record(stream[i].cls, stream[i].workload,
                           stream[i].scalable);
    }
    TaskClassRegistry got;
    intern_classes(got, kClasses);
    std::vector<HistoryShard::FoldCursor> cursors(3);
    for (const auto i : perm) shards[i].fold_into(got, cursors[i]);
    expect_bit_identical(got, want);
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(HistoryMerge, EmptyShardsAndSingleWorkerClasses) {
  TaskClassRegistry want;
  TaskClassRegistry got;
  intern_classes(want, 3);
  intern_classes(got, 3);
  // Class 0: seen only by shard 0. Class 2: seen only by shard 2.
  // Class 1: never completed. Shard 1: never records anything.
  HistoryShard s0, s1, s2;
  s0.record(0, 10.0);
  s0.record(0, 20.0);
  s2.record(2, 5.0, 0.25);
  {
    FixedSum dw, ds;
    dw.add(quantize_history(10.0));
    ds.add(quantize_history(1.0));
    want.apply_history_delta(0, 1, dw, ds, 10.0, 10.0);
  }
  {
    FixedSum dw, ds;
    dw.add(quantize_history(20.0));
    ds.add(quantize_history(1.0));
    want.apply_history_delta(0, 1, dw, ds, 20.0, 20.0);
  }
  {
    FixedSum dw, ds;
    dw.add(quantize_history(5.0));
    ds.add(quantize_history(0.25));
    want.apply_history_delta(2, 1, dw, ds, 5.0, 5.0);
  }
  HistoryShard::FoldCursor c0, c1, c2;
  // Empty shard first, empty shard between, re-fold of an empty shard:
  // all no-ops.
  EXPECT_EQ(s1.fold_into(got, c1).completions, 0u);
  const auto f0 = s0.fold_into(got, c0);
  EXPECT_EQ(f0.completions, 2u);
  EXPECT_EQ(f0.classes_discovered, 1u);
  EXPECT_EQ(s1.fold_into(got, c1).completions, 0u);
  const auto f2 = s2.fold_into(got, c2);
  EXPECT_EQ(f2.completions, 1u);
  EXPECT_EQ(f2.classes_discovered, 1u);
  expect_bit_identical(got, want);
  EXPECT_EQ(got.info(1).completed, 0u);
  EXPECT_FALSE(got.has_history(1));
  EXPECT_EQ(got.info(2).mean_scalable, 0.25);
  EXPECT_EQ(got.info(0).min_workload, 10.0);
  EXPECT_EQ(got.info(0).max_workload, 20.0);
}

TEST(HistoryMerge, ShardedMeanTracksLockedMeanToRoundingError) {
  // The locked path keeps Algorithm 2's incremental formula verbatim (the
  // simulator's golden figures depend on its exact rounding); the sharded
  // path derives the mean from exact sums. The two must agree to relative
  // rounding error — they are the same statistic computed two ways.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Xoshiro256 rng(seed * 977);
    constexpr std::size_t kClasses = 8;
    const auto stream = make_stream(rng, kClasses, 1500);

    TaskClassRegistry locked;
    intern_classes(locked, kClasses);
    for (const auto& s : stream) {
      locked.record_completion(s.cls, s.workload, s.scalable);
    }
    HistoryShard shard;
    for (const auto& s : stream) shard.record(s.cls, s.workload, s.scalable);
    TaskClassRegistry sharded;
    intern_classes(sharded, kClasses);
    HistoryShard::FoldCursor cursor;
    shard.fold_into(sharded, cursor);

    const auto a = locked.snapshot();
    const auto b = sharded.snapshot();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].completed, b[i].completed);
      // Error budget: fixed-point quantization adds <= 2^-21 (~4.8e-7)
      // absolute error per sample — and hence at most that much to the
      // mean — on top of ordinary FP rounding (relative ~1e-15).
      const double tol = 1e-6 + 1e-9 * a[i].mean_workload;
      EXPECT_NEAR(a[i].mean_workload, b[i].mean_workload, tol);
      EXPECT_NEAR(a[i].mean_scalable, b[i].mean_scalable, 1e-6);
    }
  }
}

// ---------------------------------------------------------------------------
// Warm-start merge (the preload_history fix).
// ---------------------------------------------------------------------------

TEST(HistoryMerge, MergeHistoryCombinesInsteadOfOverwriting) {
  // Live history: 10 completions of 2.0. Persisted: 30 completions of
  // mean 6.0. The merge must weight them 10:30 -> mean 5.0 (restore, the
  // overwrite, would leave 6.0).
  TaskClassRegistry reg;
  const auto id = reg.intern("mixed");
  HistoryShard shard;
  for (int i = 0; i < 10; ++i) shard.record(id, 2.0);
  HistoryShard::FoldCursor cursor;
  shard.fold_into(reg, cursor);
  reg.merge_history(id, 30, 6.0);
  EXPECT_EQ(reg.info(id).completed, 40u);
  EXPECT_NEAR(reg.info(id).mean_workload, 5.0, 1e-6);
  EXPECT_EQ(reg.total_completions(), 40u);
}

TEST(HistoryMerge, MergeCommutesWithFolds) {
  // merge-then-fold and fold-then-merge give bit-identical tables: the
  // persisted block is just another delta in the order-insensitive
  // combine.
  util::Xoshiro256 rng(31337);
  constexpr std::size_t kClasses = 6;
  const auto stream = make_stream(rng, kClasses, 400);

  const auto build = [&](bool merge_first) {
    TaskClassRegistry reg;
    intern_classes(reg, kClasses);
    HistoryShard shard;
    for (const auto& s : stream) shard.record(s.cls, s.workload, s.scalable);
    HistoryShard::FoldCursor cursor;
    if (merge_first) reg.merge_history(2, 500, 123.456, 0.5);
    shard.fold_into(reg, cursor);
    if (!merge_first) reg.merge_history(2, 500, 123.456, 0.5);
    return reg.snapshot();
  };
  const auto a = build(true);
  const auto b = build(false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].mean_workload, b[i].mean_workload);
    EXPECT_EQ(a[i].mean_scalable, b[i].mean_scalable);
    EXPECT_EQ(a[i].min_workload, b[i].min_workload);
    EXPECT_EQ(a[i].max_workload, b[i].max_workload);
  }
}

TEST(HistoryMerge, RuntimePreloadMergesWithLiveHistory) {
  // End-to-end regression for the preload_history double-weight bug: a
  // class with live completions in THIS run used to have them clobbered
  // by a warm-start restore(). Now the persisted block merges. Run under
  // both history paths.
  for (const bool locked : {false, true}) {
    SCOPED_TRACE(locked ? "locked_history" : "sharded_history");
    runtime::RuntimeConfig cfg;
    cfg.topology = core::AmcTopology("merge", {{1.0, 2}});
    cfg.emulate_speeds = false;
    cfg.helper_period = std::chrono::microseconds(200);
    cfg.locked_history = locked;
    runtime::TaskRuntime rt(cfg);
    const auto cls = rt.register_class("warm");
    constexpr int kLive = 8;
    for (int i = 0; i < kLive; ++i) {
      rt.spawn(cls, [] {
        // Minimal but nonzero work so the measured workload is sane.
        volatile int x = 0;
        for (int j = 0; j < 1000; ++j) x = x + j;
      });
    }
    rt.wait_all();

    std::vector<TaskClassInfo> persisted(1);
    persisted[0].name = "warm";
    persisted[0].completed = 100;
    persisted[0].mean_workload = 50.0;
    rt.preload_history(persisted);

    const auto history = rt.class_history();
    ASSERT_GT(history.size(), cls);
    // The live completions survive the preload: merged, not overwritten.
    EXPECT_EQ(history[cls].completed,
              static_cast<std::uint64_t>(kLive) + 100u);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: recorders vs a folding helper (run under TSan in CI).
// ---------------------------------------------------------------------------

TEST(HistoryMerge, ConcurrentRecordAndFoldLosesNothing) {
  // N recorder threads hammer overlapping class sets while a folder
  // thread folds all shards and triggers reclusters, 1000+ fold
  // iterations. At quiescence every completion must have landed exactly
  // once. This is the TSan witness for the relaxed-atomics protocol; the
  // count assertion catches lost updates even without TSan.
  constexpr std::size_t kRecorders = 4;
  constexpr std::uint64_t kPerRecorder = 20000;
  constexpr std::size_t kClasses = 12;
  constexpr int kFoldIterations = 1000;

  TaskClassRegistry reg;
  intern_classes(reg, kClasses);
  std::vector<HistoryShard> shards(kRecorders);
  std::atomic<bool> stop{false};

  std::vector<std::thread> recorders;
  for (std::size_t r = 0; r < kRecorders; ++r) {
    recorders.emplace_back([&, r] {
      util::Xoshiro256 rng(0xABCD + r);
      for (std::uint64_t i = 0; i < kPerRecorder; ++i) {
        // Overlapping sets: recorder r covers [r, r + kClasses/2].
        const auto cls = static_cast<TaskClassId>(
            (r + rng.bounded(kClasses / 2 + 1)) % kClasses);
        shards[r].record(cls, rng.uniform(0.1, 100.0), rng.uniform(0.0, 1.0));
      }
    });
  }

  std::thread folder([&] {
    std::vector<HistoryShard::FoldCursor> cursors(kRecorders);
    int iterations = 0;
    // Keep folding until the recorders are done AND we did >= 1000
    // passes (the folds overlap live recording either way).
    while (iterations < kFoldIterations ||
           !stop.load(std::memory_order_acquire)) {
      for (std::size_t r = 0; r < kRecorders; ++r) {
        shards[r].fold_into(reg, cursors[r]);
      }
      ++iterations;
      // "Trigger a recluster": consume the completion count the way the
      // helper's change detection does (Algorithm 1's input is the
      // registry the folds feed).
      (void)reg.total_completions();
    }
    // Final quiescent pass: everything recorded has happened-before the
    // recorder joins below, but this thread may have folded before then —
    // one more fold catches the tail.
    for (std::size_t r = 0; r < kRecorders; ++r) {
      shards[r].fold_into(reg, cursors[r]);
    }
  });

  for (auto& t : recorders) t.join();
  stop.store(true, std::memory_order_release);
  folder.join();

  std::uint64_t total = 0;
  for (const auto& c : reg.snapshot()) total += c.completed;
  EXPECT_EQ(total, kRecorders * kPerRecorder);
  EXPECT_EQ(reg.total_completions(), kRecorders * kPerRecorder);
}

TEST(HistoryMerge, RuntimeShardedHistoryIsCompleteAfterWaitAll) {
  // Through the real runtime: spawn classified tasks on several workers,
  // then check class_history() (which folds on read) accounts for every
  // completion even between helper ticks.
  runtime::RuntimeConfig cfg;
  cfg.topology = core::AmcTopology("complete", {{2.0, 2}, {1.0, 2}});
  cfg.emulate_speeds = false;
  cfg.helper_period = std::chrono::milliseconds(1);
  runtime::TaskRuntime rt(cfg);
  const auto a = rt.register_class("alpha");
  const auto b = rt.register_class("beta");
  constexpr std::uint64_t kTasks = 600;
  std::atomic<std::uint64_t> ran{0};
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    rt.spawn(i % 2 == 0 ? a : b,
             [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  rt.wait_all();
  EXPECT_EQ(ran.load(), kTasks);
  const auto history = rt.class_history();
  ASSERT_GT(history.size(), std::max(a, b));
  EXPECT_EQ(history[a].completed + history[b].completed, kTasks);
  EXPECT_EQ(history[a].completed, kTasks / 2);
  EXPECT_GT(history[a].mean_workload, 0.0);
  EXPECT_LE(history[a].min_workload, history[a].max_workload);
}

}  // namespace
}  // namespace wats::core
