#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/pools.hpp"
#include "sim/scheduler.hpp"
#include "sim/workload_adapter.hpp"

namespace wats::sim {
namespace {

// ---- A minimal scripted workload for engine unit tests: spawns a fixed
// set of tasks at start, optionally a second wave on first completion.

class ScriptedWorkload : public Workload {
 public:
  explicit ScriptedWorkload(std::vector<SimTask> initial,
                            std::vector<SimTask> follow_up = {})
      : initial_(std::move(initial)), follow_up_(std::move(follow_up)) {}

  void start(Engine& engine) override {
    for (auto& t : initial_) {
      ++outstanding_;
      engine.spawn(t, 0);
    }
    initial_.clear();
  }

  void on_complete(Engine& engine, const SimTask&, core::CoreIndex) override {
    --outstanding_;
    if (!follow_up_.empty()) {
      for (auto& t : follow_up_) {
        ++outstanding_;
        engine.spawn(t, 0);
      }
      follow_up_.clear();
    }
  }

  bool done() const override { return outstanding_ == 0; }

 private:
  std::vector<SimTask> initial_;
  std::vector<SimTask> follow_up_;
  int outstanding_ = 0;
};

SimTask task(TaskId id, double work, core::TaskClassId cls = 0) {
  SimTask t;
  t.id = id;
  t.cls = cls;
  t.work = work;
  t.remaining = work;
  return t;
}

SimConfig zero_cost_config() {
  SimConfig cfg;
  cfg.steal_cost = 0.0;
  cfg.snatch_cost = 0.0;
  return cfg;
}

// ---- PoolSet.

TEST(PoolSet, LifoOwnerFifoThief) {
  PoolSet pools(2);
  pools.push(0, task(1, 1));
  pools.push(0, task(2, 2));
  pools.push(0, task(3, 3));
  EXPECT_EQ(pools.size(0), 3u);
  EXPECT_EQ(pools.pop_lifo(0)->id, 3u);
  EXPECT_EQ(pools.steal_fifo(0)->id, 1u);
  EXPECT_EQ(pools.pop_lifo(0)->id, 2u);
  EXPECT_FALSE(pools.pop_lifo(0).has_value());
  EXPECT_TRUE(pools.empty(0));
}

TEST(PoolSet, StealLightestPicksMinimumWork) {
  PoolSet pools(1);
  pools.push(0, task(1, 5.0));
  pools.push(0, task(2, 1.0));
  pools.push(0, task(3, 3.0));
  EXPECT_EQ(pools.steal_lightest(0)->id, 2u);
  EXPECT_EQ(pools.lightest_work(0), std::optional<double>(3.0));
  EXPECT_DOUBLE_EQ(pools.queued_work(0), 8.0);
}

// ---- Engine basics.

TEST(Engine, SingleTaskSingleCoreMakespan) {
  const core::AmcTopology topo("1", {{2.0, 1}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  ScriptedWorkload wl({task(1, 10.0)});
  Engine engine(topo, zero_cost_config(), *sched, wl);
  sched->bind(engine);
  const RunStats stats = engine.run();
  EXPECT_DOUBLE_EQ(stats.makespan, 5.0);  // 10 work / 2 GHz
  EXPECT_EQ(stats.tasks_completed, 1u);
  EXPECT_DOUBLE_EQ(stats.total_work, 10.0);
}

TEST(Engine, ParallelTasksOverlap) {
  const core::AmcTopology topo("2", {{1.0, 2}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  ScriptedWorkload wl({task(1, 4.0), task(2, 4.0)});
  Engine engine(topo, zero_cost_config(), *sched, wl);
  sched->bind(engine);
  EXPECT_DOUBLE_EQ(engine.run().makespan, 4.0);
}

TEST(Engine, FollowUpSpawnsExtendTheRun) {
  const core::AmcTopology topo("1", {{1.0, 1}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  ScriptedWorkload wl({task(1, 2.0)}, {task(2, 3.0)});
  Engine engine(topo, zero_cost_config(), *sched, wl);
  sched->bind(engine);
  EXPECT_DOUBLE_EQ(engine.run().makespan, 5.0);
}

TEST(Engine, UtilizationIsBoundedByOne) {
  const auto topo = core::amc_by_name("AMC2");
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  std::vector<SimTask> tasks;
  for (TaskId i = 0; i < 64; ++i) tasks.push_back(task(i, 5.0 + static_cast<double>(i)));
  ScriptedWorkload wl(std::move(tasks));
  Engine engine(topo, zero_cost_config(), *sched, wl);
  sched->bind(engine);
  const RunStats stats = engine.run();
  EXPECT_GT(stats.utilization(topo), 0.1);
  EXPECT_LE(stats.utilization(topo), 1.0 + 1e-9);
}

TEST(Engine, RunIsSingleShot) {
  const core::AmcTopology topo("1", {{1.0, 1}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  ScriptedWorkload wl({task(1, 1.0)});
  Engine engine(topo, zero_cost_config(), *sched, wl);
  sched->bind(engine);
  engine.run();
  EXPECT_DEATH(engine.run(), "single-shot");
}

// ---- The paper's Section II motivating example (Fig. 1).
//
// Four tasks of 1.5t, 4t, t, 1.5t (time on the fast core) on 1 fast (2x) +
// 3 slow (1x) cores. Optimal allocation finishes at 4t; a bad random
// allocation (heavy task on a slow core) finishes at 8t.

TEST(Motivation, OptimalAllocationReaches4t) {
  const core::AmcTopology amc("fig1", {{2.0, 1}, {1.0, 3}});
  // Workloads normalized to the fast core: time x F1.
  const double w1 = 3.0, w2 = 8.0, w3 = 2.0, w4 = 3.0;
  // Fig. 1(a): T2 on the fast core; T1, T3, T4 on the slow cores.
  const double makespan =
      std::max({w2 / 2.0, w1 / 1.0, w3 / 1.0, w4 / 1.0});
  EXPECT_DOUBLE_EQ(makespan, 4.0);
}

TEST(Motivation, BadAllocationReaches8t) {
  const double w2 = 8.0;
  EXPECT_DOUBLE_EQ(w2 / 1.0, 8.0);  // T2 on a slow core dominates
}

TEST(Motivation, WatsConvergesToNearOptimalAfterHistory) {
  // Run many batches of the Fig. 1 task mix through the simulator: after
  // the first (cold) batch WATS should place the 4t class on the fast
  // core, approaching the optimal 4t per batch, while Cilk stays near the
  // random average (well above).
  workloads::BenchmarkSpec spec;
  spec.name = "fig1";
  spec.kind = workloads::BenchKind::kBatch;
  spec.classes = {
      {"t2", 8.0, 0.0, 1},   // 4t task
      {"t1", 3.0, 0.0, 2},   // two 1.5t tasks
      {"t3", 2.0, 0.0, 1},   // t task
  };
  spec.batches = 32;
  const core::AmcTopology amc("fig1", {{2.0, 1}, {1.0, 3}});

  ExperimentConfig cfg;
  cfg.repeats = 5;
  const auto wats = run_experiment(spec, amc, SchedulerKind::kWats, cfg);
  const auto cilk = run_experiment(spec, amc, SchedulerKind::kCilk, cfg);
  // Optimal: 4t per batch -> 128 total. Give WATS 15% slack for the cold
  // first batch and steal costs.
  EXPECT_LT(wats.mean_makespan, 32 * 4.0 * 1.15);
  EXPECT_LT(wats.mean_makespan, cilk.mean_makespan);
}

// ---- Scheduler behaviour.

TEST(Schedulers, DeterministicForFixedSeed) {
  const auto topo = core::amc_by_name("AMC1");
  const auto& spec = workloads::benchmark_by_name("GA");
  for (auto kind : {SchedulerKind::kCilk, SchedulerKind::kPft,
                    SchedulerKind::kRts, SchedulerKind::kWats,
                    SchedulerKind::kWatsNp, SchedulerKind::kWatsTs}) {
    ExperimentConfig cfg;
    cfg.repeats = 1;
    const auto a = run_experiment(spec, topo, kind, cfg);
    const auto b = run_experiment(spec, topo, kind, cfg);
    EXPECT_DOUBLE_EQ(a.mean_makespan, b.mean_makespan)
        << to_string(kind);
  }
}

TEST(Schedulers, AllCompleteEveryTask) {
  const auto topo = core::amc_by_name("AMC2");
  const auto& spec = workloads::benchmark_by_name("LZW");
  for (auto kind : {SchedulerKind::kCilk, SchedulerKind::kPft,
                    SchedulerKind::kRts, SchedulerKind::kWats,
                    SchedulerKind::kWatsNp, SchedulerKind::kWatsTs}) {
    ExperimentConfig cfg;
    cfg.repeats = 1;
    const auto r = run_experiment(spec, topo, kind, cfg);
    EXPECT_EQ(r.runs[0].tasks_completed, spec.total_tasks())
        << to_string(kind);
  }
}

TEST(Schedulers, MakespanNeverBelowLowerBoundEstimate) {
  // Mean task work x count / capacity is a statistical lower-bound
  // estimate; no scheduler can beat it by more than sampling noise.
  const auto topo = core::amc_by_name("AMC5");
  const auto& spec = workloads::benchmark_by_name("MD5");
  double expected_total = 0;
  for (const auto& c : spec.classes) {
    expected_total += c.mean_work * static_cast<double>(c.tasks_per_batch);
  }
  expected_total *= static_cast<double>(spec.batches);
  const double tl = expected_total / topo.total_capacity();
  for (auto kind : {SchedulerKind::kCilk, SchedulerKind::kWats}) {
    ExperimentConfig cfg;
    cfg.repeats = 2;
    const auto r = run_experiment(spec, topo, kind, cfg);
    EXPECT_GT(r.mean_makespan, tl * 0.95) << to_string(kind);
  }
}

TEST(Schedulers, WatsMatchesPftOnSymmetricMachine) {
  // AMC7 is symmetric: WATS degenerates to parent-first stealing (§IV-A);
  // identical seeds must give identical schedules.
  const auto topo = core::amc_by_name("AMC7");
  const auto& spec = workloads::benchmark_by_name("GA");
  ExperimentConfig cfg;
  cfg.repeats = 2;
  const auto wats = run_experiment(spec, topo, SchedulerKind::kWats, cfg);
  const auto pft = run_experiment(spec, topo, SchedulerKind::kPft, cfg);
  EXPECT_NEAR(wats.mean_makespan, pft.mean_makespan,
              pft.mean_makespan * 0.01);
}

TEST(Schedulers, WatsBeatsRandomOnSkewedWorkloads) {
  // The headline result, in miniature: on an asymmetric machine with a
  // skewed mix, WATS must beat Cilk and PFT clearly.
  const auto topo = core::amc_by_name("AMC5");
  const auto& spec = workloads::benchmark_by_name("SHA-1");
  ExperimentConfig cfg;
  cfg.repeats = 3;
  const auto wats = run_experiment(spec, topo, SchedulerKind::kWats, cfg);
  const auto cilk = run_experiment(spec, topo, SchedulerKind::kCilk, cfg);
  const auto pft = run_experiment(spec, topo, SchedulerKind::kPft, cfg);
  EXPECT_LT(wats.mean_makespan, cilk.mean_makespan * 0.8);
  EXPECT_LT(wats.mean_makespan, pft.mean_makespan * 0.8);
}

TEST(Schedulers, WatsNpBetweenPftAndWats) {
  // Fig. 9's ordering: WATS <= WATS-NP <= PFT (allocation alone already
  // beats random stealing; preference stealing adds the rest).
  const auto topo = core::amc_by_name("AMC5");
  const auto& spec = workloads::benchmark_by_name("GA");
  ExperimentConfig cfg;
  cfg.repeats = 3;
  const auto wats = run_experiment(spec, topo, SchedulerKind::kWats, cfg);
  const auto np = run_experiment(spec, topo, SchedulerKind::kWatsNp, cfg);
  const auto pft = run_experiment(spec, topo, SchedulerKind::kPft, cfg);
  EXPECT_LE(wats.mean_makespan, np.mean_makespan * 1.02);
  EXPECT_LT(np.mean_makespan, pft.mean_makespan);
}

TEST(Schedulers, RtsActuallySnatches) {
  const auto topo = core::amc_by_name("AMC3");
  const auto& spec = workloads::benchmark_by_name("GA");
  ExperimentConfig cfg;
  cfg.repeats = 1;
  const auto rts = run_experiment(spec, topo, SchedulerKind::kRts, cfg);
  EXPECT_GT(rts.mean_snatches, 0.0);
  const auto cilk = run_experiment(spec, topo, SchedulerKind::kCilk, cfg);
  EXPECT_EQ(cilk.mean_snatches, 0.0);
}

TEST(Schedulers, WatsNeverSnatchesWatsTsMay) {
  const auto topo = core::amc_by_name("AMC5");
  const auto& spec = workloads::benchmark_by_name("GA");
  ExperimentConfig cfg;
  cfg.repeats = 1;
  EXPECT_EQ(run_experiment(spec, topo, SchedulerKind::kWats, cfg).mean_snatches,
            0.0);
  EXPECT_EQ(
      run_experiment(spec, topo, SchedulerKind::kWatsNp, cfg).mean_snatches,
      0.0);
}

// ---- Pipeline workload semantics.

TEST(Pipeline, StagesRunInOrderPerItem) {
  // A pipeline on a single core: per-item stage order is globally visible
  // in the completion sequence; total work must all be executed.
  workloads::BenchmarkSpec spec;
  spec.name = "p";
  spec.kind = workloads::BenchKind::kPipeline;
  spec.classes = {{"s0", 1.0, 0.0, 0}, {"s1", 2.0, 0.0, 0}};
  spec.pipeline_items = 10;
  spec.pipeline_window = 3;

  const core::AmcTopology topo("1", {{1.0, 1}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  auto wl = make_workload(spec, reg, 1);
  Engine engine(topo, zero_cost_config(), *sched, *wl);
  sched->bind(engine);
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.tasks_completed, 20u);
  EXPECT_DOUBLE_EQ(stats.total_work, 10 * 3.0);
  EXPECT_DOUBLE_EQ(stats.makespan, 30.0);
}

TEST(Pipeline, WindowLimitsConcurrency) {
  // With a window of 1 the pipeline serializes: makespan equals total
  // work even on many cores.
  workloads::BenchmarkSpec spec;
  spec.name = "p";
  spec.kind = workloads::BenchKind::kPipeline;
  spec.classes = {{"s0", 1.0, 0.0, 0}, {"s1", 1.0, 0.0, 0}};
  spec.pipeline_items = 8;
  spec.pipeline_window = 1;

  const core::AmcTopology topo("4", {{1.0, 4}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  auto wl = make_workload(spec, reg, 1);
  Engine engine(topo, zero_cost_config(), *sched, *wl);
  sched->bind(engine);
  EXPECT_DOUBLE_EQ(engine.run().makespan, 16.0);
}

TEST(Batch, BarrierBetweenBatches) {
  // Two batches of one task each on one core: makespan = sum.
  workloads::BenchmarkSpec spec;
  spec.name = "b";
  spec.kind = workloads::BenchKind::kBatch;
  spec.classes = {{"c", 3.0, 0.0, 1}};
  spec.batches = 2;

  const core::AmcTopology topo("1", {{1.0, 1}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  auto wl = make_workload(spec, reg, 1);
  Engine engine(topo, zero_cost_config(), *sched, *wl);
  sched->bind(engine);
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.tasks_completed, 2u);
  EXPECT_DOUBLE_EQ(stats.makespan, 6.0);
}

TEST(Batch, SpawnCostStaggersAvailability) {
  workloads::BenchmarkSpec spec;
  spec.name = "b";
  spec.kind = workloads::BenchKind::kBatch;
  spec.classes = {{"c", 1.0, 0.0, 4}};
  spec.batches = 1;

  const core::AmcTopology topo("4", {{1.0, 4}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  auto wl = make_workload(spec, reg, 1);
  SimConfig cfg = zero_cost_config();
  cfg.spawn_cost = 0.5;
  Engine engine(topo, cfg, *sched, *wl);
  sched->bind(engine);
  // Last task becomes available at 2.0 and takes 1.0.
  EXPECT_DOUBLE_EQ(engine.run().makespan, 3.0);
}

TEST(Experiment, RepeatsAggregateProperly) {
  const auto topo = core::amc_by_name("AMC2");
  const auto& spec = workloads::benchmark_by_name("Ferret");
  ExperimentConfig cfg;
  cfg.repeats = 3;
  const auto r = run_experiment(spec, topo, SchedulerKind::kWats, cfg);
  EXPECT_EQ(r.runs.size(), 3u);
  EXPECT_GE(r.max_makespan, r.mean_makespan);
  EXPECT_LE(r.min_makespan, r.mean_makespan);
  EXPECT_GT(r.mean_utilization, 0.0);
}

}  // namespace
}  // namespace wats::sim
