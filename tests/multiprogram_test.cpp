#include <gtest/gtest.h>

#include "sim/multiprogram.hpp"

namespace wats::sim {
namespace {

workloads::BenchmarkSpec small_batch(const std::string& name, double work,
                                     std::size_t batches = 4) {
  workloads::BenchmarkSpec spec;
  spec.name = name;
  spec.kind = workloads::BenchKind::kBatch;
  spec.classes = {
      {"heavy", work * 4, 0.05, 2, 1.0},
      {"light", work, 0.05, 6, 1.0},
  };
  spec.batches = batches;
  return spec;
}

TEST(Multiprogram, BothApplicationsComplete) {
  const auto topo = core::amc_by_name("AMC5");
  SimConfig cfg;
  const auto r = run_multiprogram(
      {small_batch("appA", 10.0), small_batch("appB", 20.0)}, topo,
      SchedulerKind::kWats, cfg);
  ASSERT_EQ(r.per_app_finish.size(), 2u);
  EXPECT_GT(r.per_app_finish[0], 0.0);
  EXPECT_GT(r.per_app_finish[1], 0.0);
  EXPECT_DOUBLE_EQ(
      r.makespan, std::max(r.per_app_finish[0], r.per_app_finish[1]));
  const std::size_t expected = small_batch("a", 1).total_tasks() * 2;
  EXPECT_EQ(r.stats.tasks_completed, expected);
}

TEST(Multiprogram, SharedClassNamesStaySeparate) {
  // Both applications use classes named heavy/light; the name prefixing
  // must keep their histories apart — verified indirectly: the engine
  // completes and per-app accounting balances.
  const auto topo = core::amc_by_name("AMC2");
  SimConfig cfg;
  const auto r = run_multiprogram(
      {small_batch("same", 5.0), small_batch("same", 500.0)}, topo,
      SchedulerKind::kWats, cfg);
  // The second app is 100x heavier; it must finish last.
  EXPECT_LT(r.per_app_finish[0], r.per_app_finish[1]);
}

TEST(Multiprogram, CoRunSlowerThanSoloButBounded) {
  const auto topo = core::amc_by_name("AMC5");
  SimConfig cfg;
  const auto solo = run_multiprogram({small_batch("app", 50.0)}, topo,
                                     SchedulerKind::kWats, cfg);
  const auto duo = run_multiprogram(
      {small_batch("app", 50.0), small_batch("rival", 50.0)}, topo,
      SchedulerKind::kWats, cfg);
  // Sharing the machine slows the app down, but by at most ~2x + noise.
  EXPECT_GT(duo.makespan, solo.makespan);
  EXPECT_LT(duo.makespan, solo.makespan * 2.6);
}

TEST(Multiprogram, WorksUnderEveryScheduler) {
  const auto topo = core::amc_by_name("AMC1");
  SimConfig cfg;
  for (auto kind : {SchedulerKind::kCilk, SchedulerKind::kPft,
                    SchedulerKind::kRts, SchedulerKind::kWats,
                    SchedulerKind::kWatsNp, SchedulerKind::kWatsTs}) {
    const auto r = run_multiprogram(
        {small_batch("x", 8.0, 2), small_batch("y", 16.0, 2)}, topo, kind,
        cfg);
    EXPECT_GT(r.makespan, 0.0) << to_string(kind);
    EXPECT_EQ(r.per_app_finish.size(), 2u) << to_string(kind);
  }
}

TEST(Multiprogram, PipelinePlusBatchMix) {
  const auto topo = core::amc_by_name("AMC2");
  workloads::BenchmarkSpec pipe;
  pipe.name = "pipe";
  pipe.kind = workloads::BenchKind::kPipeline;
  pipe.classes = {{"s0", 4.0, 0.0, 0, 1.0}, {"s1", 8.0, 0.0, 0, 1.0}};
  pipe.pipeline_items = 40;
  pipe.pipeline_window = 8;
  SimConfig cfg;
  const auto r = run_multiprogram({pipe, small_batch("b", 10.0, 2)}, topo,
                                  SchedulerKind::kWats, cfg);
  EXPECT_EQ(r.stats.tasks_completed,
            40 * 2 + small_batch("b", 1, 2).total_tasks());
}

TEST(Multiprogram, DeterministicForFixedSeed) {
  const auto topo = core::amc_by_name("AMC5");
  SimConfig cfg;
  cfg.seed = 99;
  const auto a = run_multiprogram(
      {small_batch("p", 10.0), small_batch("q", 30.0)}, topo,
      SchedulerKind::kWats, cfg);
  const auto b = run_multiprogram(
      {small_batch("p", 10.0), small_batch("q", 30.0)}, topo,
      SchedulerKind::kWats, cfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.per_app_finish, b.per_app_finish);
}

}  // namespace
}  // namespace wats::sim
