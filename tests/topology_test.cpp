#include <gtest/gtest.h>

#include "core/topology.hpp"

namespace wats::core {
namespace {

TEST(AmcTopology, SortsGroupsByDescendingFrequency) {
  AmcTopology t("x", {{0.8, 2}, {2.5, 1}, {1.3, 3}});
  ASSERT_EQ(t.group_count(), 3u);
  EXPECT_DOUBLE_EQ(t.group(0).frequency_ghz, 2.5);
  EXPECT_DOUBLE_EQ(t.group(1).frequency_ghz, 1.3);
  EXPECT_DOUBLE_EQ(t.group(2).frequency_ghz, 0.8);
}

TEST(AmcTopology, DropsEmptyAndMergesDuplicateGroups) {
  AmcTopology t("x", {{2.5, 2}, {1.8, 0}, {2.5, 3}, {0.8, 1}});
  ASSERT_EQ(t.group_count(), 2u);
  EXPECT_EQ(t.group(0).core_count, 5u);
  EXPECT_EQ(t.group(1).core_count, 1u);
}

TEST(AmcTopology, CapacityAndSpeeds) {
  AmcTopology t("x", {{2.5, 2}, {0.8, 10}});
  EXPECT_EQ(t.total_cores(), 12u);
  EXPECT_DOUBLE_EQ(t.total_capacity(), 2.5 * 2 + 0.8 * 10);
  EXPECT_DOUBLE_EQ(t.fastest_frequency(), 2.5);
  EXPECT_DOUBLE_EQ(t.relative_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(t.relative_speed(1), 0.8 / 2.5);
  EXPECT_DOUBLE_EQ(t.group_capacity(1), 8.0);
}

TEST(AmcTopology, CoreToGroupMapping) {
  AmcTopology t("x", {{2.5, 2}, {1.8, 3}, {0.8, 1}});
  EXPECT_EQ(t.group_of_core(0), 0u);
  EXPECT_EQ(t.group_of_core(1), 0u);
  EXPECT_EQ(t.group_of_core(2), 1u);
  EXPECT_EQ(t.group_of_core(4), 1u);
  EXPECT_EQ(t.group_of_core(5), 2u);
  EXPECT_EQ(t.first_core_of_group(0), 0u);
  EXPECT_EQ(t.first_core_of_group(1), 2u);
  EXPECT_EQ(t.first_core_of_group(2), 5u);
}

TEST(AmcTopology, SymmetricDetection) {
  EXPECT_TRUE(AmcTopology("s", {{2.5, 16}}).symmetric());
  EXPECT_FALSE(AmcTopology("a", {{2.5, 8}, {0.8, 8}}).symmetric());
}

TEST(Table2, HasSevenMachinesOfSixteenCores) {
  const auto machines = amc_table2();
  ASSERT_EQ(machines.size(), 7u);
  for (const auto& m : machines) {
    EXPECT_EQ(m.total_cores(), 16u) << m.name();
  }
  // Spot-check rows against Table II.
  const AmcTopology& amc1 = machines[0];
  EXPECT_EQ(amc1.name(), "AMC1");
  ASSERT_EQ(amc1.group_count(), 4u);
  EXPECT_EQ(amc1.group(0).core_count, 2u);
  EXPECT_EQ(amc1.group(3).core_count, 10u);

  const AmcTopology& amc7 = machines[6];
  EXPECT_TRUE(amc7.symmetric());
  EXPECT_EQ(amc7.group(0).core_count, 16u);
  EXPECT_DOUBLE_EQ(amc7.group(0).frequency_ghz, 2.5);
}

TEST(Table2, LookupByName) {
  const AmcTopology amc5 = amc_by_name("AMC5");
  ASSERT_EQ(amc5.group_count(), 2u);
  EXPECT_EQ(amc5.group(0).core_count, 8u);
  EXPECT_EQ(amc5.group(1).core_count, 8u);
  EXPECT_DOUBLE_EQ(amc5.group(1).frequency_ghz, 0.8);
}

TEST(Table2, CapacitiesDecreaseWithAsymmetryDepth) {
  // AMC7 (all fast) has the largest capacity; AMC3 (2 fast, 14 slowest)
  // the smallest.
  const auto machines = amc_table2();
  const double cap3 = amc_by_name("AMC3").total_capacity();
  const double cap7 = amc_by_name("AMC7").total_capacity();
  for (const auto& m : machines) {
    EXPECT_GE(m.total_capacity(), cap3 - 1e-9) << m.name();
    EXPECT_LE(m.total_capacity(), cap7 + 1e-9) << m.name();
  }
}

TEST(Fig5Example, ThreeGroupsQuadCore) {
  const AmcTopology t = amc_fig5_example();
  EXPECT_EQ(t.total_cores(), 4u);
  EXPECT_EQ(t.group_count(), 3u);
  EXPECT_EQ(t.group(1).core_count, 2u);
}

TEST(AmcTopology, DescribeMentionsAllGroups) {
  const std::string d = amc_by_name("AMC2").describe();
  EXPECT_NE(d.find("AMC2"), std::string::npos);
  EXPECT_NE(d.find("2.5"), std::string::npos);
  EXPECT_NE(d.find("0.8"), std::string::npos);
}

TEST(TopologyParse, RoundTripsCustomSpecs) {
  const AmcTopology t = amc_from_string("8x2.5+8x0.8");
  EXPECT_EQ(t.total_cores(), 16u);
  ASSERT_EQ(t.group_count(), 2u);
  EXPECT_DOUBLE_EQ(t.group(0).frequency_ghz, 2.5);
  EXPECT_EQ(t.group(1).core_count, 8u);
}

TEST(TopologyParse, SingleGroupAndReordering) {
  EXPECT_TRUE(amc_from_string("4x2.0").symmetric());
  // Groups may be listed slow-first; construction re-sorts.
  const AmcTopology t = amc_from_string("2x0.8+1x3.0");
  EXPECT_DOUBLE_EQ(t.fastest_frequency(), 3.0);
}

TEST(TopologyParse, NameOrSpecDispatch) {
  EXPECT_EQ(amc_by_name_or_spec("AMC5").name(), "AMC5");
  EXPECT_EQ(amc_by_name_or_spec("2x2.0+2x1.0").total_cores(), 4u);
}

TEST(TopologyParse, MalformedSpecsAbort) {
  EXPECT_DEATH(amc_from_string(""), "empty|malformed");
  EXPECT_DEATH(amc_from_string("x2.5"), "malformed");
  EXPECT_DEATH(amc_from_string("4x"), "malformed");
  EXPECT_DEATH(amc_from_string("4xabc"), "malformed");
  EXPECT_DEATH(amc_from_string("4x2.5+junk"), "malformed");
}

}  // namespace
}  // namespace wats::core
