#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/policy/policy.hpp"
#include "core/preference.hpp"

namespace wats::core {
namespace {

TEST(PreferenceList, TableOneExactly) {
  // Table I (translated to 0-based indices): for 3 c-groups,
  //   C1 core:  {C1, C2, C3}  -> {0, 1, 2}
  //   C2 cores: {C2, C3, C1}  -> {1, 2, 0}
  //   C3 core:  {C3, C2, C1}  -> {2, 1, 0}
  EXPECT_EQ(preference_list(0, 3), (std::vector<GroupIndex>{0, 1, 2}));
  EXPECT_EQ(preference_list(1, 3), (std::vector<GroupIndex>{1, 2, 0}));
  EXPECT_EQ(preference_list(2, 3), (std::vector<GroupIndex>{2, 1, 0}));
}

TEST(PreferenceList, Fig4GeneralForm) {
  // {Ci, Ci+1, ..., Ck, Ci-1, Ci-2, ..., C1}
  EXPECT_EQ(preference_list(2, 5), (std::vector<GroupIndex>{2, 3, 4, 1, 0}));
  EXPECT_EQ(preference_list(0, 5), (std::vector<GroupIndex>{0, 1, 2, 3, 4}));
  EXPECT_EQ(preference_list(4, 5), (std::vector<GroupIndex>{4, 3, 2, 1, 0}));
}

TEST(PreferenceList, SingleGroup) {
  EXPECT_EQ(preference_list(0, 1), (std::vector<GroupIndex>{0}));
}

class PreferencePropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PreferencePropertyTest, EveryListIsAPermutationStartingWithOwn) {
  const std::size_t k = GetParam();
  const auto lists = all_preference_lists(k);
  ASSERT_EQ(lists.size(), k);
  for (GroupIndex own = 0; own < k; ++own) {
    const auto& list = lists[own];
    ASSERT_EQ(list.size(), k);
    EXPECT_EQ(list.front(), own);
    auto sorted = list;
    std::sort(sorted.begin(), sorted.end());
    for (GroupIndex g = 0; g < k; ++g) EXPECT_EQ(sorted[g], g);
    // Rob-the-weaker: all slower groups appear before any faster group.
    bool seen_faster = false;
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i] < own) {
        seen_faster = true;
      } else {
        EXPECT_FALSE(seen_faster)
            << "slower cluster after a faster one in list for group " << own;
      }
    }
    // Faster groups appear nearest-first: Ci-1 before Ci-2, etc.
    GroupIndex prev_faster = own;
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i] < own) {
        EXPECT_EQ(list[i], prev_faster - 1);
        prev_faster = list[i];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, PreferencePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

// ---- PolicyKernel::wake_order — the waker-side mirror of Algorithm 3,
// used by the runtime's parking lot to pick which c-group's sleeper a
// fresh spawn should wake.

std::unique_ptr<policy::PolicyKernel> bound_kernel(policy::PolicyKind kind,
                                                   TaskClassRegistry& reg,
                                                   const AmcTopology& topo) {
  auto kernel = policy::make_policy(kind, reg);
  kernel->bind(topo, policy::PolicyOptions{});
  return kernel;
}

TEST(WakeOrder, WatsFamilyFollowsPreferenceLists) {
  const AmcTopology topo("t", {{2.0, 1}, {1.5, 1}, {1.0, 1}});
  TaskClassRegistry reg;
  for (const auto kind : {policy::PolicyKind::kWats, policy::PolicyKind::kWatsTs,
                          policy::PolicyKind::kWatsM}) {
    SCOPED_TRACE(policy::to_string(kind));
    const auto kernel = bound_kernel(kind, reg, topo);
    for (GroupIndex lane = 0; lane < 3; ++lane) {
      EXPECT_EQ(kernel->wake_order(lane), preference_list(lane, 3));
    }
  }
}

TEST(WakeOrder, WatsNpWakesOnlyTheOwnGroup) {
  // No-preference-stealing ablation: other groups can never acquire the
  // lane's work, so waking their sleepers would be pure churn.
  const AmcTopology topo("t", {{2.0, 1}, {1.5, 1}, {1.0, 1}});
  TaskClassRegistry reg;
  const auto kernel = bound_kernel(policy::PolicyKind::kWatsNp, reg, topo);
  for (GroupIndex lane = 0; lane < 3; ++lane) {
    EXPECT_EQ(kernel->wake_order(lane), (std::vector<GroupIndex>{lane}));
  }
}

TEST(WakeOrder, SingleLanePoliciesCoverEveryGroup) {
  // Cilk/PFT/RTS place everything on lane 0 and any worker may take it:
  // the wake order degenerates to the full fast-first scan.
  const AmcTopology topo("t", {{2.0, 1}, {1.5, 1}, {1.0, 1}});
  TaskClassRegistry reg;
  for (const auto kind : {policy::PolicyKind::kCilk, policy::PolicyKind::kPft,
                          policy::PolicyKind::kRts}) {
    SCOPED_TRACE(policy::to_string(kind));
    const auto kernel = bound_kernel(kind, reg, topo);
    EXPECT_EQ(kernel->wake_order(0), (std::vector<GroupIndex>{0, 1, 2}));
  }
}

}  // namespace
}  // namespace wats::core
