// Tests for the noise-aware perf harness (obs/perf.hpp): JSON round-trip,
// direction-aware banded comparison, best-of-repeats noise rejection, the
// slack multiplier, and the wats_metrics/1 JSON renderer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/perf.hpp"

namespace wats::obs {
namespace {

PerfReport sample_report() {
  PerfReport r;
  r.probe = "test probe";
  r.repeats = 3;
  r.metrics = {
      {"steal_latency_ns_p99", "ns", false, 0.75, 0.0, {900.0, 850.0, 910.0}},
      {"ns_per_completion", "ns", false, 0.35, 0.0, {120.0, 118.0, 125.0}},
      {"sim_events_per_sec", "1/s", true, 0.35, 0.0, {2.0e6, 2.2e6, 2.1e6}},
  };
  return r;
}

TEST(Perf, BestOfRepeatsByDirection) {
  const auto r = sample_report();
  EXPECT_DOUBLE_EQ(r.metrics[0].best(), 850.0);   // lower is better -> min
  EXPECT_DOUBLE_EQ(r.metrics[2].best(), 2.2e6);   // higher is better -> max
  EXPECT_DOUBLE_EQ(PerfMetric{}.best(), 0.0);     // empty -> 0
}

TEST(Perf, JsonRoundTrip) {
  const auto original = sample_report();
  const std::string json = render_perf_json(original);
  EXPECT_NE(json.find("wats_perf/1"), std::string::npos);

  PerfReport parsed;
  std::string error;
  ASSERT_TRUE(parse_perf_json(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed.probe, original.probe);
  EXPECT_EQ(parsed.repeats, original.repeats);
  ASSERT_EQ(parsed.metrics.size(), original.metrics.size());
  for (std::size_t i = 0; i < parsed.metrics.size(); ++i) {
    EXPECT_EQ(parsed.metrics[i].name, original.metrics[i].name);
    EXPECT_EQ(parsed.metrics[i].unit, original.metrics[i].unit);
    EXPECT_EQ(parsed.metrics[i].higher_is_better,
              original.metrics[i].higher_is_better);
    EXPECT_NEAR(parsed.metrics[i].rel_threshold,
                original.metrics[i].rel_threshold, 1e-9);
    ASSERT_EQ(parsed.metrics[i].values.size(),
              original.metrics[i].values.size());
    for (std::size_t j = 0; j < parsed.metrics[i].values.size(); ++j) {
      const double v = original.metrics[i].values[j];
      EXPECT_NEAR(parsed.metrics[i].values[j], v,
                  1e-5 * std::max(1.0, std::abs(v)));
    }
  }
}

TEST(Perf, ParseRejectsBadInput) {
  PerfReport r;
  std::string error;
  EXPECT_FALSE(parse_perf_json("not json", &r, &error));
  EXPECT_FALSE(parse_perf_json("{\"schema\": \"other/1\"}", &r, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  EXPECT_FALSE(
      parse_perf_json("{\"schema\": \"wats_perf/1\"}", &r, &error));
}

TEST(Perf, IdenticalRunsPass) {
  const auto r = sample_report();
  const auto diff = diff_perf(r, r, 1.0);
  EXPECT_FALSE(diff.regression);
  for (const auto& d : diff.deltas) {
    EXPECT_FALSE(d.regressed) << d.name;
    EXPECT_FALSE(d.missing) << d.name;
    EXPECT_DOUBLE_EQ(d.rel_change, 0.0) << d.name;
  }
}

// The acceptance criterion: an injected 2x slowdown must flag, on both
// lower-is-better and higher-is-better metrics (every band is < 1.0).
TEST(Perf, TwoXSlowdownFlags) {
  const auto base = sample_report();
  auto slow = base;
  for (auto& m : slow.metrics) {
    for (auto& v : m.values) v = m.higher_is_better ? v / 2.0 : v * 2.0;
  }
  const auto diff = diff_perf(base, slow, 1.0);
  EXPECT_TRUE(diff.regression);
  for (const auto& d : diff.deltas) {
    EXPECT_TRUE(d.regressed) << d.name;
    EXPECT_GT(d.rel_change, d.allowed) << d.name;
  }
  // The other direction never regresses. Note the asymmetry: a 2x
  // speedup on a lower-is-better metric is rel_change -0.5, which stays
  // inside a 0.75 band ("ok"), while the 2x slowdown was +1.0 (flagged).
  const auto inverse = diff_perf(slow, base, 1.0);
  EXPECT_FALSE(inverse.regression);
  for (const auto& d : inverse.deltas) {
    EXPECT_FALSE(d.regressed) << d.name;
    EXPECT_LT(d.rel_change, 0.0) << d.name;
    if (d.allowed < 0.5) EXPECT_TRUE(d.improved) << d.name;
  }
}

// Best-of-repeats absorbs one-off spikes: a current run whose BEST repeat
// matches the baseline passes even when its other repeats are terrible.
TEST(Perf, BestOfRepeatsRejectsSpikes) {
  PerfReport base;
  base.metrics = {{"lat", "ns", false, 0.10, 0.0, {100.0, 102.0}}};
  PerfReport current;
  current.metrics = {{"lat", "ns", false, 0.10, 0.0, {350.0, 104.0}}};
  const auto diff = diff_perf(base, current, 1.0);
  EXPECT_FALSE(diff.regression);
  EXPECT_NEAR(diff.deltas[0].rel_change, 0.04, 1e-9);
}

TEST(Perf, SlackWidensBands) {
  PerfReport base;
  base.metrics = {{"lat", "ns", false, 0.50, 0.0, {100.0}}};
  PerfReport current;
  current.metrics = {{"lat", "ns", false, 0.50, 0.0, {160.0}}};  // +60%
  EXPECT_TRUE(diff_perf(base, current, 1.0).regression);
  EXPECT_FALSE(diff_perf(base, current, 2.0).regression);
}

// Zero / near-zero baselines: without an absolute floor a 0 -> 2 counter
// move divides by zero (inf/NaN rel_change); the floor clamps the
// denominator and absorbs sub-floor jitter outright.
TEST(Perf, ZeroBaselineAbsFloorClamps) {
  PerfReport base;
  base.metrics = {{"history_resets", "count", false, 0.5, 4.0, {0.0}}};
  PerfReport current;
  current.metrics = {{"history_resets", "count", false, 0.5, 4.0, {2.0}}};

  // Within the floor: exactly zero change, finite, no regression.
  auto diff = diff_perf(base, current, 1.0);
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_TRUE(std::isfinite(diff.deltas[0].rel_change));
  EXPECT_DOUBLE_EQ(diff.deltas[0].rel_change, 0.0);
  EXPECT_FALSE(diff.regression);

  // Beyond the floor: denominator is clamped to the floor, so 0 -> 12 is
  // +300% (12/4), finite, and regresses against the 50% band.
  current.metrics[0].values = {12.0};
  diff = diff_perf(base, current, 1.0);
  EXPECT_TRUE(std::isfinite(diff.deltas[0].rel_change));
  EXPECT_NEAR(diff.deltas[0].rel_change, 3.0, 1e-9);
  EXPECT_TRUE(diff.regression);

  // Floor of 0 keeps the legacy behavior for a zero baseline: any nonzero
  // current reads as +100%, still finite.
  base.metrics[0].abs_floor = 0.0;
  diff = diff_perf(base, current, 1.0);
  EXPECT_TRUE(std::isfinite(diff.deltas[0].rel_change));
  EXPECT_DOUBLE_EQ(diff.deltas[0].rel_change, 1.0);
}

// abs_floor survives the JSON round-trip (and is omitted when 0).
TEST(Perf, AbsFloorJsonRoundTrip) {
  PerfReport r;
  r.probe = "floor";
  r.repeats = 1;
  r.metrics = {{"resets", "count", false, 0.5, 4.0, {0.0}},
               {"lat", "ns", false, 0.5, 0.0, {100.0}}};
  const std::string json = render_perf_json(r);
  EXPECT_NE(json.find("\"abs_floor\": 4"), std::string::npos);

  PerfReport parsed;
  std::string error;
  ASSERT_TRUE(parse_perf_json(json, &parsed, &error)) << error;
  ASSERT_EQ(parsed.metrics.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.metrics[0].abs_floor, 4.0);
  EXPECT_DOUBLE_EQ(parsed.metrics[1].abs_floor, 0.0);
}

TEST(Perf, MissingMetricsNeverRegress) {
  auto base = sample_report();
  auto current = sample_report();
  current.metrics.erase(current.metrics.begin());  // dropped in current
  current.metrics.push_back({"new_metric", "ns", false, 0.1, 0.0, {5.0}});
  const auto diff = diff_perf(base, current, 1.0);
  EXPECT_FALSE(diff.regression);
  std::size_t missing = 0;
  for (const auto& d : diff.deltas) missing += d.missing ? 1 : 0;
  EXPECT_EQ(missing, 2u);  // the dropped one and the new one
}

TEST(Perf, RenderDiffShowsVerdicts) {
  const auto base = sample_report();
  auto slow = base;
  for (auto& v : slow.metrics[0].values) v *= 10.0;
  const auto text = render_perf_diff(diff_perf(base, slow, 1.0));
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("regression detected"), std::string::npos);
  const auto ok_text = render_perf_diff(diff_perf(base, base, 1.0));
  EXPECT_NE(ok_text.find("no regression"), std::string::npos);
}

// The wats_metrics/1 renderer (runtime --json satellite): counters,
// gauges and histograms with p50/p99/p999 appear in the document.
TEST(Perf, MetricsRegistryJson) {
  MetricsRegistry reg;
  reg.counter("tasks_executed").set(42);
  reg.set_gauge("placement_accuracy", 0.875);
  auto& h = reg.histogram("queue_delay_ns");
  for (std::uint64_t v : {100u, 200u, 400u, 800u, 1600u}) h.record(v);

  const std::string json = render_json(reg.snapshot());
  for (const char* needle :
       {"wats_metrics/1", "\"tasks_executed\": 42", "placement_accuracy",
        "0.875000", "queue_delay_ns", "\"count\": 5", "\"p50\"", "\"p99\"",
        "\"p999\"", "\"max\": 1600"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n"
                                                    << json;
  }
  // And the text renderer now reports p999 too.
  EXPECT_NE(render_text(reg.snapshot()).find("p999<="), std::string::npos);
}

}  // namespace
}  // namespace wats::obs
