#include <gtest/gtest.h>

#include <string>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "workloads/arith.hpp"
#include "workloads/bitstream.hpp"
#include "workloads/bwt.hpp"
#include "workloads/bzip2_like.hpp"
#include "workloads/datagen.hpp"
#include "workloads/dmc.hpp"
#include "workloads/huffman.hpp"
#include "workloads/lzw.hpp"
#include "workloads/mtf_rle.hpp"

namespace wats::workloads {
namespace {

using util::Bytes;
using util::bytes_of;

// ---- Bit streams.

TEST(BitStream, RoundTripMixedWidths) {
  BitWriter w;
  w.put(0b101, 3);
  w.put(0xDEADBEEF, 32);
  w.put(0, 1);
  w.put(0x7F, 7);
  const Bytes buf = w.take();
  BitReader r(buf);
  EXPECT_EQ(r.get(3), 0b101u);
  EXPECT_EQ(r.get(32), 0xDEADBEEFu);
  EXPECT_EQ(r.get(1), 0u);
  EXPECT_EQ(r.get(7), 0x7Fu);
}

TEST(BitStream, BitCountTracksPartialBytes) {
  BitWriter w;
  w.put(1, 1);
  EXPECT_EQ(w.bit_count(), 1u);
  w.put(0, 9);
  EXPECT_EQ(w.bit_count(), 10u);
}

// ---- LZW.

class LzwRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LzwRoundTripTest, TextCorpus) {
  const Bytes input = text_corpus(GetParam(), 42);
  const Bytes packed = lzw_compress(input);
  EXPECT_EQ(lzw_decompress(packed, input.size()), input);
}

TEST_P(LzwRoundTripTest, RandomBytes) {
  const Bytes input = random_bytes(GetParam(), 43);
  const Bytes packed = lzw_compress(input);
  EXPECT_EQ(lzw_decompress(packed, input.size()), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzwRoundTripTest,
                         ::testing::Values(0, 1, 2, 17, 256, 4096, 65536,
                                           300000));

TEST(Lzw, RepetitiveInputCompressesWell) {
  Bytes input;
  for (int i = 0; i < 2000; ++i) {
    const char* s = "abcabcabd";
    input.insert(input.end(), s, s + 9);
  }
  const Bytes packed = lzw_compress(input);
  EXPECT_LT(packed.size(), input.size() / 4);
  EXPECT_EQ(lzw_decompress(packed, input.size()), input);
}

TEST(Lzw, KwKwKPattern) {
  // "aaaa..." exercises the code-not-yet-in-dictionary special case.
  const Bytes input(1000, 'a');
  const Bytes packed = lzw_compress(input);
  EXPECT_EQ(lzw_decompress(packed, input.size()), input);
}

class LzwWidthSweepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LzwWidthSweepTest, RoundTripsAtEveryDictionaryWidth) {
  LzwConfig cfg;
  cfg.max_code_bits = GetParam();
  const Bytes input = text_corpus(60000, GetParam());
  const Bytes packed = lzw_compress(input, cfg);
  EXPECT_EQ(lzw_decompress(packed, input.size(), cfg), input);
}

INSTANTIATE_TEST_SUITE_P(Widths, LzwWidthSweepTest,
                         ::testing::Values(9, 10, 11, 12, 14, 16, 18, 24));

TEST(Lzw, SmallDictionaryForcesResets) {
  LzwConfig cfg;
  cfg.max_code_bits = 9;  // dictionary of only 512 codes -> frequent resets
  const Bytes input = text_corpus(50000, 7);
  const Bytes packed = lzw_compress(input, cfg);
  EXPECT_EQ(lzw_decompress(packed, input.size(), cfg), input);
}

// ---- BWT.

TEST(Bwt, KnownBananaExample) {
  // Cyclic BWT of "banana": rotations sorted -> last column "nnbaaa",
  // original rotation at row 3.
  const BwtResult r = bwt_forward(bytes_of("banana"));
  EXPECT_EQ(util::string_of(r.transformed), "nnbaaa");
  EXPECT_EQ(util::string_of(bwt_inverse(r.transformed, r.primary)), "banana");
}

class BwtRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BwtRoundTripTest, TextRoundTrip) {
  const Bytes input = text_corpus(GetParam(), 11);
  const BwtResult r = bwt_forward(input);
  EXPECT_EQ(bwt_inverse(r.transformed, r.primary), input);
}

TEST_P(BwtRoundTripTest, RandomRoundTrip) {
  const Bytes input = random_bytes(GetParam(), 12);
  const BwtResult r = bwt_forward(input);
  EXPECT_EQ(bwt_inverse(r.transformed, r.primary), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BwtRoundTripTest,
                         ::testing::Values(1, 2, 3, 100, 1000, 20000));

TEST(Bwt, PeriodicInputs) {
  for (const char* s : {"aaaa", "abab", "abcabcabc", "aa"}) {
    const BwtResult r = bwt_forward(bytes_of(s));
    EXPECT_EQ(util::string_of(bwt_inverse(r.transformed, r.primary)), s) << s;
  }
}

TEST(Bwt, EmptyInput) {
  const BwtResult r = bwt_forward({});
  EXPECT_TRUE(r.transformed.empty());
  EXPECT_TRUE(bwt_inverse(r.transformed, r.primary).empty());
}

TEST(Bwt, GroupsSimilarSymbols) {
  // On text, BWT should produce longer same-symbol runs than the input.
  const Bytes input = text_corpus(20000, 5);
  const BwtResult r = bwt_forward(input);
  auto count_runs = [](const Bytes& b) {
    std::size_t runs = b.empty() ? 0 : 1;
    for (std::size_t i = 1; i < b.size(); ++i) runs += b[i] != b[i - 1];
    return runs;
  };
  EXPECT_LT(count_runs(r.transformed), count_runs(input));
}

// ---- MTF + ZRLE.

TEST(Mtf, RoundTrip) {
  const Bytes input = text_corpus(5000, 21);
  EXPECT_EQ(mtf_decode(mtf_encode(input)), input);
}

TEST(Mtf, FrontSymbolEncodesAsZero) {
  const Bytes input{'x', 'x', 'x'};
  const Bytes out = mtf_encode(input);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);
}

TEST(Zrle, RoundTripWithLongZeroRuns) {
  Bytes mtf;
  for (std::size_t run : {1u, 2u, 3u, 4u, 7u, 100u, 255u, 1000u}) {
    mtf.insert(mtf.end(), run, 0);
    mtf.push_back(42);
  }
  const auto symbols = zrle_encode(mtf);
  EXPECT_EQ(symbols.back(), kEob);
  EXPECT_EQ(zrle_decode(symbols), mtf);
}

TEST(Zrle, EmptyAndAllZeros) {
  EXPECT_EQ(zrle_decode(zrle_encode({})), Bytes{});
  const Bytes zeros(513, 0);
  EXPECT_EQ(zrle_decode(zrle_encode(zeros)), zeros);
}

TEST(Zrle, CompressesZeroHeavyStreams) {
  const Bytes zeros(10000, 0);
  // Bijective base-2 encodes a run of n zeros in about log2(n) symbols.
  EXPECT_LT(zrle_encode(zeros).size(), 20u);
}

// ---- Huffman.

TEST(Huffman, DegenerateAlphabets) {
  std::vector<std::uint64_t> freqs(258, 0);
  EXPECT_EQ(huffman_code_lengths(freqs), std::vector<std::uint8_t>(258, 0));
  freqs[7] = 100;
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(lengths[7], 1);
}

TEST(Huffman, OptimalLengthsForKnownDistribution) {
  // freqs {8,4,2,1,1}: classic Huffman lengths {1,2,3,4,4}.
  const std::vector<std::uint64_t> freqs{8, 4, 2, 1, 1};
  const auto lengths = huffman_code_lengths(freqs);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 2);
  EXPECT_EQ(lengths[2], 3);
  EXPECT_EQ(lengths[3], 4);
  EXPECT_EQ(lengths[4], 4);
}

TEST(Huffman, KraftEqualityHolds) {
  util::Xoshiro256 rng(31);
  std::vector<std::uint64_t> freqs(64);
  for (auto& f : freqs) f = rng.bounded(1000) + 1;
  const auto lengths = huffman_code_lengths(freqs);
  double kraft = 0.0;
  for (auto l : lengths) {
    if (l > 0) kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_NEAR(kraft, 1.0, 1e-12);  // Huffman codes are complete
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  util::Xoshiro256 rng(37);
  std::vector<std::uint64_t> freqs(100, 0);
  std::vector<std::uint16_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    const auto s = static_cast<std::uint16_t>(rng.bounded(100));
    symbols.push_back(s);
    ++freqs[s];
  }
  const auto lengths = huffman_code_lengths(freqs);
  const auto codes = canonical_codes(lengths);
  BitWriter w;
  huffman_encode(symbols, lengths, codes, w);
  const Bytes buf = w.take();

  HuffmanDecoder dec(lengths);
  BitReader r(buf);
  for (std::uint16_t expected : symbols) {
    ASSERT_EQ(dec.decode(r), expected);
  }
}

TEST(Huffman, CanonicalCodesArePrefixFree) {
  const std::vector<std::uint64_t> freqs{5, 9, 12, 13, 16, 45};
  const auto lengths = huffman_code_lengths(freqs);
  const auto codes = canonical_codes(lengths);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    for (std::size_t j = 0; j < codes.size(); ++j) {
      if (i == j) continue;
      if (lengths[i] > lengths[j]) continue;
      // code[i] (shorter or equal) must not be a prefix of code[j].
      const auto shifted = codes[j] >> (lengths[j] - lengths[i]);
      EXPECT_FALSE(shifted == codes[i] && lengths[i] < lengths[j])
          << i << " prefixes " << j;
      if (lengths[i] == lengths[j]) EXPECT_NE(codes[i], codes[j]);
    }
  }
}

// ---- Bzip2-like block compressor.

class Bzip2RoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Bzip2RoundTripTest, Text) {
  const Bytes input = text_corpus(GetParam(), 51);
  EXPECT_EQ(bzip2_decompress(bzip2_compress(input)), input);
}

TEST_P(Bzip2RoundTripTest, Random) {
  const Bytes input = random_bytes(GetParam(), 52);
  EXPECT_EQ(bzip2_decompress(bzip2_compress(input)), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Bzip2RoundTripTest,
                         ::testing::Values(0, 1, 3, 100, 5000, 60000));

TEST(Bzip2, CompressesTextSubstantially) {
  const Bytes input = text_corpus(100000, 53);
  const Bytes packed = bzip2_compress(input);
  EXPECT_LT(packed.size(), input.size() / 2);
}

TEST(Bzip2Stream, MultiBlockRoundTrip) {
  const Bytes input = text_corpus(200000, 54);
  for (std::size_t block : {1000u, 4096u, 65536u, 500000u}) {
    const Bytes stream = bzip2_compress_stream(input, block);
    EXPECT_EQ(bzip2_decompress_stream(stream), input) << block;
  }
}

TEST(Bzip2Stream, EmptyInput) {
  const Bytes stream = bzip2_compress_stream({}, 4096);
  EXPECT_TRUE(bzip2_decompress_stream(stream).empty());
}

TEST(Bzip2Stream, BlockCountMatchesCeilDiv) {
  const Bytes input = text_corpus(10000, 55);
  const Bytes stream = bzip2_compress_stream(input, 3000);
  EXPECT_EQ(util::get_u32le(stream, 0), 4u);  // ceil(10000/3000)
}

TEST(Bzip2Stream, SmallerBlocksCompressWorse) {
  const Bytes input = text_corpus(150000, 56);
  const std::size_t tiny = bzip2_compress_stream(input, 2048).size();
  const std::size_t big = bzip2_compress_stream(input, 65536).size();
  EXPECT_LT(big, tiny);  // block sorting gains from longer contexts
}

// ---- Range coder + DMC.

TEST(RangeCoder, RoundTripRandomBitsRandomProbs) {
  util::Xoshiro256 rng(61);
  std::vector<std::pair<std::uint32_t, std::uint16_t>> stream;
  RangeEncoder enc;
  for (int i = 0; i < 50000; ++i) {
    const auto p0 = static_cast<std::uint16_t>(1 + rng.bounded(65535));
    const std::uint32_t bit = rng.chance(0.5) ? 1 : 0;
    stream.emplace_back(bit, p0);
    enc.encode(bit, p0);
  }
  const Bytes buf = enc.finish();
  RangeDecoder dec(buf);
  for (const auto& [bit, p0] : stream) {
    ASSERT_EQ(dec.decode(p0), bit);
  }
}

TEST(RangeCoder, SkewedProbabilitiesCompress) {
  RangeEncoder enc;
  // 10000 zero-bits at p0 = 0.999 should take ~
  // 10000 * -log2(0.999) / 8 bytes ~ 2 bytes + overhead.
  for (int i = 0; i < 10000; ++i) enc.encode(0, 65470);
  const Bytes buf = enc.finish();
  EXPECT_LT(buf.size(), 40u);
}

class DmcRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DmcRoundTripTest, Text) {
  const Bytes input = text_corpus(GetParam(), 71);
  const Bytes packed = dmc_compress(input);
  EXPECT_EQ(dmc_decompress(packed, input.size()), input);
}

TEST_P(DmcRoundTripTest, Random) {
  const Bytes input = random_bytes(GetParam(), 72);
  const Bytes packed = dmc_compress(input);
  EXPECT_EQ(dmc_decompress(packed, input.size()), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DmcRoundTripTest,
                         ::testing::Values(0, 1, 64, 1000, 30000));

TEST(Dmc, TextCompressesBelowRandom) {
  const Bytes text = text_corpus(40000, 81);
  const Bytes noise = random_bytes(40000, 82);
  const std::size_t text_packed = dmc_compress(text).size();
  const std::size_t noise_packed = dmc_compress(noise).size();
  EXPECT_LT(text_packed, noise_packed);
  EXPECT_LT(text_packed, text.size() / 2);
  // Incompressible input expands a little (a known DMC weakness: cloning
  // keeps per-state counts small, so states drift off p=0.5); the model
  // smoothing bounds it to a few percent.
  EXPECT_LT(noise_packed, noise.size() * 108 / 100);
}

TEST(Dmc, ModelResetsOnNodeBudget) {
  DmcConfig cfg;
  cfg.max_nodes = 512;  // minimal budget -> reset-heavy
  const Bytes input = text_corpus(20000, 91);
  const Bytes packed = dmc_compress(input, cfg);
  EXPECT_EQ(dmc_decompress(packed, input.size(), cfg), input);
}

TEST(Dmc, CloningGrowsModel) {
  DmcModel model(DmcConfig{});
  const std::size_t initial = model.node_count();
  util::Xoshiro256 rng(101);
  for (int i = 0; i < 20000; ++i) {
    model.update(rng.chance(0.7) ? 1 : 0);
  }
  EXPECT_GT(model.node_count(), initial);
}

}  // namespace
}  // namespace wats::workloads
