#include <gtest/gtest.h>

#include <atomic>

#include "runtime/runtime.hpp"

namespace wats::runtime {
namespace {

RuntimeConfig config() {
  RuntimeConfig cfg;
  cfg.topology = core::AmcTopology("t", {{2.0, 1}, {1.0, 3}});
  cfg.emulate_speeds = false;
  return cfg;
}

TEST(TaskGroup, WaitsForItsOwnTasksOnly) {
  TaskRuntime rt(config());
  std::atomic<int> group_done{0};
  std::atomic<bool> other_started{false};
  std::atomic<bool> release_other{false};

  // A long-running task outside the group must not block group.wait().
  rt.spawn([&] {
    other_started = true;
    while (!release_other.load()) {
      std::this_thread::yield();
    }
  });

  {
    TaskGroup group(rt);
    for (int i = 0; i < 50; ++i) {
      group.spawn([&group_done] { group_done++; });
    }
    group.wait();
    EXPECT_EQ(group_done.load(), 50);
  }
  release_other = true;
  rt.wait_all();
}

TEST(TaskGroup, DestructorWaits) {
  TaskRuntime rt(config());
  std::atomic<int> done{0};
  {
    TaskGroup group(rt);
    for (int i = 0; i < 20; ++i) {
      group.spawn([&done] { done++; });
    }
    // No explicit wait: the destructor must block until the tasks ran.
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(TaskGroup, MultipleGroupsAreIndependent) {
  TaskRuntime rt(config());
  std::atomic<int> a{0}, b{0};
  TaskGroup ga(rt), gb(rt);
  const auto cls = rt.register_class("grouped");
  for (int i = 0; i < 30; ++i) {
    ga.spawn(cls, [&a] { a++; });
    gb.spawn(cls, [&b] { b++; });
  }
  ga.wait();
  EXPECT_EQ(a.load(), 30);
  gb.wait();
  EXPECT_EQ(b.load(), 30);
  EXPECT_EQ(ga.pending(), 0u);
}

TEST(TaskGroup, NestedSpawnsIntoGroupFromTasks) {
  TaskRuntime rt(config());
  std::atomic<int> count{0};
  TaskGroup group(rt);
  for (int i = 0; i < 10; ++i) {
    group.spawn([&group, &count] {
      // Tasks may add more work to the group they belong to.
      group.spawn([&count] { count++; });
      count++;
    });
  }
  group.wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(TaskGroup, EmptyGroupWaitReturnsImmediately) {
  TaskRuntime rt(config());
  TaskGroup group(rt);
  group.wait();
  EXPECT_EQ(group.pending(), 0u);
}

}  // namespace
}  // namespace wats::runtime
