// The scenario layer (src/scenario/): every registry entry validates; the
// runner is bit-identical to the hand-rolled run_experiment /
// run_multiprogram loops the benches used to carry; knobs apply (and
// reject garbage); the file format round-trips; parse and validate report
// malformed input instead of aborting; and replay conversion inverts the
// Perfetto trace export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/topology.hpp"
#include "scenario/parse.hpp"
#include "scenario/registry.hpp"
#include "scenario/replay.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "sim/experiment.hpp"
#include "sim/multiprogram.hpp"
#include "workloads/workload_model.hpp"

namespace wats::scenario {
namespace {

TEST(Scenario, AllRegistryEntriesValidate) {
  const auto& all = builtin_scenarios();
  ASSERT_FALSE(all.empty());
  for (const auto& spec : all) {
    const auto errors = validate_scenario(spec);
    EXPECT_TRUE(errors.empty())
        << spec.name << ": " << (errors.empty() ? "" : errors[0]);
  }
}

TEST(Scenario, RegistryLookup) {
  for (const char* name :
       {"fig6", "fig7", "fig8", "fig9", "fig10", "full-grid", "multiprogram",
        "scenario-catalog", "step-drift", "ablation-steal-cost"}) {
    EXPECT_NE(find_scenario(name), nullptr) << name;
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);

  // Names are unique (lookup would silently shadow otherwise).
  const auto& all = builtin_scenarios();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i].name, all[j].name);
    }
  }
}

TEST(Scenario, RunnerMatchesHandRolledExperimentBitIdentical) {
  // A trimmed fig6 cell through the runner vs the loop bench_fig6 used to
  // inline. Exact == : same seeds, same fold order, same bits.
  ScenarioSpec spec = *find_scenario("fig6");
  spec.workloads = {"GA"};
  spec.machines = {"AMC5"};
  spec.schedulers = {sim::SchedulerKind::kCilk, sim::SchedulerKind::kWats};
  spec.repeats = 3;
  const ScenarioResult result = run_scenario(spec);

  sim::ExperimentConfig config;
  config.sim = spec.sim;
  config.repeats = spec.repeats;
  config.base_seed = spec.base_seed;
  config.estimator = spec.estimator;
  config.ewma_alpha = spec.ewma_alpha;
  config.change_point = spec.change_point;
  const auto& ga = workloads::benchmark_by_name("GA");
  const auto topo = core::amc_by_name("AMC5");
  for (const auto kind :
       {sim::SchedulerKind::kCilk, sim::SchedulerKind::kWats}) {
    const auto direct = sim::run_experiment(ga, topo, kind, config);
    EXPECT_EQ(result.makespan("GA", "AMC5", kind), direct.mean_makespan);
    EXPECT_EQ(result.cell("GA", "AMC5", kind).result.mean_steals,
              direct.mean_steals);
  }
}

TEST(Scenario, RunnerMatchesHandRolledMultiprogramBitIdentical) {
  ScenarioSpec spec;
  spec.name = "mp-parity";
  spec.machines = {"AMC5"};
  spec.workloads = {"GA+Ferret"};
  spec.schedulers = {sim::SchedulerKind::kWats};
  spec.repeats = 2;
  ASSERT_TRUE(validate_scenario(spec).empty());
  const ScenarioResult result = run_scenario(spec);
  const auto& cell =
      result.cell("GA+Ferret", "AMC5", sim::SchedulerKind::kWats);

  const std::vector<workloads::BenchmarkSpec> apps = {
      workloads::benchmark_by_name("GA"),
      workloads::benchmark_by_name("Ferret")};
  const auto topo = core::amc_by_name("AMC5");
  double makespan = 0.0;
  std::vector<double> finish(2, 0.0);
  for (std::size_t r = 0; r < spec.repeats; ++r) {
    sim::SimConfig sim = spec.sim;
    sim.seed = spec.base_seed + r;
    const auto mp =
        sim::run_multiprogram(apps, topo, sim::SchedulerKind::kWats, sim);
    makespan += mp.makespan;
    finish[0] += mp.per_app_finish[0];
    finish[1] += mp.per_app_finish[1];
  }
  const double n = static_cast<double>(spec.repeats);
  EXPECT_EQ(cell.mean_makespan, makespan / n);
  ASSERT_EQ(cell.per_app_finish.size(), 2u);
  EXPECT_EQ(cell.per_app_finish[0], finish[0] / n);
  EXPECT_EQ(cell.per_app_finish[1], finish[1] / n);
}

TEST(Scenario, KnobsApplyToConfigAndWorkloads) {
  sim::ExperimentConfig config;
  std::vector<workloads::BenchmarkSpec> specs = {
      workloads::benchmark_by_name("GA")};
  std::vector<std::string> errors;

  EXPECT_TRUE(apply_knob({"steal_cost", "0.25"}, config, specs, &errors));
  EXPECT_EQ(config.sim.steal_cost, 0.25);
  EXPECT_TRUE(apply_knob({"change_point", "on"}, config, specs, &errors));
  EXPECT_TRUE(config.change_point.enabled);
  EXPECT_TRUE(apply_knob({"cp_threshold", "3.5"}, config, specs, &errors));
  EXPECT_EQ(config.change_point.threshold, 3.5);
  EXPECT_TRUE(apply_knob({"estimator", "ewma"}, config, specs, &errors));
  EXPECT_EQ(config.estimator, core::WorkloadEstimator::kEwma);
  EXPECT_TRUE(apply_knob({"batches", "7"}, config, specs, &errors));
  EXPECT_EQ(specs[0].batches, 7u);
  EXPECT_TRUE(errors.empty());

  EXPECT_FALSE(apply_knob({"no_such_knob", "1"}, config, specs, &errors));
  EXPECT_FALSE(apply_knob({"steal_cost", "fast"}, config, specs, &errors));
  EXPECT_FALSE(apply_knob({"change_point", "maybe"}, config, specs, &errors));
  EXPECT_EQ(errors.size(), 3u);
}

TEST(Scenario, SchedulerNamesRoundTrip) {
  for (const auto kind :
       {sim::SchedulerKind::kCilk, sim::SchedulerKind::kPft,
        sim::SchedulerKind::kRts, sim::SchedulerKind::kWats,
        sim::SchedulerKind::kWatsTs}) {
    sim::SchedulerKind parsed{};
    ASSERT_TRUE(scheduler_from_string(sim::to_string(kind), &parsed))
        << sim::to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  sim::SchedulerKind parsed{};
  EXPECT_FALSE(scheduler_from_string("FIFO", &parsed));
}

TEST(Scenario, SerializeParseRoundTrip) {
  // A spec exercising every section of the format: inline workload with
  // classes, phase schedule and replay records, variants, change-point
  // knobs. parse(serialize(s)) must serialize back to the same text.
  ScenarioSpec s;
  s.name = "round-trip";
  s.description = "format coverage";
  s.machines = {"AMC5", "4x2.0+4x1.0"};
  s.workloads = {"GA"};
  s.schedulers = {sim::SchedulerKind::kCilk, sim::SchedulerKind::kWats};
  s.repeats = 2;
  s.base_seed = 7;
  s.estimator = core::WorkloadEstimator::kEwma;
  s.ewma_alpha = 0.3;
  s.change_point.enabled = true;
  s.change_point.threshold = 4.0;
  s.sim.steal_cost = 0.1;
  s.variants = {{"frozen", {{"change_point", "off"}}},
                {"hot", {{"cp_threshold", "2"}, {"steal_cost", "0.2"}}}};

  workloads::BenchmarkSpec w;
  w.name = "Inline";
  w.kind = workloads::BenchKind::kBatch;
  w.classes = {{"light", 10.0, 0.05, 4, 1.0, 0.0},
               {"heavy", 100.0, 0.1, 2, 0.5, 0.0}};
  w.batches = 12;
  w.phases = {{6, {16.0, 1.0}}};
  s.inline_workloads.push_back(w);

  workloads::BenchmarkSpec r;
  r.name = "Replayed";
  r.kind = workloads::BenchKind::kReplay;
  r.classes = {{"seg", 5.0, 0.0, 2, 1.0, 0.0}};
  r.replay_tasks = {{0.0, 0, 4.5}, {1.25, 0, 5.5}};
  s.inline_workloads.push_back(r);

  const std::string text = serialize_scenario(s);
  const ScenarioParse parsed = parse_scenario(text);
  ASSERT_TRUE(parsed.ok()) << parsed.errors[0];
  EXPECT_EQ(serialize_scenario(parsed.spec), text);

  // Spot-check the parsed structure, not just the text fixed point.
  EXPECT_EQ(parsed.spec.name, "round-trip");
  EXPECT_EQ(parsed.spec.base_seed, 7u);
  EXPECT_EQ(parsed.spec.estimator, core::WorkloadEstimator::kEwma);
  EXPECT_TRUE(parsed.spec.change_point.enabled);
  ASSERT_EQ(parsed.spec.inline_workloads.size(), 2u);
  ASSERT_EQ(parsed.spec.inline_workloads[0].phases.size(), 1u);
  EXPECT_EQ(parsed.spec.inline_workloads[0].phases[0].start_batch, 6u);
  ASSERT_EQ(parsed.spec.inline_workloads[1].replay_tasks.size(), 2u);
  EXPECT_EQ(parsed.spec.inline_workloads[1].replay_tasks[1].work, 5.5);
  ASSERT_EQ(parsed.spec.variants.size(), 2u);
  EXPECT_EQ(parsed.spec.variants[1].knobs.size(), 2u);
}

// A scenario file that passed through a Windows editor (CRLF line
// endings) must parse to the same spec — the '\r' may not leak into any
// name, knob value, or machine string.
TEST(Scenario, CrlfFileRoundTrips) {
  ScenarioSpec s;
  s.name = "crlf";
  s.description = "saved with CRLF endings";
  s.machines = {"AMC5", "4x2.0+4x1.0"};
  s.workloads = {"GA"};
  s.schedulers = {sim::SchedulerKind::kWats};
  s.sim.plan_repair.enabled = false;
  s.sim.plan_repair.drift_threshold = 0.25;
  s.variants = {{"fast", {{"steal_cost", "0.2"}}}};
  const std::string text = serialize_scenario(s);

  std::string crlf;
  for (const char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  const ScenarioParse parsed = parse_scenario(crlf);
  ASSERT_TRUE(parsed.ok()) << parsed.errors[0];
  // Fixed point against the LF original: every field survived unchanged.
  EXPECT_EQ(serialize_scenario(parsed.spec), text);
  EXPECT_EQ(parsed.spec.description, "saved with CRLF endings");
  EXPECT_FALSE(parsed.spec.sim.plan_repair.enabled);
  EXPECT_EQ(parsed.spec.sim.plan_repair.drift_threshold, 0.25);
  ASSERT_EQ(parsed.spec.variants.size(), 1u);
  EXPECT_EQ(parsed.spec.variants[0].knobs[0].value, "0.2");
}

// Trailing spaces/tabs on lines and trailing blank lines (with or without
// stray whitespace) are presentation noise, not content.
TEST(Scenario, TrailingWhitespaceAndBlankLinesRoundTrip) {
  ScenarioSpec s;
  s.name = "trailing";
  s.machines = {"AMC5"};
  s.workloads = {"GA"};
  s.schedulers = {sim::SchedulerKind::kCilk};
  const std::string text = serialize_scenario(s);

  std::string noisy;
  for (const char c : text) {
    if (c == '\n') noisy += " \t";  // trailing whitespace on every line
    noisy += c;
  }
  noisy += "\n   \n\t\r\n\n";  // trailing blank-ish lines, mixed endings
  const ScenarioParse parsed = parse_scenario(noisy);
  ASSERT_TRUE(parsed.ok()) << parsed.errors[0];
  EXPECT_EQ(serialize_scenario(parsed.spec), text);
  EXPECT_EQ(parsed.spec.name, "trailing");
}

TEST(Scenario, ParseReportsMalformedLinesWithNumbers) {
  const ScenarioParse p = parse_scenario(
      "name = broken\n"
      "bogus_key = 1\n"
      "schedulers = Cilk, FIFO\n"
      "repeats = many\n"
      "phase = batch=3 scale=1,2\n"  // phase before any workload
      "machines = AMC5\n");
  EXPECT_FALSE(p.ok());
  ASSERT_GE(p.errors.size(), 4u);
  for (const char* needle : {"line 2", "line 3", "line 4", "line 5"}) {
    bool found = false;
    for (const auto& e : p.errors) found |= e.find(needle) == 0;
    EXPECT_TRUE(found) << "no error for " << needle;
  }
  // Well-formed lines around the breakage still land.
  EXPECT_EQ(p.spec.name, "broken");
  EXPECT_EQ(p.spec.machines, std::vector<std::string>{"AMC5"});
}

TEST(Scenario, ValidateCatchesBrokenSpecs) {
  ScenarioSpec s;
  s.name = "broken";
  EXPECT_FALSE(validate_scenario(s).empty());  // nothing to run

  s.machines = {"AMC5", "not-a-machine"};
  s.workloads = {"GA", "NoSuchBench"};
  s.schedulers = {sim::SchedulerKind::kCilk};
  s.variants = {{"v", {{"warp_speed", "9"}}}};
  const auto errors = validate_scenario(s);
  // One complaint each: bad machine, bad workload, bad knob.
  EXPECT_GE(errors.size(), 3u);

  // Misaligned phase vector on an inline workload.
  ScenarioSpec p;
  p.name = "phases";
  p.machines = {"AMC5"};
  p.schedulers = {sim::SchedulerKind::kWats};
  workloads::BenchmarkSpec w;
  w.name = "W";
  w.classes = {{"a", 1.0, 0.1, 1, 1.0, 0.0}};
  w.batches = 4;
  w.phases = {{2, {1.0, 2.0}}};  // two scales, one class
  p.inline_workloads = {w};
  EXPECT_FALSE(validate_scenario(p).empty());
}

TEST(Scenario, ReplayConversionInvertsTraceExport) {
  // Hand-built Perfetto JSON in the trace_export format: two cores with
  // speed suffixes, one task snatched across them (two slices sharing
  // args.task), one plain task, and a policy track to ignore.
  const std::string trace = R"json({"traceEvents":[
    {"ph":"M","name":"thread_name","pid":1,"tid":0,
     "args":{"name":"core 0 (group 0, 2.00x)"}},
    {"ph":"M","name":"thread_name","pid":1,"tid":1,
     "args":{"name":"core 1 (group 1, 0.50x)"}},
    {"ph":"M","name":"thread_name","pid":1,"tid":9,
     "args":{"name":"policy"}},
    {"ph":"X","cat":"task","name":"alpha","pid":1,"tid":1,
     "ts":100.0,"dur":8.0,"args":{"task":7}},
    {"ph":"X","cat":"task","name":"alpha","pid":1,"tid":0,
     "ts":120.0,"dur":3.0,"args":{"task":7}},
    {"ph":"X","cat":"task","name":"beta","pid":1,"tid":0,
     "ts":110.0,"dur":2.0,"args":{"task":8}},
    {"ph":"X","cat":"instant","name":"noise","pid":1,"tid":0,
     "ts":0.0,"dur":1.0}
  ]})json";

  std::vector<std::string> errors;
  const workloads::BenchmarkSpec spec =
      replay_workload_from_trace(trace, "rt", &errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(spec.kind, workloads::BenchKind::kReplay);
  ASSERT_EQ(spec.classes.size(), 2u);
  EXPECT_EQ(spec.classes[0].name, "alpha");
  EXPECT_EQ(spec.classes[1].name, "beta");
  ASSERT_EQ(spec.replay_tasks.size(), 2u);

  // Arrivals normalize to the earliest slice (ts 100); work = dur x the
  // executing core's relative speed, snatch segments summed:
  // alpha = 8*0.5 + 3*2.0 = 10, beta = 2*2.0 = 4 at arrival 110-100.
  EXPECT_EQ(spec.replay_tasks[0].arrival, 0.0);
  EXPECT_EQ(spec.replay_tasks[0].class_index, 0u);
  EXPECT_EQ(spec.replay_tasks[0].work, 10.0);
  EXPECT_EQ(spec.replay_tasks[1].arrival, 10.0);
  EXPECT_EQ(spec.replay_tasks[1].class_index, 1u);
  EXPECT_EQ(spec.replay_tasks[1].work, 4.0);

  // The wrapping scenario validates and runs as-is.
  const ScenarioSpec wrapped = replay_scenario_from_trace(trace, "rt");
  EXPECT_TRUE(validate_scenario(wrapped).empty());

  // Degenerate traces report instead of aborting.
  std::vector<std::string> bad;
  replay_workload_from_trace("not json", "x", &bad);
  ASSERT_EQ(bad.size(), 1u);
  bad.clear();
  replay_workload_from_trace(R"json({"traceEvents":[]})json", "x", &bad);
  ASSERT_EQ(bad.size(), 1u);
}

TEST(Scenario, ParsedFileRunsLikeItsRegistryTwin) {
  // serialize a registry entry, parse it back, run both: the file format
  // must carry everything the runner consumes. step-drift is the
  // cheapest entry with variants + an inline phased workload.
  const ScenarioSpec& original = *find_scenario("step-drift");
  const ScenarioParse reparsed =
      parse_scenario(serialize_scenario(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.errors[0];

  const ScenarioResult a = run_scenario(original);
  const ScenarioResult b = run_scenario(reparsed.spec);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].mean_makespan, b.cells[i].mean_makespan);
    EXPECT_EQ(a.cells[i].history_resets, b.cells[i].history_resets);
  }
}

}  // namespace
}  // namespace wats::scenario
