#include <gtest/gtest.h>

#include <algorithm>

#include "core/allocation.hpp"
#include "core/alt_allocation.hpp"
#include "core/lower_bound.hpp"
#include "util/rng.hpp"

namespace wats::core {
namespace {

AmcTopology two_groups() { return AmcTopology("2g", {{2.0, 1}, {1.0, 2}}); }

TEST(Lpt, AssignsLongestToEarliestFinish) {
  // Items 6, 3, 3 on capacities {2, 2}: 6 -> group 0 (finish 3), 3 -> the
  // empty group 1 (finish 1.5), 3 -> group 1 again (3.0 vs 4.5).
  const AmcTopology topo("2", {{2.0, 1}, {1.0, 2}});
  const std::vector<double> w{6, 3, 3};
  const auto a = allocate_lpt(w, topo);
  EXPECT_EQ(a.group_of_item[0], 0u);
  EXPECT_DOUBLE_EQ(a.makespan, 3.0);
  EXPECT_TRUE(achieves_lower_bound(w, {{1, 3}}, topo));  // same as optimal
}

TEST(Lpt, EmptyInput) {
  const auto a = allocate_lpt({}, two_groups());
  EXPECT_DOUBLE_EQ(a.makespan, 0.0);
}

TEST(DualApprox, NeverWorseThanLpt) {
  util::Xoshiro256 rng(3);
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<double> w(5 + rng.bounded(100));
    for (auto& x : w) x = std::exp(rng.uniform(0.0, 4.0));
    for (const auto& topo : amc_table2()) {
      const auto lpt = allocate_lpt(w, topo);
      const auto dual = allocate_dual_approx(w, topo);
      EXPECT_LE(dual.makespan, lpt.makespan + 1e-9) << topo.name();
      EXPECT_GE(dual.makespan,
                makespan_lower_bound(w, topo) - 1e-9)
          << topo.name();
    }
  }
}

TEST(DualApprox, FinishTimesMatchAssignment) {
  util::Xoshiro256 rng(5);
  std::vector<double> w(64);
  for (auto& x : w) x = rng.uniform(1.0, 50.0);
  const auto topo = amc_by_name("AMC1");
  const auto a = allocate_dual_approx(w, topo);
  std::vector<double> finish(topo.group_count(), 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    ASSERT_LT(a.group_of_item[i], topo.group_count());
    finish[a.group_of_item[i]] += w[i] / topo.group_capacity(a.group_of_item[i]);
  }
  for (GroupIndex g = 0; g < topo.group_count(); ++g) {
    EXPECT_NEAR(finish[g], a.group_finish[g], 1e-9);
  }
}

TEST(AltVsAlgorithm1, NonContiguousAllocatorsCanOnlyHelp) {
  // Algorithm 1 is restricted to contiguous prefixes of the sorted list;
  // LPT and dual approximation are not, so on random instances their
  // makespans are <= Algorithm 1's (up to tie noise).
  util::Xoshiro256 rng(7);
  int alg1_wins = 0;
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<double> w(8 + rng.bounded(200));
    for (auto& x : w) x = std::exp(rng.uniform(0.0, 4.5));
    std::sort(w.begin(), w.end(), std::greater<>());
    for (const auto& topo : amc_table2()) {
      const auto q = evaluate_allocation(w, topo);
      const auto dual = allocate_dual_approx(w, topo);
      if (q.makespan < dual.makespan - 1e-9) ++alg1_wins;
    }
  }
  // Ties are fine; systematic Algorithm 1 wins would mean the dual
  // approximation is broken.
  EXPECT_LT(alg1_wins, 10);
}

TEST(AltVsAlgorithm1, GapShrinksWithManyItems) {
  util::Xoshiro256 rng(11);
  const auto topo = amc_by_name("AMC2");
  auto mean_gap = [&](std::size_t m) {
    double gap = 0;
    for (int i = 0; i < 20; ++i) {
      std::vector<double> w(m);
      for (auto& x : w) x = std::exp(rng.uniform(0.0, 4.0));
      std::sort(w.begin(), w.end(), std::greater<>());
      const auto q = evaluate_allocation(w, topo);
      const auto dual = allocate_dual_approx(w, topo);
      gap += q.makespan / dual.makespan - 1.0;
    }
    return gap / 20;
  };
  EXPECT_LT(mean_gap(512), mean_gap(24) + 0.02);
}

TEST(Allocate, WithinSmallFactorOfLptOnRandomInstances) {
  // allocate() (Algorithm 1 + rounding) vs the non-contiguous LPT: the
  // contiguity restriction costs at most ~35% on these instance sizes.
  util::Xoshiro256 rng(17);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<double> w(16 + rng.bounded(200));
    for (auto& x : w) x = std::exp(rng.uniform(0.0, 4.0));
    const auto topo = amc_table2()[rng.bounded(7)];
    const auto assignment = allocate(w, topo);
    std::vector<double> finish(topo.group_count(), 0.0);
    for (std::size_t i = 0; i < w.size(); ++i) {
      finish[assignment[i]] += w[i] / topo.group_capacity(assignment[i]);
    }
    const double alg1 = *std::max_element(finish.begin(), finish.end());
    const double lpt = allocate_lpt(w, topo).makespan;
    EXPECT_LE(alg1, lpt * 1.35) << topo.name() << " m=" << w.size();
  }
}

}  // namespace
}  // namespace wats::core
