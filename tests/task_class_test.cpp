#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/task_class.hpp"

namespace wats::core {
namespace {

TEST(Eq2, NormalizedWorkload) {
  // A task taking 1000 cycles on a 0.8 GHz core, normalized against
  // 2.5 GHz: w = 1000 * 0.8 / 2.5 = 320.
  EXPECT_DOUBLE_EQ(normalized_workload(1000.0, 0.8, 2.5), 320.0);
  EXPECT_DOUBLE_EQ(normalized_workload(1000.0, 2.5, 2.5), 1000.0);
  EXPECT_DOUBLE_EQ(normalized_workload(0.0, 1.0, 2.0), 0.0);
}

TEST(TaskClassRegistry, InternIsIdempotent) {
  TaskClassRegistry reg;
  const TaskClassId a = reg.intern("md5_block");
  const TaskClassId b = reg.intern("sha1_block");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.intern("md5_block"), a);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.find("md5_block"), std::optional<TaskClassId>(a));
  EXPECT_EQ(reg.find("nope"), std::nullopt);
}

TEST(TaskClassRegistry, Algorithm2RunningMean) {
  TaskClassRegistry reg;
  const TaskClassId id = reg.intern("f");
  // Algorithm 2: TC(f, n, w) => TC(f, n+1, (n*w + w_new)/(n+1)).
  reg.record_completion(id, 10.0);
  EXPECT_DOUBLE_EQ(reg.info(id).mean_workload, 10.0);
  reg.record_completion(id, 20.0);
  EXPECT_DOUBLE_EQ(reg.info(id).mean_workload, 15.0);
  reg.record_completion(id, 0.0);
  EXPECT_DOUBLE_EQ(reg.info(id).mean_workload, 10.0);
  EXPECT_EQ(reg.info(id).completed, 3u);
  EXPECT_DOUBLE_EQ(reg.info(id).total_workload(), 30.0);
}

TEST(TaskClassRegistry, HistoryTracking) {
  TaskClassRegistry reg;
  const TaskClassId id = reg.intern("f");
  EXPECT_FALSE(reg.has_history(id));
  EXPECT_FALSE(reg.has_history(kNoTaskClass));
  reg.record_completion(id, 1.0);
  EXPECT_TRUE(reg.has_history(id));
  EXPECT_EQ(reg.total_completions(), 1u);
}

TEST(TaskClassRegistry, SnapshotAndReset) {
  TaskClassRegistry reg;
  const TaskClassId a = reg.intern("a");
  const TaskClassId b = reg.intern("b");
  reg.record_completion(a, 5.0);
  reg.record_completion(b, 7.0);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_DOUBLE_EQ(snap[1].mean_workload, 7.0);

  reg.reset_history();
  EXPECT_EQ(reg.total_completions(), 0u);
  EXPECT_FALSE(reg.has_history(a));
  EXPECT_EQ(reg.size(), 2u);  // names survive a reset
}

TEST(TaskClassRegistry, ConcurrentUpdatesAreConsistent) {
  TaskClassRegistry reg;
  const TaskClassId id = reg.intern("hot");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, id] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.record_completion(id, 2.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.info(id).completed,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(reg.info(id).mean_workload, 2.0, 1e-9);
}

TEST(TaskClassRegistry, ConcurrentInternsYieldStableIds) {
  TaskClassRegistry reg;
  constexpr int kThreads = 4;
  std::vector<std::vector<TaskClassId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &ids, t] {
      for (int i = 0; i < 100; ++i) {
        ids[static_cast<std::size_t>(t)].push_back(
            reg.intern("class_" + std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.size(), 100u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<std::size_t>(t)], ids[0]);
  }
}

TEST(TaskClassRegistry, TracksMeanScalableFraction) {
  TaskClassRegistry reg;
  const TaskClassId id = reg.intern("mixed");
  EXPECT_DOUBLE_EQ(reg.info(id).mean_scalable, 1.0);  // optimistic default
  reg.record_completion(id, 10.0, 0.2);
  EXPECT_DOUBLE_EQ(reg.info(id).mean_scalable, 0.2);
  reg.record_completion(id, 10.0, 0.4);
  EXPECT_NEAR(reg.info(id).mean_scalable, 0.3, 1e-12);
  // Default argument keeps classic callers CPU-bound.
  reg.record_completion(id, 10.0);
  EXPECT_NEAR(reg.info(id).mean_scalable, (0.2 + 0.4 + 1.0) / 3, 1e-12);
}

}  // namespace
}  // namespace wats::core
