// The full evaluation grid: every Table III benchmark on every Table II
// machine under WATS completes, conserves work, and never beats the
// lower bound — 63 combinations, one seeded run each.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace wats::sim {
namespace {

struct GridCase {
  std::string bench;
  std::string machine;
};

class FullGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(FullGridTest, WatsCompletesEverywhere) {
  const auto& [bench, machine] = GetParam();
  const auto& spec = workloads::benchmark_by_name(bench);
  const auto topo = core::amc_by_name(machine);
  ExperimentConfig cfg;
  cfg.repeats = 1;
  const auto r = run_experiment(spec, topo, SchedulerKind::kWats, cfg);
  const auto& run = r.runs[0];
  EXPECT_EQ(run.tasks_completed, spec.total_tasks());
  EXPECT_GE(run.makespan * topo.total_capacity(), run.total_work * 0.999);
  EXPECT_GT(run.utilization(topo), 0.05);
  EXPECT_LE(run.utilization(topo), 1.0 + 1e-9);
}

std::vector<GridCase> all_cases() {
  std::vector<GridCase> cases;
  for (const auto& spec : workloads::paper_benchmarks()) {
    for (const auto& topo : core::amc_table2()) {
      cases.push_back({spec.name, topo.name()});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  std::string name = info.param.bench + "_" + info.param.machine;
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Table3xTable2, FullGridTest,
                         ::testing::ValuesIn(all_cases()), case_name);

TEST(WaitByClass, PerClassStatsPartitionTheGlobalStat) {
  const auto& spec = workloads::benchmark_by_name("GA");
  const auto topo = core::amc_by_name("AMC2");
  ExperimentConfig cfg;
  cfg.repeats = 1;
  const auto r = run_experiment(spec, topo, SchedulerKind::kWats, cfg);
  const auto& run = r.runs[0];
  std::size_t per_class_total = 0;
  double per_class_sum = 0.0;
  for (const auto& stat : run.wait_time_by_class) {
    per_class_total += stat.count();
    per_class_sum += stat.sum();
  }
  EXPECT_EQ(per_class_total, run.wait_time.count());
  EXPECT_NEAR(per_class_sum, run.wait_time.sum(), 1e-6);
}

}  // namespace
}  // namespace wats::sim
