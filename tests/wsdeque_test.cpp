// Targeted stress tests for the Chase–Lev work-stealing deque, written to
// run under TSan (the CI tsan leg includes the WsDeque suite): the two
// races the 2013 C11 formulation is easiest to get wrong are the buffer
// grow() while a thief holds an in-flight reference to the retired array,
// and the owner-vs-thief CAS duel over the last element.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "runtime/parking_lot.hpp"  // cpu_relax
#include "runtime/wsdeque.hpp"

namespace wats::runtime {
namespace {

struct Item {
  std::atomic<int> claims{0};
};

TEST(WsDeque, SingleThreadOwnerLifoThiefFifo) {
  WorkStealingDeque<int> dq(8);
  int vals[4] = {10, 11, 12, 13};
  for (auto& v : vals) dq.push_bottom(&v);
  EXPECT_EQ(dq.steal_top(), &vals[0]);   // thieves see spawn order
  EXPECT_EQ(dq.pop_bottom(), &vals[3]);  // the owner works newest-first
  EXPECT_EQ(dq.pop_bottom(), &vals[2]);
  EXPECT_EQ(dq.pop_bottom(), &vals[1]);
  EXPECT_EQ(dq.pop_bottom(), nullptr);
  EXPECT_TRUE(dq.empty_approx());
}

TEST(WsDeque, GrowMidStealClaimsEachItemExactlyOnce) {
  // A deliberately tiny initial capacity makes push_bottom() grow the
  // circular buffer many times while thieves are mid-steal, so thieves
  // keep reading retired buffers; every item must still be handed out
  // exactly once.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque<Item> dq(8);
  std::vector<Item> items(kItems);
  std::atomic<bool> done{false};
  std::atomic<int> claimed{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !dq.empty_approx()) {
        if (Item* it = dq.steal_top()) {
          it->claims.fetch_add(1, std::memory_order_relaxed);
          claimed.fetch_add(1, std::memory_order_relaxed);
        } else {
          cpu_relax();
        }
      }
    });
  }

  // Owner: keep the deque refilling (forcing grows) and pop a share of
  // its own work, as a real worker would.
  for (int i = 0; i < kItems; ++i) {
    dq.push_bottom(&items[static_cast<std::size_t>(i)]);
    if (i % 5 == 0) {
      if (Item* it = dq.pop_bottom()) {
        it->claims.fetch_add(1, std::memory_order_relaxed);
        claimed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  while (Item* it = dq.pop_bottom()) {
    it->claims.fetch_add(1, std::memory_order_relaxed);
    claimed.fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(claimed.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(items[static_cast<std::size_t>(i)].claims.load(), 1)
        << "item " << i;
  }
}

TEST(WsDeque, LastElementCasRaceClaimsExactlyOnce) {
  // One element, owner pop racing any number of thief steals: the CAS on
  // `top` must hand it to exactly one side, every round. The owner gates
  // each round on the previous item being claimed, so a double-claim or a
  // dropped item is caught immediately.
  constexpr int kRounds = 5000;
  constexpr int kThieves = 2;
  WorkStealingDeque<Item> dq(8);
  std::vector<Item> items(kRounds);
  std::atomic<bool> stop{false};
  std::atomic<int> claimed{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (Item* it = dq.steal_top()) {
          it->claims.fetch_add(1, std::memory_order_relaxed);
          claimed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int r = 0; r < kRounds; ++r) {
    dq.push_bottom(&items[static_cast<std::size_t>(r)]);
    if (Item* it = dq.pop_bottom()) {
      // nullptr here means a thief won the CAS and will claim it.
      it->claims.fetch_add(1, std::memory_order_relaxed);
      claimed.fetch_add(1, std::memory_order_relaxed);
    }
    while (claimed.load(std::memory_order_acquire) != r + 1) cpu_relax();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  for (int r = 0; r < kRounds; ++r) {
    ASSERT_EQ(items[static_cast<std::size_t>(r)].claims.load(), 1)
        << "round " << r;
  }
}

}  // namespace
}  // namespace wats::runtime
