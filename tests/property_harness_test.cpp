// Randomized property sweep: for random topologies and random workload
// specs, EVERY scheduler must complete every task, conserve work, respect
// the lower bound, and stay deterministic. This is the broad net under
// the targeted tests elsewhere.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace wats::sim {
namespace {

core::AmcTopology random_topology(util::Xoshiro256& rng) {
  const std::size_t groups = 1 + rng.bounded(4);
  std::vector<core::CGroupSpec> specs;
  double freq = 2.0 + rng.uniform(0.0, 1.5);
  for (std::size_t g = 0; g < groups; ++g) {
    specs.push_back({freq, 1 + static_cast<std::size_t>(rng.bounded(6))});
    freq *= rng.uniform(0.3, 0.8);  // strictly decreasing frequencies
  }
  return core::AmcTopology("random", specs);
}

workloads::BenchmarkSpec random_spec(util::Xoshiro256& rng) {
  workloads::BenchmarkSpec spec;
  spec.name = "prop";
  if (rng.chance(0.7)) {
    spec.kind = workloads::BenchKind::kBatch;
    const std::size_t classes = 1 + rng.bounded(6);
    for (std::size_t c = 0; c < classes; ++c) {
      spec.classes.push_back(
          {"cls" + std::to_string(c), std::exp(rng.uniform(0.0, 5.0)),
           rng.uniform(0.0, 0.3),
           1 + static_cast<std::size_t>(rng.bounded(20)), 1.0});
    }
    spec.batches = 1 + rng.bounded(4);
  } else {
    spec.kind = workloads::BenchKind::kPipeline;
    const std::size_t stages = 1 + rng.bounded(4);
    for (std::size_t c = 0; c < stages; ++c) {
      spec.classes.push_back({"stage" + std::to_string(c),
                              std::exp(rng.uniform(0.0, 4.0)),
                              rng.uniform(0.0, 0.2), 0, 1.0});
    }
    spec.pipeline_items = 10 + rng.bounded(60);
    spec.pipeline_window = 1 + rng.bounded(16);
  }
  return spec;
}

class PropertySweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweepTest, EverySchedulerSatisfiesInvariants) {
  util::Xoshiro256 rng(GetParam());
  const auto topo = random_topology(rng);
  const auto spec = random_spec(rng);

  for (auto kind :
       {SchedulerKind::kCilk, SchedulerKind::kPft, SchedulerKind::kRts,
        SchedulerKind::kWats, SchedulerKind::kWatsNp, SchedulerKind::kWatsTs,
        SchedulerKind::kWatsM, SchedulerKind::kLptOracle}) {
    ExperimentConfig cfg;
    cfg.repeats = 1;
    cfg.base_seed = GetParam() * 31 + 7;
    const auto r = run_experiment(spec, topo, kind, cfg);
    const auto& run = r.runs[0];

    // 1. Completeness.
    ASSERT_EQ(run.tasks_completed, spec.total_tasks())
        << to_string(kind) << " on " << topo.describe();
    // 2. Lower bound (total work over capacity; CPU-bound tasks).
    EXPECT_GE(run.makespan * topo.total_capacity(),
              run.total_work * (1.0 - 1e-9))
        << to_string(kind);
    // 3. Work conservation (snatchers may redo work; others exact).
    double executed = 0.0;
    for (core::CoreIndex c = 0; c < run.busy_time.size(); ++c) {
      executed +=
          run.busy_time[c] * topo.group(topo.group_of_core(c)).frequency_ghz;
    }
    EXPECT_GE(executed, run.total_work * (1.0 - 1e-9)) << to_string(kind);
    if (kind != SchedulerKind::kRts && kind != SchedulerKind::kWatsTs) {
      EXPECT_NEAR(executed, run.total_work,
                  run.total_work * 1e-9 + 1e-9)
          << to_string(kind);
    }
    // 4. Determinism.
    const auto again = run_experiment(spec, topo, kind, cfg);
    EXPECT_DOUBLE_EQ(again.mean_makespan, r.mean_makespan)
        << to_string(kind);
    // 5. Wait-time sanity.
    EXPECT_EQ(run.wait_time.count(), run.tasks_completed);
    EXPECT_LE(run.wait_time.max(), run.makespan + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweepTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace wats::sim
