#include <gtest/gtest.h>

#include "workloads/nqueens.hpp"

namespace wats::workloads {
namespace {

struct KnownCount {
  unsigned n;
  std::uint64_t solutions;
};

class NQueensCountTest : public ::testing::TestWithParam<KnownCount> {};

TEST_P(NQueensCountTest, MatchesOeisA000170) {
  const auto [n, solutions] = GetParam();
  EXPECT_EQ(nqueens_count(n), solutions);
}

INSTANTIATE_TEST_SUITE_P(Known, NQueensCountTest,
                         ::testing::Values(KnownCount{1, 1}, KnownCount{2, 0},
                                           KnownCount{3, 0}, KnownCount{4, 2},
                                           KnownCount{5, 10}, KnownCount{6, 4},
                                           KnownCount{7, 40}, KnownCount{8, 92},
                                           KnownCount{9, 352},
                                           KnownCount{10, 724},
                                           KnownCount{11, 2680}));

TEST(NQueens, PrefixDecompositionCoversAllSolutions) {
  // Splitting the search at any depth and summing subtree counts must
  // recover the total.
  for (unsigned n : {6u, 8u, 9u}) {
    for (unsigned depth : {1u, 2u, 3u}) {
      std::uint64_t total = 0;
      for (const auto& prefix : nqueens_prefixes(n, depth)) {
        total += nqueens_count_from(n, prefix);
      }
      EXPECT_EQ(total, nqueens_count(n)) << "n=" << n << " depth=" << depth;
    }
  }
}

TEST(NQueens, PrefixesAreValidPlacements) {
  const auto prefixes = nqueens_prefixes(8, 2);
  // Row 0 has 8 choices; row 1 excludes same column and adjacent
  // diagonals: 8*8 - 8 (same col) - 14 (diagonals) = 42.
  EXPECT_EQ(prefixes.size(), 42u);
  for (const auto& p : prefixes) {
    EXPECT_EQ(p.rows.size(), 2u);
    EXPECT_NE(p.rows[0], p.rows[1]);
    const unsigned diff = p.rows[0] > p.rows[1] ? p.rows[0] - p.rows[1]
                                                : p.rows[1] - p.rows[0];
    EXPECT_NE(diff, 1u);  // no adjacent-diagonal attacks
  }
}

TEST(NQueens, InvalidPrefixYieldsZero) {
  EXPECT_EQ(nqueens_count_from(8, {{0, 0}}), 0u);  // same column
  EXPECT_EQ(nqueens_count_from(8, {{0, 1}}), 0u);  // diagonal attack
}

TEST(NQueens, EmptyPrefixEqualsFullSearch) {
  EXPECT_EQ(nqueens_count_from(8, {}), nqueens_count(8));
}

TEST(NQueens, FullDepthPrefixesAreSolutions) {
  const auto solutions = nqueens_prefixes(6, 6);
  EXPECT_EQ(solutions.size(), nqueens_count(6));
  for (const auto& s : solutions) {
    EXPECT_EQ(nqueens_count_from(6, s), 1u);
  }
}

}  // namespace
}  // namespace wats::workloads
