// Tests for the simulator extensions: trace recording, frequency-scalable
// (memory-bound) tasks + WATS-M, phase-shifting workloads, and the EWMA
// history estimator.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/trace.hpp"
#include "sim/workload_adapter.hpp"

namespace wats::sim {
namespace {

workloads::BenchmarkSpec tiny_batch(std::size_t batches = 4) {
  workloads::BenchmarkSpec spec;
  spec.name = "tiny";
  spec.kind = workloads::BenchKind::kBatch;
  spec.classes = {
      {"heavy", 16.0, 0.0, 2, 1.0},
      {"light", 4.0, 0.0, 6, 1.0},
  };
  spec.batches = batches;
  return spec;
}

// ---- Effective speed / memory-bound tasks.

TEST(EffectiveSpeed, PureComputeMatchesCoreSpeed) {
  const core::AmcTopology topo("2g", {{2.5, 1}, {0.8, 1}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  auto spec = tiny_batch(1);
  auto wl = make_workload(spec, reg, 1);
  Engine engine(topo, SimConfig{}, *sched, *wl);
  SimTask cpu;
  cpu.scalable = 1.0;
  EXPECT_DOUBLE_EQ(engine.effective_speed(cpu, 0), 2.5);
  EXPECT_DOUBLE_EQ(engine.effective_speed(cpu, 1), 0.8);
}

TEST(EffectiveSpeed, PureMemoryIsFrequencyInvariant) {
  const core::AmcTopology topo("2g", {{2.5, 1}, {0.8, 1}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  auto spec = tiny_batch(1);
  auto wl = make_workload(spec, reg, 1);
  Engine engine(topo, SimConfig{}, *sched, *wl);
  SimTask mem;
  mem.scalable = 0.0;
  // Fully stall-bound: runs at F1-equivalent speed everywhere.
  EXPECT_DOUBLE_EQ(engine.effective_speed(mem, 0), 2.5);
  EXPECT_DOUBLE_EQ(engine.effective_speed(mem, 1), 2.5);
}

TEST(EffectiveSpeed, PartialScalingInBetween) {
  const core::AmcTopology topo("2g", {{2.0, 1}, {1.0, 1}});
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kPft, reg);
  auto spec = tiny_batch(1);
  auto wl = make_workload(spec, reg, 1);
  Engine engine(topo, SimConfig{}, *sched, *wl);
  SimTask half;
  half.scalable = 0.5;
  // time = 0.5/1 + 0.5/2 = 0.75 per work unit -> eff = 4/3.
  EXPECT_NEAR(engine.effective_speed(half, 1), 4.0 / 3.0, 1e-12);
}

TEST(WatsM, MemoryBoundLoadsDoNotSufferOnSlowCores) {
  // A mostly-memory-bound application finishes in about the same time no
  // matter which cores run it; WATS-M must not be worse than WATS.
  const auto spec = workloads::membound_mix();
  const auto topo = core::amc_by_name("AMC5");
  ExperimentConfig cfg;
  cfg.repeats = 5;
  const auto wats = run_experiment(spec, topo, SchedulerKind::kWats, cfg);
  const auto watsm = run_experiment(spec, topo, SchedulerKind::kWatsM, cfg);
  EXPECT_LT(watsm.mean_makespan, wats.mean_makespan * 1.10);
}

TEST(WatsM, RunsEveryTask) {
  const auto spec = workloads::membound_mix();
  const auto topo = core::amc_by_name("AMC2");
  ExperimentConfig cfg;
  cfg.repeats = 1;
  const auto r = run_experiment(spec, topo, SchedulerKind::kWatsM, cfg);
  EXPECT_EQ(r.runs[0].tasks_completed, spec.total_tasks());
}

TEST(Energy, MoreBusyTimeMoreEnergy) {
  const auto topo = core::amc_by_name("AMC5");
  core::EnergyModel model;
  RunStats a;
  a.makespan = 100.0;
  a.busy_time.assign(16, 50.0);
  RunStats b = a;
  b.busy_time.assign(16, 80.0);
  EXPECT_LT(a.energy(topo, model), b.energy(topo, model));
}

// ---- Trace recorder.

TEST(Trace, SegmentsCoverBusyTimeAndNeverOverlap) {
  const auto topo = core::amc_by_name("AMC2");
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kWats, reg);
  auto spec = tiny_batch();
  auto wl = make_workload(spec, reg, 3);
  Engine engine(topo, SimConfig{}, *sched, *wl);
  TraceRecorder trace;
  engine.set_trace(&trace);
  sched->bind(engine);
  const RunStats stats = engine.run();

  EXPECT_TRUE(trace.no_overlaps());
  EXPECT_EQ(trace.segments().size(), stats.tasks_completed);
  const auto busy = trace.busy_time(topo.total_cores());
  for (core::CoreIndex c = 0; c < topo.total_cores(); ++c) {
    EXPECT_NEAR(busy[c], stats.busy_time[c], 1e-9) << c;
  }
}

TEST(Trace, PreemptedSegmentsMarkedUnderSnatching) {
  const auto topo = core::amc_by_name("AMC3");
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kRts, reg);
  auto spec = tiny_batch(8);
  auto wl = make_workload(spec, reg, 3);
  Engine engine(topo, SimConfig{}, *sched, *wl);
  TraceRecorder trace;
  engine.set_trace(&trace);
  sched->bind(engine);
  const RunStats stats = engine.run();
  ASSERT_GT(stats.snatches, 0u);
  std::size_t preempted = 0;
  for (const auto& s : trace.segments()) preempted += s.preempted;
  EXPECT_GT(preempted, 0u);
  EXPECT_TRUE(trace.no_overlaps());
}

TEST(Trace, GanttRendersOneRowPerCore) {
  const auto topo = core::amc_by_name("AMC2");
  TraceRecorder trace;
  trace.record({0.0, 5.0, 0, 1, 0, false});
  trace.record({5.0, 10.0, 3, 2, 0, false});
  const std::string gantt = trace.render_gantt(topo, 10.0, 40);
  std::size_t rows = 0;
  for (char c : gantt) rows += c == '\n';
  EXPECT_EQ(rows, topo.total_cores());
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

// ---- Phase shifts and the EWMA estimator.

workloads::BenchmarkSpec phase_spec() {
  auto spec = tiny_batch(24);
  spec.phase_shift_batch = 8;
  spec.phase_scale = 6.0;  // workloads jump 6x at batch 8
  return spec;
}

TEST(PhaseShift, WorkloadActuallyChanges) {
  const auto spec = phase_spec();
  const auto topo = core::amc_by_name("AMC5");
  ExperimentConfig cfg;
  cfg.repeats = 2;
  const auto shifted = run_experiment(spec, topo, SchedulerKind::kPft, cfg);
  const auto flat = run_experiment(tiny_batch(24), topo,
                                   SchedulerKind::kPft, cfg);
  EXPECT_GT(shifted.mean_makespan, flat.mean_makespan * 2.0);
}

TEST(Ewma, AdaptsFasterThanRunningMeanAfterPhaseChange) {
  core::TaskClassRegistry mean_reg;
  core::TaskClassRegistry ewma_reg(core::WorkloadEstimator::kEwma, 0.3);
  const auto a = mean_reg.intern("f");
  const auto b = ewma_reg.intern("f");
  // Long phase at workload 10, then a jump to 100.
  for (int i = 0; i < 100; ++i) {
    mean_reg.record_completion(a, 10.0);
    ewma_reg.record_completion(b, 10.0);
  }
  for (int i = 0; i < 10; ++i) {
    mean_reg.record_completion(a, 100.0);
    ewma_reg.record_completion(b, 100.0);
  }
  // EWMA is near the new level, the running mean barely moved.
  EXPECT_GT(ewma_reg.info(b).mean_workload, 85.0);
  EXPECT_LT(mean_reg.info(a).mean_workload, 25.0);
}

TEST(Ewma, MatchesRunningMeanOnStationaryInput) {
  core::TaskClassRegistry ewma_reg(core::WorkloadEstimator::kEwma, 0.2);
  const auto id = ewma_reg.intern("f");
  for (int i = 0; i < 500; ++i) ewma_reg.record_completion(id, 42.0);
  EXPECT_NEAR(ewma_reg.info(id).mean_workload, 42.0, 1e-9);
}

TEST(Ewma, SchedulesPhaseShiftedWorkloadsAtLeastAsWell) {
  const auto spec = phase_spec();
  const auto topo = core::amc_by_name("AMC5");
  ExperimentConfig mean_cfg;
  mean_cfg.repeats = 5;
  ExperimentConfig ewma_cfg = mean_cfg;
  ewma_cfg.estimator = core::WorkloadEstimator::kEwma;
  ewma_cfg.ewma_alpha = 0.3;
  const auto mean_r =
      run_experiment(spec, topo, SchedulerKind::kWats, mean_cfg);
  const auto ewma_r =
      run_experiment(spec, topo, SchedulerKind::kWats, ewma_cfg);
  // EWMA should track the 6x phase jump at least as well (small slack for
  // sampling noise).
  EXPECT_LT(ewma_r.mean_makespan, mean_r.mean_makespan * 1.05);
}

}  // namespace
}  // namespace wats::sim
