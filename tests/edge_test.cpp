// Edge-case and failure-injection tests across modules: extreme coder
// probabilities, corrupt compressed streams, simulator work-conservation
// properties, and configuration validation.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/workload_adapter.hpp"
#include "util/rng.hpp"
#include "workloads/arith.hpp"
#include "workloads/bzip2_like.hpp"
#include "workloads/datagen.hpp"
#include "workloads/dedup.hpp"
#include "workloads/huffman.hpp"
#include "workloads/lzw.hpp"
#include "workloads/mtf_rle.hpp"

namespace wats {
namespace {

// ---- Range coder at the probability extremes.

TEST(RangeCoderEdge, ExtremeProbabilitiesRoundTrip) {
  workloads::RangeEncoder enc;
  std::vector<std::pair<std::uint32_t, std::uint16_t>> stream;
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const std::uint16_t p0 = (i % 3 == 0) ? 1 : (i % 3 == 1) ? 65535 : 32768;
    // Stress the unlikely branch too: sometimes send the improbable bit.
    const std::uint32_t bit = rng.chance(0.1) ? (p0 > 32768 ? 1u : 0u)
                                              : (p0 > 32768 ? 0u : 1u);
    stream.emplace_back(bit, p0);
    enc.encode(bit, p0);
  }
  const util::Bytes buf = enc.finish();
  workloads::RangeDecoder dec(buf);
  for (const auto& [bit, p0] : stream) {
    ASSERT_EQ(dec.decode(p0), bit);
  }
}

TEST(RangeCoderEdge, EmptyStreamDecodesNothing) {
  workloads::RangeEncoder enc;
  const util::Bytes buf = enc.finish();
  EXPECT_LE(buf.size(), 5u);
}

// ---- Corrupt-stream handling: decoders must abort, not corrupt memory.

TEST(CorruptStreams, LzwGarbageAborts) {
  const util::Bytes garbage = workloads::random_bytes(64, 1);
  EXPECT_DEATH(
      { auto out = workloads::lzw_decompress(garbage, 100000); (void)out; },
      "corrupt|WATS_CHECK");
}

TEST(CorruptStreams, Bzip2TruncatedAborts) {
  const util::Bytes input = workloads::text_corpus(5000, 2);
  util::Bytes packed = workloads::bzip2_compress(input);
  packed.resize(8);  // way below the header size
  EXPECT_DEATH(
      { auto out = workloads::bzip2_decompress(packed); (void)out; },
      "truncated");
}

TEST(CorruptStreams, DedupArchiveBadTagAborts) {
  const util::Bytes input = workloads::text_corpus(20000, 3);
  util::Bytes archive = workloads::dedup_archive(input);
  archive[4] = 0x7F;  // first chunk tag
  EXPECT_DEATH({ auto out = workloads::dedup_restore(archive); (void)out; },
               "corrupt|WATS_CHECK");
}

TEST(CorruptStreams, ZrleWithoutEobAborts) {
  const std::vector<workloads::ZSymbol> symbols{2, 3, 4};  // no kEob
  EXPECT_DEATH({ auto out = workloads::zrle_decode(symbols); (void)out; },
               "EOB");
}

TEST(CorruptStreams, HuffmanEmptyBookAborts) {
  const std::vector<std::uint8_t> lengths(10, 0);
  EXPECT_DEATH(workloads::HuffmanDecoder dec(lengths), "empty");
}

// ---- Simulator conservation properties.

TEST(SimProperties, WorkIsConserved) {
  // Sum over cores of busy_time * effective speed == total work executed,
  // for every scheduler (CPU-bound tasks: eff speed == core speed).
  const auto topo = core::amc_by_name("AMC1");
  const auto& spec = workloads::benchmark_by_name("GA");
  for (auto kind : {sim::SchedulerKind::kCilk, sim::SchedulerKind::kRts,
                    sim::SchedulerKind::kWats, sim::SchedulerKind::kWatsTs}) {
    sim::ExperimentConfig cfg;
    cfg.repeats = 1;
    const auto r = sim::run_experiment(spec, topo, kind, cfg);
    const auto& run = r.runs[0];
    double executed = 0.0;
    for (core::CoreIndex c = 0; c < run.busy_time.size(); ++c) {
      executed +=
          run.busy_time[c] * topo.group(topo.group_of_core(c)).frequency_ghz;
    }
    // Snatching re-executes part of the preempted work, so executed >=
    // total_work, with equality for non-snatching schedulers.
    if (kind == sim::SchedulerKind::kCilk ||
        kind == sim::SchedulerKind::kWats) {
      EXPECT_NEAR(executed, run.total_work, run.total_work * 1e-9)
          << sim::to_string(kind);
    } else {
      EXPECT_GE(executed, run.total_work * (1 - 1e-9)) << sim::to_string(kind);
    }
  }
}

TEST(SimProperties, MakespanAtLeastCriticalTask) {
  // No schedule can beat the largest single task on the fastest core.
  workloads::BenchmarkSpec spec;
  spec.name = "crit";
  spec.kind = workloads::BenchKind::kBatch;
  spec.classes = {{"monster", 1000.0, 0.0, 1}, {"small", 1.0, 0.0, 127}};
  spec.batches = 1;
  const auto topo = core::amc_by_name("AMC2");
  for (auto kind : {sim::SchedulerKind::kCilk, sim::SchedulerKind::kWats}) {
    sim::ExperimentConfig cfg;
    cfg.repeats = 3;
    const auto r = sim::run_experiment(spec, topo, kind, cfg);
    EXPECT_GE(r.min_makespan, 1000.0 / 2.5 * (1 - 0.01))
        << sim::to_string(kind);
  }
}

TEST(SimProperties, SnatchRedoIncreasesExecutedWork) {
  const auto topo = core::amc_by_name("AMC5");
  const auto spec = workloads::ga_mix(32);
  sim::ExperimentConfig with_redo;
  with_redo.repeats = 1;
  with_redo.sim.snatch_redo_fraction = 1.0;
  sim::ExperimentConfig without;
  without.repeats = 1;
  without.sim.snatch_redo_fraction = 0.0;
  auto executed = [&](const sim::ExperimentConfig& cfg) {
    const auto r =
        sim::run_experiment(spec, topo, sim::SchedulerKind::kRts, cfg);
    double sum = 0.0;
    for (core::CoreIndex c = 0; c < r.runs[0].busy_time.size(); ++c) {
      sum += r.runs[0].busy_time[c] *
             topo.group(topo.group_of_core(c)).frequency_ghz;
    }
    return sum - r.runs[0].total_work;
  };
  EXPECT_GT(executed(with_redo), executed(without));
}

// ---- Configuration validation.

TEST(ConfigValidation, EmptyTopologyAborts) {
  EXPECT_DEATH(core::AmcTopology("bad", {}), "at least one core");
  EXPECT_DEATH(core::AmcTopology("bad", {{2.5, 0}}), "at least one core");
}

TEST(ConfigValidation, NonPositiveFrequencyAborts) {
  EXPECT_DEATH(core::AmcTopology("bad", {{0.0, 4}}), "positive");
  EXPECT_DEATH(core::AmcTopology("bad", {{-1.0, 4}}), "positive");
}

TEST(ConfigValidation, EwmaAlphaRangeChecked) {
  EXPECT_DEATH(
      core::TaskClassRegistry(core::WorkloadEstimator::kEwma, 0.0), "");
  EXPECT_DEATH(
      core::TaskClassRegistry(core::WorkloadEstimator::kEwma, 1.5), "");
}

}  // namespace
}  // namespace wats
