// Cross-kernel comparison properties: the compression kernels must relate
// to each other the way their real counterparts do on natural text, and
// Ferret retrieval must be robust to small perturbations.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workloads/bzip2_like.hpp"
#include "workloads/datagen.hpp"
#include "workloads/dmc.hpp"
#include "workloads/ferret.hpp"
#include "workloads/lzw.hpp"

namespace wats::workloads {
namespace {

TEST(KernelComparison, Bzip2BeatsLzwOnText) {
  // Block sorting + entropy coding outperforms pure dictionary coding on
  // prose — the reason bzip2 exists.
  const util::Bytes text = text_corpus(120000, 7);
  const std::size_t bz = bzip2_compress(text).size();
  const std::size_t lz = lzw_compress(text).size();
  EXPECT_LT(bz, lz);
}

TEST(KernelComparison, DmcCompetitiveWithLzwOnText) {
  const util::Bytes text = text_corpus(120000, 8);
  const std::size_t dmc = dmc_compress(text).size();
  const std::size_t lz = lzw_compress(text).size();
  // Context modeling should be at least in the same league (within 20%).
  EXPECT_LT(dmc, lz * 12 / 10);
}

TEST(KernelComparison, AllCompressorsNearIncompressibleOnNoise) {
  const util::Bytes noise = random_bytes(60000, 9);
  EXPECT_GT(bzip2_compress(noise).size(), noise.size() * 95 / 100);
  EXPECT_GT(lzw_compress(noise).size(), noise.size() * 95 / 100);
  EXPECT_GT(dmc_compress(noise).size(), noise.size() * 95 / 100);
}

TEST(KernelComparison, RedundancyHelpsEveryCompressor) {
  const util::Bytes redundant = repetitive_corpus(120000, 0.9, 10);
  const util::Bytes fresh = repetitive_corpus(120000, 0.0, 10);
  EXPECT_LT(lzw_compress(redundant).size(), lzw_compress(fresh).size());
  EXPECT_LT(bzip2_compress(redundant).size(), bzip2_compress(fresh).size());
}

TEST(FerretRobustness, PerturbedQueryStillFindsOriginal) {
  // Index 60 images; query with a lightly perturbed copy of one of them:
  // the original must be in the top-3.
  FerretIndex index(48, 8, 77);
  std::vector<FeatureVector> features;
  for (std::uint64_t s = 0; s < 60; ++s) {
    const auto img = synthetic_image(32, 32, 5, s);
    features.push_back(extract_features(img, 32, 32));
    index.add(features.back());
  }
  for (std::uint64_t target : {3ull, 17ull, 42ull}) {
    auto img = synthetic_image(32, 32, 5, target);
    // Perturb: +2% noise on every pixel.
    util::Xoshiro256 rng(target + 1000);
    for (auto& v : img) {
      v = static_cast<float>(v * (1.0 + 0.02 * (rng.uniform() - 0.5)));
    }
    const auto query = extract_features(img, 32, 32);
    const auto matches = index.query(query, 3);
    bool found = false;
    for (const auto& m : matches) found |= m.image_id == target;
    EXPECT_TRUE(found) << "target " << target;
  }
}

// Compressor x corpus round-trip matrix.
struct MatrixCase {
  const char* compressor;
  const char* corpus;
};

class CompressionMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(CompressionMatrixTest, RoundTrips) {
  const auto [compressor, corpus] = GetParam();
  util::Bytes input;
  if (std::string(corpus) == "text") {
    input = text_corpus(40000, 99);
  } else if (std::string(corpus) == "random") {
    input = random_bytes(40000, 99);
  } else if (std::string(corpus) == "redundant") {
    input = repetitive_corpus(40000, 0.8, 99);
  } else {
    input = util::Bytes(40000, 0x42);  // constant
  }

  const std::string c = compressor;
  if (c == "lzw") {
    EXPECT_EQ(lzw_decompress(lzw_compress(input), input.size()), input);
  } else if (c == "bzip2") {
    EXPECT_EQ(bzip2_decompress(bzip2_compress(input)), input);
  } else {
    EXPECT_EQ(dmc_decompress(dmc_compress(input), input.size()), input);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompressionMatrixTest,
    ::testing::Values(
        MatrixCase{"lzw", "text"}, MatrixCase{"lzw", "random"},
        MatrixCase{"lzw", "redundant"}, MatrixCase{"lzw", "constant"},
        MatrixCase{"bzip2", "text"}, MatrixCase{"bzip2", "random"},
        MatrixCase{"bzip2", "redundant"}, MatrixCase{"bzip2", "constant"},
        MatrixCase{"dmc", "text"}, MatrixCase{"dmc", "random"},
        MatrixCase{"dmc", "redundant"}, MatrixCase{"dmc", "constant"}));

}  // namespace
}  // namespace wats::workloads
