// Change-point history decay (core/task_class.hpp ChangePointConfig):
// no drift => the detector stays silent; a step drift => a reset within
// the documented lag bound, on both the serial record_completion path and
// the sharded apply_history_delta path; the decay rebuilds history with
// the same exact-FixedSum arithmetic as restore(), so post-reset folds
// stay bit-equal to a fresh registry; and the end-to-end acceptance
// criterion — WATS with decay beats frozen-history WATS on the registry's
// step-drift scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/task_class.hpp"
#include "core/topology.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "sim/experiment.hpp"

namespace wats::core {
namespace {

ChangePointConfig test_config() {
  ChangePointConfig cp;
  cp.enabled = true;
  cp.slack = 0.5;
  cp.threshold = 6.0;
  cp.min_samples = 8;
  cp.decay_to = 4;
  return cp;
}

TEST(ChangePoint, DisabledDetectorIsBitInvisible) {
  TaskClassRegistry plain;
  TaskClassRegistry gated;
  ChangePointConfig off = test_config();
  off.enabled = false;
  gated.configure_change_point(off);

  const TaskClassId a = plain.intern("worker");
  ASSERT_EQ(a, gated.intern("worker"));
  for (int i = 0; i < 200; ++i) {
    const double w = 10.0 + (i % 7) * 40.0;  // wild swings, detector off
    plain.record_completion(a, w);
    gated.record_completion(a, w);
  }
  EXPECT_EQ(gated.history_resets(), 0u);
  EXPECT_EQ(plain.info(a).completed, gated.info(a).completed);
  EXPECT_EQ(plain.info(a).mean_workload, gated.info(a).mean_workload);
}

TEST(ChangePoint, NoDriftNoResets) {
  TaskClassRegistry table;
  table.configure_change_point(test_config());
  const TaskClassId id = table.intern("steady");
  // Stationary samples with within-class noise well inside the slack
  // band (cv ~ 0.1 vs slack 0.5): the CUSUM must absorb all of it.
  for (int i = 0; i < 500; ++i) {
    const double w = 100.0 * (1.0 + 0.1 * ((i % 5) - 2) / 2.0);
    table.record_completion(id, w);
  }
  EXPECT_EQ(table.history_resets(), 0u);
  EXPECT_TRUE(table.drain_history_resets().empty());
  EXPECT_EQ(table.info(id).completed, 500u);
}

TEST(ChangePoint, StepDriftResetsWithinBoundedLagSerial) {
  const ChangePointConfig cp = test_config();
  TaskClassRegistry table;
  table.configure_change_point(cp);
  const TaskClassId id = table.intern("shifty");

  for (int i = 0; i < 64; ++i) table.record_completion(id, 10.0);
  ASSERT_EQ(table.history_resets(), 0u);

  // Step to 16x. Documented lag ~ threshold / (s - 1 - slack) samples
  // after the step (s = 16), i.e. under one sample here; allow
  // min_samples of margin for arming details.
  const std::uint64_t bound = cp.min_samples + 8;
  std::uint64_t took = 0;
  for (std::uint64_t i = 0; i < bound && table.history_resets() == 0; ++i) {
    table.record_completion(id, 160.0);
    ++took;
  }
  ASSERT_EQ(table.history_resets(), 1u) << "no reset within " << bound
                                        << " post-step samples";
  EXPECT_LE(took, bound);

  // Decayed state: decay_to synthetic samples at the post-change mean.
  const TaskClassInfo info = table.info(id);
  EXPECT_EQ(info.completed, cp.decay_to);
  EXPECT_NEAR(info.mean_workload, 160.0, 1.0);

  const std::vector<HistoryReset> resets = table.drain_history_resets();
  ASSERT_EQ(resets.size(), 1u);
  EXPECT_EQ(resets[0].id, id);
  EXPECT_NEAR(resets[0].stale_mean, 10.0, 25.0);  // pre-step mean + drift
  EXPECT_NEAR(resets[0].fresh_mean, 160.0, 1.0);
  EXPECT_TRUE(table.drain_history_resets().empty());  // drained
}

TEST(ChangePoint, StepDriftResetsOnShardedDeltaPath) {
  const ChangePointConfig cp = test_config();
  TaskClassRegistry table;
  table.configure_change_point(cp);
  const TaskClassId id = table.intern("shifty");

  // Deltas of 4 completions each, as a helper-thread fold would apply
  // them. 16 pre-step deltas at mean 10, then post-step deltas at 160.
  const auto delta = [&](double mean, std::uint64_t n) {
    FixedSum sum_w;
    sum_w.add_product(quantize_history(mean), n);
    FixedSum sum_s;
    sum_s.add_product(quantize_history(1.0), n);
    table.apply_history_delta(id, n, sum_w, sum_s, mean, mean);
  };
  for (int i = 0; i < 16; ++i) delta(10.0, 4);
  ASSERT_EQ(table.history_resets(), 0u);

  std::uint64_t folds = 0;
  for (; folds < 8 && table.history_resets() == 0; ++folds) delta(160.0, 4);
  ASSERT_EQ(table.history_resets(), 1u)
      << "no reset within " << folds << " post-step folds";

  const TaskClassInfo info = table.info(id);
  EXPECT_EQ(info.completed, cp.decay_to);
  EXPECT_NEAR(info.mean_workload, 160.0, 1.0);
}

TEST(ChangePoint, DecayRebuildMatchesRestoreExactly) {
  // After a reset, the class must hold the same bits as a fresh registry
  // restored to (decay_to, fresh_mean) — so later exact-FixedSum folds
  // and merges combine identically on both.
  const ChangePointConfig cp = test_config();
  TaskClassRegistry decayed;
  decayed.configure_change_point(cp);
  const TaskClassId id = decayed.intern("shifty");
  for (int i = 0; i < 64; ++i) decayed.record_completion(id, 10.0);
  for (int i = 0; i < 16 && decayed.history_resets() == 0; ++i) {
    decayed.record_completion(id, 160.0);
  }
  ASSERT_EQ(decayed.history_resets(), 1u);
  const double fresh_mean = decayed.info(id).mean_workload;

  TaskClassRegistry rebuilt;
  const TaskClassId rid = rebuilt.intern("shifty");
  rebuilt.restore(rid, cp.decay_to, fresh_mean);
  ASSERT_EQ(rebuilt.info(rid).mean_workload, decayed.info(id).mean_workload);
  ASSERT_EQ(rebuilt.info(rid).completed, decayed.info(id).completed);

  // Identical post-reset deltas must keep the two registries bit-equal.
  FixedSum dw;
  dw.add_product(quantize_history(157.25), 3);
  FixedSum ds;
  ds.add_product(quantize_history(1.0), 3);
  decayed.apply_history_delta(id, 3, dw, ds, 157.25, 157.25);
  rebuilt.apply_history_delta(rid, 3, dw, ds, 157.25, 157.25);
  EXPECT_EQ(decayed.info(id).mean_workload, rebuilt.info(rid).mean_workload);
  EXPECT_EQ(decayed.info(id).completed, rebuilt.info(rid).completed);
}

TEST(ChangePoint, SimStepDriftProducesResetsOnlyWhenEnabled) {
  const workloads::BenchmarkSpec spec = scenario::step_drift_workload();
  const core::AmcTopology topo = core::amc_by_name("AMC5");

  sim::ExperimentConfig frozen;
  frozen.repeats = 1;
  const sim::ExperimentResult off =
      sim::run_experiment(spec, topo, sim::SchedulerKind::kWats, frozen);
  EXPECT_EQ(off.history_resets, 0u);

  sim::ExperimentConfig adaptive = frozen;
  adaptive.change_point = test_config();
  const sim::ExperimentResult on =
      sim::run_experiment(spec, topo, sim::SchedulerKind::kWats, adaptive);
  EXPECT_GE(on.history_resets, 1u);
}

TEST(ChangePoint, AdaptiveBeatsFrozenOnStepDriftScenario) {
  // The acceptance criterion: on the registry's step-drift scenario, WATS
  // with change-point decay must beat frozen-history WATS on makespan.
  // Observed gap ~15%; assert 5% with tolerance for seed drift.
  const scenario::ScenarioSpec* spec = scenario::find_scenario("step-drift");
  ASSERT_NE(spec, nullptr);
  const scenario::ScenarioResult result = scenario::run_scenario(*spec);

  const std::string& workload = spec->workloads.empty()
                                    ? spec->inline_workloads[0].name
                                    : spec->workloads[0];
  const double frozen = result.makespan(workload, spec->machines[0],
                                        sim::SchedulerKind::kWats, "frozen");
  const double adaptive = result.makespan(
      workload, spec->machines[0], sim::SchedulerKind::kWats, "adaptive");
  EXPECT_LT(adaptive, 0.95 * frozen)
      << "frozen=" << frozen << " adaptive=" << adaptive;

  // And the adaptive cells actually decayed history.
  EXPECT_GE(result
                .cell(workload, spec->machines[0], sim::SchedulerKind::kWats,
                      "adaptive")
                .history_resets,
            1u);
}

}  // namespace
}  // namespace wats::core
