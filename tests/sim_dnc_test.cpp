// End-to-end §IV-E divide-and-conquer fallback in the simulator: a
// self-recursive workload that tags SimTask::parent must flip the WATS
// kernel into plain-stealing mode mid-run, and the run must still
// complete every task.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace wats::sim {
namespace {

/// Binary divide-and-conquer recursion: every completed task of class
/// `cls` spawns two children of the SAME class (parent tagged) until a
/// spawn budget runs out — the fib/nqueens shape §IV-E targets.
class RecursiveWorkload : public Workload {
 public:
  RecursiveWorkload(core::TaskClassId cls, std::uint64_t budget,
                    bool tag_parent = true)
      : cls_(cls), budget_(budget), tag_parent_(tag_parent) {}

  void start(Engine& engine) override {
    SimTask root;
    root.id = engine.next_task_id();
    root.cls = cls_;
    root.parent = core::kNoTaskClass;
    root.work = root.remaining = 1.0;
    ++outstanding_;
    engine.spawn(root, 0);
  }

  void on_complete(Engine& engine, const SimTask& task,
                   core::CoreIndex core) override {
    --outstanding_;
    ++completed_;
    if (task.cls != cls_) return;
    for (int i = 0; i < 2 && budget_ > 0; ++i, --budget_) {
      SimTask child;
      child.id = engine.next_task_id();
      child.cls = cls_;
      // The self-recursive edge the detector watches; workloads opt in.
      child.parent = tag_parent_ ? cls_ : core::kNoTaskClass;
      child.work = child.remaining = 1.0;
      ++outstanding_;
      engine.spawn(child, core);
    }
  }

  bool done() const override { return outstanding_ == 0; }
  std::uint64_t completed() const { return completed_; }

 private:
  core::TaskClassId cls_;
  std::uint64_t budget_;
  bool tag_parent_;
  std::uint64_t outstanding_ = 0;
  std::uint64_t completed_ = 0;
};

SimConfig dnc_config() {
  SimConfig cfg;
  cfg.seed = 7;
  cfg.steal_cost = 0.0;
  cfg.spawn_cost = 0.0;
  cfg.dnc_min_spawns = 16;  // trip the detector early in a small run
  return cfg;
}

TEST(SimDnc, SelfRecursiveWorkloadActivatesFallback) {
  const core::AmcTopology topo("d", {{2.0, 1}, {1.0, 3}});
  core::TaskClassRegistry reg;
  const auto cls = reg.intern("fib");
  auto sched = make_scheduler(SchedulerKind::kWats, reg);
  RecursiveWorkload wl(cls, 200);
  Engine engine(topo, dnc_config(), *sched, wl);
  sched->bind(engine);
  ASSERT_NE(sched->kernel(), nullptr);
  EXPECT_FALSE(sched->kernel()->dnc_active());

  const auto stats = engine.run();
  EXPECT_TRUE(sched->kernel()->dnc_active());
  EXPECT_EQ(stats.tasks_completed, 201u);  // root + budget
  EXPECT_EQ(wl.completed(), 201u);
}

TEST(SimDnc, FallbackRespectsConfigSwitch) {
  const core::AmcTopology topo("d", {{2.0, 1}, {1.0, 3}});
  core::TaskClassRegistry reg;
  const auto cls = reg.intern("fib");
  auto sched = make_scheduler(SchedulerKind::kWats, reg);
  RecursiveWorkload wl(cls, 200);
  auto cfg = dnc_config();
  cfg.dnc_fallback = false;
  Engine engine(topo, cfg, *sched, wl);
  sched->bind(engine);

  const auto stats = engine.run();
  EXPECT_FALSE(sched->kernel()->dnc_active());
  EXPECT_EQ(stats.tasks_completed, 201u);
}

TEST(SimDnc, UntaggedSpawnsKeepDetectorSilent) {
  const core::AmcTopology topo("d", {{2.0, 1}, {1.0, 3}});
  core::TaskClassRegistry reg;
  const auto cls = reg.intern("fib");

  // Same recursion shape but with parent left untagged: the detector must
  // never engage (workloads opt in by setting SimTask::parent).
  auto sched = make_scheduler(SchedulerKind::kWats, reg);
  RecursiveWorkload wl(cls, 100, /*tag_parent=*/false);
  Engine engine(topo, dnc_config(), *sched, wl);
  sched->bind(engine);
  engine.run();
  EXPECT_FALSE(sched->kernel()->dnc_active());
}

}  // namespace
}  // namespace wats::sim
