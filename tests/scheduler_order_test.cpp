// White-box tests of the Algorithm 3 acquisition order in the simulator:
// crafted scenarios where the preference list's choice is observable in
// the makespan or in which tasks run where.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/trace.hpp"
#include "sim/workload_adapter.hpp"

namespace wats::sim {
namespace {

// Three-group machine, one core each, speeds 4/2/1.
core::AmcTopology three_groups() {
  return core::AmcTopology("3g", {{4.0, 1}, {2.0, 1}, {1.0, 1}});
}

workloads::BenchmarkSpec three_cluster_spec() {
  // Three classes engineered so each lands in its own cluster once
  // history exists: weights proportional to capacities (4:2:1).
  workloads::BenchmarkSpec spec;
  spec.name = "3c";
  spec.kind = workloads::BenchKind::kBatch;
  spec.classes = {
      {"huge", 40.0, 0.0, 4, 1.0},    // -> C1 (capacity 4)
      {"medium", 20.0, 0.0, 4, 1.0},  // -> C2 (capacity 2)
      {"tiny", 10.0, 0.0, 4, 1.0},    // -> C3 (capacity 1)
  };
  spec.batches = 6;
  return spec;
}

TEST(SchedulerOrder, ClassesConvergeToTheirClusters) {
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kWats, reg);
  const auto spec = three_cluster_spec();
  auto wl = make_workload(spec, reg, 5);
  const auto topo = three_groups();
  SimConfig cfg;
  Engine engine(topo, cfg, *sched, *wl);
  TraceRecorder trace;
  engine.set_trace(&trace);
  sched->bind(engine);
  engine.run();

  // After warm-up, "huge" should execute mostly on core 0, "tiny" mostly
  // on core 2. Count executions per (class, core) over the whole run.
  const auto huge = reg.find("huge");
  const auto tiny = reg.find("tiny");
  ASSERT_TRUE(huge && tiny);
  std::size_t huge_on_fast = 0, huge_total = 0;
  std::size_t tiny_on_slow = 0, tiny_total = 0;
  for (const auto& seg : trace.segments()) {
    if (seg.cls == *huge) {
      ++huge_total;
      huge_on_fast += seg.core == 0;
    }
    if (seg.cls == *tiny) {
      ++tiny_total;
      tiny_on_slow += seg.core == 2;
    }
  }
  EXPECT_GT(huge_on_fast * 2, huge_total);  // majority on the fast core
  EXPECT_GT(tiny_on_slow * 2, tiny_total);  // majority on the slow core
}

TEST(SchedulerOrder, PreferenceChoosesSlowerClusterBeforeFaster) {
  // A middle-group core with an empty own cluster must take the SLOWER
  // cluster's work before the faster cluster's (rob the weaker first).
  // Setup: only classes for C1 and C3 exist; C2's core must pick C3 work.
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kWats, reg);

  workloads::BenchmarkSpec spec;
  spec.name = "gap";
  spec.kind = workloads::BenchKind::kBatch;
  // Weights force: big -> C1, small -> C3 (middle cluster empty): with
  // capacities 4:2:1 and total 70, TL = 10; C1 budget 40, C2 budget 20.
  // Sorted by mean: big (60) stays in C1 (|60-40| < rules), smalls go
  // down; the tiny class (10 total) cannot fill C2 and C3...
  spec.classes = {
      {"big", 30.0, 0.0, 2, 1.0},
      {"small", 1.0, 0.0, 10, 1.0},
  };
  spec.batches = 8;
  auto wl = make_workload(spec, reg, 7);
  const auto topo = three_groups();
  SimConfig cfg;
  Engine engine(topo, cfg, *sched, *wl);
  TraceRecorder trace;
  engine.set_trace(&trace);
  sched->bind(engine);
  const RunStats stats = engine.run();
  EXPECT_EQ(stats.tasks_completed, 12u * 8u);
  // The middle core must not be starved: it executed something.
  const auto busy = trace.busy_time(3);
  EXPECT_GT(busy[1], 0.0);
}

TEST(SchedulerOrder, WatsNpLeavesForeignClustersAlone) {
  // Under WATS-NP a group whose cluster is empty idles; with the spec
  // above, the makespan must be at least as large as under full WATS.
  const auto topo = three_groups();
  const auto spec = three_cluster_spec();
  ExperimentConfig cfg;
  cfg.repeats = 3;
  const auto np = run_experiment(spec, topo, SchedulerKind::kWatsNp, cfg);
  const auto full = run_experiment(spec, topo, SchedulerKind::kWats, cfg);
  EXPECT_LE(full.mean_makespan, np.mean_makespan * 1.02);
}

TEST(SchedulerOrder, UnknownClassesStartOnFastestGroup) {
  // First batch (no history): every class is unknown -> cluster 0. The
  // fastest core must execute the very first task.
  core::TaskClassRegistry reg;
  auto sched = make_scheduler(SchedulerKind::kWats, reg);
  workloads::BenchmarkSpec spec;
  spec.name = "cold";
  spec.kind = workloads::BenchKind::kBatch;
  spec.classes = {{"only", 10.0, 0.0, 3, 1.0}};
  spec.batches = 1;
  auto wl = make_workload(spec, reg, 3);
  const auto topo = three_groups();
  SimConfig cfg;
  cfg.steal_cost = 0.0;
  Engine engine(topo, cfg, *sched, *wl);
  TraceRecorder trace;
  engine.set_trace(&trace);
  sched->bind(engine);
  engine.run();
  // Find the earliest segment; it must be on core 0 (fastest, dispatch
  // order gives it first crack at the cold cluster-0 pool).
  const TraceSegment* first = nullptr;
  for (const auto& s : trace.segments()) {
    if (first == nullptr || s.start < first->start) first = &s;
  }
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->core, 0u);
}

}  // namespace
}  // namespace wats::sim
