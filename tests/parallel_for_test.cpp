#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/parallel_for.hpp"

namespace wats::runtime {
namespace {

RuntimeConfig cfg() {
  RuntimeConfig c;
  c.topology = core::AmcTopology("pf", {{2.0, 2}, {1.0, 2}});
  c.emulate_speeds = false;
  return c;
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  TaskRuntime rt(cfg());
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(rt, "visit", 0, hits.size(),
               [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, EmptyAndSingleElementRanges) {
  TaskRuntime rt(cfg());
  std::atomic<int> count{0};
  parallel_for(rt, "empty", 5, 5, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  parallel_for(rt, "single", 7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    count++;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, ExplicitGrainRespected) {
  TaskRuntime rt(cfg());
  std::atomic<int> count{0};
  ParallelForOptions options;
  options.grain = 10;
  parallel_for(rt, "grained", 0, 95, [&](std::size_t) { count++; },
               options);
  EXPECT_EQ(count.load(), 95);
  // 95 iterations at grain 10 -> 10 tasks of the "grained" class.
  rt.wait_all();
  const auto history = rt.class_history();
  const auto id = rt.register_class("grained");
  EXPECT_EQ(history[id].completed, 10u);
}

TEST(ParallelReduce, SumsCorrectly) {
  TaskRuntime rt(cfg());
  const std::uint64_t n = 10000;
  const std::uint64_t total = parallel_reduce<std::uint64_t>(
      rt, "sum", 0, n, 0, [](std::size_t i) { return std::uint64_t(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ParallelReduce, NonTrivialCombine) {
  TaskRuntime rt(cfg());
  // Max over a permuted sequence.
  std::vector<std::size_t> values(500);
  std::iota(values.begin(), values.end(), 0u);
  values[137] = 99999;
  const std::size_t best = parallel_reduce<std::size_t>(
      rt, "max", 0, values.size(), 0,
      [&](std::size_t i) { return values[i]; },
      [](std::size_t a, std::size_t b) { return std::max(a, b); });
  EXPECT_EQ(best, 99999u);
}

TEST(RuntimeExceptions, TaskExceptionRethrownAtWaitAll) {
  TaskRuntime rt(cfg());
  rt.spawn([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(rt.wait_all(), std::runtime_error);
  // The runtime is still usable afterwards.
  std::atomic<int> ok{0};
  rt.spawn([&ok] { ok++; });
  rt.wait_all();
  EXPECT_EQ(ok.load(), 1);
}

TEST(RuntimeExceptions, FirstExceptionWins) {
  TaskRuntime rt(cfg());
  for (int i = 0; i < 10; ++i) {
    rt.spawn([] { throw std::logic_error("boom"); });
  }
  EXPECT_THROW(rt.wait_all(), std::logic_error);
  rt.wait_all();  // second wait has nothing pending and nothing to throw
}

TEST(RuntimeExceptions, ParallelForPropagates) {
  TaskRuntime rt(cfg());
  EXPECT_THROW(
      {
        parallel_for(rt, "thrower", 0, 100, [](std::size_t i) {
          if (i == 50) throw std::runtime_error("loop boom");
        });
        rt.wait_all();
      },
      std::runtime_error);
}

}  // namespace
}  // namespace wats::runtime
